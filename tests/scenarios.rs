//! Scripted packetdrill-style scenarios reproducing the paper's Figures 8
//! and 9: the transmission sequences that distinguish ordinary fast
//! retransmission from f-double and t-double retransmission stalls, and the
//! mechanisms' behaviour on each.
//!
//! Losses are injected by exact packet index on the server→client link
//! (deterministic: these paths have no jitter or random loss), located by
//! first running the scenario lossless and reading off the capture order.

use simnet::loss::LossSpec;
use simnet::time::SimDuration;
use tapo::{analyze_flow, AnalyzerConfig, RetransCause, StallCause};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::sim::FlowOutcome;
use tcp_trace::record::Direction;
use workloads::{simulate_flow, FlowSpec, PathSpec};

const MSS: u64 = 1448;

fn clean_path() -> PathSpec {
    // 60ms RTT: the 200ms RTO floor sits well above the 2·SRTT stall
    // threshold, as in the paper's RTO ≫ RTT regime (Fig. 1b).
    PathSpec {
        rtt: SimDuration::from_millis(60),
        jitter: SimDuration::ZERO,
        loss: LossSpec::None,
        ack_loss: Some(LossSpec::None),
        bandwidth_bps: 0, // infinitely fast: pure delay
        queue_pkts: 0,
        reorder_prob: 0.0,
        ..PathSpec::default()
    }
}

fn run(spec: &FlowSpec, drops: Vec<u64>, mech: RecoveryMechanism) -> FlowOutcome {
    let mut path = clean_path();
    path.loss = LossSpec::Script { drops };
    simulate_flow(spec, &path, mech, 1)
}

/// Index (in server→client link offer order) of the `nth` outbound packet
/// matching `pred`. Outbound records appear in the trace in emission order,
/// which is exactly the link offer order.
fn out_index_where(
    out: &FlowOutcome,
    nth: usize,
    pred: impl Fn(&tcp_trace::TraceRecord) -> bool,
) -> u64 {
    out.trace
        .records
        .iter()
        .filter(|r| r.dir == Direction::Out)
        .enumerate()
        .filter(|(_, r)| pred(r))
        .map(|(i, _)| i as u64)
        .nth(nth)
        .expect("matching outbound packet")
}

/// Fig. 9 (top): two *different* segments dropped in one window are both
/// recovered by fast retransmit — no timeout, no stall.
#[test]
fn fig9_two_distinct_drops_recover_without_timeout() {
    let spec = FlowSpec::response_bytes(12 * MSS);
    let baseline = run(&spec, vec![], RecoveryMechanism::Native);
    assert!(baseline.completed);
    let d2 = out_index_where(&baseline, 0, |r| r.seq == 2 * MSS && r.has_data());
    let d6 = out_index_where(&baseline, 0, |r| r.seq == 6 * MSS && r.has_data());

    let out = run(&spec, vec![d2, d6], RecoveryMechanism::Native);
    assert!(out.completed);
    assert_eq!(
        out.server_stats.rto_count, 0,
        "both losses must be repaired by fast retransmit"
    );
    assert_eq!(out.server_stats.retrans_segs, 2);
    let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
    assert!(
        !analysis
            .stalls
            .iter()
            .any(|s| matches!(s.cause, StallCause::Retransmission(_))),
        "no timeout stall expected: {:?}",
        analysis.stalls
    );
}

/// Fig. 9 (bottom) / Fig. 8(a): the same segment dropped twice — the fast
/// retransmission is lost too. Native TCP can only repair it with a
/// timeout; TAPO classifies the stall as an f-double retransmission.
#[test]
fn fig8a_f_double_stall_under_native() {
    // Drop segment 7 of 12: four segments after it supply the dupacks for
    // fast retransmit, and with no new data left to send the lost
    // retransmission leaves a clean silent gap until the RTO.
    let spec = FlowSpec::response_bytes(12 * MSS);
    let baseline = run(&spec, vec![], RecoveryMechanism::Native);
    let orig = out_index_where(&baseline, 0, |r| r.seq == 7 * MSS && r.has_data());

    // Pass 1: drop only the original; find the fast retransmission's index.
    let pass1 = run(&spec, vec![orig], RecoveryMechanism::Native);
    assert_eq!(pass1.server_stats.rto_count, 0);
    let retrans_idx = out_index_where(&pass1, 1, |r| r.seq == 7 * MSS && r.has_data());

    // Pass 2: drop both the original and its fast retransmission.
    let out = run(&spec, vec![orig, retrans_idx], RecoveryMechanism::Native);
    assert!(out.completed);
    assert_eq!(
        out.server_stats.rto_count, 1,
        "only the RTO repairs a lost retransmission"
    );
    let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
    let doubles: Vec<_> = analysis
        .stalls
        .iter()
        .filter_map(|s| match s.cause {
            StallCause::Retransmission(RetransCause::DoubleRetrans { first_was_fast }) => {
                Some(first_was_fast)
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        doubles,
        vec![true],
        "one f-double stall: {:?}",
        analysis.stalls
    );
}

/// The same f-double scenario under S-RTO: the probe repairs the lost
/// retransmission after ~2·RTT instead of a full RTO, removing the stall.
#[test]
fn fig8a_f_double_repaired_by_srto() {
    let spec = FlowSpec::response_bytes(12 * MSS);
    let baseline = run(&spec, vec![], RecoveryMechanism::Native);
    let orig = out_index_where(&baseline, 0, |r| r.seq == 7 * MSS && r.has_data());
    let pass1 = run(&spec, vec![orig], RecoveryMechanism::srto());
    let retrans_idx = out_index_where(&pass1, 1, |r| r.seq == 7 * MSS && r.has_data());

    let native = run(&spec, vec![orig, retrans_idx], RecoveryMechanism::Native);
    let srto = run(&spec, vec![orig, retrans_idx], RecoveryMechanism::srto());
    assert!(srto.completed);
    assert_eq!(
        srto.server_stats.rto_count, 0,
        "S-RTO's probe repairs the f-double"
    );
    assert!(srto.server_stats.srto_probes >= 1);
    assert!(
        srto.request_latencies[0] < native.request_latencies[0],
        "S-RTO {:?} must beat native {:?}",
        srto.request_latencies[0],
        native.request_latencies[0]
    );
}

/// Fig. 8(b): a t-double — the segment is dropped, the *timeout*
/// retransmission is dropped as well; the flow pays two (backed-off)
/// timeouts and TAPO classifies the second stall as t-double.
#[test]
fn fig8b_t_double_stall() {
    // A 3-segment response whose tail is dropped twice: too few dupacks for
    // fast retransmit, so the first repair attempt is already an RTO.
    let spec = FlowSpec::response_bytes(3 * MSS);
    let baseline = run(&spec, vec![], RecoveryMechanism::Native);
    let tail = out_index_where(&baseline, 0, |r| r.seq == 2 * MSS && r.has_data());

    let pass1 = run(&spec, vec![tail], RecoveryMechanism::Native);
    assert_eq!(pass1.server_stats.rto_count, 1);
    let rto_retrans = out_index_where(&pass1, 1, |r| r.seq == 2 * MSS && r.has_data());

    let out = run(&spec, vec![tail, rto_retrans], RecoveryMechanism::Native);
    assert!(out.completed);
    assert_eq!(
        out.server_stats.rto_count, 2,
        "two timeouts for the t-double"
    );
    let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
    assert!(
        analysis.stalls.iter().any(|s| matches!(
            s.cause,
            StallCause::Retransmission(RetransCause::DoubleRetrans {
                first_was_fast: false
            })
        )),
        "expected a t-double stall: {:?}",
        analysis.stalls
    );
    // The second stall is roughly twice the first (exponential backoff).
    let retrans_stalls: Vec<_> = analysis
        .stalls
        .iter()
        .filter(|s| matches!(s.cause, StallCause::Retransmission(_)))
        .collect();
    assert_eq!(retrans_stalls.len(), 2);
    let (d1, d2) = (retrans_stalls[0].duration, retrans_stalls[1].duration);
    assert!(
        d2 > d1,
        "backoff must lengthen the second stall ({d1} then {d2})"
    );
}

/// A pure tail loss: the paper's tail-retransmission stall in the Open
/// state, which both TLP and S-RTO mitigate.
#[test]
fn tail_loss_stall_and_mitigation() {
    let spec = FlowSpec::response_bytes(8 * MSS);
    let baseline = run(&spec, vec![], RecoveryMechanism::Native);
    let tail = out_index_where(&baseline, 0, |r| r.seq == 7 * MSS && r.has_data());

    let native = run(&spec, vec![tail], RecoveryMechanism::Native);
    assert_eq!(native.server_stats.rto_count, 1);
    let analysis = analyze_flow(&native.trace, AnalyzerConfig::default());
    assert!(
        analysis.stalls.iter().any(|s| matches!(
            s.cause,
            StallCause::Retransmission(RetransCause::TailRetrans { open_state: true })
        )),
        "expected an Open-state tail stall: {:?}",
        analysis.stalls
    );

    for mech in [RecoveryMechanism::tlp(), RecoveryMechanism::srto()] {
        let out = run(&spec, vec![tail], mech);
        assert!(out.completed);
        assert_eq!(
            out.server_stats.rto_count,
            0,
            "{} must avoid the RTO",
            mech.label()
        );
        assert!(
            out.request_latencies[0] < native.request_latencies[0],
            "{} {:?} must beat native {:?}",
            mech.label(),
            out.request_latencies[0],
            native.request_latencies[0]
        );
    }
}

/// Head-of-response loss with a large window behind it: plain fast
/// retransmit, classified as no stall at all (recovery within 2·SRTT).
#[test]
fn fast_retransmit_produces_no_stall() {
    let spec = FlowSpec::response_bytes(20 * MSS);
    let baseline = run(&spec, vec![], RecoveryMechanism::Native);
    let head = out_index_where(&baseline, 0, |r| r.seq == 4 * MSS && r.has_data());
    let out = run(&spec, vec![head], RecoveryMechanism::Native);
    assert!(out.completed);
    assert_eq!(out.server_stats.rto_count, 0);
    assert_eq!(out.server_stats.retrans_segs, 1);
    let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
    assert!(
        !analysis
            .stalls
            .iter()
            .any(|s| matches!(s.cause, StallCause::Retransmission(_))),
        "{:?}",
        analysis.stalls
    );
}

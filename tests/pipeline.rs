//! End-to-end pipeline tests: workload synthesis → simulation → pcap on
//! disk → parse → TAPO analysis — the full offline-tool loop the paper's
//! operators ran daily.

use tapo::{analyze_flow, AnalyzerConfig};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_trace::pcap::{PcapReader, PcapWriter};
use workloads::{synthesize_corpus, Service};

/// The pcap round trip must preserve every field TAPO uses: analyzing the
/// re-parsed capture yields exactly the same stalls as analyzing the
/// in-memory traces.
#[test]
fn pcap_roundtrip_preserves_tapo_verdicts() {
    let corpus = synthesize_corpus(Service::SoftwareDownload, 25, RecoveryMechanism::Native, 11);

    let mut file = Vec::new();
    {
        let mut w = PcapWriter::new(&mut file).unwrap();
        for f in &corpus.flows {
            w.write_flow(&f.trace).unwrap();
        }
        w.finish().unwrap();
    }
    let parsed = PcapReader::read_all(&file[..]).unwrap();
    assert_eq!(parsed.len(), corpus.flows.len());

    let cfg = AnalyzerConfig::default();
    let mut stall_count = 0;
    for (orig, back) in corpus.flows.iter().zip(&parsed) {
        let a = analyze_flow(&orig.trace, cfg);
        let b = analyze_flow(back, cfg);
        assert_eq!(
            a.stalls.len(),
            b.stalls.len(),
            "stall counts diverge after round trip"
        );
        for (x, y) in a.stalls.iter().zip(&b.stalls) {
            assert_eq!(x.cause, y.cause);
            assert_eq!(x.duration, y.duration);
        }
        // The window scale quantizes post-SYN windows to 128-byte units.
        let (wa, wb) = (a.init_rwnd.unwrap_or(0), b.init_rwnd.unwrap_or(0));
        assert!(wa.abs_diff(wb) < 128, "init rwnd {wa} vs {wb}");
        assert_eq!(a.metrics.retrans_pkts, b.metrics.retrans_pkts);
        stall_count += a.stalls.len();
    }
    assert!(
        stall_count > 0,
        "the corpus should contain some stalls to compare"
    );
}

/// Full determinism across the whole pipeline: same seed, same corpus, same
/// stalls, byte-identical pcap.
#[test]
fn pipeline_is_deterministic() {
    let a = synthesize_corpus(Service::WebSearch, 15, RecoveryMechanism::Native, 77);
    let b = synthesize_corpus(Service::WebSearch, 15, RecoveryMechanism::Native, 77);
    let dump = |corpus: &workloads::Corpus| {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        for f in &corpus.flows {
            w.write_flow(&f.trace).unwrap();
        }
        w.finish().unwrap();
        buf
    };
    assert_eq!(
        dump(&a),
        dump(&b),
        "pcap bytes must be identical for identical seeds"
    );
}

/// TAPO's trace-only retransmission accounting matches the simulator's
/// ground truth exactly, and its timeout-event count stays close (the
/// analyzer cannot always distinguish backed-off retransmissions of one
/// timeout episode from separate episodes).
#[test]
fn tapo_matches_ground_truth() {
    let corpus = synthesize_corpus(Service::CloudStorage, 20, RecoveryMechanism::Native, 13);
    let cfg = AnalyzerConfig::default();
    let (mut est_retrans, mut true_retrans, mut est_rto, mut true_rto) = (0u64, 0u64, 0u64, 0u64);
    for f in &corpus.flows {
        let a = analyze_flow(&f.trace, cfg);
        est_retrans += a.metrics.retrans_pkts;
        true_retrans += f.server_stats.retrans_segs;
        est_rto += a.rto_samples.len() as u64;
        true_rto += f.server_stats.rto_count;
    }
    assert_eq!(
        est_retrans, true_retrans,
        "every retransmission is visible in the trace"
    );
    assert!(true_rto > 0);
    // TAPO sometimes splits one backed-off episode into several events or
    // reads a delayed fast retransmit as a timeout; the paper's own tool
    // has the same ambiguity (its "undetermined" bucket). Expect the
    // right order of magnitude, not equality.
    let ratio = est_rto as f64 / true_rto as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "timeout events: TAPO {est_rto} vs truth {true_rto}"
    );
}

/// Client idle never dominates a single-request service, data-unavailable
/// stalls exist for web search, and no stall has a nonsensical duration.
#[test]
fn corpus_stall_sanity() {
    let corpus = synthesize_corpus(Service::WebSearch, 60, RecoveryMechanism::Native, 3);
    let cfg = AnalyzerConfig::default();
    let mut by_cause = std::collections::HashMap::new();
    for f in &corpus.flows {
        let a = analyze_flow(&f.trace, cfg);
        for s in &a.stalls {
            assert!(s.duration.as_micros() > 0);
            assert!(s.end > s.start);
            assert!(
                s.duration.as_secs_f64() < 130.0,
                "stall longer than the RTO ceiling: {:?}",
                s
            );
            *by_cause.entry(s.cause.label()).or_insert(0u32) += 1;
        }
    }
    assert!(
        by_cause.get("data una.").copied().unwrap_or(0) > 0,
        "web search must show back-end fetch stalls: {by_cause:?}"
    );
}

/// The streaming analyzer's final verdicts match the offline pass exactly
/// on real simulated corpora (not just toy traces).
#[test]
fn streaming_equals_offline_on_corpus() {
    let corpus = synthesize_corpus(Service::CloudStorage, 15, RecoveryMechanism::Native, 31);
    let cfg = AnalyzerConfig::default();
    for f in &corpus.flows {
        let offline = analyze_flow(&f.trace, cfg);
        let mut stream = tapo::StreamAnalyzer::new(cfg);
        let mut live_stalls = 0;
        for rec in &f.trace.records {
            if stream.push(rec).is_some() {
                live_stalls += 1;
            }
        }
        let streamed = stream.finish();
        assert_eq!(offline.stalls, streamed.stalls);
        assert_eq!(offline.metrics, streamed.metrics);
        assert_eq!(live_stalls, offline.stalls.len());
    }
}

/// The three mechanisms preserve goodput byte-for-byte: recovery strategy
/// must never corrupt or lose stream data.
#[test]
fn mechanisms_deliver_identical_bytes() {
    for mech in [
        RecoveryMechanism::Native,
        RecoveryMechanism::tlp(),
        RecoveryMechanism::srto(),
    ] {
        let corpus = synthesize_corpus(Service::SoftwareDownload, 10, mech, 21);
        for f in &corpus.flows {
            assert!(f.completed, "{} flow incomplete", mech.label());
            assert_eq!(
                f.trace.goodput_bytes_out(),
                f.response_bytes,
                "{}: goodput mismatch",
                mech.label()
            );
        }
    }
}

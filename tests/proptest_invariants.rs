//! Property-based tests on the core invariants of the reproduction:
//! the analyzer must never panic or produce inconsistent output on *any*
//! trace; the simulated transfer must deliver exactly the bytes written
//! under any loss pattern; the pcap codec must round-trip every encodable
//! record; the scoreboard's Table 2 counters must always satisfy Eq. 1.

use proptest::prelude::*;

use simnet::loss::LossSpec;
use simnet::time::{SimDuration, SimTime};
use tapo::{analyze_flow, AnalyzerConfig};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::scoreboard::Scoreboard;
use tcp_trace::flow::{FlowKey, FlowTrace};
use tcp_trace::pcap::{PcapReader, PcapWriter};
use tcp_trace::record::{Direction, SackBlock, SegFlags, TraceRecord};
use workloads::{simulate_flow, FlowSpec, PathSpec};

const MSS: u64 = 1448;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        2u64..10_000_000, // time µs
        prop::bool::ANY,  // direction
        0u64..64,         // seq in MSS units
        prop::sample::select(vec![0u32, 300, 1448]),
        0u64..64, // ack in MSS units
        prop::sample::select(vec![0u64, 2896, 65535, 1 << 20]),
        prop::collection::vec((0u64..64, 1u64..4), 0..3),
    )
        .prop_map(|(t, dir_in, seq, len, ack, rwnd, sacks)| TraceRecord {
            t: SimTime::from_micros(t),
            dir: if dir_in {
                Direction::In
            } else {
                Direction::Out
            },
            seq: seq * MSS,
            len,
            flags: SegFlags::ACK,
            ack: ack * MSS,
            rwnd,
            sack: sacks
                .into_iter()
                .map(|(s, l)| SackBlock::new(s * MSS, (s + l) * MSS))
                .collect(),
            dsack: false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TAPO must digest any garbage trace without panicking, and its
    /// outputs must be internally consistent.
    #[test]
    fn analyzer_total_on_arbitrary_traces(mut records in prop::collection::vec(arb_record(), 0..120)) {
        records.sort_by_key(|r| r.t);
        let trace = FlowTrace { key: None, records };
        let analysis = analyze_flow(&trace, AnalyzerConfig::default());
        let ratio = analysis.stall_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
        let stall_sum: u64 = analysis.stalls.iter().map(|s| s.duration.as_micros()).sum();
        prop_assert_eq!(stall_sum, analysis.metrics.stalled_time.as_micros());
        for s in &analysis.stalls {
            prop_assert!(s.end >= s.start);
            prop_assert!((0.0..=1.0).contains(&s.rel_position));
        }
    }

    /// Under any scripted loss pattern the transfer completes (given
    /// enough simulated time) and delivers exactly the response bytes.
    #[test]
    fn transfer_survives_any_drop_pattern(drops in prop::collection::btree_set(0u64..60, 0..25)) {
        let spec = FlowSpec {
            max_time: SimDuration::from_secs(600),
            ..FlowSpec::response_bytes(20 * MSS)
        };
        let path = PathSpec {
            rtt: SimDuration::from_millis(80),
            jitter: SimDuration::ZERO,
            loss: LossSpec::Script { drops: drops.into_iter().collect() },
            ack_loss: Some(LossSpec::None),
            bandwidth_bps: 10_000_000,
            queue_pkts: 0,
            ..PathSpec::default()
        };
        let out = simulate_flow(&spec, &path, RecoveryMechanism::Native, 5);
        prop_assert!(out.completed, "flow must eventually complete");
        prop_assert_eq!(out.trace.goodput_bytes_out(), 20 * MSS);
        // The analyzer must handle the resulting trace too.
        let _ = analyze_flow(&out.trace, AnalyzerConfig::default());
    }

    /// S-RTO and TLP also survive arbitrary drop patterns.
    #[test]
    fn mitigations_survive_any_drop_pattern(
        drops in prop::collection::btree_set(0u64..40, 0..12),
        srto in prop::bool::ANY,
    ) {
        let spec = FlowSpec::response_bytes(12 * MSS);
        let path = PathSpec {
            rtt: SimDuration::from_millis(80),
            jitter: SimDuration::ZERO,
            loss: LossSpec::Script { drops: drops.into_iter().collect() },
            ack_loss: Some(LossSpec::None),
            bandwidth_bps: 10_000_000,
            queue_pkts: 0,
            ..PathSpec::default()
        };
        let mech = if srto { RecoveryMechanism::srto() } else { RecoveryMechanism::tlp() };
        let out = simulate_flow(&spec, &path, mech, 5);
        prop_assert!(out.completed);
        prop_assert_eq!(out.trace.goodput_bytes_out(), 12 * MSS);
    }

    /// Classic-pcap encode/decode round-trips every field the classifier
    /// reads, for arbitrary well-formed flows. A handshake prefix anchors
    /// the per-direction ISNs — without a captured SYN no pcap analyzer
    /// can recover absolute stream offsets.
    #[test]
    fn pcap_roundtrip_arbitrary_flows(mut records in prop::collection::vec(arb_record(), 1..60)) {
        records.sort_by_key(|r| r.t);
        let syn = TraceRecord {
            t: SimTime::from_micros(0),
            dir: Direction::In,
            seq: 0,
            len: 0,
            flags: SegFlags::SYN,
            ack: 0,
            rwnd: 8192,
            sack: vec![],
            dsack: false,
        };
        let synack = TraceRecord {
            t: SimTime::from_micros(1),
            dir: Direction::Out,
            seq: 0,
            len: 0,
            flags: SegFlags::SYN_ACK,
            ack: 0,
            rwnd: 14480,
            sack: vec![],
            dsack: false,
        };
        let mut all = vec![syn, synack];
        all.extend(records);
        let trace = FlowTrace { key: Some(FlowKey::synthetic(3)), records: all };
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_flow(&trace).unwrap();
        w.finish().unwrap();
        let parsed = PcapReader::read_all(&buf[..]).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].records.len(), trace.records.len());
        for (orig, got) in trace.records.iter().zip(&parsed[0].records) {
            prop_assert_eq!(orig.t, got.t);
            prop_assert_eq!(orig.dir, got.dir);
            prop_assert_eq!(orig.seq, got.seq);
            prop_assert_eq!(orig.len, got.len);
            if orig.flags.ack {
                prop_assert_eq!(orig.ack, got.ack);
            }
            prop_assert_eq!(&orig.sack, &got.sack);
            // rwnd is quantized by the window scale (128-byte units); SYN
            // windows are unscaled and clamp at 64KB.
            if !orig.flags.syn {
                prop_assert!(orig.rwnd - got.rwnd < 128);
            }
        }
    }

    /// The scoreboard always satisfies Equation 1 and never double-counts,
    /// under arbitrary interleavings of transmit/sack/ack/mark/retransmit.
    #[test]
    fn scoreboard_counters_consistent(ops in prop::collection::vec((0u8..6, 0u64..30), 1..120)) {
        let mut sb = Scoreboard::new();
        let mss = 1000u32;
        let mut now = SimTime::ZERO;
        for (op, arg) in ops {
            now += SimDuration::from_millis(1);
            match op {
                0 => {
                    sb.transmit_new(now, mss);
                }
                1 => {
                    let ack = (arg * mss as u64).min(sb.snd_nxt());
                    // Cumulative ACKs land on segment boundaries.
                    sb.ack_to(now, ack);
                }
                2 => {
                    let s = arg * mss as u64;
                    sb.apply_sack(&[SackBlock::new(s, s + mss as u64)]);
                }
                3 => {
                    sb.mark_lost_head();
                }
                4 => {
                    if let Some(seq) = sb.next_lost_seq() {
                        sb.on_retransmit(now, seq, arg % 2 == 0, arg % 2 == 1);
                    }
                }
                _ => {
                    if arg % 7 == 0 {
                        sb.mark_all_lost();
                    } else if arg % 5 == 0 {
                        sb.unmark_all_lost();
                    } else {
                        sb.mark_lost_fack(3, mss);
                    }
                }
            }
            // Eq. 1 must never underflow and the parts never exceed the whole.
            prop_assert!(sb.sacked_out() + sb.lost_out() <= sb.packets_out() + sb.retrans_out());
            prop_assert!(sb.in_flight() <= sb.packets_out() + sb.retrans_out());
            prop_assert!(sb.snd_una() <= sb.snd_nxt());
        }
    }
}

//! Property-based tests on the core invariants of the reproduction:
//! the analyzer must never panic or produce inconsistent output on *any*
//! trace; the simulated transfer must deliver exactly the bytes written
//! under any loss pattern; the pcap codec must round-trip every encodable
//! record; the scoreboard's Table 2 counters must always satisfy Eq. 1.
//!
//! The cases are driven by the workspace's own seeded [`SimRng`] (no
//! external property-testing framework — the workspace builds fully
//! offline): each test runs a fixed number of independently-seeded random
//! cases, so failures reproduce exactly by case number.

use std::collections::BTreeSet;

use simnet::loss::LossSpec;
use simnet::rng::{splitmix64, SimRng};
use simnet::time::{SimDuration, SimTime};
use tapo::{analyze_flow, AnalyzerConfig};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::scoreboard::Scoreboard;
use tcp_trace::flow::{FlowKey, FlowTrace};
use tcp_trace::pcap::{PcapReader, PcapWriter};
use tcp_trace::record::{Direction, SackBlock, SegFlags, TraceRecord};
use workloads::{simulate_flow, FlowSpec, PathSpec};

const MSS: u64 = 1448;

/// Per-case RNG: independent stream per (test, case) so adding cases to
/// one test never perturbs another.
fn case_rng(test: &str, case: u64) -> SimRng {
    let name_hash = test
        .bytes()
        .fold(0xcafe_f00du64, |h, b| splitmix64(h ^ u64::from(b)));
    SimRng::seed(splitmix64(name_hash ^ case))
}

fn arb_record(rng: &mut SimRng) -> TraceRecord {
    let n_sacks = rng.range_u64(0, 3);
    TraceRecord {
        t: SimTime::from_micros(rng.range_u64(2, 10_000_000)),
        dir: if rng.chance(0.5) {
            Direction::In
        } else {
            Direction::Out
        },
        seq: rng.range_u64(0, 64) * MSS,
        len: [0u32, 300, 1448][rng.range_u64(0, 3) as usize],
        flags: SegFlags::ACK,
        ack: rng.range_u64(0, 64) * MSS,
        rwnd: [0u64, 2896, 65535, 1 << 20][rng.range_u64(0, 4) as usize],
        sack: (0..n_sacks)
            .map(|_| {
                let s = rng.range_u64(0, 64);
                let l = rng.range_u64(1, 4);
                SackBlock::new(s * MSS, (s + l) * MSS)
            })
            .collect(),
        dsack: false,
    }
}

fn arb_records(rng: &mut SimRng, lo: u64, hi: u64) -> Vec<TraceRecord> {
    let n = rng.range_u64(lo, hi);
    let mut records: Vec<TraceRecord> = (0..n).map(|_| arb_record(rng)).collect();
    records.sort_by_key(|r| r.t);
    records
}

fn arb_drop_set(rng: &mut SimRng, max_seq: u64, max_len: u64) -> BTreeSet<u64> {
    let n = rng.range_u64(0, max_len);
    (0..n).map(|_| rng.range_u64(0, max_seq)).collect()
}

/// TAPO must digest any garbage trace without panicking, and its
/// outputs must be internally consistent.
#[test]
fn analyzer_total_on_arbitrary_traces() {
    for case in 0..128 {
        let mut rng = case_rng("analyzer_total", case);
        let records = arb_records(&mut rng, 0, 120);
        let trace = FlowTrace { key: None, records };
        let analysis = analyze_flow(&trace, AnalyzerConfig::default());
        let ratio = analysis.stall_ratio();
        assert!((0.0..=1.0).contains(&ratio), "case {case}: ratio {ratio}");
        let stall_sum: u64 = analysis.stalls.iter().map(|s| s.duration.as_micros()).sum();
        assert_eq!(
            stall_sum,
            analysis.metrics.stalled_time.as_micros(),
            "case {case}"
        );
        for s in &analysis.stalls {
            assert!(s.end >= s.start, "case {case}");
            assert!((0.0..=1.0).contains(&s.rel_position), "case {case}");
        }
    }
}

/// Under any scripted loss pattern the transfer completes (given
/// enough simulated time) and delivers exactly the response bytes.
#[test]
fn transfer_survives_any_drop_pattern() {
    for case in 0..64 {
        let mut rng = case_rng("transfer_survives", case);
        let drops = arb_drop_set(&mut rng, 60, 25);
        let spec = FlowSpec {
            max_time: SimDuration::from_secs(600),
            ..FlowSpec::response_bytes(20 * MSS)
        };
        let path = PathSpec {
            rtt: SimDuration::from_millis(80),
            jitter: SimDuration::ZERO,
            loss: LossSpec::Script {
                drops: drops.into_iter().collect(),
            },
            ack_loss: Some(LossSpec::None),
            bandwidth_bps: 10_000_000,
            queue_pkts: 0,
            ..PathSpec::default()
        };
        let out = simulate_flow(&spec, &path, RecoveryMechanism::Native, 5);
        assert!(out.completed, "case {case}: flow must eventually complete");
        assert_eq!(out.trace.goodput_bytes_out(), 20 * MSS, "case {case}");
        // The analyzer must handle the resulting trace too.
        let _ = analyze_flow(&out.trace, AnalyzerConfig::default());
    }
}

/// S-RTO and TLP also survive arbitrary drop patterns.
#[test]
fn mitigations_survive_any_drop_pattern() {
    for case in 0..64 {
        let mut rng = case_rng("mitigations_survive", case);
        let drops = arb_drop_set(&mut rng, 40, 12);
        let srto = rng.chance(0.5);
        let spec = FlowSpec::response_bytes(12 * MSS);
        let path = PathSpec {
            rtt: SimDuration::from_millis(80),
            jitter: SimDuration::ZERO,
            loss: LossSpec::Script {
                drops: drops.into_iter().collect(),
            },
            ack_loss: Some(LossSpec::None),
            bandwidth_bps: 10_000_000,
            queue_pkts: 0,
            ..PathSpec::default()
        };
        let mech = if srto {
            RecoveryMechanism::srto()
        } else {
            RecoveryMechanism::tlp()
        };
        let out = simulate_flow(&spec, &path, mech, 5);
        assert!(out.completed, "case {case}");
        assert_eq!(out.trace.goodput_bytes_out(), 12 * MSS, "case {case}");
    }
}

/// Classic-pcap encode/decode round-trips every field the classifier
/// reads, for arbitrary well-formed flows. A handshake prefix anchors
/// the per-direction ISNs — without a captured SYN no pcap analyzer
/// can recover absolute stream offsets.
#[test]
fn pcap_roundtrip_arbitrary_flows() {
    for case in 0..128 {
        let mut rng = case_rng("pcap_roundtrip", case);
        let records = arb_records(&mut rng, 1, 60);
        let syn = TraceRecord {
            t: SimTime::from_micros(0),
            dir: Direction::In,
            seq: 0,
            len: 0,
            flags: SegFlags::SYN,
            ack: 0,
            rwnd: 8192,
            sack: Default::default(),
            dsack: false,
        };
        let synack = TraceRecord {
            t: SimTime::from_micros(1),
            dir: Direction::Out,
            seq: 0,
            len: 0,
            flags: SegFlags::SYN_ACK,
            ack: 0,
            rwnd: 14480,
            sack: Default::default(),
            dsack: false,
        };
        let mut all = vec![syn, synack];
        all.extend(records);
        let trace = FlowTrace {
            key: Some(FlowKey::synthetic(3)),
            records: all,
        };
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_flow(&trace).unwrap();
        w.finish().unwrap();
        let parsed = PcapReader::read_all(&buf[..]).unwrap();
        assert_eq!(parsed.len(), 1, "case {case}");
        assert_eq!(parsed[0].records.len(), trace.records.len(), "case {case}");
        for (orig, got) in trace.records.iter().zip(&parsed[0].records) {
            assert_eq!(orig.t, got.t, "case {case}");
            assert_eq!(orig.dir, got.dir, "case {case}");
            assert_eq!(orig.seq, got.seq, "case {case}");
            assert_eq!(orig.len, got.len, "case {case}");
            if orig.flags.ack {
                assert_eq!(orig.ack, got.ack, "case {case}");
            }
            assert_eq!(&orig.sack, &got.sack, "case {case}");
            // rwnd is quantized by the window scale (128-byte units); SYN
            // windows are unscaled and clamp at 64KB.
            if !orig.flags.syn {
                assert!(orig.rwnd - got.rwnd < 128, "case {case}");
            }
        }
    }
}

/// The scoreboard always satisfies Equation 1 and never double-counts,
/// under arbitrary interleavings of transmit/sack/ack/mark/retransmit.
#[test]
fn scoreboard_counters_consistent() {
    for case in 0..128 {
        let mut rng = case_rng("scoreboard_counters", case);
        let n_ops = rng.range_u64(1, 120);
        let mut sb = Scoreboard::new();
        let mss = 1000u32;
        let mut now = SimTime::ZERO;
        for _ in 0..n_ops {
            let op = rng.range_u64(0, 6) as u8;
            let arg = rng.range_u64(0, 30);
            now += SimDuration::from_millis(1);
            match op {
                0 => {
                    sb.transmit_new(now, mss);
                }
                1 => {
                    let ack = (arg * mss as u64).min(sb.snd_nxt());
                    // Cumulative ACKs land on segment boundaries.
                    sb.ack_to(now, ack);
                }
                2 => {
                    let s = arg * mss as u64;
                    sb.apply_sack(&[SackBlock::new(s, s + mss as u64)]);
                }
                3 => {
                    sb.mark_lost_head();
                }
                4 => {
                    if let Some(seq) = sb.next_lost_seq() {
                        sb.on_retransmit(now, seq, arg.is_multiple_of(2), !arg.is_multiple_of(2));
                    }
                }
                _ => {
                    if arg.is_multiple_of(7) {
                        sb.mark_all_lost();
                    } else if arg.is_multiple_of(5) {
                        sb.unmark_all_lost();
                    } else {
                        sb.mark_lost_fack(3, mss);
                    }
                }
            }
            // Eq. 1 must never underflow and the parts never exceed the whole.
            assert!(
                sb.sacked_out() + sb.lost_out() <= sb.packets_out() + sb.retrans_out(),
                "case {case}"
            );
            assert!(
                sb.in_flight() <= sb.packets_out() + sb.retrans_out(),
                "case {case}"
            );
            assert!(sb.snd_una() <= sb.snd_nxt(), "case {case}");
        }
    }
}

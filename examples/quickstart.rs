//! Quickstart: simulate one TCP flow over a lossy path, capture the
//! server-side trace, and let TAPO diagnose its stalls.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tcpstall::prelude::*;

fn main() {
    // A 300KB response over a 120ms path with 4% bursty loss.
    let spec = FlowSpec::response_bytes(300_000);
    let path = PathSpec {
        rtt: SimDuration::from_millis(120),
        loss: LossSpec::bursty(0.04, SimDuration::from_millis(150)),
        ..PathSpec::default()
    };

    let out = simulate_flow(&spec, &path, RecoveryMechanism::Native, 7);
    println!(
        "flow completed: {} bytes in {:.2}s ({} packets captured at the server)",
        out.response_bytes,
        out.request_latencies[0].as_secs_f64(),
        out.trace.records.len(),
    );
    println!(
        "sender ground truth: {} data segs, {} retransmissions, {} RTOs",
        out.server_stats.data_segs_sent, out.server_stats.retrans_segs, out.server_stats.rto_count
    );

    // TAPO sees only the packets, like tcpdump output.
    let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
    println!(
        "\nTAPO: {} stalls, {:.2}s stalled of {:.2}s total ({:.0}% of lifetime)",
        analysis.stalls.len(),
        analysis.metrics.stalled_time.as_secs_f64(),
        analysis.metrics.duration.as_secs_f64(),
        analysis.stall_ratio() * 100.0
    );
    for stall in &analysis.stalls {
        println!(
            "  {} → {} ({:>9}): {:?}  [in_flight={}, state={:?}]",
            stall.start,
            stall.end,
            stall.duration.to_string(),
            stall.cause,
            stall.snapshot.in_flight,
            stall.snapshot.ca_state,
        );
    }

    // The same flow under S-RTO, on identical loss (same seed).
    let srto = simulate_flow(&spec, &path, RecoveryMechanism::srto(), 7);
    println!(
        "\nsame flow under S-RTO: {:.2}s (probes fired: {}), vs {:.2}s native",
        srto.request_latencies[0].as_secs_f64(),
        srto.server_stats.srto_probes,
        out.request_latencies[0].as_secs_f64(),
    );
}

//! Trace forensics: the offline-tool workflow of the paper. Simulated
//! flows are written to a **real classic-pcap file** (header-only capture,
//! like `tcpdump -s96` on the production front-ends), read back through the
//! pcap parser, and diagnosed by TAPO — demonstrating that the analyzer
//! works from on-disk captures, not simulator internals.
//!
//! ```sh
//! cargo run --release --example trace_forensics
//! ```

use std::fs::File;

use tcpstall::prelude::*;
use tcpstall::tcp_sim::recovery::RecoveryMechanism as Mech;
use tcpstall::tcp_trace::pcap::{PcapReader, PcapWriter};
use tcpstall::workloads::synthesize_corpus;

fn main() -> std::io::Result<()> {
    let n = 25;
    println!("synthesizing {n} software-download flows...");
    let corpus = synthesize_corpus(Service::SoftwareDownload, n, Mech::Native, 99);

    // Write every flow into one pcap, as a capture box would.
    let path = std::env::temp_dir().join("tapo_demo.pcap");
    let mut writer = PcapWriter::new(File::create(&path)?)?;
    for flow in &corpus.flows {
        writer.write_flow(&flow.trace)?;
    }
    writer.finish()?;
    let size = std::fs::metadata(&path)?.len();
    println!("wrote {} ({} bytes)", path.display(), size);

    // Read it back cold and analyze, exactly like the offline tool.
    let flows = PcapReader::read_all(File::open(&path)?).expect("valid capture");
    println!("parsed {} flows back from the capture\n", flows.len());

    let mut worst: Option<(usize, FlowAnalysis)> = None;
    let mut total_stalls = 0;
    for (i, trace) in flows.iter().enumerate() {
        let analysis = analyze_flow(trace, AnalyzerConfig::default());
        total_stalls += analysis.stalls.len();
        if worst
            .as_ref()
            .is_none_or(|(_, w)| analysis.metrics.stalled_time > w.metrics.stalled_time)
        {
            worst = Some((i, analysis));
        }
    }
    println!("{total_stalls} stalls across the capture");

    if let Some((i, analysis)) = worst {
        println!(
            "\nworst flow (#{i}): {:.1}s stalled of {:.1}s — stall log:",
            analysis.metrics.stalled_time.as_secs_f64(),
            analysis.metrics.duration.as_secs_f64()
        );
        for stall in &analysis.stalls {
            println!(
                "  at {:>9} for {:>9}: {:?}",
                stall.start.to_string(),
                stall.duration.to_string(),
                stall.cause
            );
        }
        if let Some(w) = analysis.init_rwnd {
            println!("  (client's initial receive window: {} bytes)", w);
        }
    }
    Ok(())
}

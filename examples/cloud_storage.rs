//! Cloud-storage scenario: synthesize a corpus of shared-connection,
//! multi-file flows (the paper's heaviest service), analyze every trace
//! with TAPO and print the stall breakdown — a miniature of the paper's
//! Tables 3 and 5.
//!
//! ```sh
//! cargo run --release --example cloud_storage
//! ```

use tcpstall::prelude::*;
use tcpstall::tapo::{RetransClass, StallBreakdown, StallClass};
use tcpstall::tcp_sim::recovery::RecoveryMechanism as Mech;
use tcpstall::workloads::synthesize_corpus;

fn main() {
    let n = 80;
    println!("synthesizing {n} cloud-storage flows (native stack)...");
    let corpus = synthesize_corpus(Service::CloudStorage, n, Mech::Native, 2015);

    let mut breakdown = StallBreakdown::default();
    let mut total_bytes = 0u64;
    let mut stalled_half = 0;
    for flow in &corpus.flows {
        let analysis = analyze_flow(&flow.trace, AnalyzerConfig::default());
        if analysis.stall_ratio() > 0.5 {
            stalled_half += 1;
        }
        total_bytes += flow.response_bytes;
        breakdown.add_flow(&analysis);
    }

    println!(
        "corpus: {:.1} MB across {n} flows; {} stalls, {:.1}s stalled total",
        total_bytes as f64 / 1e6,
        breakdown.total_stalls,
        breakdown.total_stalled.as_secs_f64()
    );
    println!("{stalled_half}/{n} flows spent more than half their lifetime stalled\n");

    println!("stall causes (volume% / time%):");
    for class in StallClass::ALL {
        let s = breakdown.share(class);
        println!(
            "  {:<12} {:>5.1}% / {:>5.1}%",
            class.label(),
            s.volume_pct,
            s.time_pct
        );
    }
    println!("\ntimeout-retransmission breakdown (volume% / time% of retrans stalls):");
    for class in RetransClass::ALL {
        let s = breakdown.retrans_share(class);
        println!(
            "  {:<14} {:>5.1}% / {:>5.1}%",
            class.label(),
            s.volume_pct,
            s.time_pct
        );
    }
    let (f, t) = breakdown.double_split;
    let tot = (f + t).as_secs_f64().max(1e-9);
    println!(
        "\ndouble-retransmission split: {:.0}% f-double / {:.0}% t-double (by stalled time)",
        100.0 * f.as_secs_f64() / tot,
        100.0 * t.as_secs_f64() / tot
    );
}

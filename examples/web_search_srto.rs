//! Web-search latency under native Linux vs TLP vs S-RTO — the paper's
//! Table 8 experiment in miniature, run as a *paired* replay: the same
//! flows, the same seeds, three recovery mechanisms.
//!
//! ```sh
//! cargo run --release --example web_search_srto
//! ```

use tcpstall::prelude::*;
use tcpstall::tapo::Cdf;
use tcpstall::tcp_sim::recovery::RecoveryMechanism as Mech;
use tcpstall::workloads::{run_population, sample_population};

fn main() {
    let n = 150;
    println!("sampling {n} web-search flows, replaying under 3 mechanisms...\n");
    let population = sample_population(Service::WebSearch, n, 42);

    let mechanisms = [
        ("Linux ", Mech::Native),
        ("TLP   ", Mech::tlp()),
        ("S-RTO ", Mech::Srto(Service::WebSearch.srto_config())),
    ];

    let mut baseline: Option<Cdf> = None;
    for (name, mech) in mechanisms {
        let corpus = run_population(Service::WebSearch, &population, mech, 42);
        let latencies: Vec<f64> = corpus
            .flows
            .iter()
            .filter(|f| f.completed)
            .map(|f| {
                f.request_latencies
                    .iter()
                    .filter(|&&l| l != SimDuration::MAX)
                    .map(|l| l.as_secs_f64())
                    .sum::<f64>()
            })
            .collect();
        let cdf = Cdf::from_samples(latencies);
        let line = |q: f64| cdf.quantile(q).unwrap_or(f64::NAN);
        let rel = |q: f64| match &baseline {
            Some(b) => {
                let (n, b) = (line(q), b.quantile(q).unwrap_or(f64::NAN));
                format!("{:+.1}%", 100.0 * (n - b) / b)
            }
            None => "  —  ".to_string(),
        };
        println!(
            "{name} p50 {:>7.3}s ({})   p90 {:>7.3}s ({})   p95 {:>7.3}s ({})   mean {:>7.3}s   retrans {:.2}%",
            line(0.5),
            rel(0.5),
            line(0.9),
            rel(0.9),
            line(0.95),
            rel(0.95),
            cdf.mean().unwrap_or(f64::NAN),
            100.0 * corpus.retrans_ratio(),
        );
        if baseline.is_none() {
            baseline = Some(cdf);
        }
    }
    println!(
        "\nExpected shape (paper Table 8): S-RTO cuts tail latency far more than TLP,\n\
         at the cost of a slightly higher retransmission ratio (Table 9)."
    );
}

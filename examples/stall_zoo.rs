//! The stall zoo: engineer one flow per stall class from the paper's
//! taxonomy, diagnose each with TAPO, and print annotated timelines —
//! a guided tour of Figure 5's decision tree.
//!
//! ```sh
//! cargo run --release --example stall_zoo
//! ```

use tcpstall::prelude::*;
use tcpstall::tcp_sim::receiver::ReceiverConfig;
use tcpstall::tcp_sim::sim::{FlowScript, FlowSim, FlowSimConfig, RequestSpec, SupplyPauses};
use tcpstall::tcp_trace::Direction;

const MSS: u64 = 1448;

fn clean_cfg(resp: u64) -> FlowSimConfig {
    FlowSimConfig {
        script: FlowScript::single(resp),
        s2c: tcpstall::simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..Default::default()
        },
        c2s: tcpstall::simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..Default::default()
        },
        ..FlowSimConfig::default()
    }
}

fn show(name: &str, cfg: FlowSimConfig, seed: u64) {
    let out = FlowSim::new(cfg, seed).run();
    let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
    println!("━━ {name}");
    println!(
        "   {} bytes in {:.2}s, {} packets, {} retransmissions",
        out.response_bytes,
        analysis.metrics.duration.as_secs_f64(),
        out.trace.records.len(),
        out.server_stats.retrans_segs
    );
    if analysis.stalls.is_empty() {
        println!("   (no stalls)");
    }
    for s in &analysis.stalls {
        // A four-packet context window around the stall.
        println!(
            "   STALL {:?} — {} at {} (in_flight={}, state={:?})",
            s.cause, s.duration, s.start, s.snapshot.in_flight, s.snapshot.ca_state
        );
        let from = s.end_record.saturating_sub(2);
        let to = (s.end_record + 2).min(out.trace.records.len());
        for rec in &out.trace.records[from..to] {
            let marker = if rec.t == s.end {
                "  ◀ ends the stall"
            } else {
                ""
            };
            println!(
                "      {}{marker}",
                tcpstall::tcp_trace::text::render_record(rec)
            );
        }
    }
    println!();
}

fn main() {
    // 1. Data unavailable: the back end takes 1.2s to produce the response.
    let mut cfg = clean_cfg(0);
    cfg.script.requests = vec![RequestSpec {
        backend_delay: SimDuration::from_millis(1200),
        ..RequestSpec::simple(6 * MSS)
    }];
    show("data unavailable (back-end fetch)", cfg, 1);

    // 2. Resource constraint: the server app supplies data in chunks.
    let mut cfg = clean_cfg(0);
    cfg.script.requests = vec![RequestSpec {
        supply: Some(SupplyPauses {
            chunk_bytes: 4 * MSS,
            gap: SimDuration::from_millis(1500),
        }),
        ..RequestSpec::simple(12 * MSS)
    }];
    show("resource constraint (chunked supply)", cfg, 2);

    // 3. Client idle: a 3s think time between two requests.
    let mut cfg = clean_cfg(0);
    cfg.script.requests = vec![
        RequestSpec::simple(4 * MSS),
        RequestSpec {
            think_time: SimDuration::from_secs(3),
            ..RequestSpec::simple(4 * MSS)
        },
    ];
    show("client idle (think time)", cfg, 3);

    // 4. Zero window: a 8-MSS buffer and a pausing reader.
    let mut cfg = clean_cfg(60 * MSS);
    cfg.client_rx = ReceiverConfig {
        buf_bytes: 8 * MSS,
        ..ReceiverConfig::default()
    };
    cfg.client_drain = Some(40_000);
    cfg.client_pause_prob = 1.0;
    cfg.client_pause = SimDuration::from_millis(1500);
    cfg.max_time = SimDuration::from_secs(300);
    show("zero receive window (stopped reader)", cfg, 4);

    // 5. Tail retransmission: the last segment of the response is lost.
    let mut cfg = clean_cfg(8 * MSS);
    // Find the tail segment's link index by a dry run.
    let dry = FlowSim::new(cfg.clone(), 5).run();
    let tail_idx = dry
        .trace
        .records
        .iter()
        .filter(|r| r.dir == Direction::Out)
        .position(|r| r.seq == 7 * MSS && r.has_data())
        .expect("tail segment") as u64;
    cfg.s2c.loss = LossSpec::Script {
        drops: vec![tail_idx],
    };
    show("tail retransmission (last segment lost)", cfg, 5);

    // 6. Double retransmission: a segment and its fast retransmission die.
    let mut cfg = clean_cfg(12 * MSS);
    let dry = FlowSim::new(cfg.clone(), 6).run();
    let orig = dry
        .trace
        .records
        .iter()
        .filter(|r| r.dir == Direction::Out)
        .position(|r| r.seq == 7 * MSS && r.has_data())
        .expect("segment") as u64;
    let mut probe_cfg = cfg.clone();
    probe_cfg.s2c.loss = LossSpec::Script { drops: vec![orig] };
    let pass1 = FlowSim::new(probe_cfg, 6).run();
    let retrans_idx = pass1
        .trace
        .records
        .iter()
        .filter(|r| r.dir == Direction::Out)
        .enumerate()
        .filter(|(_, r)| r.seq == 7 * MSS && r.has_data())
        .map(|(i, _)| i as u64)
        .nth(1)
        .expect("fast retransmission");
    cfg.s2c.loss = LossSpec::Script {
        drops: vec![orig, retrans_idx],
    };
    show("f-double retransmission (retransmission lost too)", cfg, 6);

    println!("The same f-double flow under S-RTO:");
    let mut cfg2 = clean_cfg(12 * MSS);
    cfg2.s2c.loss = LossSpec::Script {
        drops: vec![orig, retrans_idx],
    };
    cfg2.server_tx.recovery = RecoveryMechanism::srto();
    show("  …repaired by the S-RTO probe", cfg2, 6);
}

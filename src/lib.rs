//! # tcpstall — TCP stall diagnosis and mitigation
//!
//! A full reproduction of *"Demystifying and Mitigating TCP Stalls at the
//! Server Side"* (Zhou et al., CoNEXT 2015) as a Rust workspace. This facade
//! crate re-exports the workspace members so examples and downstream users
//! can depend on a single crate:
//!
//! * [`simnet`] — deterministic discrete-event network simulator (links,
//!   drop-tail queues, Bernoulli / Gilbert–Elliott / scripted loss).
//! * [`tcp_sim`] — a Linux-2.6.32-style TCP stack: the Open/Disorder/
//!   Recovery/Loss congestion-state machine, SACK/DSACK scoreboard,
//!   RFC 6298 RTO, delayed ACKs and finite receive buffers, plus the
//!   paper's **S-RTO** mitigation and a TLP baseline.
//! * [`tcp_trace`] — server-side packet trace records, flow reassembly and
//!   classic-pcap I/O.
//! * [`tapo`] — the paper's contribution: the TAPO stall detector and
//!   decision-tree root-cause classifier.
//! * [`workloads`] — models of the three studied services (cloud storage,
//!   software download, web search) that synthesize trace corpora.
//! * [`experiments`] — the harness regenerating every table and figure of
//!   the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use tcpstall::prelude::*;
//!
//! // Simulate one web-search-like flow over a lossy path and classify its stalls.
//! let spec = FlowSpec::response_bytes(30_000);
//! let path = PathSpec { rtt: SimDuration::from_millis(100), loss: LossSpec::bernoulli(0.02), ..PathSpec::default() };
//! let out = simulate_flow(&spec, &path, RecoveryMechanism::Native, 42);
//! let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
//! println!("{} stalls over {:?}", analysis.stalls.len(), analysis.metrics.duration);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use experiments;
pub use simnet;
pub use tapo;
pub use tcp_sim;
pub use tcp_trace;
pub use workloads;

/// Convenience re-exports covering the common end-to-end path:
/// build a workload → simulate → capture a trace → analyze stalls.
pub mod prelude {
    pub use simnet::{
        loss::LossSpec,
        time::{SimDuration, SimTime},
    };
    pub use tapo::{analyze_flow, AnalyzerConfig, FlowAnalysis, StallCause};
    pub use tcp_sim::recovery::RecoveryMechanism;
    pub use tcp_trace::{Direction, FlowTrace, TraceRecord};
    pub use workloads::{simulate_flow, FlowSpec, PathSpec, Service};
}

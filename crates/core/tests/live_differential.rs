//! Differential test: the live sharded pipeline over an interleaved
//! multi-flow capture must reproduce the offline analyzer exactly.
//!
//! The live driver is configured for offline-equivalence (no idle
//! eviction, no FIN linger, no cap — every flow sees all of its packets),
//! so each collected per-flow [`FlowAnalysis`] must be *equal* to running
//! [`analyze_flow`] on the offline-demultiplexed trace of the same key, at
//! 1 shard and at 4 shards alike. A second scenario turns the knobs back
//! on (cap + shedding) and checks the rendered report lines byte-for-byte
//! across shard counts.

use std::collections::HashMap;

use simnet::time::SimDuration;
use tapo::live::{self, LiveConfig, TierConfig};
use tapo::{analyze_flow, AnalyzerConfig, FlowAnalysis};
use tcp_trace::flow::FlowKey;
use tcp_trace::pcap::PcapReader;
use workloads::{generate_interleaved, LiveGenSpec};

fn interleaved_capture() -> Vec<u8> {
    let spec = LiveGenSpec {
        flows_per_service: 5, // 15 flows total
        seed: 0xd1ff,
        mean_gap: SimDuration::from_millis(10),
        threads: 1,
        ..Default::default()
    };
    let mut buf = Vec::new();
    generate_interleaved(&mut buf, &spec).expect("in-memory generation cannot fail");
    buf
}

/// Offline ground truth: demultiplex with the batch reader and analyze
/// each flow independently.
fn offline_analyses(capture: &[u8], cfg: AnalyzerConfig) -> HashMap<FlowKey, FlowAnalysis> {
    let (flows, stats) = PcapReader::read_all_stats(capture).expect("valid capture");
    assert_eq!(stats.packets_skipped, 0);
    flows
        .iter()
        .map(|t| {
            (
                t.key.expect("synthetic flows are keyed"),
                analyze_flow(t, cfg),
            )
        })
        .collect()
}

fn equivalence_config(shards: usize) -> LiveConfig {
    LiveConfig {
        shards,
        // Offline reads the whole capture before analyzing, so nothing is
        // ever evicted early: disable every live-only lifecycle policy.
        idle_timeout: None,
        fin_linger: None,
        max_flows: 0,
        collect_flows: true,
        ..Default::default()
    }
}

#[test]
fn live_matches_offline_per_flow_at_1_and_4_shards() {
    let capture = interleaved_capture();
    let cfg = AnalyzerConfig::default();
    let offline = offline_analyses(&capture, cfg);
    assert_eq!(offline.len(), 15, "every flow has a unique synthetic key");

    for shards in [1usize, 4] {
        let summary = live::run(&capture[..], &equivalence_config(shards), |_| {})
            .expect("live run succeeds");
        assert_eq!(
            summary.flows.len(),
            offline.len(),
            "{shards} shards: live tracked a different flow set"
        );
        for (key, live_analysis) in &summary.flows {
            let expected = offline
                .get(key)
                .unwrap_or_else(|| panic!("{shards} shards: live invented flow {key:?}"));
            assert_eq!(
                live_analysis, expected,
                "{shards} shards: flow {key:?} diverged from offline analysis"
            );
        }
        // The aggregate mirrors the per-flow equality.
        let mut offline_breakdown = tapo::StallBreakdown::default();
        for a in offline.values() {
            offline_breakdown.add_flow(a);
        }
        assert_eq!(summary.breakdown, offline_breakdown);
        assert_eq!(summary.flows_eof + summary.flows_closed, 15);
    }
}

#[test]
fn reports_are_byte_identical_across_shards_even_when_shedding() {
    let capture = interleaved_capture();
    let mut rendered: Vec<String> = Vec::new();
    for shards in [1usize, 2, 4] {
        let cfg = LiveConfig {
            shards,
            interval: SimDuration::from_millis(500),
            idle_timeout: Some(SimDuration::from_secs(5)),
            fin_linger: Some(SimDuration::from_millis(200)),
            max_flows: 6, // force LRU shedding under ~15 concurrent flows
            ..Default::default()
        };
        let mut lines = String::new();
        let summary = live::run(&capture[..], &cfg, |r| {
            lines.push_str(&r.to_json().compact());
            lines.push('\n');
        })
        .expect("live run succeeds");
        assert!(summary.flows_shed > 0, "cap of 6 must shed some flows");
        lines.push_str(&summary.to_json().compact());
        rendered.push(lines);
    }
    assert_eq!(rendered[0], rendered[1], "1 vs 2 shards");
    assert_eq!(rendered[0], rendered[2], "1 vs 4 shards");
}

/// Batched ingestion must keep the byte-identity invariant along *both*
/// axes: any batch size × any shard count produces the same JSON and CSV
/// report stream, with promotion enabled and under `--max-flows`
/// shedding — the exact configuration where a timing-dependent handoff
/// would first diverge (interval cuts land mid-batch, sheds reorder
/// directives, promotions seed analyzers partway through flows).
#[test]
fn reports_are_byte_identical_across_batch_sizes_and_shards() {
    let capture = interleaved_capture();
    let mut rendered: Vec<(usize, usize, String)> = Vec::new();
    for batch in [1usize, 256] {
        for shards in [1usize, 4] {
            let cfg = LiveConfig {
                shards,
                batch,
                interval: SimDuration::from_millis(500),
                idle_timeout: Some(SimDuration::from_secs(5)),
                fin_linger: Some(SimDuration::from_millis(200)),
                max_flows: 6, // force LRU shedding under ~15 concurrent flows
                tier: Some(TierConfig {
                    demote_streak: 32,
                    ..TierConfig::default()
                }),
                ..Default::default()
            };
            let mut lines = String::new();
            let summary = live::run(&capture[..], &cfg, |r| {
                lines.push_str(&r.to_json().compact());
                lines.push('\n');
                lines.push_str(&r.to_csv_row());
                lines.push('\n');
            })
            .expect("live run succeeds");
            assert!(summary.flows_shed > 0, "cap of 6 must shed some flows");
            assert!(summary.promotions > 0, "capture must exercise promotion");
            lines.push_str(&summary.to_json().compact());
            rendered.push((batch, shards, lines));
        }
    }
    let (b0, s0, baseline) = &rendered[0];
    for (b, s, lines) in &rendered[1..] {
        assert_eq!(
            lines, baseline,
            "batch {b} × {s} shards diverged from batch {b0} × {s0} shards"
        );
    }
}

/// The steady-state handoff must not allocate: after warmup every batch
/// buffer the driver sends comes back on the spare ring and is reused.
/// The summary's recycling counters prove it — fresh allocations are
/// bounded by warmup (at most spare-ring capacity + in-flight slots per
/// shard, independent of capture length), while recycles scale with the
/// number of batches.
#[test]
fn steady_state_handoff_recycles_buffers_instead_of_allocating() {
    let spec = LiveGenSpec {
        flows_per_service: 20, // 60 flows: enough batches to reach steady state
        seed: 0xa110c,
        mean_gap: SimDuration::from_millis(2),
        threads: 1,
        ..Default::default()
    };
    let mut capture = Vec::new();
    generate_interleaved(&mut capture, &spec).expect("in-memory generation cannot fail");

    let cfg = LiveConfig {
        shards: 2,
        batch: 64, // small batches → many flushes → many recycle round-trips
        ..Default::default()
    };
    let summary = live::run(&capture[..], &cfg, |_| {}).expect("live run succeeds");
    let flushes = summary.ring_fresh_buffers + summary.ring_recycled_buffers;
    assert!(flushes > 100, "capture too short to exercise steady state");
    // Warmup bound: each shard's spare ring holds ring_depth + 2 buffers
    // and ring_depth more can be in flight on the forward ring.
    let warmup_cap = (cfg.shards * (2 * cfg.ring_depth + 2)) as u64;
    assert!(
        summary.ring_fresh_buffers <= warmup_cap,
        "fresh allocations ({}) exceed the warmup bound ({warmup_cap}): \
         the hot path is allocating",
        summary.ring_fresh_buffers
    );
    assert!(
        summary.ring_recycled_buffers > summary.ring_fresh_buffers * 4,
        "recycling ({}) should dominate allocation ({}) in steady state",
        summary.ring_recycled_buffers,
        summary.ring_fresh_buffers
    );
}

/// Two-tier mode must keep the byte-identity invariant: promotion and
/// demotion decisions live in the serial driver, so the report stream —
/// including the new `flows_light`/`flows_heavy`/`promotions`/`demotions`
/// fields — cannot depend on the shard count.
#[test]
fn two_tier_reports_are_byte_identical_across_shards() {
    let capture = interleaved_capture();
    let mut rendered: Vec<String> = Vec::new();
    let mut promotions = 0;
    for shards in [1usize, 2, 4] {
        let cfg = LiveConfig {
            shards,
            interval: SimDuration::from_millis(500),
            tier: Some(TierConfig {
                demote_streak: 32, // short capture: make demotion reachable
                ..TierConfig::default()
            }),
            ..Default::default()
        };
        let mut lines = String::new();
        let summary = live::run(&capture[..], &cfg, |r| {
            lines.push_str(&r.to_json().compact());
            lines.push('\n');
            lines.push_str(&r.to_csv_row());
            lines.push('\n');
        })
        .expect("live run succeeds");
        promotions = summary.promotions;
        lines.push_str(&summary.to_json().compact());
        rendered.push(lines);
    }
    assert!(
        promotions > 0,
        "capture must exercise promotion for the invariant to mean anything"
    );
    assert_eq!(rendered[0], rendered[1], "two-tier 1 vs 2 shards");
    assert_eq!(rendered[0], rendered[2], "two-tier 1 vs 4 shards");
}

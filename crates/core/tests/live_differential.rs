//! Differential test: the live pipeline over an interleaved multi-flow
//! capture must reproduce the offline analyzer exactly — with the whole
//! front end (flow maps, timers, LRU, light tier, lifecycle) partitioned
//! across shard-owned engines.
//!
//! The pipeline is configured for offline-equivalence (no idle eviction,
//! no FIN linger, no cap — every flow sees all of its packets), so each
//! collected per-flow [`FlowAnalysis`] must be *equal* to running
//! [`analyze_flow`] on the offline-demultiplexed trace of the same key, at
//! 1 shard and at 4 shards alike. Further scenarios turn the knobs back
//! on (cap + shedding + promotion) and check the rendered report lines
//! byte-for-byte across the full shards {1,2,4} × batch {1,256} matrix,
//! and that the aggregated per-shard summary counters match the inline
//! single-shard path exactly.

use std::collections::HashMap;

use simnet::time::SimDuration;
use tapo::live::{self, LiveConfig, TierConfig};
use tapo::{analyze_flow, AnalyzerConfig, FlowAnalysis};
use tcp_trace::flow::FlowKey;
use tcp_trace::pcap::PcapReader;
use workloads::{generate_interleaved, LiveGenSpec};

fn interleaved_capture() -> Vec<u8> {
    let spec = LiveGenSpec {
        flows_per_service: 5, // 15 flows total
        seed: 0xd1ff,
        mean_gap: SimDuration::from_millis(10),
        threads: 1,
        ..Default::default()
    };
    let mut buf = Vec::new();
    generate_interleaved(&mut buf, &spec).expect("in-memory generation cannot fail");
    buf
}

/// Offline ground truth: demultiplex with the batch reader and analyze
/// each flow independently.
fn offline_analyses(capture: &[u8], cfg: AnalyzerConfig) -> HashMap<FlowKey, FlowAnalysis> {
    let (flows, stats) = PcapReader::read_all_stats(capture).expect("valid capture");
    assert_eq!(stats.packets_skipped, 0);
    flows
        .iter()
        .map(|t| {
            (
                t.key.expect("synthetic flows are keyed"),
                analyze_flow(t, cfg),
            )
        })
        .collect()
}

fn equivalence_config(shards: usize) -> LiveConfig {
    LiveConfig {
        shards,
        // Offline reads the whole capture before analyzing, so nothing is
        // ever evicted early: disable every live-only lifecycle policy.
        idle_timeout: None,
        fin_linger: None,
        max_flows: 0,
        collect_flows: true,
        ..Default::default()
    }
}

#[test]
fn live_matches_offline_per_flow_at_1_and_4_shards() {
    let capture = interleaved_capture();
    let cfg = AnalyzerConfig::default();
    let offline = offline_analyses(&capture, cfg);
    assert_eq!(offline.len(), 15, "every flow has a unique synthetic key");

    for shards in [1usize, 4] {
        let summary = live::run(&capture[..], &equivalence_config(shards), |_| {})
            .expect("live run succeeds");
        assert_eq!(
            summary.flows.len(),
            offline.len(),
            "{shards} shards: live tracked a different flow set"
        );
        for (key, live_analysis) in &summary.flows {
            let expected = offline
                .get(key)
                .unwrap_or_else(|| panic!("{shards} shards: live invented flow {key:?}"));
            assert_eq!(
                live_analysis, expected,
                "{shards} shards: flow {key:?} diverged from offline analysis"
            );
        }
        // The aggregate mirrors the per-flow equality.
        let mut offline_breakdown = tapo::StallBreakdown::default();
        for a in offline.values() {
            offline_breakdown.add_flow(a);
        }
        assert_eq!(summary.breakdown, offline_breakdown);
        assert_eq!(summary.flows_eof + summary.flows_closed, 15);
    }
}

#[test]
fn reports_are_byte_identical_across_shards_even_when_shedding() {
    let capture = interleaved_capture();
    let mut rendered: Vec<String> = Vec::new();
    for shards in [1usize, 2, 4] {
        let cfg = LiveConfig {
            shards,
            interval: SimDuration::from_millis(500),
            idle_timeout: Some(SimDuration::from_secs(5)),
            fin_linger: Some(SimDuration::from_millis(200)),
            max_flows: 6, // force LRU shedding under ~15 concurrent flows
            ..Default::default()
        };
        let mut lines = String::new();
        let summary = live::run(&capture[..], &cfg, |r| {
            lines.push_str(&r.to_json().compact());
            lines.push('\n');
        })
        .expect("live run succeeds");
        assert!(summary.flows_shed > 0, "cap of 6 must shed some flows");
        lines.push_str(&summary.to_json().compact());
        rendered.push(lines);
    }
    assert_eq!(rendered[0], rendered[1], "1 vs 2 shards");
    assert_eq!(rendered[0], rendered[2], "1 vs 4 shards");
}

/// Batched ingestion must keep the byte-identity invariant along *both*
/// axes: any batch size × any shard count produces the same JSON and CSV
/// report stream, with promotion enabled and under `--max-flows`
/// shedding — the exact configuration where a timing-dependent handoff
/// would first diverge (interval cuts land mid-batch, sheds race the
/// in-flight work batches, promotions seed analyzers partway through
/// flows).
#[test]
fn reports_are_byte_identical_across_batch_sizes_and_shards() {
    let capture = interleaved_capture();
    let mut rendered: Vec<(usize, usize, String)> = Vec::new();
    for batch in [1usize, 256] {
        for shards in [1usize, 2, 4] {
            let cfg = LiveConfig {
                shards,
                batch,
                interval: SimDuration::from_millis(500),
                idle_timeout: Some(SimDuration::from_secs(5)),
                fin_linger: Some(SimDuration::from_millis(200)),
                max_flows: 6, // force LRU shedding under ~15 concurrent flows
                tier: Some(TierConfig {
                    demote_streak: 32,
                    ..TierConfig::default()
                }),
                ..Default::default()
            };
            let mut lines = String::new();
            let summary = live::run(&capture[..], &cfg, |r| {
                lines.push_str(&r.to_json().compact());
                lines.push('\n');
                lines.push_str(&r.to_csv_row());
                lines.push('\n');
            })
            .expect("live run succeeds");
            assert!(summary.flows_shed > 0, "cap of 6 must shed some flows");
            assert!(summary.promotions > 0, "capture must exercise promotion");
            lines.push_str(&summary.to_json().compact());
            rendered.push((batch, shards, lines));
        }
    }
    let (b0, s0, baseline) = &rendered[0];
    for (b, s, lines) in &rendered[1..] {
        assert_eq!(
            lines, baseline,
            "batch {b} × {s} shards diverged from batch {b0} × {s0} shards"
        );
    }
}

/// The steady-state handoff must not allocate: after warmup every batch
/// buffer the driver sends comes back on the spare ring and is reused.
/// The summary's recycling counters prove it — fresh allocations are
/// bounded by warmup (at most spare-ring capacity + in-flight slots per
/// shard, independent of capture length), while recycles scale with the
/// number of batches.
#[test]
fn steady_state_handoff_recycles_buffers_instead_of_allocating() {
    let spec = LiveGenSpec {
        flows_per_service: 20, // 60 flows: enough batches to reach steady state
        seed: 0xa110c,
        mean_gap: SimDuration::from_millis(2),
        threads: 1,
        ..Default::default()
    };
    let mut capture = Vec::new();
    generate_interleaved(&mut capture, &spec).expect("in-memory generation cannot fail");

    let cfg = LiveConfig {
        shards: 2,
        batch: 64, // small batches → many flushes → many recycle round-trips
        ..Default::default()
    };
    let summary = live::run(&capture[..], &cfg, |_| {}).expect("live run succeeds");
    let flushes = summary.ring_fresh_buffers + summary.ring_recycled_buffers;
    assert!(flushes > 100, "capture too short to exercise steady state");
    // Warmup bound: each shard's spare ring holds ring_depth + 2 buffers
    // and ring_depth more can be in flight on the forward ring.
    let warmup_cap = (cfg.shards * (2 * cfg.ring_depth + 2)) as u64;
    assert!(
        summary.ring_fresh_buffers <= warmup_cap,
        "fresh allocations ({}) exceed the warmup bound ({warmup_cap}): \
         the hot path is allocating",
        summary.ring_fresh_buffers
    );
    assert!(
        summary.ring_recycled_buffers > summary.ring_fresh_buffers * 4,
        "recycling ({}) should dominate allocation ({}) in steady state",
        summary.ring_recycled_buffers,
        summary.ring_fresh_buffers
    );
}

/// Two-tier mode must keep the byte-identity invariant: promotion and
/// demotion decisions are cell-local (each cell's heavy quota is a fixed
/// slice of the global cap, owned by exactly one shard at any count), so
/// the report stream — including the
/// `flows_light`/`flows_heavy`/`promotions`/`demotions` fields — cannot
/// depend on the shard count.
#[test]
fn two_tier_reports_are_byte_identical_across_shards() {
    let capture = interleaved_capture();
    let mut rendered: Vec<String> = Vec::new();
    let mut promotions = 0;
    for shards in [1usize, 2, 4] {
        let cfg = LiveConfig {
            shards,
            interval: SimDuration::from_millis(500),
            tier: Some(TierConfig {
                demote_streak: 32, // short capture: make demotion reachable
                ..TierConfig::default()
            }),
            ..Default::default()
        };
        let mut lines = String::new();
        let summary = live::run(&capture[..], &cfg, |r| {
            lines.push_str(&r.to_json().compact());
            lines.push('\n');
            lines.push_str(&r.to_csv_row());
            lines.push('\n');
        })
        .expect("live run succeeds");
        promotions = summary.promotions;
        lines.push_str(&summary.to_json().compact());
        rendered.push(lines);
    }
    assert!(
        promotions > 0,
        "capture must exercise promotion for the invariant to mean anything"
    );
    assert_eq!(rendered[0], rendered[1], "two-tier 1 vs 2 shards");
    assert_eq!(rendered[0], rendered[2], "two-tier 1 vs 4 shards");
}

/// The per-shard summary counters — promotions, sheds, late packets,
/// high-water marks, buffer provenance — are accumulated per engine and
/// folded in canonical shard order at shutdown. The folded totals of a
/// parallel run must match the inline `--shards 1` path *exactly*, field
/// by field and in both rendered forms (JSON summary and the CSV report
/// stream). The ring counters themselves are threading artifacts (the
/// inline path has no rings), so for those the invariant is internal
/// consistency, not cross-count equality — and they are deliberately
/// kept out of the rendered summary.
#[test]
fn aggregated_summary_counters_match_the_inline_path_exactly() {
    let capture = interleaved_capture();
    let run_with = |shards: usize| {
        let cfg = LiveConfig {
            shards,
            interval: SimDuration::from_millis(500),
            idle_timeout: Some(SimDuration::from_secs(2)),
            fin_linger: Some(SimDuration::from_millis(200)),
            max_flows: 6, // shedding on
            tier: Some(TierConfig {
                demote_streak: 32,
                heavy_max: 3, // small cap: exercise promotion denials
                ..TierConfig::default()
            }),
            ..Default::default()
        };
        let mut csv = String::new();
        let summary = live::run(&capture[..], &cfg, |r| {
            csv.push_str(&r.to_csv_row());
            csv.push('\n');
        })
        .expect("live run succeeds");
        (summary, csv)
    };
    let (inline, inline_csv) = run_with(1);
    assert!(inline.flows_shed > 0, "cap of 6 must shed");
    // With heavy_max 3 split over 6 cells, half the cells have heavy
    // quota 0 — suspicious flows there are denied, not promoted. Either
    // way the escalation machinery must have fired for the totals below
    // to mean anything.
    assert!(inline.promotions + inline.promotions_denied > 0);
    for shards in [2usize, 4] {
        let (par, par_csv) = run_with(shards);
        assert_eq!(par.flows_seen, inline.flows_seen, "{shards} shards");
        assert_eq!(par.flows_finalized, inline.flows_finalized);
        assert_eq!(par.flows_closed, inline.flows_closed);
        assert_eq!(par.flows_evicted_idle, inline.flows_evicted_idle);
        assert_eq!(par.flows_shed, inline.flows_shed);
        assert_eq!(par.flows_eof, inline.flows_eof);
        assert_eq!(par.packets, inline.packets);
        assert_eq!(par.packets_late, inline.packets_late);
        assert_eq!(par.promotions, inline.promotions);
        assert_eq!(par.demotions, inline.demotions);
        assert_eq!(par.promotions_denied, inline.promotions_denied);
        assert_eq!(par.live_stalls, inline.live_stalls);
        assert_eq!(par.max_active_flows, inline.max_active_flows);
        assert_eq!(par.max_heavy_flows, inline.max_heavy_flows);
        assert_eq!(par.breakdown, inline.breakdown);
        assert_eq!(
            par.to_json().compact(),
            inline.to_json().compact(),
            "{shards} shards: rendered summary diverged"
        );
        assert_eq!(par_csv, inline_csv, "{shards} shards: CSV stream diverged");
        // Inline has no rings at all; parallel runs recycle through them.
        assert_eq!(inline.ring_fresh_buffers + inline.ring_recycled_buffers, 0);
        assert!(par.ring_fresh_buffers > 0, "parallel path must use rings");
    }
}

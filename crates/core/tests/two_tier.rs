//! Two-tier escalation properties: a flow promoted mid-stream must agree
//! with an always-heavy analyzer about every stall that starts after the
//! promotion, hysteresis must keep the heavy pool from thrashing, and the
//! heavy cap must deny (not shed) when the pool is full.
//!
//! The captures are handcrafted so every signal is unambiguous: clean
//! ~50 ms RTT exchanges establish the estimators, one known trigger
//! (dup-ACK burst, repeated retransmission, or zero-window) fires the
//! promotion at a known packet, and the stalls under test are seconds
//! long — orders of magnitude past the `min(2·SRTT, RTO)` threshold in
//! both tiers, so seeded-vs-cold estimator drift cannot flip detection.

use std::collections::HashMap;

use simnet::time::SimTime;
use tapo::live::{self, LiveConfig, TierConfig};
use tapo::FlowAnalysis;
use tcp_trace::flow::FlowKey;
use tcp_trace::pcap::PcapWriter;
use tcp_trace::record::{Direction, SegFlags, TraceRecord};

const RWND: u64 = 1 << 20;

fn out_data(t_ms: u64, seq: u64, len: u32) -> TraceRecord {
    TraceRecord::data(
        SimTime::from_millis(t_ms),
        Direction::Out,
        seq,
        len,
        0,
        RWND,
    )
}

fn in_ack(t_ms: u64, ack: u64) -> TraceRecord {
    TraceRecord::pure_ack(SimTime::from_millis(t_ms), Direction::In, ack, RWND)
}

fn in_ack_rwnd(t_ms: u64, ack: u64, rwnd: u64) -> TraceRecord {
    TraceRecord::pure_ack(SimTime::from_millis(t_ms), Direction::In, ack, rwnd)
}

fn fin(t_ms: u64, seq: u64) -> TraceRecord {
    TraceRecord {
        flags: SegFlags {
            fin: true,
            ..SegFlags::ACK
        },
        ..out_data(t_ms, seq, 0)
    }
}

/// Merge per-flow record lists into one time-ordered capture (ties broken
/// by flow index, like the generator).
fn capture(flows: &[Vec<TraceRecord>]) -> Vec<u8> {
    let mut all: Vec<(u64, usize, TraceRecord)> = flows
        .iter()
        .enumerate()
        .flat_map(|(i, recs)| recs.iter().map(move |r| (r.t.as_micros(), i, *r)))
        .collect();
    all.sort_by_key(|&(t, i, _)| (t, i));
    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf).expect("in-memory writer");
    for (_, i, rec) in &all {
        w.write_record(&FlowKey::synthetic(*i as u32), rec)
            .expect("write record");
    }
    w.finish().expect("finish capture");
    buf
}

/// Clean 50 ms exchanges (probe + ack) so both tiers converge on the same
/// SRTT before anything interesting happens. Returns the next free
/// (time, seq) after the warmup.
fn warmup(recs: &mut Vec<TraceRecord>, rounds: u64) -> (u64, u64) {
    let mut t = 0;
    let mut seq = 0;
    for _ in 0..rounds {
        recs.push(out_data(t, seq, 1000));
        recs.push(in_ack(t + 50, seq + 1000));
        seq += 1000;
        t += 60;
    }
    (t, seq)
}

/// A flow that promotes via a dup-ACK burst, then stalls for seconds.
fn dupack_flow() -> Vec<TraceRecord> {
    let mut r = Vec::new();
    let (t, seq) = warmup(&mut r, 3);
    r.push(out_data(t, seq, 3000));
    // Three duplicates of the current cumulative ACK: promotion fires on
    // the third (promote_dupacks = 3).
    r.push(in_ack(t + 10, seq));
    r.push(in_ack(t + 12, seq));
    r.push(in_ack(t + 14, seq));
    // Recovery: everything acked, then idle (nothing in flight) until
    // past the uniform promotion cutoff, then the stall under test:
    // 3.3 s of ACK silence with data in flight, entirely after the
    // promotion point.
    r.push(in_ack(t + 60, seq + 3000));
    r.push(out_data(t + 230, seq + 3000, 1000));
    r.push(in_ack(t + 3570, seq + 4000));
    r.push(fin(t + 3580, seq + 4000));
    r
}

/// A flow that promotes via repeated retransmission, then stalls.
fn retrans_flow() -> Vec<TraceRecord> {
    let mut r = Vec::new();
    let (t, seq) = warmup(&mut r, 3);
    r.push(out_data(t, seq, 2000));
    // Two re-sends of already-sent data: promotion on the second
    // (promote_retrans = 2). 90 ms gaps stay under the 100 ms threshold.
    r.push(out_data(t + 90, seq, 1000));
    r.push(out_data(t + 180, seq, 1000));
    r.push(in_ack(t + 230, seq + 2000));
    r.push(out_data(t + 240, seq + 2000, 1000));
    r.push(in_ack(t + 3740, seq + 3000)); // 3.5 s stall, post-promotion
    r.push(fin(t + 3750, seq + 3000));
    r
}

/// A flow that promotes the instant the client advertises a zero window.
fn zero_window_flow() -> Vec<TraceRecord> {
    let mut r = Vec::new();
    let (t, seq) = warmup(&mut r, 3);
    r.push(out_data(t, seq, 1000));
    r.push(in_ack_rwnd(t + 50, seq + 1000, 0)); // promotes unconditionally
    r.push(in_ack(t + 100, seq + 1000)); // window opens again
                                         // Idle until past the uniform promotion cutoff, then stall.
    r.push(out_data(t + 230, seq + 1000, 1000));
    r.push(in_ack(t + 3610, seq + 2000)); // 3.4 s stall, post-promotion
    r.push(fin(t + 3620, seq + 2000));
    r
}

fn collect_config(tier: Option<TierConfig>) -> LiveConfig {
    LiveConfig {
        idle_timeout: None,
        fin_linger: None,
        max_flows: 0,
        collect_flows: true,
        tier,
        // One cell keeps the heavy cap global (exact legacy semantics) so
        // the handcrafted heavy_max assertions don't depend on which
        // cells the test keys hash into.
        cells: 1,
        ..Default::default()
    }
}

fn run_collect(
    capture: &[u8],
    tier: Option<TierConfig>,
) -> (live::LiveSummary, HashMap<FlowKey, FlowAnalysis>) {
    let summary = live::run(capture, &collect_config(tier), |_| {}).expect("live run succeeds");
    let flows = summary.flows.iter().cloned().collect();
    (summary, flows)
}

/// The seeded-equivalence property: for every promotion trigger, the
/// promoted analyzer and an always-heavy analyzer must report the *same*
/// stalls (start, duration, cause) for intervals after the promotion.
#[test]
fn promoted_flows_classify_post_promotion_stalls_like_always_heavy() {
    let cap = capture(&[dupack_flow(), retrans_flow(), zero_window_flow()]);
    let (heavy_summary, heavy) = run_collect(&cap, None);
    let (tier_summary, tiered) = run_collect(&cap, Some(TierConfig::default()));

    assert_eq!(heavy.len(), 3, "always-heavy collects every flow");
    assert_eq!(
        tier_summary.promotions, 3,
        "each trigger must promote exactly once"
    );
    assert_eq!(tiered.len(), 3, "every promoted flow is collected");

    // Every crafted flow promotes within its first 400 ms; the stalls
    // under test all start later than that.
    let promoted_by = SimTime::from_millis(400);
    for (key, tiered_analysis) in &tiered {
        let expected = &heavy[key];
        let expected_stalls: Vec<_> = expected
            .stalls
            .iter()
            .filter(|s| s.start >= promoted_by)
            .map(|s| (s.start, s.duration, s.cause))
            .collect();
        let got_stalls: Vec<_> = tiered_analysis
            .stalls
            .iter()
            .filter(|s| s.start >= promoted_by)
            .map(|s| (s.start, s.duration, s.cause))
            .collect();
        assert!(
            !expected_stalls.is_empty(),
            "flow {key:?}: the crafted stall must be detected by always-heavy"
        );
        assert_eq!(
            got_stalls, expected_stalls,
            "flow {key:?}: post-promotion stalls diverged from always-heavy"
        );
    }
    assert_eq!(
        heavy_summary.promotions, 0,
        "heavy-only mode never promotes"
    );
}

/// Hysteresis: calm gaps shorter than `demote_streak` must not demote, so
/// a bursty-but-active flow occupies exactly one heavy slot for its whole
/// life instead of bouncing through the pool.
#[test]
fn short_calm_runs_do_not_thrash_the_heavy_pool() {
    let mut r = Vec::new();
    let (mut t, mut seq) = warmup(&mut r, 3);
    // Promote via a dup-ACK burst…
    r.push(out_data(t, seq, 3000));
    r.push(in_ack(t + 10, seq));
    r.push(in_ack(t + 12, seq));
    r.push(in_ack(t + 14, seq));
    r.push(in_ack(t + 60, seq + 3000));
    seq += 3000;
    t += 70;
    // …then alternate short calm runs (8 clean exchanges = 16 packets,
    // well under demote_streak = 64) with fresh dup-ACK bursts.
    for _ in 0..4 {
        for _ in 0..8 {
            r.push(out_data(t, seq, 1000));
            r.push(in_ack(t + 50, seq + 1000));
            seq += 1000;
            t += 60;
        }
        r.push(out_data(t, seq, 3000));
        r.push(in_ack(t + 10, seq));
        r.push(in_ack(t + 12, seq));
        r.push(in_ack(t + 14, seq));
        r.push(in_ack(t + 60, seq + 3000));
        seq += 3000;
        t += 70;
    }
    r.push(fin(t, seq));
    let cap = capture(&[r]);

    let tier = TierConfig {
        demote_streak: 64,
        ..TierConfig::default()
    };
    let summary =
        live::run(&cap[..], &collect_config(Some(tier)), |_| {}).expect("live run succeeds");
    assert_eq!(summary.promotions, 1, "one escalation for the whole life");
    assert_eq!(summary.demotions, 0, "short calm runs must not demote");
    assert_eq!(summary.max_heavy_flows, 1);
}

/// With a small `demote_streak`, a long calm run demotes and the next
/// burst must accumulate *fresh* evidence to re-promote (the light row is
/// re-armed) — the counters are not sticky across an episode boundary.
#[test]
fn long_calm_runs_demote_and_rearm() {
    let mut r = Vec::new();
    let (mut t, mut seq) = warmup(&mut r, 3);
    for _ in 0..2 {
        // Burst: promote (3 dup-ACKs).
        r.push(out_data(t, seq, 3000));
        r.push(in_ack(t + 10, seq));
        r.push(in_ack(t + 12, seq));
        r.push(in_ack(t + 14, seq));
        r.push(in_ack(t + 60, seq + 3000));
        seq += 3000;
        t += 70;
        // Long calm run: 20 clean exchanges = 40 event-free packets > 16.
        for _ in 0..20 {
            r.push(out_data(t, seq, 1000));
            r.push(in_ack(t + 50, seq + 1000));
            seq += 1000;
            t += 60;
        }
    }
    r.push(fin(t, seq));
    let cap = capture(&[r]);

    let tier = TierConfig {
        demote_streak: 16,
        ..TierConfig::default()
    };
    let summary =
        live::run(&cap[..], &collect_config(Some(tier)), |_| {}).expect("live run succeeds");
    assert_eq!(
        summary.promotions, 2,
        "each burst is a separate heavy episode"
    );
    assert_eq!(summary.demotions, 2, "each calm run demotes");
    assert_eq!(summary.max_heavy_flows, 1);
}

/// A full heavy pool denies promotion instead of shedding or panicking,
/// and counts the denial.
#[test]
fn heavy_cap_denies_promotions_without_shedding() {
    // Two flows, both triggering dup-ACK suspicion, under heavy_max = 1.
    let cap = capture(&[dupack_flow(), dupack_flow()]);
    let tier = TierConfig {
        heavy_max: 1,
        ..TierConfig::default()
    };
    let summary =
        live::run(&cap[..], &collect_config(Some(tier)), |_| {}).expect("live run succeeds");
    assert_eq!(summary.promotions, 1, "only one heavy slot exists");
    assert!(summary.promotions_denied > 0, "the loser is counted");
    assert_eq!(summary.max_heavy_flows, 1);
    assert_eq!(summary.flows_shed, 0, "denial is not shedding");
    assert_eq!(summary.flows_seen, 2);
}

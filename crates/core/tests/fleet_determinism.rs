//! Fleet-mode determinism, end to end: N `tapo live` daemons feed one
//! aggregator, and the aggregate must be a pure function of the record
//! *multiset* — byte-identical however the streams arrive (which file,
//! what interleaving, how many parse threads) and however they are
//! ingested (per-daemon files vs one concatenated stdin multiplex).
//!
//! The streams here are real: each daemon's report lines come from
//! running the live pipeline over its own interleaved capture (distinct
//! derived seed per daemon via [`workloads::daemon_specs`]), with
//! sketches on, exactly as the CLI produces them.

use std::io::Write;

use simnet::time::SimDuration;
use tapo::live::{self, DaemonId, LiveConfig};
use tapo::{aggregate, read_report_files, read_reports, FleetConfig, FleetOutcome, Record};
use workloads::{daemon_specs, generate_interleaved, LiveGenSpec};

/// Run one live daemon over its own capture and return its JSON-lines
/// report stream (interval records + the trailing summary, like the CLI).
fn daemon_stream(id: &str, spec: &LiveGenSpec) -> String {
    let mut capture = Vec::new();
    generate_interleaved(&mut capture, spec).expect("in-memory generation cannot fail");
    let cfg = LiveConfig {
        daemon_id: DaemonId::new(id).expect("test ids are valid"),
        interval: SimDuration::from_millis(250),
        ..Default::default()
    };
    let mut lines = String::new();
    let summary = live::run(&capture[..], &cfg, |r| {
        lines.push_str(&r.to_json().compact());
        lines.push('\n');
    })
    .expect("live run succeeds");
    lines.push_str(&summary.to_json().compact());
    lines.push('\n');
    lines
}

/// Three daemons' report streams, generated once per test binary.
fn fleet_streams() -> Vec<(String, String)> {
    let base = LiveGenSpec {
        flows_per_service: 4, // 12 flows per daemon
        seed: 0xf1ee7,
        mean_gap: SimDuration::from_millis(5),
        threads: 1,
        ..Default::default()
    };
    daemon_specs(&base, 3)
        .into_iter()
        .map(|(id, spec)| {
            let stream = daemon_stream(&id, &spec);
            (id, stream)
        })
        .collect()
}

/// Everything the fleet CLI renders, in one string: interval records
/// (JSON + CSV), alerts (JSON + CSV), and the summary object.
fn render(out: &FleetOutcome) -> String {
    let mut s = String::new();
    for iv in &out.intervals {
        s.push_str(&iv.json().compact());
        s.push('\n');
        s.push_str(&iv.csv());
        s.push('\n');
    }
    for a in &out.alerts {
        s.push_str(&a.json().compact());
        s.push('\n');
        s.push_str(&a.csv());
        s.push('\n');
    }
    s.push_str(&out.summary.json().compact());
    s.push('\n');
    s
}

#[test]
fn fleet_output_is_arrival_order_and_thread_count_invariant() {
    let streams = fleet_streams();
    // Three arrival shapes for the same multiset of lines: daemons in
    // order, daemons reversed, and a line-level round-robin interleave
    // (what a shared FIFO fed by three writers looks like).
    let in_order: String = streams.iter().map(|(_, s)| s.as_str()).collect();
    let reversed: String = streams.iter().rev().map(|(_, s)| s.as_str()).collect();
    let mut interleaved = String::new();
    let mut cursors: Vec<std::str::Lines> = streams.iter().map(|(_, s)| s.lines()).collect();
    loop {
        let mut any = false;
        for lines in &mut cursors {
            if let Some(line) = lines.next() {
                interleaved.push_str(line);
                interleaved.push('\n');
                any = true;
            }
        }
        if !any {
            break;
        }
    }

    let cfg = FleetConfig::default();
    let mut rendered: Vec<(String, String)> = Vec::new();
    for (label, input) in [
        ("in-order", &in_order),
        ("reversed", &reversed),
        ("interleaved", &interleaved),
    ] {
        for threads in [1usize, 4] {
            let (records, skipped) = read_reports("-", input.as_bytes(), threads)
                .unwrap_or_else(|e| panic!("{label}/threads={threads}: {e}"));
            assert_eq!(skipped, 3, "{label}: one summary line per daemon");
            let out = aggregate(&records, skipped, &cfg);
            rendered.push((format!("{label}/threads={threads}"), render(&out)));
        }
    }
    let (base_label, baseline) = &rendered[0];
    assert!(
        baseline.contains("\"kind\":\"fleet_interval\""),
        "aggregate must produce interval records"
    );
    for (label, bytes) in &rendered[1..] {
        assert_eq!(bytes, baseline, "{label} diverged from {base_label}");
    }
    // The baseline actually exercises the merge: all three daemons appear
    // in the per-daemon breakdown of the rendered stream.
    for (id, _) in &streams {
        assert!(baseline.contains(&format!("\"{id}\"")), "missing {id}");
    }
}

#[test]
fn file_and_stdin_ingestion_produce_identical_bytes() {
    let streams = fleet_streams();
    let dir = std::env::temp_dir();
    let paths: Vec<std::path::PathBuf> = streams
        .iter()
        .map(|(id, stream)| {
            let path = dir.join(format!("tapo_fleet_test_{}_{id}.jsonl", std::process::id()));
            let mut f = std::fs::File::create(&path).expect("create temp report file");
            f.write_all(stream.as_bytes()).expect("write temp report");
            path
        })
        .collect();

    let from_files = read_report_files(&paths, 2).expect("file ingestion succeeds");
    let concat: String = streams.iter().map(|(_, s)| s.as_str()).collect();
    let from_stdin = read_reports("-", concat.as_bytes(), 2).expect("stdin ingestion succeeds");
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }

    assert_eq!(from_files, from_stdin, "records and skip counts must agree");
    let cfg = FleetConfig::default();
    assert_eq!(
        render(&aggregate(&from_files.0, from_files.1, &cfg)),
        render(&aggregate(&from_stdin.0, from_stdin.1, &cfg)),
        "file-fed and stdin-fed aggregates diverged"
    );
}

#[test]
fn fleet_observations_match_the_direct_advise_path() {
    let streams = fleet_streams();
    let concat: String = streams.iter().map(|(_, s)| s.as_str()).collect();

    let obs_direct = tapo::parse_observations(concat.as_bytes()).expect("advise parse succeeds");
    let (records, skipped) = read_reports("-", concat.as_bytes(), 1).expect("fleet parse succeeds");
    let out = aggregate(&records, skipped, &FleetConfig::default());
    let obs_fleet = out.summary.observations();
    assert_eq!(
        obs_fleet, obs_direct,
        "fleet-merged observations must equal the advisor's own parse"
    );

    // And the counterfactual advisor sees no difference downstream.
    let advise_cfg = tapo::AdviseConfig {
        flows: 4,
        replicates: 2,
        threads: 1,
        ..Default::default()
    };
    let direct = tapo::advise(&obs_direct, &advise_cfg);
    let via_fleet = tapo::advise(&obs_fleet, &advise_cfg);
    assert_eq!(via_fleet, direct);
}

#[test]
fn injected_regression_raises_deterministic_alerts() {
    // Hand-written streams with a controlled stall share: every daemon
    // idles at share 5000 µs/flow, then fe2 spikes 6× in bucket 6. The
    // fleet share doubles (> 1.5× the EWMA baseline) and fe2 lands at
    // more than 2× the fleet share, so both drift rules must fire — and
    // fire identically at any arrival order.
    let mut lines = Vec::new();
    for bucket in 0u64..10 {
        for (i, id) in ["fe0", "fe1", "fe2"].iter().enumerate() {
            let stalled_us = if bucket == 6 && i == 2 {
                300_000
            } else {
                50_000
            };
            lines.push(format!(
                "{{\"kind\":\"interval\",\"daemon\":\"{id}\",\"interval\":{bucket},\
                 \"start_us\":{},\"end_us\":{},\"flows_finalized\":10,\
                 \"breakdown\":{{\"stalls\":2,\"stalled_us\":{stalled_us}}}}}",
                bucket * 1_000_000,
                (bucket + 1) * 1_000_000,
            ));
        }
    }
    let cfg = FleetConfig::default();
    let sorted = lines.join("\n");
    let mut shuffled_lines = lines.clone();
    shuffled_lines.reverse();
    shuffled_lines.rotate_left(7);
    let shuffled = shuffled_lines.join("\n");

    let mut outcomes = Vec::new();
    for input in [&sorted, &shuffled] {
        let (records, skipped) = read_reports("-", input.as_bytes(), 2).unwrap();
        outcomes.push(aggregate(&records, skipped, &cfg));
    }
    assert_eq!(
        render(&outcomes[0]),
        render(&outcomes[1]),
        "alerts must not depend on arrival order"
    );

    let alerts = &outcomes[0].alerts;
    assert!(
        alerts.iter().any(|a| a.scope == "fleet" && a.bucket == 6),
        "fleet-wide drift alert missing: {alerts:?}"
    );
    assert!(
        alerts.iter().any(|a| a.scope == "fe2" && a.bucket == 6),
        "daemon-vs-fleet alert for fe2 missing: {alerts:?}"
    );
    assert!(
        !alerts.iter().any(|a| a.bucket < 6),
        "no alert may fire before the injected regression: {alerts:?}"
    );
    assert_eq!(outcomes[0].summary.alerts, alerts.len() as u64);
}

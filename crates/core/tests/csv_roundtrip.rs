//! CSV round-trip property: every row any TAPO sink writes —
//! `csv_escape`d cells joined with commas — must parse back to the
//! original fields with [`csv_fields`], and every real record type's row
//! must carry exactly as many cells as its header promises. Downstream
//! tooling splits these files; a row that re-parses differently than it
//! was written is silent data corruption.

use simnet::time::SimDuration;
use tapo::live::{self, IntervalReport, LiveConfig, LiveSummary};
use tapo::{aggregate, csv_escape, csv_fields, read_reports, FleetConfig, Record};
use workloads::{generate_interleaved, LiveGenSpec};

/// Tiny deterministic generator (SplitMix64) for the property rows.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn random_cells_survive_escape_then_parse() {
    // Alphabet deliberately heavy on the four characters that force
    // quoting, plus benign filler.
    const ALPHABET: &[char] = &[
        ',', '"', '\n', '\r', 'a', 'Z', '0', '.', ' ', ':', '-', '_', 'µ',
    ];
    let mut rng = Rng(0xc5f_3015);
    for round in 0..500 {
        let n_cells = 1 + (rng.next() % 8) as usize;
        let cells: Vec<String> = (0..n_cells)
            .map(|_| {
                let len = (rng.next() % 12) as usize;
                (0..len)
                    .map(|_| ALPHABET[(rng.next() as usize) % ALPHABET.len()])
                    .collect()
            })
            .collect();
        let row: String = cells
            .iter()
            .map(|c| csv_escape(c))
            .collect::<Vec<_>>()
            .join(",");
        let parsed = csv_fields(&row)
            .unwrap_or_else(|| panic!("round {round}: escaped row failed to parse: {row:?}"));
        assert_eq!(parsed, cells, "round {round}: row {row:?}");
    }
}

/// Rows from one real live run: every interval row and the summary row
/// must re-parse to exactly the header's cell count.
#[test]
fn live_rows_parse_back_to_their_headers() {
    let spec = LiveGenSpec {
        flows_per_service: 3,
        seed: 0xc5f,
        mean_gap: SimDuration::from_millis(5),
        threads: 1,
        ..Default::default()
    };
    let mut capture = Vec::new();
    generate_interleaved(&mut capture, &spec).expect("in-memory generation cannot fail");
    let cfg = LiveConfig {
        interval: SimDuration::from_millis(250),
        ..Default::default()
    };
    let mut checked = 0usize;
    let mut header_cells = None;
    let summary = live::run(&capture[..], &cfg, |r| {
        let cells = header_cells.get_or_insert_with(|| {
            csv_fields(&IntervalReport::csv_header())
                .expect("header parses")
                .len()
        });
        let row = csv_fields(&r.to_csv_row()).expect("interval row parses");
        assert_eq!(row.len(), *cells, "interval row width");
        checked += 1;
    })
    .expect("live run succeeds");
    assert!(checked > 0, "capture must produce interval rows");
    let header = csv_fields(&LiveSummary::csv_header()).expect("summary header parses");
    let row = csv_fields(&summary.to_csv_row()).expect("summary row parses");
    assert_eq!(row.len(), header.len(), "summary row width");
    assert_eq!(header[0], "daemon");
    assert_eq!(row[0], "local");
}

/// Rows from the fleet path (intervals, alerts, summary) and the advisor:
/// each `Record` implementation's CSV row must re-parse to its header.
#[test]
fn fleet_and_advise_rows_parse_back_to_their_headers() {
    // A stream with a drift spike so the alert row exists too.
    let mut input = String::new();
    for bucket in 0u64..8 {
        for (i, id) in ["fe0", "fe1"].iter().enumerate() {
            let stalled_us = if bucket == 5 && i == 1 {
                400_000
            } else {
                40_000
            };
            input.push_str(&format!(
                "{{\"kind\":\"interval\",\"daemon\":\"{id}\",\"start_us\":{},\
                 \"flows_finalized\":8,\
                 \"breakdown\":{{\"stalls\":1,\"stalled_us\":{stalled_us}}},\
                 \"by_port\":{{\"80\":{{\"flows\":8,\"stalls\":1,\"stalled_us\":{stalled_us}}}}}}}\n",
                bucket * 1_000_000,
            ));
        }
    }
    let (records, skipped) = read_reports("-", input.as_bytes(), 1).expect("parse succeeds");
    let out = aggregate(&records, skipped, &FleetConfig::default());
    assert!(!out.intervals.is_empty());
    assert!(!out.alerts.is_empty(), "spike must raise an alert");

    let mut rows: Vec<(&str, String, String)> = Vec::new();
    for iv in &out.intervals {
        rows.push(("fleet_interval", iv.header(), iv.csv()));
    }
    for a in &out.alerts {
        rows.push(("fleet_alert", a.header(), a.csv()));
    }
    rows.push(("fleet_summary", out.summary.header(), out.summary.csv()));
    let advise_cfg = tapo::AdviseConfig {
        flows: 4,
        replicates: 2,
        threads: 1,
        ..Default::default()
    };
    for advice in tapo::advise(&out.summary.observations(), &advise_cfg) {
        rows.push(("advice", advice.header(), advice.csv()));
    }
    assert!(
        rows.iter().any(|(kind, _, _)| *kind == "advice"),
        "stalled WebSearch traffic must produce advice rows"
    );

    for (kind, header, row) in rows {
        let h = csv_fields(&header).unwrap_or_else(|| panic!("{kind} header: {header:?}"));
        let r = csv_fields(&row).unwrap_or_else(|| panic!("{kind} row: {row:?}"));
        assert_eq!(r.len(), h.len(), "{kind} row width: {row:?}");
    }
}

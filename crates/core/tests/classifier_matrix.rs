//! A matrix of classifier tests driving TAPO through the *simulated* stack
//! (rather than hand-written traces): each test engineers one stall class
//! end-to-end and checks the verdict — the closest thing to labelled
//! ground truth the paper's authors could not publish.

use simnet::loss::LossSpec;
use simnet::time::SimDuration;
use tapo::{analyze_flow, AnalyzerConfig, RetransCause, StallCause};
use tcp_sim::receiver::ReceiverConfig;
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::sender::SenderConfig;
use tcp_sim::sim::{FlowScript, FlowSim, FlowSimConfig, RequestSpec, SupplyPauses};

const MSS: u64 = 1448;

fn base_cfg(resp: u64) -> FlowSimConfig {
    FlowSimConfig {
        script: FlowScript::single(resp),
        s2c: simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..simnet::link::LinkConfig::default()
        },
        c2s: simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..simnet::link::LinkConfig::default()
        },
        ..FlowSimConfig::default()
    }
}

fn causes(cfg: FlowSimConfig, seed: u64) -> Vec<StallCause> {
    let out = FlowSim::new(cfg, seed).run();
    assert!(out.completed, "flow must complete");
    analyze_flow(&out.trace, AnalyzerConfig::default())
        .stalls
        .into_iter()
        .map(|s| s.cause)
        .collect()
}

#[test]
fn backend_fetch_is_data_unavailable() {
    let mut cfg = base_cfg(0);
    cfg.script.requests = vec![RequestSpec {
        backend_delay: SimDuration::from_millis(1200),
        ..RequestSpec::simple(8 * MSS)
    }];
    let got = causes(cfg, 1);
    assert_eq!(got, vec![StallCause::DataUnavailable]);
}

#[test]
fn chunked_supply_is_resource_constraint() {
    let mut cfg = base_cfg(0);
    cfg.script.requests = vec![RequestSpec {
        supply: Some(SupplyPauses {
            chunk_bytes: 4 * MSS,
            gap: SimDuration::from_millis(1500),
        }),
        ..RequestSpec::simple(12 * MSS)
    }];
    let got = causes(cfg, 2);
    assert!(
        got.contains(&StallCause::ResourceConstraint),
        "expected resource-constraint stalls, got {got:?}"
    );
    assert!(
        got.iter().all(|c| *c == StallCause::ResourceConstraint),
        "nothing else should stall on a clean path: {got:?}"
    );
}

#[test]
fn think_time_is_client_idle() {
    let mut cfg = base_cfg(0);
    cfg.script.requests = vec![
        RequestSpec::simple(4 * MSS),
        RequestSpec {
            think_time: SimDuration::from_secs(3),
            ..RequestSpec::simple(4 * MSS)
        },
    ];
    let got = causes(cfg, 3);
    assert_eq!(got, vec![StallCause::ClientIdle]);
}

#[test]
fn stopped_reader_is_zero_window() {
    let mut cfg = base_cfg(100 * MSS);
    cfg.client_rx = ReceiverConfig {
        buf_bytes: 8 * MSS,
        ..ReceiverConfig::default()
    };
    cfg.client_drain = Some(30_000);
    cfg.client_pause_prob = 1.0; // pause after every read
    cfg.client_pause = SimDuration::from_millis(1500);
    cfg.max_time = SimDuration::from_secs(600);
    let got = causes(cfg, 4);
    assert!(
        got.contains(&StallCause::ZeroWindow),
        "expected zero-window stalls, got {got:?}"
    );
}

#[test]
fn whole_window_drop_is_continuous_loss() {
    let mut cfg = base_cfg(40 * MSS);
    // The s2c link carries: SYN-ACK (idx 0), then slow-start flights of
    // 3 (idx 1-3) and 6 (idx 4-9). Killing all of flight 2 silences the
    // connection completely: a whole window lost in one burst.
    cfg.s2c.loss = LossSpec::Script {
        drops: vec![4, 5, 6, 7, 8, 9],
    };
    let got = causes(cfg, 5);
    assert!(
        got.iter().any(|c| matches!(
            c,
            StallCause::Retransmission(RetransCause::ContinuousLoss)
                | StallCause::Retransmission(RetransCause::DoubleRetrans { .. })
        )),
        "expected a continuous-loss (or chained double) stall, got {got:?}"
    );
}

#[test]
fn small_window_client_loss_is_small_rwnd() {
    let mut cfg = base_cfg(30 * MSS);
    cfg.client_rx = ReceiverConfig {
        buf_bytes: 2 * MSS,
        ..ReceiverConfig::default()
    };
    cfg.client_rx.delack_timeout = SimDuration::from_millis(10); // keep ACK-delay out of it
    cfg.max_time = SimDuration::from_secs(300);
    // Drop one mid-flow data packet; with 2 MSS in flight there can be no
    // fast retransmit.
    cfg.s2c.loss = LossSpec::Script { drops: vec![14] };
    let got = causes(cfg, 6);
    assert!(
        got.contains(&StallCause::Retransmission(RetransCause::SmallRwnd)),
        "expected a small-rwnd stall, got {got:?}"
    );
}

#[test]
fn clean_flow_has_no_stalls() {
    let got = causes(base_cfg(50 * MSS), 7);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn srto_trace_shows_fewer_retrans_stalls_than_native() {
    // Same heavy-tail-loss population under both mechanisms; TAPO run on
    // both traces must see less retransmission-stall *time* under S-RTO.
    // The population needs to be reasonably large: individual seeds can go
    // either way, the claim is about the aggregate.
    let mut total_native = 0.0;
    let mut total_srto = 0.0;
    for seed in 0..200u64 {
        let mut cfg = base_cfg(10 * MSS);
        cfg.s2c.loss = LossSpec::bursty(0.05, SimDuration::from_millis(60));
        let native = FlowSim::new(cfg.clone(), seed).run();
        let mut cfg2 = cfg.clone();
        cfg2.server_tx = SenderConfig {
            recovery: RecoveryMechanism::srto(),
            ..SenderConfig::default()
        };
        let srto = FlowSim::new(cfg2, seed).run();
        let sum = |o: &tcp_sim::FlowOutcome| {
            analyze_flow(&o.trace, AnalyzerConfig::default())
                .stalls
                .iter()
                .filter(|s| matches!(s.cause, StallCause::Retransmission(_)))
                .map(|s| s.duration.as_secs_f64())
                .sum::<f64>()
        };
        total_native += sum(&native);
        total_srto += sum(&srto);
    }
    assert!(
        total_srto < total_native,
        "S-RTO must reduce retransmission-stall time: native {total_native:.2}s vs srto {total_srto:.2}s"
    );
}

//! Shared JSON-lines interval-report parser.
//!
//! Two consumers read the live pipeline's report streams back in: the
//! counterfactual advisor (`tapo advise`) and the fleet aggregator
//! (`tapo fleet`). They must agree on the schema — one parser, one
//! skip-summary rule — so a record the advisor accepts can never be one
//! the aggregator rejects. This module is that single implementation:
//! [`parse_interval_line`] decodes one line, [`parse_reports`] folds a
//! whole stream with 1-based line attribution for errors.
//!
//! The parser is *tolerant* of missing top-level counters (older report
//! shapes default them to zero, and a record without a daemon id is
//! attributed to `"unknown"`) but *strict* about anything present: a
//! malformed `by_port` slice, breakdown section, or sketch is an error,
//! not a silent zero — that is how feeding the CSV rendering, or a pcap,
//! fails fast.

use std::io::BufRead;

use crate::causes::{RetransClass, StallClass};
use crate::fleet::sketch::QSketch;
use crate::json::Json;
use crate::live::{class_slug, retrans_slug};

/// A malformed input line: where it was and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the report stream.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One server port's slice of an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounts {
    /// Flows finalized on this port.
    pub flows: u64,
    /// Stalls detected on this port.
    pub stalls: u64,
    /// Total stalled time on this port, microseconds.
    pub stalled_us: u64,
}

/// One decoded `"kind":"interval"` record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedInterval {
    /// Which daemon produced the record (`"unknown"` for pre-fleet shapes).
    pub daemon: String,
    /// The daemon's interval index.
    pub interval: u64,
    /// Interval start (inclusive), capture time in microseconds.
    pub start_us: u64,
    /// Interval end (exclusive), capture time in microseconds.
    pub end_us: u64,
    /// Packets processed in the interval.
    pub packets: u64,
    /// Flows finalized in the interval.
    pub flows_finalized: u64,
    /// Stalls diagnosed on the flows finalized in the interval.
    pub stalls: u64,
    /// Total stalled time, microseconds.
    pub stalled_us: u64,
    /// Per top-level stall class `(count, microseconds)`, indexed like
    /// [`StallClass::ALL`].
    pub by_cause: [(u64, u64); StallClass::ALL.len()],
    /// Per retransmission subclass `(count, microseconds)`, indexed like
    /// [`RetransClass::ALL`].
    pub by_retrans: [(u64, u64); RetransClass::ALL.len()],
    /// Per-server-port slice, in the record's (ascending) order.
    pub by_port: Vec<(u16, PortCounts)>,
    /// The record's RTT-sample sketch, when the daemon emitted sketches.
    pub rtt_sketch: Option<QSketch>,
    /// The record's stall-duration sketch, same gating.
    pub stall_sketch: Option<QSketch>,
}

/// `(n, us)` cause-stats object under `by_cause` / `by_retrans`.
fn cause_stats(slug: &str, stats: &Json) -> Result<(u64, u64), String> {
    let field = |k: &str| {
        stats
            .get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("breakdown {slug:?}: missing or non-integer {k:?}"))
    };
    Ok((field("n")?, field("us")?))
}

/// Decode one non-blank report line.
///
/// Returns `Ok(Some(..))` for a `"kind":"interval"` object and `Ok(None)`
/// for any other well-formed object — the end-of-run summary is itself a
/// merge of the interval deltas, so aggregating it too would double every
/// total. Anything malformed is `Err(message)` (the caller attributes the
/// line number).
pub fn parse_interval_line(line: &str) -> Result<Option<ParsedInterval>, String> {
    let v = Json::parse(line).map_err(|e| format!("not a JSON report: {e}"))?;
    if v.members().is_none() {
        return Err("not a JSON object".into());
    }
    if v.get("kind").and_then(Json::as_str) != Some("interval") {
        return Ok(None);
    }
    let num = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    let mut rec = ParsedInterval {
        daemon: v
            .get("daemon")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        interval: num("interval"),
        start_us: num("start_us"),
        end_us: num("end_us"),
        packets: num("packets"),
        flows_finalized: num("flows_finalized"),
        ..ParsedInterval::default()
    };
    if let Some(b) = v.get("breakdown") {
        if b.members().is_none() {
            return Err("breakdown is not an object".into());
        }
        let field = |k: &str| {
            b.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("breakdown: missing or non-integer {k:?}"))
        };
        rec.stalls = field("stalls")?;
        rec.stalled_us = field("stalled_us")?;
        if let Some(classes) = b.get("by_cause") {
            let pairs = classes
                .members()
                .ok_or_else(|| "breakdown.by_cause is not an object".to_string())?;
            for (slug, stats) in pairs {
                // Unknown slugs are skipped, not errors: a newer daemon may
                // know cause classes this build does not.
                if let Some(i) = StallClass::ALL.iter().position(|c| class_slug(*c) == slug) {
                    rec.by_cause[i] = cause_stats(slug, stats)?;
                }
            }
        }
        if let Some(classes) = b.get("by_retrans") {
            let pairs = classes
                .members()
                .ok_or_else(|| "breakdown.by_retrans is not an object".to_string())?;
            for (slug, stats) in pairs {
                if let Some(i) = RetransClass::ALL
                    .iter()
                    .position(|c| retrans_slug(*c) == slug)
                {
                    rec.by_retrans[i] = cause_stats(slug, stats)?;
                }
            }
        }
    }
    if let Some(by_port) = v.get("by_port") {
        let ports = by_port
            .members()
            .ok_or_else(|| "by_port is not an object".to_string())?;
        for (port, delta) in ports {
            let port: u16 = port.parse().map_err(|_| format!("bad port key {port:?}"))?;
            let field = |k: &str| {
                delta
                    .get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("port {port}: missing or non-integer {k:?}"))
            };
            rec.by_port.push((
                port,
                PortCounts {
                    flows: field("flows")?,
                    stalls: field("stalls")?,
                    stalled_us: field("stalled_us")?,
                },
            ));
        }
    }
    if let Some(s) = v.get("sketches") {
        let sketch = |k: &str| {
            let doc = s.get(k).ok_or_else(|| format!("sketches: missing {k:?}"))?;
            QSketch::from_json(doc).ok_or_else(|| format!("sketches: malformed {k:?}"))
        };
        rec.rtt_sketch = Some(sketch("rtt_us")?);
        rec.stall_sketch = Some(sketch("stall_us")?);
    }
    Ok(Some(rec))
}

/// Parse a whole report stream: every interval record in input order, plus
/// the count of well-formed non-interval lines skipped. Blank lines are
/// ignored.
pub fn parse_reports<R: BufRead>(input: R) -> Result<(Vec<ParsedInterval>, u64), ParseError> {
    let mut intervals = Vec::new();
    let mut skipped = 0u64;
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let at = |message: String| ParseError {
            line: lineno,
            message,
        };
        let line = line.map_err(|e| at(format!("read error: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_interval_line(&line).map_err(at)? {
            Some(rec) => intervals.push(rec),
            None => skipped += 1,
        }
    }
    Ok((intervals, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_interval_defaults_missing_fields() {
        let rec = parse_interval_line("{\"kind\":\"interval\"}")
            .unwrap()
            .unwrap();
        assert_eq!(rec.daemon, "unknown");
        assert_eq!(rec.start_us, 0);
        assert_eq!(rec.stalls, 0);
        assert!(rec.by_port.is_empty());
        assert!(rec.rtt_sketch.is_none());
    }

    #[test]
    fn full_interval_round_trips_through_live_serialization() {
        use crate::live::{DaemonId, IntervalReport, LiveSummary};
        use crate::report::StallBreakdown;
        let mut rtt = QSketch::new();
        rtt.insert(30_000);
        let mut stall = QSketch::new();
        stall.insert(2_000_000);
        stall.insert(0);
        let report = IntervalReport {
            daemon: DaemonId::new("fe1.pop-a").unwrap(),
            interval: 2,
            start_us: 2_000_000,
            end_us: 3_000_000,
            packets: 400,
            packets_skipped: 1,
            packets_late: 0,
            flows_opened: 5,
            flows_finalized: 3,
            flows_closed: 3,
            flows_evicted_idle: 0,
            flows_shed: 0,
            active_flows: 2,
            flows_light: 1,
            flows_heavy: 1,
            promotions: 0,
            demotions: 0,
            live_stalls: 1,
            breakdown: StallBreakdown::default(),
            by_port: vec![(
                80,
                crate::live::PortDelta {
                    flows: 3,
                    stalls: 1,
                    stalled_us: 2_000_000,
                },
            )],
            rtt_sketch: Some(rtt.clone()),
            stall_sketch: Some(stall.clone()),
            shard_occupancy: None,
        };
        let rec = parse_interval_line(&report.to_json().compact())
            .unwrap()
            .unwrap();
        assert_eq!(rec.daemon, "fe1.pop-a");
        assert_eq!(rec.interval, 2);
        assert_eq!(rec.start_us, 2_000_000);
        assert_eq!(rec.end_us, 3_000_000);
        assert_eq!(rec.packets, 400);
        assert_eq!(rec.flows_finalized, 3);
        assert_eq!(
            rec.by_port,
            vec![(
                80,
                PortCounts {
                    flows: 3,
                    stalls: 1,
                    stalled_us: 2_000_000
                }
            )]
        );
        assert_eq!(rec.rtt_sketch, Some(rtt));
        assert_eq!(rec.stall_sketch, Some(stall));
        // And the summary is a skip, exactly like the advisor's rule.
        let summary = LiveSummary::default().to_json().compact();
        assert_eq!(parse_interval_line(&summary).unwrap(), None);
    }

    #[test]
    fn breakdown_sections_land_in_class_order() {
        let line = "{\"kind\":\"interval\",\"breakdown\":{\"stalls\":3,\"stalled_us\":900,\
                    \"by_cause\":{\"client_idle\":{\"n\":1,\"us\":100},\
                    \"retransmission\":{\"n\":2,\"us\":800},\
                    \"from_the_future\":{\"n\":9,\"us\":9}},\
                    \"by_retrans\":{\"tail_retrans\":{\"n\":2,\"us\":800}}}}";
        let rec = parse_interval_line(line).unwrap().unwrap();
        assert_eq!(rec.stalls, 3);
        assert_eq!(rec.stalled_us, 900);
        let idle = StallClass::ALL
            .iter()
            .position(|c| class_slug(*c) == "client_idle")
            .unwrap();
        let retr = StallClass::ALL
            .iter()
            .position(|c| class_slug(*c) == "retransmission")
            .unwrap();
        assert_eq!(rec.by_cause[idle], (1, 100));
        assert_eq!(rec.by_cause[retr], (2, 800));
        let tail = RetransClass::ALL
            .iter()
            .position(|c| retrans_slug(*c) == "tail_retrans")
            .unwrap();
        assert_eq!(rec.by_retrans[tail], (2, 800));
    }

    #[test]
    fn malformed_sections_are_errors_not_zeros() {
        let bad = [
            "not json",
            "[1,2,3]",
            "{\"kind\":\"interval\",\"by_port\":[]}",
            "{\"kind\":\"interval\",\"by_port\":{\"sixty\":{}}}",
            "{\"kind\":\"interval\",\"by_port\":{\"80\":{\"flows\":\"x\"}}}",
            "{\"kind\":\"interval\",\"breakdown\":{\"stalls\":1}}",
            "{\"kind\":\"interval\",\"breakdown\":{\"stalls\":1,\"stalled_us\":2,\
             \"by_cause\":{\"client_idle\":{\"n\":1}}}}",
            "{\"kind\":\"interval\",\"sketches\":{\"rtt_us\":{\"n\":1}}}",
        ];
        for line in bad {
            assert!(parse_interval_line(line).is_err(), "{line}");
        }
    }

    #[test]
    fn parse_reports_attributes_line_numbers() {
        let input = "{\"kind\":\"interval\"}\n\n{\"kind\":\"summary\"}\nnope\n";
        let err = parse_reports(input.as_bytes()).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.starts_with("not a JSON report:"));
        assert_eq!(err.to_string(), format!("line 4: {}", err.message));
        let (recs, skipped) =
            parse_reports("{\"kind\":\"interval\"}\n{\"kind\":\"summary\"}\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(skipped, 1);
    }
}

//! Aggregation across flows: cause shares by count and stalled time
//! (Tables 3 & 5), CDF construction (Figs. 1, 3, 6, 7, 10–12), and
//! quantiles (Table 8). The [`parse`] submodule is the shared reader for
//! the JSON-lines report streams the live pipeline emits.

pub mod parse;

use simnet::time::SimDuration;

use crate::causes::{RetransCause, RetransClass, StallCause, StallClass};
use crate::FlowAnalysis;

/// Share of a cause in stall volume (#) and stalled time (T), as percentages
/// — the paper's table cells.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Share {
    /// Percentage of stall count.
    pub volume_pct: f64,
    /// Percentage of stalled time.
    pub time_pct: f64,
}

/// `(count, stalled time)` accumulator for one cause class.
pub type CauseStats = (u64, SimDuration);

/// Aggregated stall statistics over a set of flows (one service).
///
/// Aggregation is keyed by [`StallClass`] / [`RetransClass`] — fixed enums,
/// stored densely — so callers iterate `StallClass::ALL` rather than
/// hard-coding label strings; labels exist only for rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Total stalls observed.
    pub total_stalls: u64,
    /// Total stalled time.
    pub total_stalled: SimDuration,
    /// Per top-level class, indexed by [`StallClass::index`].
    by_cause: [CauseStats; StallClass::ALL.len()],
    /// Per retransmission subclass, indexed by [`RetransClass::index`].
    by_retrans: [CauseStats; RetransClass::ALL.len()],
    /// Double-retransmission split: `(f-double time, t-double time)`.
    pub double_split: (SimDuration, SimDuration),
    /// Tail-retransmission split: `(Open-state time, Recovery-state time)`.
    pub tail_split: (SimDuration, SimDuration),
}

impl StallBreakdown {
    /// Accumulate one flow's stalls.
    pub fn add_flow(&mut self, analysis: &FlowAnalysis) {
        for stall in &analysis.stalls {
            self.total_stalls += 1;
            self.total_stalled += stall.duration;
            let e = &mut self.by_cause[stall.cause.class().index()];
            e.0 += 1;
            e.1 += stall.duration;
            if let StallCause::Retransmission(rc) = stall.cause {
                let e = &mut self.by_retrans[rc.class().index()];
                e.0 += 1;
                e.1 += stall.duration;
                match rc {
                    RetransCause::DoubleRetrans {
                        first_was_fast: true,
                    } => self.double_split.0 += stall.duration,
                    RetransCause::DoubleRetrans {
                        first_was_fast: false,
                    } => self.double_split.1 += stall.duration,
                    RetransCause::TailRetrans { open_state: true } => {
                        self.tail_split.0 += stall.duration
                    }
                    RetransCause::TailRetrans { open_state: false } => {
                        self.tail_split.1 += stall.duration
                    }
                    _ => {}
                }
            }
        }
    }

    /// Fold another breakdown into this one (used when per-shard breakdowns
    /// are combined; order-insensitive, so parallel folds stay deterministic).
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.total_stalls += other.total_stalls;
        self.total_stalled += other.total_stalled;
        for (e, o) in self.by_cause.iter_mut().zip(&other.by_cause) {
            e.0 += o.0;
            e.1 += o.1;
        }
        for (e, o) in self.by_retrans.iter_mut().zip(&other.by_retrans) {
            e.0 += o.0;
            e.1 += o.1;
        }
        self.double_split.0 += other.double_split.0;
        self.double_split.1 += other.double_split.1;
        self.tail_split.0 += other.tail_split.0;
        self.tail_split.1 += other.tail_split.1;
    }

    /// Raw `(count, stalled time)` for a top-level class.
    pub fn cause_stats(&self, class: StallClass) -> CauseStats {
        self.by_cause[class.index()]
    }

    /// Raw `(count, stalled time)` for a retransmission subclass.
    pub fn retrans_stats(&self, class: RetransClass) -> CauseStats {
        self.by_retrans[class.index()]
    }

    /// True if any stall was attributed to a timeout retransmission.
    pub fn any_retrans(&self) -> bool {
        self.by_retrans.iter().any(|&(n, _)| n > 0)
    }

    /// The `(volume %, time %)` share of a top-level cause class.
    pub fn share(&self, class: StallClass) -> Share {
        let (n, t) = self.cause_stats(class);
        Share {
            volume_pct: pct(n as f64, self.total_stalls as f64),
            time_pct: pct(t.as_secs_f64(), self.total_stalled.as_secs_f64()),
        }
    }

    /// The `(volume %, time %)` share of a retransmission subclass, relative
    /// to retransmission stalls only (Table 5's denominators).
    pub fn retrans_share(&self, class: RetransClass) -> Share {
        let (tot_n, tot_t) = self
            .by_retrans
            .iter()
            .fold((0u64, SimDuration::ZERO), |(n, t), &(cn, ct)| {
                (n + cn, t + ct)
            });
        let (n, t) = self.retrans_stats(class);
        Share {
            volume_pct: pct(n as f64, tot_n as f64),
            time_pct: pct(t.as_secs_f64(), tot_t.as_secs_f64()),
        }
    }
}

fn pct(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        100.0 * num / den
    }
}

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// `(x, F(x))` pairs at the given probe points — a plottable series.
    pub fn series(&self, probes: &[f64]) -> Vec<(f64, f64)> {
        probes.iter().map(|&x| (x, self.at(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::{RetransCause, StallCause};
    use crate::classify::Stall;
    use crate::replay::{EstCaState, Snapshot};
    use crate::{FlowAnalysis, FlowMetrics};
    use simnet::time::SimTime;

    fn stall(cause: StallCause, ms: u64) -> Stall {
        Stall {
            start: SimTime::ZERO,
            end: SimTime::from_millis(ms),
            duration: SimDuration::from_millis(ms),
            end_record: 0,
            cause,
            snapshot: Snapshot {
                ca_state: EstCaState::Open,
                packets_out: 0,
                sacked_out: 0,
                retrans_out: 0,
                lost_est: 0,
                holes: 0,
                in_flight: 0,
                rwnd: 0,
                dupacks: 0,
            },
            rel_position: 0.0,
        }
    }

    fn analysis(stalls: Vec<Stall>) -> FlowAnalysis {
        FlowAnalysis {
            stalls,
            metrics: FlowMetrics::default(),
            rtt_samples: vec![],
            rto_samples: vec![],
            in_flight_on_ack: vec![],
            init_rwnd: None,
            zero_rwnd_seen: false,
            time_regressions: 0,
        }
    }

    #[test]
    fn breakdown_shares_sum_to_hundred() {
        let mut b = StallBreakdown::default();
        b.add_flow(&analysis(vec![
            stall(StallCause::ClientIdle, 100),
            stall(
                StallCause::Retransmission(RetransCause::TailRetrans { open_state: true }),
                300,
            ),
            stall(StallCause::Retransmission(RetransCause::SmallCwnd), 600),
        ]));
        let idle = b.share(StallClass::ClientIdle);
        let retr = b.share(StallClass::Retransmission);
        assert!((idle.volume_pct - 33.333).abs() < 0.01);
        assert!((retr.volume_pct - 66.667).abs() < 0.01);
        assert!((idle.time_pct - 10.0).abs() < 0.01);
        assert!((retr.time_pct - 90.0).abs() < 0.01);
    }

    #[test]
    fn retrans_shares_use_retrans_denominator() {
        let mut b = StallBreakdown::default();
        b.add_flow(&analysis(vec![
            stall(StallCause::ClientIdle, 1000),
            stall(
                StallCause::Retransmission(RetransCause::DoubleRetrans {
                    first_was_fast: true,
                }),
                300,
            ),
            stall(StallCause::Retransmission(RetransCause::SmallCwnd), 100),
        ]));
        let d = b.retrans_share(RetransClass::DoubleRetrans);
        assert!((d.volume_pct - 50.0).abs() < 1e-9);
        assert!((d.time_pct - 75.0).abs() < 1e-9);
        assert_eq!(b.double_split.0, SimDuration::from_millis(300));
        assert_eq!(b.double_split.1, SimDuration::ZERO);
    }

    #[test]
    fn share_covers_every_stall_class() {
        // One stall per top-level class (via a representative cause), with
        // distinct durations so class totals are distinguishable.
        let causes: [StallCause; StallClass::ALL.len()] = [
            StallCause::DataUnavailable,
            StallCause::ResourceConstraint,
            StallCause::ClientIdle,
            StallCause::ZeroWindow,
            StallCause::PacketDelay,
            StallCause::Retransmission(RetransCause::SmallCwnd),
            StallCause::Undetermined,
        ];
        let mut b = StallBreakdown::default();
        b.add_flow(&analysis(
            causes
                .iter()
                .enumerate()
                .map(|(i, &c)| stall(c, 100 * (i as u64 + 1)))
                .collect(),
        ));
        let total_ms: u64 = (1..=7).map(|i| 100 * i).sum();
        let mut volume_sum = 0.0;
        let mut time_sum = 0.0;
        for (i, class) in StallClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i, "ALL order must match index()");
            assert_eq!(causes[i].class(), class, "cause {i} maps to its class");
            let (n, t) = b.cause_stats(class);
            assert_eq!(n, 1, "{class:?} got exactly one stall");
            assert_eq!(t, SimDuration::from_millis(100 * (i as u64 + 1)));
            let s = b.share(class);
            assert!((s.volume_pct - 100.0 / 7.0).abs() < 1e-9, "{class:?}");
            let want_t = 100.0 * (100.0 * (i as f64 + 1.0)) / total_ms as f64;
            assert!((s.time_pct - want_t).abs() < 1e-9, "{class:?}");
            volume_sum += s.volume_pct;
            time_sum += s.time_pct;
        }
        assert!((volume_sum - 100.0).abs() < 1e-9);
        assert!((time_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn retrans_share_covers_every_retrans_class() {
        let causes: [RetransCause; RetransClass::ALL.len()] = [
            RetransCause::DoubleRetrans {
                first_was_fast: true,
            },
            RetransCause::TailRetrans { open_state: false },
            RetransCause::SmallCwnd,
            RetransCause::SmallRwnd,
            RetransCause::ContinuousLoss,
            RetransCause::AckDelayLoss,
            RetransCause::Undetermined,
        ];
        let mut b = StallBreakdown::default();
        b.add_flow(&analysis(
            causes
                .iter()
                .map(|&rc| stall(StallCause::Retransmission(rc), 100))
                .collect(),
        ));
        assert!(b.any_retrans());
        for (i, class) in RetransClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i, "ALL order must match index()");
            assert_eq!(causes[i].class(), class, "cause {i} maps to its class");
            let (n, t) = b.retrans_stats(class);
            assert_eq!(n, 1, "{class:?} got exactly one stall");
            assert_eq!(t, SimDuration::from_millis(100));
            let s = b.retrans_share(class);
            assert!((s.volume_pct - 100.0 / 7.0).abs() < 1e-9, "{class:?}");
            assert!((s.time_pct - 100.0 / 7.0).abs() < 1e-9, "{class:?}");
        }
        // An empty breakdown reports zero shares, not NaN.
        let empty = StallBreakdown::default();
        assert!(!empty.any_retrans());
        for class in RetransClass::ALL {
            assert_eq!(empty.retrans_share(class), Share::default());
        }
        for class in StallClass::ALL {
            assert_eq!(empty.share(class), Share::default());
        }
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let flows = [
            analysis(vec![
                stall(StallCause::ClientIdle, 100),
                stall(StallCause::Retransmission(RetransCause::SmallRwnd), 200),
            ]),
            analysis(vec![stall(
                StallCause::Retransmission(RetransCause::TailRetrans { open_state: true }),
                300,
            )]),
        ];
        let mut seq = StallBreakdown::default();
        for f in &flows {
            seq.add_flow(f);
        }
        let mut merged = StallBreakdown::default();
        for f in &flows {
            let mut shard = StallBreakdown::default();
            shard.add_flow(f);
            merged.merge(&shard);
        }
        assert_eq!(seq, merged);
    }

    #[test]
    fn cdf_quantiles_and_at() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(3.0), 0.6);
        assert_eq!(c.at(10.0), 1.0);
        assert_eq!(c.quantile(0.5), Some(3.0));
        assert_eq!(c.quantile(0.9), Some(5.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.mean(), Some(3.0));
    }

    #[test]
    fn cdf_handles_empty_and_nan() {
        let c = Cdf::from_samples(vec![f64::NAN]);
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.at(1.0), 0.0);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let c = Cdf::from_samples((0..100).map(|i| i as f64).collect());
        let s = c.series(&[10.0, 50.0, 90.0]);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}

//! `tapo` — the TCP stall diagnosis tool, as a command line.
//!
//! The offline workflow of the paper: point it at a classic-pcap capture
//! from a server (header-only captures are fine) and get per-flow stall
//! diagnoses and an aggregate breakdown.
//!
//! ```text
//! tapo <capture.pcap>... [--flows] [--stalls] [--json] [--dump]
//!                        [--min-stall MS] [--mss BYTES] [--dupthres N]
//!                        [--threads N]
//!
//!   --flows         per-flow summary table, worst stalled first
//!   --stalls        print every stall (time, duration, cause, context)
//!   --json          machine-readable output (one JSON document)
//!   --dump          print every packet, tcpdump-style
//!   --min-stall MS  only report stalls at least this long
//!   --mss BYTES     analyzer MSS assumption        (default 1448)
//!   --dupthres N    analyzer dupack threshold      (default 3)
//!   --threads N     analysis worker threads (default: all cores; the
//!                   output is identical at any thread count)
//! ```
//!
//! The live (daemon) mode streams a capture — file, FIFO, or `-` for stdin
//! — through the sharded bounded-memory pipeline, emitting one report line
//! per interval and a final summary:
//!
//! ```text
//! tapo live <capture.pcap|-> [--shards N] [--cells N] [--batch N]
//!           [--ring N] [--interval MS] [--idle MS] [--linger MS]
//!           [--max-flows N] [--promote N] [--demote N] [--heavy-max N]
//!           [--per-shard] [--csv] [--pace X] [--mss BYTES] [--dupthres N]
//!           [--daemon-id ID] [--sketch on|off]
//!
//!   --shards N      worker shards, each owning its slice of the flow
//!                   space (default: available cores, capped at 8; output
//!                   is byte-identical at any shard count)
//!   --cells N       virtual flow cells — the shard-count-independent
//!                   unit of flow ownership and cap splitting (default 64)
//!   --batch N       ingestion batch size in packets (default 256; output
//!                   is byte-identical at any batch size)
//!   --ring N        driver→shard work-ring depth in batch buffers
//!                   (default 8)
//!   --interval MS   reporting interval in capture time   (default 1000)
//!   --idle MS       idle-flow eviction timeout, 0 = off  (default 60000)
//!   --linger MS     FIN/RST linger before finalize, 0 = off (default 1000)
//!   --max-flows N   hard cap on tracked flows, 0 = unbounded (default 0)
//!   --promote N     two-tier mode: track every flow in a compact light
//!                   tier, promote to a full analyzer after N dup-ACKs
//!                   (or a retransmission burst / RTO-scale ACK silence /
//!                   zero window); off by default = every flow heavy
//!   --demote N      demote a heavy flow after N consecutive calm packets
//!                   (0 = never; default 256; requires --promote)
//!   --heavy-max N   global cap on concurrently heavy flows, 0 = unbounded
//!                   (default 4096; requires --promote)
//!   --per-shard     include per-shard occupancy in reports
//!   --csv           CSV reports instead of JSON-lines (summary → stderr)
//!   --pace X        replay at X× capture time (1.0 = real time)
//!   --daemon-id ID  stamp every report with this daemon id (1..=40 chars
//!                   of [A-Za-z0-9._:-]; default: a stable hash of the
//!                   capture path, or "local" for stdin)
//!   --sketch on|off mergeable RTT / stall-duration quantile sketches in
//!                   the JSON reports (default on; fleet mode merges them)
//! ```
//!
//! The advise mode closes the loop: feed the live mode's JSON-lines
//! reports back in and get a per-service mitigation recommendation from a
//! counterfactual replay under all four recovery mechanisms:
//!
//! ```text
//! tapo advise <reports.jsonl|-> [--flows N] [--replicates N] [--seed N]
//!             [--threads N] [--min-stalled-us N] [--csv]
//!
//!   --flows N          simulated flows per replicate      (default 30)
//!   --replicates N     seeded replicates per service      (default 5)
//!   --seed N           replay master seed                 (default 1)
//!   --threads N        worker threads (default: all cores; output is
//!                      byte-identical at any thread count)
//!   --min-stalled-us N only advise services with at least this much
//!                      observed stalled time              (default 1)
//!   --csv              CSV recommendations instead of JSON-lines
//! ```
//!
//! The fleet mode aggregates report streams from *many* live daemons into
//! fleet-wide time buckets, merges their sketches and per-service shares,
//! and flags stall-share drift — deterministically: the output is
//! byte-identical regardless of input order, file-vs-stdin ingestion, or
//! thread count:
//!
//! ```text
//! tapo fleet [reports.jsonl...|-] [--bucket MS] [--threads N] [--csv]
//!            [--warmup N] [--drift PCT] [--daemon-drift PCT]
//!            [--min-share-us N] [--advise] [--flows N] [--replicates N]
//!            [--seed N] [--min-stalled-us N]
//!
//!   reports...         one stream per daemon (files or FIFOs), or a
//!                      single '-' / no argument for a stdin multiplex —
//!                      records carry daemon ids, so interleaving is fine
//!   --bucket MS        fleet bucket width in capture time (default 1000)
//!   --threads N        parse worker threads (default: all cores; output
//!                      is byte-identical at any thread count)
//!   --warmup N         buckets that only feed the drift EWMA (default 3)
//!   --drift PCT        fleet share must exceed its EWMA baseline by this
//!                      percentage to alert                 (default 50)
//!   --daemon-drift PCT a daemon's share must exceed the fleet share by
//!                      this percentage to alert            (default 100)
//!   --min-share-us N   stall-share noise floor, µs/flow  (default 1000)
//!   --advise           run the counterfactual advisor on the merged
//!                      per-service populations (accepts the advise
//!                      flags: --flows, --replicates, --seed,
//!                      --min-stalled-us)
//!   --csv              CSV fleet intervals on stdout (alerts as CSV on
//!                      stderr, summary/advice as JSON on stderr)
//! ```

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;

use tapo::json::Json;
use tapo::live::{self, DaemonId, LiveConfig};
use tapo::sink::{CsvSink, JsonLinesSink, ReportSink};
use tapo::{
    analyze_flow, AdviseConfig, AnalyzerConfig, FleetAlert, FleetConfig, FleetInterval,
    FlowAnalysis, RetransClass, Stall, StallBreakdown, StallCause, StallClass,
};
use tcp_trace::flow::FlowTrace;
use tcp_trace::pcap::{PcapReader, PcapStats};

struct Options {
    files: Vec<PathBuf>,
    show_flows: bool,
    show_stalls: bool,
    json: bool,
    dump: bool,
    min_stall_ms: u64,
    threads: usize,
    cfg: AnalyzerConfig,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        show_flows: false,
        show_stalls: false,
        json: false,
        dump: false,
        min_stall_ms: 0,
        threads: 0,
        cfg: AnalyzerConfig::default(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flows" => opts.show_flows = true,
            "--stalls" => opts.show_stalls = true,
            "--json" => opts.json = true,
            "--dump" => opts.dump = true,
            "--min-stall" => {
                opts.min_stall_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-stall requires milliseconds")?;
            }
            "--mss" => {
                opts.cfg.replay.mss = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--mss requires bytes")?;
            }
            "--dupthres" => {
                opts.cfg.replay.dupthres = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--dupthres requires N")?;
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads requires N")?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: tapo <capture.pcap>... [--flows] [--stalls] [--json] \
                            [--dump] [--min-stall MS] [--mss BYTES] [--dupthres N] \
                            [--threads N]"
                        .into(),
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other} (try --help)"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.files.is_empty() {
        return Err("no capture file given (try --help)".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("live") {
        args.next();
        return run_live(args);
    }
    if args.peek().map(String::as_str) == Some("advise") {
        args.next();
        return run_advise(args);
    }
    if args.peek().map(String::as_str) == Some("fleet") {
        args.next();
        return run_fleet(args);
    }
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut flows: Vec<FlowTrace> = Vec::new();
    let mut stats = PcapStats::default();
    for path in &opts.files {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("tapo: cannot open {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match PcapReader::read_all_stats(file) {
            Ok((mut parsed, s)) => {
                flows.append(&mut parsed);
                stats.packets += s.packets;
                stats.packets_skipped += s.packets_skipped;
                stats.records_truncated += s.records_truncated;
            }
            Err(e) => {
                eprintln!("tapo: cannot parse {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // Analysis is per-flow independent, so it shards cleanly; results stay
    // in flow order, so output is identical at any thread count.
    let threads = if opts.threads == 0 {
        simnet::par::available_threads()
    } else {
        opts.threads
    };
    let analyses: Vec<FlowAnalysis> =
        simnet::par::par_map(flows.len(), threads, |i| analyze_flow(&flows[i], opts.cfg));

    if opts.dump {
        for (i, flow) in flows.iter().enumerate() {
            println!("# flow #{i}");
            print!("{}", tcp_trace::text::render_flow(flow));
        }
    }
    if opts.json {
        print_json(&flows, &analyses, &opts, &stats);
    } else {
        print_text(&flows, &analyses, &opts, &stats);
    }
    ExitCode::SUCCESS
}

fn run_advise(mut args: impl Iterator<Item = String>) -> ExitCode {
    const USAGE: &str = "usage: tapo advise <reports.jsonl|-> [--flows N] [--replicates N] \
         [--seed N] [--threads N] [--min-stalled-us N] [--csv]";
    let mut input: Option<String> = None;
    let mut cfg = AdviseConfig::default();
    let mut csv = false;
    let fail = |msg: &str| -> ExitCode {
        eprintln!("{msg}");
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.flows = n,
                None => return fail("--flows requires N"),
            },
            "--replicates" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.replicates = n,
                None => return fail("--replicates requires N"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => return fail("--seed requires N"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.threads = n,
                None => return fail("--threads requires N"),
            },
            "--min-stalled-us" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.min_stalled_us = n,
                None => return fail("--min-stalled-us requires microseconds"),
            },
            "--csv" => csv = true,
            "--help" | "-h" => return fail(USAGE),
            other if other.starts_with('-') && other != "-" => {
                return fail(&format!("unknown option {other} (try --help)"));
            }
            file => {
                if input.replace(file.to_string()).is_some() {
                    return fail("advise takes exactly one report stream (or '-')");
                }
            }
        }
    }
    let Some(input) = input else {
        return fail("no report stream given: tapo advise <reports.jsonl|-> (try --help)");
    };
    let parsed = if input == "-" {
        tapo::advise_from_reports(std::io::stdin().lock(), &cfg)
    } else {
        match File::open(&input) {
            Ok(f) => tapo::advise_from_reports(BufReader::new(f), &cfg),
            Err(e) => {
                eprintln!("tapo advise: cannot open {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let (obs, advices) = match parsed {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tapo advise: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Recommendations go to stdout through the shared fixed-shape sinks;
    // the parse/selection accounting goes to stderr so a JSON consumer
    // sees advice objects only.
    eprintln!(
        "tapo advise: {} interval report(s), {} line(s) skipped, {} flow(s) on unmapped ports, \
         {} service(s) selected",
        obs.intervals,
        obs.skipped,
        obs.unmapped_flows,
        advices.len()
    );
    let stdout = std::io::stdout();
    let mut sink: Box<dyn ReportSink> = if csv {
        let mut s = CsvSink::new(stdout.lock());
        if s.write_header(&tapo::ServiceAdvice::csv_header()).is_err() {
            return ExitCode::FAILURE;
        }
        Box::new(s)
    } else {
        Box::new(JsonLinesSink::new(stdout.lock()))
    };
    for advice in &advices {
        if sink.emit(advice).is_err() {
            return ExitCode::FAILURE;
        }
    }
    if sink.finish().is_err() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_fleet(mut args: impl Iterator<Item = String>) -> ExitCode {
    const USAGE: &str = "usage: tapo fleet [reports.jsonl...|-] [--bucket MS] [--threads N] \
         [--warmup N] [--drift PCT] [--daemon-drift PCT] [--min-share-us N] [--csv] \
         [--advise] [--flows N] [--replicates N] [--seed N] [--min-stalled-us N]";
    let mut inputs: Vec<String> = Vec::new();
    let mut cfg = FleetConfig::default();
    let mut advise_cfg = AdviseConfig::default();
    let mut with_advice = false;
    let mut csv = false;
    let fail = |msg: &str| -> ExitCode {
        eprintln!("{msg}");
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bucket" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => cfg.bucket_us = ms * 1_000,
                _ => return fail("--bucket requires milliseconds (> 0)"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    cfg.threads = n;
                    advise_cfg.threads = n;
                }
                None => return fail("--threads requires N"),
            },
            "--warmup" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.drift.warmup = n,
                None => return fail("--warmup requires a bucket count"),
            },
            "--drift" => match args.next().and_then(|v| v.parse().ok()) {
                Some(pct) => cfg.drift.drift_pct = pct,
                None => return fail("--drift requires a percentage"),
            },
            "--daemon-drift" => match args.next().and_then(|v| v.parse().ok()) {
                Some(pct) => cfg.drift.daemon_drift_pct = pct,
                None => return fail("--daemon-drift requires a percentage"),
            },
            "--min-share-us" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.drift.min_share_us = n,
                None => return fail("--min-share-us requires microseconds"),
            },
            "--advise" => with_advice = true,
            "--flows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => advise_cfg.flows = n,
                None => return fail("--flows requires N"),
            },
            "--replicates" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => advise_cfg.replicates = n,
                None => return fail("--replicates requires N"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => advise_cfg.seed = n,
                None => return fail("--seed requires N"),
            },
            "--min-stalled-us" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => advise_cfg.min_stalled_us = n,
                None => return fail("--min-stalled-us requires microseconds"),
            },
            "--csv" => csv = true,
            "--help" | "-h" => return fail(USAGE),
            other if other.starts_with('-') && other != "-" => {
                return fail(&format!("unknown option {other} (try --help)"));
            }
            file => inputs.push(file.to_string()),
        }
    }
    if inputs.iter().any(|i| i == "-") && inputs.len() > 1 {
        return fail("'-' (stdin multiplex) cannot be mixed with files");
    }

    let parsed = if inputs.is_empty() || inputs[0] == "-" {
        tapo::read_reports("-", std::io::stdin().lock(), cfg.threads)
    } else {
        tapo::read_report_files(&inputs, cfg.threads)
    };
    let (records, skipped) = match parsed {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tapo fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = tapo::aggregate(&records, skipped, &cfg);
    let advices = if with_advice {
        tapo::advise(&out.summary.observations(), &advise_cfg)
    } else {
        Vec::new()
    };

    eprintln!(
        "tapo fleet: {} record(s) from {} daemon(s), {} bucket(s), {} alert(s), \
         {} line(s) skipped",
        out.summary.records, out.summary.daemons, out.summary.buckets, out.summary.alerts, skipped
    );

    let stdout = std::io::stdout();
    let ok = if csv {
        // Stdout stays one clean spreadsheet of fleet intervals; alerts get
        // their own CSV table on stderr, and the summary (plus advice, if
        // requested) follows there as JSON-lines.
        let emit_all = || -> std::io::Result<()> {
            let mut sink = CsvSink::new(stdout.lock());
            sink.write_header(&FleetInterval::csv_header())?;
            for iv in &out.intervals {
                sink.emit(iv)?;
            }
            sink.finish()?;
            let stderr = std::io::stderr();
            let mut alert_sink = CsvSink::new(stderr.lock());
            alert_sink.write_header(&FleetAlert::csv_header())?;
            for a in &out.alerts {
                alert_sink.emit(a)?;
            }
            alert_sink.finish()?;
            let mut side = JsonLinesSink::new(stderr.lock());
            side.emit(&out.summary)?;
            for advice in &advices {
                side.emit(advice)?;
            }
            side.finish()
        };
        emit_all().is_ok()
    } else {
        let emit_all = || -> std::io::Result<()> {
            let mut sink = JsonLinesSink::new(stdout.lock());
            for iv in &out.intervals {
                sink.emit(iv)?;
            }
            for a in &out.alerts {
                sink.emit(a)?;
            }
            sink.emit(&out.summary)?;
            for advice in &advices {
                sink.emit(advice)?;
            }
            sink.finish()
        };
        emit_all().is_ok()
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_live(mut args: impl Iterator<Item = String>) -> ExitCode {
    const USAGE: &str = "usage: tapo live <capture.pcap|-> [--shards N] [--cells N] [--batch N] \
         [--ring N] [--interval MS] [--idle MS] [--linger MS] [--max-flows N] [--promote N] \
         [--demote N] [--heavy-max N] [--per-shard] [--csv] [--pace X] [--mss BYTES] \
         [--dupthres N] [--daemon-id ID] [--sketch on|off]";
    let mut input: Option<String> = None;
    let mut b = LiveConfig::builder();
    let mut csv = false;
    let mut daemon_given = false;
    let fail = |msg: &str| -> ExitCode {
        eprintln!("{msg}");
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.shards(n),
                None => return fail("--shards requires N"),
            },
            "--cells" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.cells(n),
                None => return fail("--cells requires N"),
            },
            "--batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.batch(n),
                None => return fail("--batch requires a packet count"),
            },
            "--ring" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.ring_depth(n),
                None => return fail("--ring requires a buffer count"),
            },
            "--interval" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => b = b.interval_ms(ms),
                None => return fail("--interval requires milliseconds"),
            },
            "--idle" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => b = b.idle_ms(ms),
                None => return fail("--idle requires milliseconds (0 disables)"),
            },
            "--linger" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => b = b.linger_ms(ms),
                None => return fail("--linger requires milliseconds (0 disables)"),
            },
            "--max-flows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.max_flows(n),
                None => return fail("--max-flows requires N (0 = unbounded)"),
            },
            "--promote" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.promote(n),
                None => return fail("--promote requires a dup-ACK count"),
            },
            "--demote" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.demote(n),
                None => return fail("--demote requires a calm-packet streak (0 = never)"),
            },
            "--heavy-max" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.heavy_max(n),
                None => return fail("--heavy-max requires N (0 = unbounded)"),
            },
            "--per-shard" => b = b.per_shard_occupancy(true),
            "--csv" => csv = true,
            "--pace" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) => b = b.pace(Some(x)),
                None => return fail("--pace requires a factor"),
            },
            "--mss" => match args.next().and_then(|v| v.parse().ok()) {
                Some(m) => b = b.mss(m),
                None => return fail("--mss requires bytes"),
            },
            "--dupthres" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => b = b.dupthres(n),
                None => return fail("--dupthres requires N"),
            },
            "--daemon-id" => match args.next() {
                Some(id) => {
                    b = b.daemon_id(id);
                    daemon_given = true;
                }
                None => return fail("--daemon-id requires an id"),
            },
            "--sketch" => match args.next().as_deref() {
                Some("on") => b = b.sketch(true),
                Some("off") => b = b.sketch(false),
                _ => return fail("--sketch requires on|off"),
            },
            "--help" | "-h" => return fail(USAGE),
            other if other.starts_with('-') && other != "-" => {
                return fail(&format!("unknown option {other} (try --help)"));
            }
            file => {
                if input.replace(file.to_string()).is_some() {
                    return fail("live mode takes exactly one capture (or '-')");
                }
            }
        }
    }
    let Some(input) = input else {
        return fail("no capture given: tapo live <capture.pcap|-> (try --help)");
    };
    // Without an explicit id, a file-fed daemon gets a stable hash of its
    // capture path — restart-safe and pid-free — while stdin stays the
    // "local" default (there is no path to hash).
    if !daemon_given && input != "-" {
        b = b.daemon_id(DaemonId::derived_from_path(&input).as_str());
    }
    let cfg = match b.build() {
        Ok(cfg) => cfg,
        Err(e) => return fail(&format!("tapo live: {e}")),
    };

    // Interval reports stream to stdout through one fixed-shape sink; in
    // CSV mode stdout stays a clean spreadsheet (header up front, even if
    // no interval ever completes) and the JSON summary goes to stderr.
    let stdout = std::io::stdout();
    let mut sink: Box<dyn ReportSink> = if csv {
        let mut s = CsvSink::new(stdout.lock());
        if s.write_header(&live::IntervalReport::csv_header()).is_err() {
            return ExitCode::FAILURE;
        }
        Box::new(s)
    } else {
        Box::new(JsonLinesSink::new(stdout.lock()))
    };
    let mut emit = |r: &live::IntervalReport| {
        sink.emit(r).expect("write report to stdout");
    };
    let result = if input == "-" {
        live::run(std::io::stdin().lock(), &cfg, &mut emit)
    } else {
        match File::open(&input) {
            Ok(f) => live::run(BufReader::new(f), &cfg, &mut emit),
            Err(e) => {
                eprintln!("tapo live: cannot open {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match result {
        Ok(summary) => {
            let ok = if csv {
                sink.finish().is_ok()
                    && JsonLinesSink::new(std::io::stderr().lock())
                        .emit(&summary)
                        .is_ok()
            } else {
                sink.emit(&summary).is_ok() && sink.finish().is_ok()
            };
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tapo live: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_text(flows: &[FlowTrace], analyses: &[FlowAnalysis], opts: &Options, stats: &PcapStats) {
    let mut breakdown = StallBreakdown::default();
    let mut flows_with_stalls = 0usize;
    let mut total_bytes = 0u64;
    for a in analyses {
        breakdown.add_flow(a);
        if !a.stalls.is_empty() {
            flows_with_stalls += 1;
        }
        total_bytes += a.metrics.goodput_bytes;
    }

    println!(
        "{} flows, {:.1} MB served; {} flows ({:.0}%) stalled; {} stalls, {:.1}s stalled in total",
        flows.len(),
        total_bytes as f64 / 1e6,
        flows_with_stalls,
        100.0 * flows_with_stalls as f64 / flows.len().max(1) as f64,
        breakdown.total_stalls,
        breakdown.total_stalled.as_secs_f64(),
    );
    println!(
        "{} packets decoded, {} skipped (non-IPv4/TCP or malformed), {} truncated record(s)",
        stats.packets, stats.packets_skipped, stats.records_truncated,
    );

    println!("\nstall causes (volume% / time%):");
    for class in StallClass::ALL {
        let share = breakdown.share(class);
        if share.volume_pct > 0.0 {
            println!(
                "  {:<12} {:>5.1}% / {:>5.1}%",
                class.label(),
                share.volume_pct,
                share.time_pct
            );
        }
    }
    if breakdown.any_retrans() {
        println!("\ntimeout-retransmission breakdown (volume% / time% of retrans stalls):");
        for class in RetransClass::ALL {
            let share = breakdown.retrans_share(class);
            if share.volume_pct > 0.0 {
                println!(
                    "  {:<14} {:>5.1}% / {:>5.1}%",
                    class.label(),
                    share.volume_pct,
                    share.time_pct
                );
            }
        }
    }

    if opts.show_flows {
        println!("\nper-flow summary (worst stalled first):");
        println!("{}", tapo::FlowSummary::header());
        for row in tapo::summary::rank_by_stalled(analyses) {
            println!("{}", row.row());
        }
    }

    if opts.show_stalls {
        println!("\nper-flow stall log:");
        for (i, a) in analyses.iter().enumerate() {
            let interesting: Vec<_> = a
                .stalls
                .iter()
                .filter(|s| s.duration.as_millis() >= opts.min_stall_ms)
                .collect();
            if interesting.is_empty() {
                continue;
            }
            println!(
                "flow #{i}: {} bytes, {:.1}s, {:.0}% stalled{}",
                a.metrics.goodput_bytes,
                a.metrics.duration.as_secs_f64(),
                a.stall_ratio() * 100.0,
                a.init_rwnd
                    .map(|w| format!(", init rwnd {w}B"))
                    .unwrap_or_default(),
            );
            for s in interesting {
                println!(
                    "  {:>10} +{:>9}  {:<40} in_flight={} state={:?}",
                    s.start.to_string(),
                    s.duration.to_string(),
                    cause_str(&s.cause),
                    s.snapshot.in_flight,
                    s.snapshot.ca_state,
                );
            }
        }
    }
}

fn cause_str(cause: &StallCause) -> String {
    match cause {
        StallCause::Retransmission(rc) => format!("retrans: {}", rc.label()),
        other => other.label().to_string(),
    }
}

fn ip_str(ip: [u8; 4]) -> String {
    format!("{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3])
}

fn stall_json(s: &Stall) -> Json {
    let retrans_cause = match s.cause {
        StallCause::Retransmission(rc) => Json::from(rc.label()),
        _ => Json::Null,
    };
    Json::obj([
        ("start_s", Json::from(s.start.as_secs_f64())),
        ("end_s", Json::from(s.end.as_secs_f64())),
        ("duration_s", Json::from(s.duration.as_secs_f64())),
        ("end_record", Json::from(s.end_record)),
        ("cause", Json::from(s.cause.label())),
        ("retrans_cause", retrans_cause),
        ("rel_position", Json::from(s.rel_position)),
        (
            "snapshot",
            Json::obj([
                ("ca_state", Json::from(format!("{:?}", s.snapshot.ca_state))),
                ("packets_out", Json::from(s.snapshot.packets_out)),
                ("sacked_out", Json::from(s.snapshot.sacked_out)),
                ("retrans_out", Json::from(s.snapshot.retrans_out)),
                ("lost_est", Json::from(s.snapshot.lost_est)),
                ("holes", Json::from(s.snapshot.holes)),
                ("in_flight", Json::from(s.snapshot.in_flight)),
                ("rwnd", Json::from(s.snapshot.rwnd)),
                ("dupacks", Json::from(s.snapshot.dupacks)),
            ]),
        ),
    ])
}

fn print_json(flows: &[FlowTrace], analyses: &[FlowAnalysis], opts: &Options, stats: &PcapStats) {
    let flows_json: Vec<Json> = analyses
        .iter()
        .zip(flows)
        .map(|(a, t)| {
            Json::obj([
                (
                    "key",
                    match t.key {
                        Some(key) => Json::obj([
                            ("server", Json::from(ip_str(key.server_ip))),
                            ("server_port", Json::from(u64::from(key.server_port))),
                            ("client", Json::from(ip_str(key.client_ip))),
                            ("client_port", Json::from(u64::from(key.client_port))),
                        ]),
                        None => Json::Null,
                    },
                ),
                ("packets", Json::from(t.records.len())),
                ("bytes", Json::from(a.metrics.goodput_bytes)),
                ("duration_s", Json::from(a.metrics.duration.as_secs_f64())),
                ("stall_ratio", Json::from(a.stall_ratio())),
                (
                    "mean_rtt_s",
                    Json::from(a.metrics.mean_rtt.map(|d| d.as_secs_f64())),
                ),
                (
                    "mean_rto_s",
                    Json::from(a.metrics.mean_rto.map(|d| d.as_secs_f64())),
                ),
                ("retrans_pkts", Json::from(a.metrics.retrans_pkts)),
                ("init_rwnd", Json::from(a.init_rwnd)),
                (
                    "stalls",
                    Json::Arr(
                        a.stalls
                            .iter()
                            .filter(|s| s.duration.as_millis() >= opts.min_stall_ms)
                            .map(stall_json)
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("tool", Json::from("tapo")),
        ("packets", Json::from(stats.packets)),
        ("packets_skipped", Json::from(stats.packets_skipped)),
        ("records_truncated", Json::from(stats.records_truncated)),
        (
            "config",
            Json::obj([
                ("mss", Json::from(opts.cfg.replay.mss)),
                ("dupthres", Json::from(opts.cfg.replay.dupthres)),
                (
                    "min_rto_s",
                    Json::from(opts.cfg.replay.min_rto.as_secs_f64()),
                ),
                (
                    "max_rto_s",
                    Json::from(opts.cfg.replay.max_rto.as_secs_f64()),
                ),
                (
                    "initial_rto_s",
                    Json::from(opts.cfg.replay.initial_rto.as_secs_f64()),
                ),
                (
                    "small_in_flight",
                    Json::from(opts.cfg.classify.small_in_flight),
                ),
                (
                    "continuous_loss_min",
                    Json::from(opts.cfg.classify.continuous_loss_min),
                ),
            ]),
        ),
        ("flows", Json::Arr(flows_json)),
    ]);
    println!("{}", doc.pretty());
}

//! Fixed-shape report emission: one sink API over the JSON-lines and CSV
//! renderings every TAPO pipeline emits.
//!
//! The live daemon's interval reports, its end-of-run summary, and the
//! offline `repro`/`validate` tables all share the same contract: a stable
//! header, rows that always carry the full column set (zero when idle),
//! and a one-object-per-line JSON alternative — so downstream tooling
//! ingests them without schema discovery and CI can diff them bytewise.
//! [`ReportSink`] is that contract as a trait; [`JsonLinesSink`] and
//! [`CsvSink`] are the two concrete writers, replacing the parallel ad-hoc
//! `println!`/`write!` paths that used to live in each binary.

use std::io::{self, Write};

use crate::json::Json;

/// One fixed-shape record: a stable CSV header, one rendered CSV row, and
/// the same data as a single JSON object.
///
/// Implementations must keep all three shapes *fixed*: the header never
/// depends on the record's values, and every column/key is always present.
pub trait Record {
    /// The stable column header for this record type.
    fn header(&self) -> String;
    /// This record as one CSV row matching [`Record::header`]. Cells
    /// needing quoting must already be escaped (see [`csv_escape`]).
    fn csv(&self) -> String;
    /// This record as one JSON object.
    fn json(&self) -> Json;
}

/// Where fixed-shape records go. Implementations decide the rendering;
/// callers just [`ReportSink::emit`] each record as it is produced.
pub trait ReportSink {
    /// Emit one record.
    fn emit(&mut self, rec: &dyn Record) -> io::Result<()>;
    /// Flush any buffered output (call once after the last record).
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// JSON-lines: each record rendered as one compact JSON object per line.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// A sink writing JSON-lines to `out`.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }
}

impl<W: Write> ReportSink for JsonLinesSink<W> {
    fn emit(&mut self, rec: &dyn Record) -> io::Result<()> {
        writeln!(self.out, "{}", rec.json().compact())
    }
    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// CSV: the header once (from the first record), then one row per record.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: W,
    header_written: bool,
}

impl<W: Write> CsvSink<W> {
    /// A sink writing CSV to `out`; the header is taken from the first
    /// emitted record.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            header_written: false,
        }
    }

    /// Write `header` now instead of waiting for the first record — for
    /// streaming consumers that want the schema even if no record ever
    /// arrives (e.g. an idle capture).
    pub fn write_header(&mut self, header: &str) -> io::Result<()> {
        self.header_written = true;
        writeln!(self.out, "{header}")
    }
}

impl<W: Write> ReportSink for CsvSink<W> {
    fn emit(&mut self, rec: &dyn Record) -> io::Result<()> {
        if !self.header_written {
            self.header_written = true;
            writeln!(self.out, "{}", rec.header())?;
        }
        writeln!(self.out, "{}", rec.csv())
    }
    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Quote a CSV cell if (and only if) it needs it — commas, quotes, or line
/// breaks inside the value (an unquoted embedded newline splits the row in
/// two for any RFC 4180 reader). Numeric counter rows never need this;
/// free-text table cells (the `repro` tables) do.
pub fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Split one CSV row back into its cells — the exact inverse of joining
/// [`csv_escape`]d cells with commas. Handles quoted cells containing
/// commas, doubled quotes, and embedded line breaks (pass the full logical
/// row, which may span physical lines). Returns `None` for rows no
/// RFC 4180 writer produces: an unterminated quote, text after a closing
/// quote, or a bare quote inside an unquoted cell.
pub fn csv_fields(row: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut cell = String::new();
    let mut chars = row.chars().peekable();
    loop {
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next() {
                    None => return None, // unterminated quote
                    Some('"') if chars.peek() == Some(&'"') => {
                        chars.next();
                        cell.push('"');
                    }
                    Some('"') => break,
                    Some(c) => cell.push(c),
                }
            }
            match chars.next() {
                None => {
                    fields.push(std::mem::take(&mut cell));
                    return Some(fields);
                }
                Some(',') => fields.push(std::mem::take(&mut cell)),
                Some(_) => return None, // text after closing quote
            }
        } else {
            loop {
                match chars.next() {
                    None => {
                        fields.push(std::mem::take(&mut cell));
                        return Some(fields);
                    }
                    Some(',') => {
                        fields.push(std::mem::take(&mut cell));
                        break;
                    }
                    Some('"') => return None, // bare quote in unquoted cell
                    Some(c) => cell.push(c),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row(u64);
    impl Record for Row {
        fn header(&self) -> String {
            "a,b".into()
        }
        fn csv(&self) -> String {
            format!("{},{}", self.0, self.0 * 2)
        }
        fn json(&self) -> Json {
            Json::obj([("a", Json::from(self.0)), ("b", Json::from(self.0 * 2))])
        }
    }

    #[test]
    fn csv_sink_writes_header_once() {
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf);
            sink.emit(&Row(1)).unwrap();
            sink.emit(&Row(2)).unwrap();
            sink.finish().unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n2,4\n");
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf);
            sink.emit(&Row(1)).unwrap();
            sink.emit(&Row(2)).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"a\":1,\"b\":2}\n"));
    }

    #[test]
    fn escape_quotes_only_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fields_invert_escape() {
        let cells = ["plain", "a,b", "say \"hi\"", "two\nlines", "", "crlf\r\n"];
        let row: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
        let parsed = csv_fields(&row.join(",")).unwrap();
        assert_eq!(parsed, cells);
        // Malformed rows are rejected, not mis-split.
        assert_eq!(csv_fields("\"unterminated"), None);
        assert_eq!(csv_fields("\"closed\"junk,b"), None);
        assert_eq!(csv_fields("bare\"quote"), None);
        // The empty row is one empty cell, matching `"".split(',')`.
        assert_eq!(csv_fields("").unwrap(), vec![""]);
    }

    #[test]
    fn escape_quotes_line_breaks() {
        // An unquoted newline would split the row; RFC 4180 requires such
        // cells to be quoted (the break itself is preserved verbatim).
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_escape("crlf\r\nrow"), "\"crlf\r\nrow\"");
        assert_eq!(csv_escape("bare\rcr"), "\"bare\rcr\"");
        assert_eq!(csv_escape("quote\"and\nbreak"), "\"quote\"\"and\nbreak\"");
    }
}

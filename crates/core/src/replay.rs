//! Sender-state reconstruction from a server-side packet trace.
//!
//! TAPO never sees kernel state: everything in Table 2 of the paper —
//! `ca_state`, `in_flight`, `sacked_out`, `lost_out`, `retran_out`,
//! `snd_una`/`snd_nxt`, retransmission counts, spurious retransmissions,
//! `rwnd`/`init_rwnd`, file position — is re-derived here by *mimicking the
//! TCP stack* against the observed packets, exactly as the paper's tool
//! does. The estimator deliberately lives in this crate (not `tcp-sim`) so
//! the analyzer stays an independent observer that also works on real pcap
//! captures.

use simnet::time::{SimDuration, SimTime};
use tcp_trace::record::{Direction, TraceRecord};

/// Estimated congestion state (mirrors the kernel's four states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstCaState {
    /// No dubious events outstanding.
    Open,
    /// Dupacks below the threshold.
    Disorder,
    /// Fast retransmit observed.
    Recovery,
    /// Timeout retransmission observed.
    Loss,
}

/// Replay configuration (the analyzer's own, independent of the sender's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Assumed MSS (for packet-count arithmetic on byte offsets).
    pub mss: u32,
    /// Assumed duplicate-ACK threshold.
    pub dupthres: u32,
    /// RTO floor (Linux: 200ms).
    pub min_rto: SimDuration,
    /// RTO ceiling.
    pub max_rto: SimDuration,
    /// RTO before the first RTT sample (RFC 6298: 1s).
    pub initial_rto: SimDuration,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            mss: 1448,
            dupthres: 3,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(120),
            initial_rto: SimDuration::from_secs(1),
        }
    }
}

/// RFC 6298 estimator (the analyzer's independent copy).
#[derive(Debug, Clone)]
struct MiniRtt {
    cfg: ReplayConfig,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
}

impl MiniRtt {
    fn new(cfg: ReplayConfig) -> Self {
        MiniRtt {
            cfg,
            srtt: None,
            rttvar: SimDuration::ZERO,
        }
    }
    fn observe(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3) / 4 + err / 4;
                self.srtt = Some((srtt * 7) / 8 + rtt / 8);
            }
        }
    }
    fn rto(&self) -> SimDuration {
        // Linux `__tcp_set_rto` semantics, mirroring the sender-side
        // estimator: the floor applies to the 4·RTTVAR term, not the sum.
        match self.srtt {
            None => self.cfg.initial_rto,
            Some(s) => (s + (self.rttvar * 4).max(self.cfg.min_rto)).min(self.cfg.max_rto),
        }
    }
    fn seed(&mut self, srtt: SimDuration, rttvar: SimDuration) {
        self.srtt = Some(srtt);
        self.rttvar = rttvar;
    }
}

/// How a retransmission was (estimated to be) triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetransKind {
    /// Enough dupacks were outstanding: fast retransmit.
    Fast,
    /// Not enough dupacks: retransmission timer.
    Timeout,
}

/// Lifetime history of one transmitted segment.
#[derive(Debug, Clone)]
pub struct SegHist {
    /// Payload length.
    pub len: u32,
    /// Time of original transmission.
    pub first_tx: SimTime,
    /// Time of the most recent (re)transmission.
    pub last_tx: SimTime,
    /// Total transmissions (1 = never retransmitted).
    pub tx_count: u32,
    /// How the first retransmission was triggered, if any.
    pub first_retrans: Option<RetransKind>,
    /// A DSACK later reported this segment as received in duplicate.
    pub dsacked: bool,
}

/// One observed retransmission event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransEvent {
    /// Record index in the trace.
    pub idx: usize,
    /// Segment start offset.
    pub seq: u64,
    /// Which retransmission of the segment this is (1 = first).
    pub nth: u32,
    /// Estimated trigger.
    pub kind: RetransKind,
}

/// Outstanding-segment marks (the analyzer's scoreboard). Carries its own
/// first-transmission time and retransmission flag so the cumulative-ACK
/// retire path can take RTT samples from the scoreboard itself — the
/// per-segment history map is only consulted on the rare paths
/// (retransmissions, DSACKs, finalization), never per ACK.
#[derive(Debug, Clone, Copy, Default)]
struct OutSeg {
    len: u32,
    sacked: bool,
    lost: bool,
    retrans_out: bool,
    /// Set once the segment is seen retransmitted (Karn: no RTT sample).
    retx: bool,
    /// Time of the original transmission.
    first_tx: SimTime,
}

/// Sorted flat map of per-segment histories, keyed by start offset.
///
/// New data arrives in sequence order, so inserts are almost always a
/// `push`; lookups are binary searches. This replaces a `BTreeMap` on the
/// replay hot path — same ordering semantics, a fraction of the cost.
#[derive(Debug, Default)]
pub struct SegHistMap {
    v: Vec<(u64, SegHist)>,
}

impl SegHistMap {
    fn idx(&self, seq: u64) -> Result<usize, usize> {
        self.v.binary_search_by_key(&seq, |(s, _)| *s)
    }

    /// The history of the segment starting exactly at `seq`.
    pub fn get(&self, seq: u64) -> Option<&SegHist> {
        self.idx(seq).ok().map(|i| &self.v[i].1)
    }

    /// Mutable access to the history at `seq`.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut SegHist> {
        match self.idx(seq) {
            Ok(i) => Some(&mut self.v[i].1),
            Err(_) => None,
        }
    }

    /// Insert or replace the history at `seq`.
    pub fn insert(&mut self, seq: u64, h: SegHist) {
        match self.v.last() {
            Some((last, _)) if *last >= seq => match self.idx(seq) {
                Ok(i) => self.v[i].1 = h,
                Err(i) => self.v.insert(i, (seq, h)),
            },
            _ => self.v.push((seq, h)),
        }
    }

    /// The entry with the greatest key ≤ `seq` (a `BTreeMap`'s
    /// `range_mut(..=seq).next_back()`).
    pub fn last_at_or_below_mut(&mut self, seq: u64) -> Option<&mut SegHist> {
        let i = self.v.partition_point(|(s, _)| *s <= seq);
        i.checked_sub(1).map(|i| &mut self.v[i].1)
    }

    /// Number of distinct segments seen.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether no segment has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Iterate `(start_offset, history)` in offset order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SegHist)> {
        self.v.iter().map(|(s, h)| (*s, h))
    }

    /// Drop all histories, keeping the backing storage for reuse.
    pub fn clear(&mut self) {
        self.v.clear();
    }
}

/// The analyzer's scoreboard: outstanding segments in ascending offset
/// order. New data always enters at the tail and cumulative ACKs retire a
/// prefix, so a flat Vec with a head index gives O(1) amortized
/// insert/retire where a `BTreeMap` paid a tree rebalance per packet.
#[derive(Debug, Default)]
struct Outstanding {
    v: Vec<(u64, OutSeg)>,
    head: usize,
}

impl Outstanding {
    /// Drop all segments (live and retired prefix), keeping the storage.
    fn clear(&mut self) {
        self.v.clear();
        self.head = 0;
    }

    fn len(&self) -> usize {
        self.v.len() - self.head
    }

    fn is_empty(&self) -> bool {
        self.v.len() == self.head
    }

    fn live(&self) -> &[(u64, OutSeg)] {
        &self.v[self.head..]
    }

    fn live_mut(&mut self) -> &mut [(u64, OutSeg)] {
        &mut self.v[self.head..]
    }

    /// Lowest outstanding start offset.
    fn first_key(&self) -> Option<u64> {
        self.v.get(self.head).map(|(s, _)| *s)
    }

    /// Append a segment; offsets only ever grow.
    fn push(&mut self, seq: u64, seg: OutSeg) {
        debug_assert!(self.v.last().is_none_or(|(s, _)| *s < seq));
        self.v.push((seq, seg));
    }

    fn get_mut(&mut self, seq: u64) -> Option<&mut OutSeg> {
        let live = &mut self.v[self.head..];
        match live.binary_search_by_key(&seq, |(s, _)| *s) {
            Ok(i) => Some(&mut live[i].1),
            Err(_) => None,
        }
    }

    /// Mutable tail view: live entries with start offset ≥ `start`.
    fn tail_mut(&mut self, start: u64) -> &mut [(u64, OutSeg)] {
        let i = self.head + self.v[self.head..].partition_point(|(s, _)| *s < start);
        &mut self.v[i..]
    }

    /// Retire every live segment wholly below `ack`, calling `f` on each in
    /// ascending offset order. A partially-acked straggler (start below
    /// `ack`, end above) is kept in place, exactly like the old
    /// `range(..ack)` + filter on the `BTreeMap`.
    fn retire_below(&mut self, ack: u64, mut f: impl FnMut(u64, OutSeg)) {
        // Cumulative ACKs retire a short prefix, so a forward scan only
        // touches cache lines the retire loop reads anyway — where a binary
        // search probed O(log n) random lines per ACK.
        let mut end = self.head;
        while end < self.v.len() && self.v[end].0 < ack {
            end += 1;
        }
        let mut kept = 0usize;
        for i in self.head..end {
            let (seq, seg) = self.v[i];
            if seq + seg.len as u64 <= ack {
                f(seq, seg);
            } else {
                self.v[self.head + kept] = (seq, seg);
                kept += 1;
            }
        }
        // Slide the (rare) keepers up against the surviving suffix.
        for j in (0..kept).rev() {
            self.v[end - kept + j] = self.v[self.head + j];
        }
        self.head = end - kept;
        // Amortized compaction of the retired prefix.
        if self.head > 64 && self.head * 2 > self.v.len() {
            self.v.drain(..self.head);
            self.head = 0;
        }
    }
}

/// A point-in-time view of the reconstructed sender state, captured just
/// before a stall-ending packet is processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Estimated congestion state.
    pub ca_state: EstCaState,
    /// Outstanding original transmissions (packets).
    pub packets_out: u32,
    /// SACKed segments.
    pub sacked_out: u32,
    /// Outstanding retransmissions.
    pub retrans_out: u32,
    /// Estimated lost segments.
    pub lost_est: u32,
    /// Unacked segments below the highest SACK (the paper's `holes`).
    pub holes: u32,
    /// Equation 1 of the paper.
    pub in_flight: u32,
    /// Last advertised peer window (bytes).
    pub rwnd: u64,
    /// Duplicate-ACK count since the last forward ACK.
    pub dupacks: u32,
}

/// A response interval within the flow (one request/response exchange).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseBound {
    /// When the request (inbound data) arrived at the server.
    pub request_at: SimTime,
    /// First stream offset of the response.
    pub start_seq: u64,
    /// One past the last stream offset (filled after the trace ends).
    pub end_seq: u64,
}

/// The full reconstruction of one flow.
#[derive(Debug)]
pub struct Replay {
    cfg: ReplayConfig,
    /// Per-segment lifetime history, by start offset.
    pub hist: SegHistMap,
    outstanding: Outstanding,
    snd_una: u64,
    snd_nxt: u64,
    sacked_out: u32,
    lost_est: u32,
    retrans_out: u32,
    high_sacked: u64,
    dupacks: u32,
    ca_state: EstCaState,
    high_seq: u64,
    rtt: MiniRtt,
    last_rwnd: u64,
    /// Initial receive window from the client's SYN, if captured.
    pub init_rwnd: Option<u64>,
    /// True once a non-SYN packet has been seen.
    pub established: bool,
    /// RTT samples (never-retransmitted segments only).
    pub rtt_samples: Vec<SimDuration>,
    /// The RTO estimate recorded at each timeout retransmission.
    pub rto_samples: Vec<SimDuration>,
    /// `in_flight` recorded on each inbound ACK (Fig. 11).
    pub in_flight_on_ack: Vec<u32>,
    /// All observed retransmissions.
    pub retrans_events: Vec<RetransEvent>,
    /// DSACK count (spurious retransmissions).
    pub spurious: u32,
    /// Response intervals, in order.
    pub responses: Vec<ResponseBound>,
    /// Whether any inbound ACK advertised a zero window.
    pub zero_rwnd_seen: bool,
    /// When the server's SYN-ACK was sent (to seed SRTT from the handshake,
    /// as the kernel does).
    synack_at: Option<SimTime>,
}

impl Replay {
    /// A fresh reconstruction.
    pub fn new(cfg: ReplayConfig) -> Self {
        Replay {
            cfg,
            hist: SegHistMap::default(),
            outstanding: Outstanding::default(),
            snd_una: 0,
            snd_nxt: 0,
            sacked_out: 0,
            lost_est: 0,
            retrans_out: 0,
            high_sacked: 0,
            dupacks: 0,
            ca_state: EstCaState::Open,
            high_seq: 0,
            rtt: MiniRtt::new(cfg),
            last_rwnd: 0,
            init_rwnd: None,
            established: false,
            rtt_samples: Vec::new(),
            rto_samples: Vec::new(),
            in_flight_on_ack: Vec::new(),
            retrans_events: Vec::new(),
            spurious: 0,
            responses: Vec::new(),
            zero_rwnd_seen: false,
            synack_at: None,
        }
    }

    /// Rewind to a fresh reconstruction under `cfg`, keeping the backing
    /// storage of every per-flow collection (segment histories, scoreboard,
    /// sample and event vectors) for reuse. A replay that is `reset` and
    /// then fed a trace produces bit-identical state to a new replay fed
    /// the same trace.
    pub fn reset(&mut self, cfg: ReplayConfig) {
        self.cfg = cfg;
        self.hist.clear();
        self.outstanding.clear();
        self.snd_una = 0;
        self.snd_nxt = 0;
        self.sacked_out = 0;
        self.lost_est = 0;
        self.retrans_out = 0;
        self.high_sacked = 0;
        self.dupacks = 0;
        self.ca_state = EstCaState::Open;
        self.high_seq = 0;
        self.rtt = MiniRtt::new(cfg);
        self.last_rwnd = 0;
        self.init_rwnd = None;
        self.established = false;
        self.rtt_samples.clear();
        self.rto_samples.clear();
        self.in_flight_on_ack.clear();
        self.retrans_events.clear();
        self.spurious = 0;
        self.responses.clear();
        self.zero_rwnd_seen = false;
        self.synack_at = None;
    }

    /// Adopt light-tier estimates as the starting point of a freshly reset
    /// reconstruction — the mid-flow promotion path of two-tier monitoring.
    ///
    /// The stream offsets, RTT estimate and window state carry over, so the
    /// stall threshold is meaningful from the first post-promotion gap and
    /// a re-sent pre-promotion segment (below the seeded `snd_nxt`) counts
    /// as a retransmission through the existing history-miss path.
    /// Per-segment history and the scoreboard start empty: segments that
    /// were in flight at promotion retire silently as their ACKs arrive.
    pub fn seed(&mut self, seed: &crate::live::MonitorSeed) {
        self.snd_una = seed.snd_una;
        self.snd_nxt = seed.snd_nxt;
        self.high_seq = seed.snd_nxt;
        self.last_rwnd = seed.last_rwnd;
        self.init_rwnd = seed.init_rwnd;
        self.established = seed.established;
        self.zero_rwnd_seen = seed.zero_rwnd_seen;
        if seed.has_rtt {
            self.rtt.seed(
                SimDuration::from_micros(seed.srtt_us as u64),
                SimDuration::from_micros(seed.rttvar_us as u64),
            );
        }
    }

    // ------------------------------------------------------- observation

    /// Estimated congestion state.
    pub fn ca_state(&self) -> EstCaState {
        self.ca_state
    }

    /// Highest offset sent.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Highest cumulative ACK seen.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Smoothed RTT estimate, if any sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt
    }

    /// Current RTO estimate.
    pub fn rto(&self) -> SimDuration {
        self.rtt.rto()
    }

    /// The stall threshold `min(τ·SRTT, RTO)` with τ = 2 (the paper's
    /// definition); just the RTO before the first sample.
    pub fn stall_threshold(&self) -> SimDuration {
        match self.rtt.srtt {
            Some(s) => s.saturating_mul(2).min(self.rtt.rto()),
            None => self.rtt.rto(),
        }
    }

    /// Equation 1.
    pub fn in_flight(&self) -> u32 {
        (self.outstanding.len() as u32 + self.retrans_out)
            .saturating_sub(self.sacked_out + self.lost_est)
    }

    /// Unacked segments wholly below the highest SACKed offset — the
    /// paper's `holes` parameter (reordered or dropped packets).
    pub fn holes(&self) -> u32 {
        self.outstanding
            .live()
            .iter()
            .filter(|(seq, seg)| !seg.sacked && *seq + seg.len as u64 <= self.high_sacked)
            .count() as u32
    }

    /// Snapshot the current state (taken just before a stall-ending packet).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            ca_state: self.ca_state,
            packets_out: self.outstanding.len() as u32,
            sacked_out: self.sacked_out,
            retrans_out: self.retrans_out,
            lost_est: self.lost_est,
            holes: self.holes(),
            in_flight: self.in_flight(),
            rwnd: self.last_rwnd,
            dupacks: self.dupacks,
        }
    }

    // --------------------------------------------------------- processing

    /// Feed the next trace record (must be offered in time order).
    pub fn process(&mut self, idx: usize, rec: &TraceRecord) {
        if rec.flags.syn {
            if rec.dir == Direction::In {
                self.init_rwnd = Some(rec.rwnd);
                self.last_rwnd = rec.rwnd;
            } else {
                self.synack_at = Some(rec.t);
            }
            return;
        }
        if !self.established {
            // Seed SRTT from the handshake round trip (SYN-ACK → first ACK),
            // as the kernel does.
            if let (Direction::In, Some(sa)) = (rec.dir, self.synack_at.take()) {
                let sample = rec.t.saturating_since(sa);
                if !sample.is_zero() {
                    self.rtt.observe(sample);
                }
            }
            // The SYN's 16-bit window field is unscaled and clamps at 64KB;
            // the true initial receive window is the (scaled) one on the
            // handshake-completing ACK.
            if rec.dir == Direction::In && rec.flags.ack {
                self.init_rwnd = Some(rec.rwnd);
            }
        }
        self.established = true;
        match rec.dir {
            Direction::Out => self.process_out(idx, rec),
            Direction::In => self.process_in(idx, rec),
        }
    }

    fn process_out(&mut self, idx: usize, rec: &TraceRecord) {
        if !rec.has_data() {
            return;
        }
        if rec.seq < self.snd_nxt {
            self.observe_retransmission(idx, rec);
            return;
        }
        // New data (tolerate a gap if the capture missed packets).
        let hist = SegHist {
            len: rec.len,
            first_tx: rec.t,
            last_tx: rec.t,
            tx_count: 1,
            first_retrans: None,
            dsacked: false,
        };
        self.hist.insert(rec.seq, hist);
        self.outstanding.push(
            rec.seq,
            OutSeg {
                len: rec.len,
                sacked: false,
                lost: false,
                retrans_out: false,
                retx: false,
                first_tx: rec.t,
            },
        );
        self.snd_nxt = rec.seq_end();
    }

    fn observe_retransmission(&mut self, idx: usize, rec: &TraceRecord) {
        let threshold = self.stall_threshold();
        let waited = self
            .hist
            .get(rec.seq)
            .map(|h| rec.t.saturating_since(h.last_tx));
        let silent_gap = waited.is_none_or(|w| w > threshold);

        // Classify the trigger, mirroring the sender's decision logic:
        //
        // * enough dupacks, or an ongoing Recovery (partial-ACK
        //   retransmissions) ⇒ fast retransmit;
        // * an ongoing Loss state ⇒ timeout-driven (follow-up
        //   retransmissions of the marked-lost queue do not constitute new
        //   timeout *events* unless a fresh silent gap precedes them);
        // * otherwise a retransmission after a silent gap is a timeout; a
        //   quick one without dupacks is a probe (TLP / S-RTO), which
        //   behaves like a fast retransmit (no window collapse).
        let dup = self.dupacks.max(self.sacked_out);
        // Only a retransmission of the *head* segment constitutes a new
        // timeout event; Loss-state follow-up retransmissions of the
        // marked-lost queue ride the same episode.
        let is_head =
            rec.seq <= self.snd_una || self.outstanding.first_key().is_some_and(|lo| rec.seq <= lo);
        let (kind, fresh_timeout) = if self.ca_state == EstCaState::Loss {
            (RetransKind::Timeout, silent_gap && is_head)
        } else if dup >= self.cfg.dupthres || self.ca_state == EstCaState::Recovery {
            (RetransKind::Fast, false)
        } else if silent_gap && is_head {
            (RetransKind::Timeout, true)
        } else {
            (RetransKind::Fast, false)
        };

        let nth;
        if let Some(h) = self.hist.get_mut(rec.seq) {
            h.tx_count += 1;
            nth = h.tx_count - 1;
            if h.first_retrans.is_none() {
                h.first_retrans = Some(kind);
            }
            h.last_tx = rec.t;
        } else {
            // Retransmission of a segment the capture never saw originally.
            self.hist.insert(
                rec.seq,
                SegHist {
                    len: rec.len,
                    first_tx: rec.t,
                    last_tx: rec.t,
                    tx_count: 2,
                    first_retrans: Some(kind),
                    dsacked: false,
                },
            );
            nth = 1;
        }
        self.retrans_events.push(RetransEvent {
            idx,
            seq: rec.seq,
            nth,
            kind,
        });

        match kind {
            RetransKind::Timeout => {
                if fresh_timeout {
                    // The *observed* RTO: how long the sender actually
                    // waited since this segment's previous transmission
                    // (includes exponential backoff, as in Fig. 1).
                    self.rto_samples
                        .push(waited.unwrap_or_else(|| self.rtt.rto()));
                    self.ca_state = EstCaState::Loss;
                    self.high_seq = self.snd_nxt;
                    self.dupacks = 0;
                    // The sender marked everything outstanding lost.
                    for (_, seg) in self.outstanding.live_mut() {
                        if seg.retrans_out {
                            seg.retrans_out = false;
                            self.retrans_out -= 1;
                        }
                        if !seg.sacked && !seg.lost {
                            seg.lost = true;
                            self.lost_est += 1;
                        }
                    }
                }
            }
            RetransKind::Fast => {
                if self.ca_state != EstCaState::Recovery {
                    self.ca_state = EstCaState::Recovery;
                    self.high_seq = self.snd_nxt;
                }
            }
        }
        if let Some(seg) = self.outstanding.get_mut(rec.seq) {
            seg.retx = true; // Karn's rule: never RTT-sample this segment
            if !seg.lost && !seg.sacked {
                seg.lost = true;
                self.lost_est += 1;
            }
            if !seg.retrans_out {
                seg.retrans_out = true;
                self.retrans_out += 1;
            }
        }
    }

    fn process_in(&mut self, idx: usize, rec: &TraceRecord) {
        let _ = idx;
        let old_rwnd = self.last_rwnd;
        self.last_rwnd = rec.rwnd;
        if rec.rwnd == 0 {
            self.zero_rwnd_seen = true;
        }

        if rec.has_data() {
            // A request: open a new response interval at the current
            // outbound high-water mark.
            self.responses.push(ResponseBound {
                request_at: rec.t,
                start_seq: self.snd_nxt,
                end_seq: u64::MAX,
            });
        }

        if !rec.flags.ack {
            return;
        }

        // DSACK: spurious-retransmission evidence.
        if rec.dsack {
            self.spurious += 1;
            if let Some(b) = rec.sack.first() {
                if let Some(h) = self.hist.last_at_or_below_mut(b.start) {
                    h.dsacked = true;
                }
            }
        }

        // SACK marks.
        let blocks = if rec.dsack && !rec.sack.is_empty() {
            &rec.sack[1..]
        } else {
            &rec.sack[..]
        };
        let mut newly_sacked = 0u32;
        for b in blocks {
            self.high_sacked = self.high_sacked.max(b.end);
            for (seq, seg) in self.outstanding.tail_mut(b.start).iter_mut() {
                if *seq + seg.len as u64 > b.end {
                    break;
                }
                if seg.sacked {
                    continue;
                }
                seg.sacked = true;
                self.sacked_out += 1;
                newly_sacked += 1;
                if seg.lost {
                    seg.lost = false;
                    self.lost_est -= 1;
                }
                if seg.retrans_out {
                    seg.retrans_out = false;
                    self.retrans_out -= 1;
                }
            }
        }

        let advanced = rec.ack > self.snd_una;
        if advanced {
            // Retire fully acknowledged segments; sample RTT from the
            // highest never-retransmitted one.
            let mut rtt_sample = None;
            let sacked_out = &mut self.sacked_out;
            let lost_est = &mut self.lost_est;
            let retrans_out = &mut self.retrans_out;
            self.outstanding.retire_below(rec.ack, |_seq, seg| {
                if seg.sacked {
                    *sacked_out -= 1;
                }
                if seg.lost {
                    *lost_est -= 1;
                }
                if seg.retrans_out {
                    *retrans_out -= 1;
                }
                if !seg.retx {
                    rtt_sample = Some(rec.t.saturating_since(seg.first_tx));
                }
            });
            if let Some(s) = rtt_sample {
                self.rtt.observe(s);
                self.rtt_samples.push(s);
            }
            self.snd_una = rec.ack;
            self.dupacks = 0;
            // State exits.
            if matches!(self.ca_state, EstCaState::Recovery | EstCaState::Loss)
                && self.snd_una >= self.high_seq
            {
                self.ca_state = if self.sacked_out > 0 {
                    EstCaState::Disorder
                } else {
                    EstCaState::Open
                };
            } else if self.ca_state == EstCaState::Disorder && self.sacked_out == 0 {
                self.ca_state = EstCaState::Open;
            }
        } else {
            let is_dup = !rec.has_data()
                && rec.ack == self.snd_una
                && !self.outstanding.is_empty()
                && (newly_sacked > 0 || (rec.sack.is_empty() && rec.rwnd == old_rwnd));
            if is_dup {
                self.dupacks += 1;
                if self.ca_state == EstCaState::Open {
                    self.ca_state = EstCaState::Disorder;
                }
                // In Recovery, keep estimating losses FACK-style.
                if self.ca_state == EstCaState::Recovery {
                    self.mark_lost_fack();
                }
            }
        }

        if !self.outstanding.is_empty() {
            self.in_flight_on_ack.push(self.in_flight());
        }
    }

    fn mark_lost_fack(&mut self) {
        let threshold = (self.cfg.dupthres.saturating_sub(1)) as u64 * self.cfg.mss as u64;
        let high = self.high_sacked;
        for (seq, seg) in self.outstanding.live_mut() {
            if *seq + seg.len as u64 + threshold > high {
                break;
            }
            if seg.sacked || seg.lost || seg.retrans_out {
                continue;
            }
            seg.lost = true;
            self.lost_est += 1;
        }
    }

    /// Close the reconstruction: fill in response end offsets.
    pub fn finish(&mut self) {
        let n = self.responses.len();
        for i in 0..n {
            let end = if i + 1 < n {
                self.responses[i + 1].start_seq
            } else {
                self.snd_nxt
            };
            self.responses[i].end_seq = end;
        }
    }

    /// The response interval containing offset `seq`, if any.
    pub fn response_of(&self, seq: u64) -> Option<&ResponseBound> {
        self.responses
            .iter()
            .find(|r| seq >= r.start_seq && seq < r.end_seq.max(r.start_seq + 1))
    }

    /// Whether `seq` sits in the tail of its response: fewer than
    /// `dupthres` full segments follow it.
    pub fn is_tail(&self, seq: u64, len: u32) -> bool {
        match self.response_of(seq) {
            Some(r) => {
                let end = seq + len as u64;
                r.end_seq.saturating_sub(end) < self.cfg.dupthres as u64 * self.cfg.mss as u64
            }
            None => true,
        }
    }

    /// Whether `seq` is the first segment of a response.
    pub fn is_head(&self, seq: u64) -> bool {
        self.responses.iter().any(|r| r.start_seq == seq)
    }

    /// The analyzer's config.
    pub fn config(&self) -> ReplayConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_trace::record::{SackBlock, SegFlags};

    const MSS: u32 = 1448;

    fn out_data(t_ms: u64, seq: u64, len: u32) -> TraceRecord {
        TraceRecord::data(
            SimTime::from_millis(t_ms),
            Direction::Out,
            seq,
            len,
            0,
            1 << 20,
        )
    }

    fn in_ack(t_ms: u64, ack: u64) -> TraceRecord {
        TraceRecord::pure_ack(SimTime::from_millis(t_ms), Direction::In, ack, 1 << 20)
    }

    fn in_sack(t_ms: u64, ack: u64, blocks: &[(u64, u64)]) -> TraceRecord {
        let mut r = in_ack(t_ms, ack);
        r.sack = blocks.iter().map(|&(a, b)| SackBlock::new(a, b)).collect();
        r
    }

    fn replay(recs: &[TraceRecord]) -> Replay {
        let mut rp = Replay::new(ReplayConfig::default());
        for (i, r) in recs.iter().enumerate() {
            rp.process(i, r);
        }
        rp.finish();
        rp
    }

    #[test]
    fn tracks_snd_nxt_una_and_rtt() {
        let m = MSS as u64;
        let rp = replay(&[out_data(0, 0, MSS), out_data(1, m, MSS), in_ack(100, 2 * m)]);
        assert_eq!(rp.snd_nxt(), 2 * m);
        assert_eq!(rp.snd_una(), 2 * m);
        assert_eq!(rp.rtt_samples.len(), 1);
        // Sample from the highest acked segment: 100 − 1 = 99ms.
        assert_eq!(rp.rtt_samples[0], SimDuration::from_millis(99));
        assert_eq!(rp.in_flight(), 0);
    }

    #[test]
    fn dupacks_drive_disorder_then_fast_retransmission() {
        let m = MSS as u64;
        let mut recs = vec![];
        for i in 0..5 {
            recs.push(out_data(i, i * m, MSS));
        }
        // Three SACK dupacks for a hole at 0.
        recs.push(in_sack(100, 0, &[(m, 2 * m)]));
        recs.push(in_sack(101, 0, &[(m, 3 * m)]));
        recs.push(in_sack(102, 0, &[(m, 4 * m)]));
        // The fast retransmission of 0.
        recs.push(out_data(103, 0, MSS));
        let rp = replay(&recs);
        assert_eq!(rp.ca_state(), EstCaState::Recovery);
        assert_eq!(rp.retrans_events.len(), 1);
        assert_eq!(rp.retrans_events[0].kind, RetransKind::Fast);
        assert_eq!(
            rp.hist.get(0).unwrap().first_retrans,
            Some(RetransKind::Fast)
        );
    }

    #[test]
    fn silent_retransmission_is_classified_timeout() {
        let m = MSS as u64;
        let rp = replay(&[
            out_data(0, 0, MSS),
            out_data(1, m, MSS),
            // No ACKs at all; the sender retransmits after its RTO.
            out_data(1200, 0, MSS),
        ]);
        assert_eq!(rp.retrans_events[0].kind, RetransKind::Timeout);
        assert_eq!(rp.ca_state(), EstCaState::Loss);
        assert_eq!(rp.rto_samples.len(), 1);
        // All outstanding marked lost ⇒ in_flight counts only the retrans.
        assert_eq!(rp.snapshot().lost_est, 2);
        assert_eq!(rp.in_flight(), 1);
    }

    #[test]
    fn recovery_exit_on_full_ack() {
        let m = MSS as u64;
        let mut recs = vec![];
        for i in 0..5 {
            recs.push(out_data(i, i * m, MSS));
        }
        recs.push(in_sack(100, 0, &[(m, 2 * m)]));
        recs.push(in_sack(101, 0, &[(m, 3 * m)]));
        recs.push(in_sack(102, 0, &[(m, 4 * m)]));
        recs.push(out_data(103, 0, MSS));
        recs.push(in_ack(200, 5 * m));
        let rp = replay(&recs);
        assert_eq!(rp.ca_state(), EstCaState::Open);
        assert_eq!(rp.in_flight(), 0);
    }

    #[test]
    fn dsack_marks_segment_spurious() {
        let m = MSS as u64;
        let mut recs = vec![
            out_data(0, 0, MSS),
            out_data(1, m, MSS),
            out_data(400, 0, MSS), // timeout retransmission
        ];
        let mut d = in_ack(450, 2 * m);
        d.sack = [SackBlock::new(0, m)].into();
        d.dsack = true;
        recs.push(d);
        let rp = replay(&recs);
        assert_eq!(rp.spurious, 1);
        assert!(rp.hist.get(0).unwrap().dsacked);
    }

    #[test]
    fn responses_bound_head_and_tail() {
        let m = MSS as u64;
        let mut req1 =
            TraceRecord::data(SimTime::from_millis(0), Direction::In, 0, 300, 0, 1 << 20);
        req1.flags = SegFlags::ACK;
        let mut req2 = TraceRecord::data(
            SimTime::from_millis(500),
            Direction::In,
            300,
            300,
            4 * m,
            1 << 20,
        );
        req2.flags = SegFlags::ACK;
        let recs = vec![
            req1,
            out_data(10, 0, MSS),
            out_data(11, m, MSS),
            out_data(12, 2 * m, MSS),
            out_data(13, 3 * m, MSS),
            in_ack(110, 4 * m),
            req2,
            out_data(510, 4 * m, MSS),
            out_data(511, 5 * m, MSS),
        ];
        let rp = replay(&recs);
        assert_eq!(rp.responses.len(), 2);
        assert_eq!(rp.responses[0].start_seq, 0);
        assert_eq!(rp.responses[0].end_seq, 4 * m);
        assert_eq!(rp.responses[1].start_seq, 4 * m);
        assert!(rp.is_head(0));
        assert!(rp.is_head(4 * m));
        assert!(!rp.is_head(m));
        // Tail: fewer than 3 MSS after the segment within its response.
        assert!(rp.is_tail(3 * m, MSS));
        assert!(rp.is_tail(2 * m, MSS)); // 1 seg after < 3
        assert!(!rp.is_tail(0, MSS)); // 3 segs after
    }

    #[test]
    fn init_rwnd_from_syn_and_zero_window_tracking() {
        let mut syn = TraceRecord::pure_ack(SimTime::ZERO, Direction::In, 0, 4096);
        syn.flags = SegFlags::SYN;
        let mut zero = in_ack(100, 0);
        zero.rwnd = 0;
        let rp = replay(&[syn, out_data(10, 0, MSS), zero]);
        assert_eq!(rp.init_rwnd, Some(4096));
        assert!(rp.zero_rwnd_seen);
    }

    #[test]
    fn stall_threshold_uses_min_of_2srtt_and_rto() {
        let m = MSS as u64;
        let mut rp = Replay::new(ReplayConfig::default());
        assert_eq!(rp.stall_threshold(), SimDuration::from_secs(1));
        rp.process(0, &out_data(0, 0, MSS));
        rp.process(1, &in_ack(100, m));
        // srtt = 100ms ⇒ 2·SRTT = 200ms < RTO = 300ms.
        assert_eq!(rp.stall_threshold(), SimDuration::from_millis(200));
    }

    #[test]
    fn in_flight_samples_collected_per_ack() {
        let m = MSS as u64;
        let rp = replay(&[
            out_data(0, 0, MSS),
            out_data(1, m, MSS),
            out_data(2, 2 * m, MSS),
            in_ack(100, m),
            in_ack(101, 2 * m),
        ]);
        assert_eq!(rp.in_flight_on_ack, vec![2, 1]);
    }
}

//! Validating TAPO against the simulator's ground truth.
//!
//! The simulator can label every cause event it executes (link drops, delay
//! bursts, zero windows, client think times, backend fetches, timer
//! firings) with flow-time stamps — see `tcp_trace::oracle`. This module
//! aligns those labels with the stalls TAPO detects and scores the
//! classifier: for each detected stall, the ground-truth cause events
//! overlapping the stall window determine the *expected* class, and a
//! confusion matrix accumulates expected-vs-predicted counts at stall-class
//! granularity and — for timeout-retransmission stalls — at the Table-5
//! subclass granularity.
//!
//! The oracle is authoritative about *what the simulator did*, not about
//! what a trace-only tool could possibly infer; the scores therefore bound
//! TAPO's accuracy from the inside, which is exactly what a regression gate
//! needs (a classifier change that degrades agreement with ground truth
//! fails the gate even if every unit test still passes).

use simnet::time::SimTime;
use tcp_trace::oracle::{CauseEvent, CauseKind, RtoContext};

use crate::causes::{RetransClass, StallClass};
use crate::classify::Stall;
use crate::StallCause;

/// A dense 7×7 confusion matrix over one of the paper's taxonomies.
/// Rows are ground truth, columns are TAPO's prediction; indices follow
/// [`StallClass::index`] / [`RetransClass::index`] (table order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// `cells[truth][predicted]` — counts of scored stalls.
    pub cells: [[u64; 7]; 7],
}

impl Confusion {
    /// Record one truth/prediction pair.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.cells[truth][predicted] += 1;
    }

    /// Sum of all cells.
    pub fn total(&self) -> u64 {
        self.cells.iter().flatten().sum()
    }

    /// Sum of the diagonal (correct predictions).
    pub fn correct(&self) -> u64 {
        (0..7).map(|i| self.cells[i][i]).sum()
    }

    /// Overall accuracy (`None` when nothing was scored).
    pub fn accuracy(&self) -> Option<f64> {
        let t = self.total();
        (t > 0).then(|| self.correct() as f64 / t as f64)
    }

    /// Precision of class `i`: diagonal over column sum (`None` when the
    /// class was never predicted).
    pub fn precision(&self, i: usize) -> Option<f64> {
        let col: u64 = (0..7).map(|r| self.cells[r][i]).sum();
        (col > 0).then(|| self.cells[i][i] as f64 / col as f64)
    }

    /// Recall of class `i`: diagonal over row sum (`None` when the class
    /// never occurred in ground truth).
    pub fn recall(&self, i: usize) -> Option<f64> {
        let row: u64 = self.cells[i].iter().sum();
        (row > 0).then(|| self.cells[i][i] as f64 / row as f64)
    }

    /// Element-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &Confusion) {
        for r in 0..7 {
            for c in 0..7 {
                self.cells[r][c] += other.cells[r][c];
            }
        }
    }
}

/// Accumulated validation scores: the stall-class matrix, the Table-5
/// retransmission-subclass matrix, and bookkeeping counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Expected vs. predicted at stall-class granularity, one count per
    /// detected stall.
    pub stall_matrix: Confusion,
    /// Expected vs. predicted at Table-5 subclass granularity. Filled only
    /// for stalls where ground truth is a timer firing with captured
    /// context AND TAPO predicted a retransmission stall — the subclass
    /// question is only well-posed when both sides agree a timeout
    /// retransmission happened.
    pub retrans_matrix: Confusion,
    /// Flows scored.
    pub flows: u64,
    /// Stalls scored (== `stall_matrix.total()`).
    pub stalls: u64,
}

impl ValidationReport {
    /// Score every stall of one analyzed flow against that flow's oracle
    /// event stream, accumulating into the matrices.
    pub fn score_flow(&mut self, stalls: &[Stall], oracle: &[CauseEvent]) {
        self.flows += 1;
        for stall in stalls {
            let (truth, truth_sub) = expected_cause(oracle, stall.start, stall.end);
            let predicted = stall.cause.class();
            self.stall_matrix.record(truth.index(), predicted.index());
            self.stalls += 1;
            if let (Some(sub), StallCause::Retransmission(rc)) = (truth_sub, stall.cause) {
                if predicted == StallClass::Retransmission {
                    self.retrans_matrix.record(sub.index(), rc.class().index());
                }
            }
        }
    }

    /// Accumulate `other` into `self` (parallel-fold support).
    pub fn merge(&mut self, other: &ValidationReport) {
        self.stall_matrix.merge(&other.stall_matrix);
        self.retrans_matrix.merge(&other.retrans_matrix);
        self.flows += other.flows;
        self.stalls += other.stalls;
    }
}

/// The ground-truth stall class (and, when the truth is a timer firing with
/// captured sender context, the Table-5 subclass) for a stall spanning
/// `[start, end]`, derived from the oracle events overlapping that window.
///
/// When several cause kinds overlap the same stall, the most *specific*
/// wins, mirroring how the conditions causally dominate one another:
/// zero-window backpressure silences the sender outright; a timer firing
/// inside the window means the gap *was* a timeout; client idleness and
/// application-supply gaps explain silence at the endpoints; a data-segment
/// drop explains a retransmission even if the firing itself fell outside
/// the detected window; and a delay burst or ACK drop alone merely delays
/// packets.
pub fn expected_cause(
    oracle: &[CauseEvent],
    start: SimTime,
    end: SimTime,
) -> (StallClass, Option<RetransClass>) {
    let mut zero_window = false;
    let mut rto_ctx: Option<RtoContext> = None;
    let mut client_idle = false;
    let mut data_unavailable = false;
    let mut resource_constraint = false;
    let mut drop_data = false;
    let mut probe = false;
    let mut delay = false;
    for ev in oracle.iter().filter(|e| e.overlaps(start, end)) {
        match ev.kind {
            CauseKind::ZeroWindow | CauseKind::WindowProbe => zero_window = true,
            CauseKind::RtoFired(ctx) => {
                // Keep the first firing in the window: it ended the gap.
                rto_ctx.get_or_insert(ctx);
            }
            CauseKind::ClientIdle => client_idle = true,
            CauseKind::DataUnavailable => data_unavailable = true,
            CauseKind::ResourceConstraint => resource_constraint = true,
            CauseKind::LinkDropData { .. } => drop_data = true,
            CauseKind::ProbeFired => probe = true,
            CauseKind::DelayBurst | CauseKind::LinkDropAck => delay = true,
        }
    }
    if zero_window {
        (StallClass::ZeroWindow, None)
    } else if let Some(ctx) = rto_ctx {
        (StallClass::Retransmission, Some(retrans_truth(&ctx)))
    } else if client_idle {
        (StallClass::ClientIdle, None)
    } else if data_unavailable {
        (StallClass::DataUnavailable, None)
    } else if resource_constraint {
        (StallClass::ResourceConstraint, None)
    } else if drop_data || probe {
        // A data drop (or a probe-timer firing) with no RTO captured in the
        // window: loss-induced, but without sender context for a subclass.
        (StallClass::Retransmission, None)
    } else if delay {
        (StallClass::PacketDelay, None)
    } else {
        (StallClass::Undetermined, None)
    }
}

/// The ground-truth Table-5 subclass for a timer firing, from the sender
/// state captured the instant before the timer fired.
///
/// The rules parallel TAPO's (Table 5) but read the *actual* state instead
/// of the reconstructed one: a head already retransmitted means the repair
/// itself was lost or late (double retransmission); a head the link never
/// dropped means the timeout was spurious — the data arrived and only the
/// feedback was delayed or lost (ACK delay/loss); a dropped head with no
/// data sent beyond it is a tail loss; a dropped head with a small flight
/// is small-cwnd or small-rwnd depending on which window bound the flight;
/// anything else — a dropped head inside a full window that still timed
/// out — is continuous loss.
pub fn retrans_truth(ctx: &RtoContext) -> RetransClass {
    if ctx.head_retransmitted {
        RetransClass::DoubleRetrans
    } else if !ctx.head_dropped {
        RetransClass::AckDelayLoss
    } else if ctx.head_is_tail {
        RetransClass::TailRetrans
    } else if ctx.packets_out < 4 {
        if ctx.rwnd_limited {
            RetransClass::SmallRwnd
        } else {
            RetransClass::SmallCwnd
        }
    } else {
        RetransClass::ContinuousLoss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{EstCaState, Snapshot};
    use crate::RetransCause;
    use simnet::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn ctx() -> RtoContext {
        RtoContext {
            head_seq: 0,
            head_len: 1448,
            head_retransmitted: false,
            first_retrans_fast: false,
            head_is_tail: false,
            packets_out: 8,
            rwnd_limited: false,
            head_dropped: true,
        }
    }

    fn stall(start_ms: u64, end_ms: u64, cause: StallCause) -> Stall {
        Stall {
            start: t(start_ms),
            end: t(end_ms),
            duration: SimDuration::from_millis(end_ms - start_ms),
            end_record: 0,
            cause,
            snapshot: Snapshot {
                ca_state: EstCaState::Open,
                packets_out: 0,
                sacked_out: 0,
                retrans_out: 0,
                lost_est: 0,
                holes: 0,
                in_flight: 0,
                rwnd: 65535,
                dupacks: 0,
            },
            rel_position: 0.0,
        }
    }

    #[test]
    fn priority_prefers_specific_causes() {
        // Zero window beats everything else in the window.
        let evs = vec![
            CauseEvent::span(t(100), t(900), CauseKind::ZeroWindow),
            CauseEvent::at(t(500), CauseKind::RtoFired(ctx())),
            CauseEvent::span(t(0), t(2000), CauseKind::DelayBurst),
        ];
        assert_eq!(
            expected_cause(&evs, t(200), t(800)).0,
            StallClass::ZeroWindow
        );
        // A timer firing beats idleness and drops.
        let evs = vec![
            CauseEvent::at(t(500), CauseKind::RtoFired(ctx())),
            CauseEvent::span(t(100), t(900), CauseKind::ClientIdle),
            CauseEvent::at(t(300), CauseKind::LinkDropData { seq: 0, len: 1448 }),
        ];
        let (cls, sub) = expected_cause(&evs, t(200), t(800));
        assert_eq!(cls, StallClass::Retransmission);
        assert_eq!(sub, Some(RetransClass::ContinuousLoss));
        // Events outside the window don't count.
        let evs = vec![CauseEvent::at(t(50), CauseKind::RtoFired(ctx()))];
        assert_eq!(
            expected_cause(&evs, t(200), t(800)).0,
            StallClass::Undetermined
        );
        // A bare delay burst is packet delay.
        let evs = vec![CauseEvent::span(t(100), t(900), CauseKind::DelayBurst)];
        assert_eq!(
            expected_cause(&evs, t(200), t(800)).0,
            StallClass::PacketDelay
        );
    }

    #[test]
    fn retrans_truth_follows_table5_rules() {
        let c = ctx();
        assert_eq!(retrans_truth(&c), RetransClass::ContinuousLoss);
        assert_eq!(
            retrans_truth(&RtoContext {
                head_retransmitted: true,
                ..c
            }),
            RetransClass::DoubleRetrans
        );
        assert_eq!(
            retrans_truth(&RtoContext {
                head_dropped: false,
                ..c
            }),
            RetransClass::AckDelayLoss
        );
        assert_eq!(
            retrans_truth(&RtoContext {
                head_is_tail: true,
                ..c
            }),
            RetransClass::TailRetrans
        );
        assert_eq!(
            retrans_truth(&RtoContext {
                packets_out: 2,
                ..c
            }),
            RetransClass::SmallCwnd
        );
        assert_eq!(
            retrans_truth(&RtoContext {
                packets_out: 2,
                rwnd_limited: true,
                ..c
            }),
            RetransClass::SmallRwnd
        );
    }

    #[test]
    fn report_fills_both_matrices_and_merges() {
        let mut a = ValidationReport::default();
        let evs = vec![CauseEvent::at(t(500), CauseKind::RtoFired(ctx()))];
        // Predicted retransmission/continuous-loss: diagonal in both.
        a.score_flow(
            &[stall(
                200,
                800,
                StallCause::Retransmission(RetransCause::ContinuousLoss),
            )],
            &evs,
        );
        // Predicted client idle against retransmission truth: off-diagonal
        // at stall level, no retrans-matrix entry.
        a.score_flow(&[stall(200, 800, StallCause::ClientIdle)], &evs);
        let ri = StallClass::Retransmission.index();
        assert_eq!(a.stall_matrix.cells[ri][ri], 1);
        assert_eq!(a.stall_matrix.cells[ri][StallClass::ClientIdle.index()], 1);
        assert_eq!(a.retrans_matrix.total(), 1);
        let ci = RetransClass::ContinuousLoss.index();
        assert_eq!(a.retrans_matrix.cells[ci][ci], 1);
        assert_eq!(a.stall_matrix.precision(ri), Some(1.0));
        assert_eq!(a.stall_matrix.recall(ri), Some(0.5));
        assert_eq!(a.flows, 2);
        assert_eq!(a.stalls, 2);

        let mut b = ValidationReport::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.stalls, 4);
        assert_eq!(b.stall_matrix.total(), 4);
        assert_eq!(b.stall_matrix.accuracy(), Some(0.5));
    }
}

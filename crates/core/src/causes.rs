//! The stall-cause taxonomy of the paper (Fig. 5 and Tables 3 & 5).

/// Root cause of one TCP stall, as inferred by the decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StallCause {
    /// Server-side: the stall spans the head of a response — the front-end
    /// had no data to send (back-end fetch).
    DataUnavailable,
    /// Server-side: mid-transfer, window open, yet the server supplied no
    /// data to TCP.
    ResourceConstraint,
    /// Client-side: the client issued no request for a while; the stall
    /// ends with a new inbound request.
    ClientIdle,
    /// Client-side: the advertised receive window was zero.
    ZeroWindow,
    /// Network: packets or ACKs delayed; no retransmission was induced.
    PacketDelay,
    /// Network: a timeout retransmission ended the stall; see the subcause.
    Retransmission(RetransCause),
    /// No rule matched (4–8% of stalls in the paper).
    Undetermined,
}

/// Breakdown of timeout-retransmission stalls (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RetransCause {
    /// The retransmitted packet itself was dropped or delayed: a second
    /// (or later) retransmission of the same segment ended the stall.
    DoubleRetrans {
        /// Whether the *first* retransmission was a fast retransmit
        /// (f-double) rather than itself a timeout (t-double) — Table 6.
        first_was_fast: bool,
    },
    /// Loss at the tail of a response: too few following segments to
    /// generate `dupthres` dupacks.
    TailRetrans {
        /// Whether the sender was in the Open state when the stall began
        /// (as opposed to Recovery) — Table 7.
        open_state: bool,
    },
    /// Loss while the in-flight size was small (< 4) because of the
    /// congestion window.
    SmallCwnd,
    /// Loss while the in-flight size was small (< 4) because of the
    /// receiver's advertised window.
    SmallRwnd,
    /// Every outstanding packet in the window (≥ 4) was lost.
    ContinuousLoss,
    /// The data was not lost at all: the retransmission was spurious
    /// (DSACKed) — the ACKs were delayed or dropped.
    AckDelayLoss,
    /// None of the rules matched.
    Undetermined,
}

impl StallCause {
    /// The paper's three top-level categories: server, client, network.
    pub fn category(&self) -> StallCategory {
        match self {
            StallCause::DataUnavailable | StallCause::ResourceConstraint => StallCategory::Server,
            StallCause::ClientIdle | StallCause::ZeroWindow => StallCategory::Client,
            StallCause::PacketDelay | StallCause::Retransmission(_) => StallCategory::Network,
            StallCause::Undetermined => StallCategory::Undetermined,
        }
    }

    /// Row label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            StallCause::DataUnavailable => "data una.",
            StallCause::ResourceConstraint => "rsrc cons.",
            StallCause::ClientIdle => "client idle",
            StallCause::ZeroWindow => "zero wnd",
            StallCause::PacketDelay => "pkt delay",
            StallCause::Retransmission(_) => "retrans.",
            StallCause::Undetermined => "undeter.",
        }
    }
}

/// Top-level grouping used by Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StallCategory {
    /// Server-side causes.
    Server,
    /// Client-side causes.
    Client,
    /// Network causes.
    Network,
    /// Unclassified.
    Undetermined,
}

impl RetransCause {
    /// Row label matching Table 5.
    pub fn label(&self) -> &'static str {
        match self {
            RetransCause::DoubleRetrans { .. } => "Double retr.",
            RetransCause::TailRetrans { .. } => "Tail retr.",
            RetransCause::SmallCwnd => "Small cwnd",
            RetransCause::SmallRwnd => "Small rwnd",
            RetransCause::ContinuousLoss => "Cont. loss",
            RetransCause::AckDelayLoss => "ACK delay/loss",
            RetransCause::Undetermined => "Undeter.",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_table3_grouping() {
        assert_eq!(
            StallCause::DataUnavailable.category(),
            StallCategory::Server
        );
        assert_eq!(
            StallCause::ResourceConstraint.category(),
            StallCategory::Server
        );
        assert_eq!(StallCause::ClientIdle.category(), StallCategory::Client);
        assert_eq!(StallCause::ZeroWindow.category(), StallCategory::Client);
        assert_eq!(StallCause::PacketDelay.category(), StallCategory::Network);
        assert_eq!(
            StallCause::Retransmission(RetransCause::SmallCwnd).category(),
            StallCategory::Network
        );
        assert_eq!(
            StallCause::Undetermined.category(),
            StallCategory::Undetermined
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StallCause::ZeroWindow.label(), "zero wnd");
        assert_eq!(
            RetransCause::DoubleRetrans {
                first_was_fast: true
            }
            .label(),
            "Double retr."
        );
        assert_eq!(RetransCause::AckDelayLoss.label(), "ACK delay/loss");
    }
}

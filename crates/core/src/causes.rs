//! The stall-cause taxonomy of the paper (Fig. 5 and Tables 3 & 5).

/// Root cause of one TCP stall, as inferred by the decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Server-side: the stall spans the head of a response — the front-end
    /// had no data to send (back-end fetch).
    DataUnavailable,
    /// Server-side: mid-transfer, window open, yet the server supplied no
    /// data to TCP.
    ResourceConstraint,
    /// Client-side: the client issued no request for a while; the stall
    /// ends with a new inbound request.
    ClientIdle,
    /// Client-side: the advertised receive window was zero.
    ZeroWindow,
    /// Network: packets or ACKs delayed; no retransmission was induced.
    PacketDelay,
    /// Network: a timeout retransmission ended the stall; see the subcause.
    Retransmission(RetransCause),
    /// No rule matched (4–8% of stalls in the paper).
    Undetermined,
}

/// Breakdown of timeout-retransmission stalls (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetransCause {
    /// The retransmitted packet itself was dropped or delayed: a second
    /// (or later) retransmission of the same segment ended the stall.
    DoubleRetrans {
        /// Whether the *first* retransmission was a fast retransmit
        /// (f-double) rather than itself a timeout (t-double) — Table 6.
        first_was_fast: bool,
    },
    /// Loss at the tail of a response: too few following segments to
    /// generate `dupthres` dupacks.
    TailRetrans {
        /// Whether the sender was in the Open state when the stall began
        /// (as opposed to Recovery) — Table 7.
        open_state: bool,
    },
    /// Loss while the in-flight size was small (< 4) because of the
    /// congestion window.
    SmallCwnd,
    /// Loss while the in-flight size was small (< 4) because of the
    /// receiver's advertised window.
    SmallRwnd,
    /// Every outstanding packet in the window (≥ 4) was lost.
    ContinuousLoss,
    /// The data was not lost at all: the retransmission was spurious
    /// (DSACKed) — the ACKs were delayed or dropped.
    AckDelayLoss,
    /// None of the rules matched.
    Undetermined,
}

impl StallCause {
    /// The paper's three top-level categories: server, client, network.
    pub fn category(&self) -> StallCategory {
        match self {
            StallCause::DataUnavailable | StallCause::ResourceConstraint => StallCategory::Server,
            StallCause::ClientIdle | StallCause::ZeroWindow => StallCategory::Client,
            StallCause::PacketDelay | StallCause::Retransmission(_) => StallCategory::Network,
            StallCause::Undetermined => StallCategory::Undetermined,
        }
    }

    /// Row label matching the paper's tables (delegates to the class).
    pub fn label(&self) -> &'static str {
        self.class().label()
    }
}

/// Top-level grouping used by Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCategory {
    /// Server-side causes.
    Server,
    /// Client-side causes.
    Client,
    /// Network causes.
    Network,
    /// Unclassified.
    Undetermined,
}

impl StallCategory {
    /// Column label used by Table 3 ("server", "client", "net.", "").
    pub fn label(&self) -> &'static str {
        match self {
            StallCategory::Server => "server",
            StallCategory::Client => "client",
            StallCategory::Network => "net.",
            StallCategory::Undetermined => "",
        }
    }
}

/// Payload-free aggregation key for top-level stall causes: one variant per
/// row of Table 3. [`StallCause`] carries per-stall detail (which
/// retransmission subcause, which DoubleRetrans flavor); `StallClass` is what
/// breakdowns are keyed by, so callers iterate [`StallClass::ALL`] instead of
/// hard-coding label lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// No data at the head of a response (server).
    DataUnavailable,
    /// Server supplied no data mid-transfer (server).
    ResourceConstraint,
    /// Client issued no request (client).
    ClientIdle,
    /// Zero advertised receive window (client).
    ZeroWindow,
    /// Packets or ACKs delayed without retransmission (network).
    PacketDelay,
    /// Ended by a timeout retransmission (network).
    Retransmission,
    /// No rule matched.
    Undetermined,
}

impl StallClass {
    /// Every class, in the paper's table order.
    pub const ALL: [StallClass; 7] = [
        StallClass::DataUnavailable,
        StallClass::ResourceConstraint,
        StallClass::ClientIdle,
        StallClass::ZeroWindow,
        StallClass::PacketDelay,
        StallClass::Retransmission,
        StallClass::Undetermined,
    ];

    /// Row label matching the paper's tables (rendering only).
    pub fn label(&self) -> &'static str {
        match self {
            StallClass::DataUnavailable => "data una.",
            StallClass::ResourceConstraint => "rsrc cons.",
            StallClass::ClientIdle => "client idle",
            StallClass::ZeroWindow => "zero wnd",
            StallClass::PacketDelay => "pkt delay",
            StallClass::Retransmission => "retrans.",
            StallClass::Undetermined => "undeter.",
        }
    }

    /// The paper's three top-level categories: server, client, network.
    pub fn category(&self) -> StallCategory {
        match self {
            StallClass::DataUnavailable | StallClass::ResourceConstraint => StallCategory::Server,
            StallClass::ClientIdle | StallClass::ZeroWindow => StallCategory::Client,
            StallClass::PacketDelay | StallClass::Retransmission => StallCategory::Network,
            StallClass::Undetermined => StallCategory::Undetermined,
        }
    }

    /// Dense index for array-backed aggregation (`0..7`, table order).
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("in ALL")
    }
}

/// Payload-free aggregation key for retransmission subcauses: one variant per
/// row of Table 5. The per-stall flags (`first_was_fast`, `open_state`) live
/// on [`RetransCause`]; this type is the aggregation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetransClass {
    /// The retransmission itself was retransmitted.
    DoubleRetrans,
    /// Loss at the tail of a response.
    TailRetrans,
    /// Small in-flight due to the congestion window.
    SmallCwnd,
    /// Small in-flight due to the receive window.
    SmallRwnd,
    /// Whole window lost.
    ContinuousLoss,
    /// Spurious retransmission; ACKs delayed or lost.
    AckDelayLoss,
    /// No rule matched.
    Undetermined,
}

impl RetransClass {
    /// Every subclass, in the paper's priority order.
    pub const ALL: [RetransClass; 7] = [
        RetransClass::DoubleRetrans,
        RetransClass::TailRetrans,
        RetransClass::SmallCwnd,
        RetransClass::SmallRwnd,
        RetransClass::ContinuousLoss,
        RetransClass::AckDelayLoss,
        RetransClass::Undetermined,
    ];

    /// Row label matching Table 5 (rendering only).
    pub fn label(&self) -> &'static str {
        match self {
            RetransClass::DoubleRetrans => "Double retr.",
            RetransClass::TailRetrans => "Tail retr.",
            RetransClass::SmallCwnd => "Small cwnd",
            RetransClass::SmallRwnd => "Small rwnd",
            RetransClass::ContinuousLoss => "Cont. loss",
            RetransClass::AckDelayLoss => "ACK delay/loss",
            RetransClass::Undetermined => "Undeter.",
        }
    }

    /// Dense index for array-backed aggregation (`0..7`, table order).
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("in ALL")
    }
}

impl StallCause {
    /// The aggregation class this cause falls under.
    pub fn class(&self) -> StallClass {
        match self {
            StallCause::DataUnavailable => StallClass::DataUnavailable,
            StallCause::ResourceConstraint => StallClass::ResourceConstraint,
            StallCause::ClientIdle => StallClass::ClientIdle,
            StallCause::ZeroWindow => StallClass::ZeroWindow,
            StallCause::PacketDelay => StallClass::PacketDelay,
            StallCause::Retransmission(_) => StallClass::Retransmission,
            StallCause::Undetermined => StallClass::Undetermined,
        }
    }
}

impl RetransCause {
    /// The aggregation class this subcause falls under.
    pub fn class(&self) -> RetransClass {
        match self {
            RetransCause::DoubleRetrans { .. } => RetransClass::DoubleRetrans,
            RetransCause::TailRetrans { .. } => RetransClass::TailRetrans,
            RetransCause::SmallCwnd => RetransClass::SmallCwnd,
            RetransCause::SmallRwnd => RetransClass::SmallRwnd,
            RetransCause::ContinuousLoss => RetransClass::ContinuousLoss,
            RetransCause::AckDelayLoss => RetransClass::AckDelayLoss,
            RetransCause::Undetermined => RetransClass::Undetermined,
        }
    }
}

impl RetransCause {
    /// Row label matching Table 5 (delegates to the class).
    pub fn label(&self) -> &'static str {
        self.class().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_table3_grouping() {
        assert_eq!(
            StallCause::DataUnavailable.category(),
            StallCategory::Server
        );
        assert_eq!(
            StallCause::ResourceConstraint.category(),
            StallCategory::Server
        );
        assert_eq!(StallCause::ClientIdle.category(), StallCategory::Client);
        assert_eq!(StallCause::ZeroWindow.category(), StallCategory::Client);
        assert_eq!(StallCause::PacketDelay.category(), StallCategory::Network);
        assert_eq!(
            StallCause::Retransmission(RetransCause::SmallCwnd).category(),
            StallCategory::Network
        );
        assert_eq!(
            StallCause::Undetermined.category(),
            StallCategory::Undetermined
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StallCause::ZeroWindow.label(), "zero wnd");
        assert_eq!(
            RetransCause::DoubleRetrans {
                first_was_fast: true
            }
            .label(),
            "Double retr."
        );
        assert_eq!(RetransCause::AckDelayLoss.label(), "ACK delay/loss");
    }
}

//! A minimal JSON document model and pretty-printer.
//!
//! The workspace builds with no external crates (the registry may be
//! unreachable), so the machine-readable output of the `tapo` and `repro`
//! binaries is emitted through this module instead of a serialization
//! framework. It only *writes* JSON — nothing in the toolchain needs to
//! parse it back.

use std::fmt::Write as _;

/// A JSON value, built by hand at the emission site.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float. Non-finite values are emitted as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation and a trailing newline-free body.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Render on a single line with no whitespace — the JSON-lines form
    /// used for the live reporter's per-interval records.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Large u64s would lose precision as f64 and overflow i64; clamp to
        // i64::MAX (no counter in this workspace gets near either bound).
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        match o {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let doc = Json::obj([
            ("name", Json::from("a\"b\\c\nd")),
            ("xs", Json::from(vec![1i64, 2, 3])),
            ("nested", Json::obj([("ok", Json::from(true))])),
            ("nothing", Json::Null),
        ]);
        let s = doc.pretty();
        assert!(s.contains(r#""a\"b\\c\nd""#));
        assert!(s.contains("\"xs\": [\n"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"nothing\": null"));
    }

    #[test]
    fn compact_is_single_line() {
        let doc = Json::obj([
            ("a", Json::from(1u64)),
            ("b", Json::from(vec![1i64, 2])),
            ("c", Json::obj([("d", Json::Null)])),
        ]);
        assert_eq!(doc.compact(), r#"{"a":1,"b":[1,2],"c":{"d":null}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn option_and_int_conversions() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::Int(3));
        assert_eq!(Json::from(u64::MAX), Json::Int(i64::MAX));
    }
}

//! A minimal JSON document model, pretty-printer, and parser.
//!
//! The workspace builds with no external crates (the registry may be
//! unreachable), so the machine-readable output of the `tapo` and `repro`
//! binaries is emitted through this module instead of a serialization
//! framework. [`Json::parse`] reads documents back — `tapo advise`
//! consumes the live pipeline's own JSON-lines interval reports.

use std::fmt::Write as _;

/// A JSON value, built by hand at the emission site.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float. Non-finite values are emitted as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

/// Where and why [`Json::parse`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong, human-readable.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse one JSON document (object, array, or scalar). Trailing
    /// non-whitespace is an error — JSON-lines input should be split into
    /// lines first.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup: `Some(&value)` if this is an object with `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a non-negative integer ([`Json::Int`] only — floats
    /// are deliberately not truncated).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's object members, if it is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// This value's array items, if it is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline-free body.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Render on a single line with no whitespace — the JSON-lines form
    /// used for the live reporter's per-interval records.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the raw bytes (JSON structure is ASCII;
/// string contents pass through as validated UTF-8 from the input `&str`).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parser recursion limit — deep enough for any report this toolchain
/// emits, shallow enough that hostile input cannot overflow the stack.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `{`
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            pairs.push((key, self.value_at(depth + 1)?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value_at(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Bulk-copy the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // Safe: `start..pos` stops at ASCII delimiters, so it lies on
            // char boundaries of the original valid-UTF-8 `&str`.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is UTF-8"),
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Large u64s would lose precision as f64 and overflow i64; clamp to
        // i64::MAX (no counter in this workspace gets near either bound).
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        match o {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let doc = Json::obj([
            ("name", Json::from("a\"b\\c\nd")),
            ("xs", Json::from(vec![1i64, 2, 3])),
            ("nested", Json::obj([("ok", Json::from(true))])),
            ("nothing", Json::Null),
        ]);
        let s = doc.pretty();
        assert!(s.contains(r#""a\"b\\c\nd""#));
        assert!(s.contains("\"xs\": [\n"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"nothing\": null"));
    }

    #[test]
    fn compact_is_single_line() {
        let doc = Json::obj([
            ("a", Json::from(1u64)),
            ("b", Json::from(vec![1i64, 2])),
            ("c", Json::obj([("d", Json::Null)])),
        ]);
        assert_eq!(doc.compact(), r#"{"a":1,"b":[1,2],"c":{"d":null}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn option_and_int_conversions() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::Int(3));
        assert_eq!(Json::from(u64::MAX), Json::Int(i64::MAX));
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        let doc = Json::obj([
            ("name", Json::from("a\"b\\c\nd — unicode ✓")),
            ("count", Json::from(42u64)),
            ("neg", Json::from(-7i64)),
            ("rate", Json::from(1.5f64)),
            ("flag", Json::from(true)),
            ("nothing", Json::Null),
            ("xs", Json::from(vec![1i64, 2, 3])),
            (
                "by_port",
                Json::obj([("80", Json::obj([("flows", Json::from(3u64))]))]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.compact()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_accessors() {
        let v = Json::parse(r#"{"a":{"b":7},"s":"hi","f":2.5}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("b")).and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("a").and_then(Json::as_u64), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.members().map(|m| m.len()), Some(3));
        let arr = Json::parse("[1,2,3]").unwrap();
        assert_eq!(arr.items().map(|i| i.len()), Some(3));
        assert_eq!(v.items(), None);
    }

    #[test]
    fn parse_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""A\n\té😀""#).unwrap(),
            Json::Str("A\n\té😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":1,}x",
            "01x",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        // Beyond i64 falls back to float rather than erroring.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(1e20)
        );
    }
}

//! The live diagnosis pipeline: daemon-grade TAPO.
//!
//! The paper deploys TAPO on production servers for daily maintenance — an
//! *online* tool watching live traffic, not a batch job over finished pcap
//! files. This module is that deployment shape: a bounded-memory, sharded,
//! continuously-reporting pipeline over an incremental packet stream
//! ([`tcp_trace::pcap::PcapStream`] — file, FIFO, or stdin).
//!
//! # Architecture
//!
//! The packet path is *batched end-to-end* and **partitioned by flow
//! hash**. The segmented zero-copy reader
//! ([`tcp_trace::pcap::PcapStream::fill_batch`]) decodes up to `batch`
//! packets per refill into a reusable [`PacketBatch`]; a thin driver walks
//! each batch in capture order and only routes: each flow hashes to one of
//! `cells` **virtual cells** ([`cell_of`]), each cell is owned by exactly
//! one shard (`cell % shards`), and the packet is staged to its owner's
//! SPSC ring ([`ring`]) as [`Work`] — one handoff per shard per batch,
//! with emptied batch buffers recycled back on reverse rings so the
//! steady state allocates nothing.
//!
//! Each shard runs a [`ShardEngine`] owning *everything* for its cells:
//! flow map, sequence trackers ([`tcp_trace::pcap::SeqTracker`]), light
//! tier ([`LightTable`]), heavy analyzers ([`crate::StreamAnalyzer`]),
//! lazy timer wheel ([`TimerWheel`]), per-cell LRU lanes ([`LruList`]),
//! and dead-key map. All lifecycle decisions — admission, 4-tuple reuse
//! (a bare SYN on a closed flow finalizes the old generation and opens a
//! fresh one, matching the offline [`tcp_trace::flow::FlowTable`]),
//! FIN/RST teardown with a linger window, idle eviction, LRU shedding,
//! and light↔heavy promotion/demotion — are made locally by the owning
//! engine, with no cross-shard coordination on the packet path. With
//! `--shards 1` the one engine runs inline on the driver thread: no
//! rings, no staging copy, no worker thread.
//!
//! # Determinism
//!
//! Aggregate output is byte-identical at any shard count *and any batch
//! size* — by construction, not by serialization:
//! * a flow's cell depends only on its key and the (shard-count-
//!   independent) cell count, and every cross-flow decision is
//!   cell-local, so shed victims and quota denials are identical however
//!   cells are spread over shards;
//! * the global `max_flows` / heavy caps are split into fixed per-cell
//!   quotas that sum exactly to the cap ([`shard`] module docs);
//! * each flow's analysis depends only on its own records (analyzers are
//!   recycled through exact resets);
//! * per-interval sub-reports ([`IntervalDelta`]) are commutative integer
//!   merges, collected at a [`Work::Cut`] barrier and folded in canonical
//!   shard order before each report is rendered;
//! * reader skip counts are recorded per decoded packet
//!   ([`PacketBatch::skipped_before`]), so interval attribution does not
//!   shift when the reader decodes ahead of processing.
//!
//! Only the opt-in `per_shard_occupancy` field depends on the shard count.
//!
//! # Memory bound
//!
//! With a cap of `max_flows`, the engines together hold at most that many
//! flow states (per-cell quotas sum to the cap; plus recycled free
//! pools); everything else is O(shards) or O(interval). The load
//! generator in the `workloads` crate feeds the 10k-flow capture the
//! bench gate uses to assert the bound.

mod config;
mod fnv;
mod lru;
mod monitor;
mod report;
pub mod ring;
mod shard;
mod wheel;

pub use config::{
    default_shards, DaemonId, LiveConfigBuilder, LiveConfigError, MAX_BATCH, MAX_CELLS,
    MAX_DAEMON_ID, MAX_RING_DEPTH,
};
pub use fnv::{cell_of, FnvHasher, FnvState};
pub use lru::LruList;
pub use monitor::{FlowMonitor, LightTable, MonitorSeed, TierConfig, Verdict};
pub use report::{class_slug, retrans_slug, IntervalReport, LiveSummary};
pub use shard::{
    merge_by_port, shard_worker, EngineParams, EngineTotals, IntervalDelta, PortDelta, ShardEngine,
    ShardMsg, Work,
};
pub use wheel::{TimerEntry, TimerWheel};

use std::io::Read;
use std::sync::mpsc;

use simnet::time::SimDuration;
use tcp_trace::flow::FlowKey;
use tcp_trace::pcap::{PacketBatch, PcapError, PcapStream};

use crate::fleet::sketch::QSketch;
use crate::{AnalyzerConfig, FlowAnalysis};
use ring::{RingConsumer, RingProducer};

/// How the live pipeline runs: sharding, lifecycle timeouts, reporting
/// cadence, memory cap.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Per-flow analyzer parameters.
    pub analyzer: AnalyzerConfig,
    /// Worker shards (0 is treated as 1). Output is identical at any
    /// count; the builder defaults to `available_parallelism()` capped
    /// at 8, while `LiveConfig::default()` stays at 1 for library users.
    pub shards: usize,
    /// Virtual flow cells — the shard-count-independent unit of flow
    /// ownership and cap splitting (0 is treated as 1; clamped to
    /// `max_flows` when capped so every cell's flow quota is ≥ 1).
    pub cells: usize,
    /// Reporting interval (capture time, aligned to multiples of itself).
    pub interval: SimDuration,
    /// Evict flows idle this long; `None` disables idle eviction.
    pub idle_timeout: Option<SimDuration>,
    /// Finalize a FIN/RST-closed flow after this linger (stragglers until
    /// then still reach the analyzer); `None` keeps closed flows until
    /// idle timeout / EOF, matching the offline reader.
    pub fin_linger: Option<SimDuration>,
    /// Hard cap on concurrently tracked flows; 0 = unbounded. Split into
    /// per-cell quotas; at a cell's quota, the least-recently-active flow
    /// *of that cell* is finalized early ("shed").
    pub max_flows: usize,
    /// Keep every finalized [`crate::FlowAnalysis`] in the summary —
    /// unbounded memory, for tests and offline comparison only.
    pub collect_flows: bool,
    /// Include per-shard active-flow counts in reports (shard-count-
    /// dependent, so off by default to keep output byte-identical across
    /// shard counts).
    pub per_shard_occupancy: bool,
    /// Replay pacing: sleep so capture time advances at `pace` × real time
    /// (1.0 = original timing). `None` = as fast as possible.
    pub pace: Option<f64>,
    /// Two-tier monitoring: `Some` keeps every flow in a compact light
    /// tier ([`LightTable`]) and promotes to a full [`crate::StreamAnalyzer`]
    /// only on suspicion; `None` (the default) analyzes every flow heavy
    /// from the first packet, as before.
    pub tier: Option<TierConfig>,
    /// Packets decoded (and work staged) per batch; 0 is treated as 1.
    /// Output is identical at any batch size.
    pub batch: usize,
    /// Work-ring depth in batch buffers (backpressure toward the driver);
    /// 0 is treated as 1.
    pub ring_depth: usize,
    /// Identifier stamped into every interval and summary record so fleet
    /// aggregation can attribute this daemon's reports.
    pub daemon_id: DaemonId,
    /// Carry mergeable RTT / stall-duration quantile sketches in interval
    /// and summary reports (the distribution payload `tapo fleet` merges).
    /// Sketch contents are partition-invariant, so reports stay
    /// byte-identical across shard counts with this on.
    pub sketch: bool,
}

/// Default packets per batch (one handoff per shard per batch).
pub const DEFAULT_BATCH: usize = 256;
/// Default work-ring depth in batch buffers.
pub const DEFAULT_RING_DEPTH: usize = 8;
/// Default virtual flow cells. Plenty of lanes for up to 8 shards while
/// keeping per-cell quota splits coarse enough that small `--max-flows`
/// caps still give most cells a non-zero share.
pub const DEFAULT_CELLS: usize = 64;

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            analyzer: AnalyzerConfig::default(),
            shards: 1,
            cells: DEFAULT_CELLS,
            interval: SimDuration::from_secs(1),
            idle_timeout: Some(SimDuration::from_secs(60)),
            fin_linger: Some(SimDuration::from_secs(1)),
            max_flows: 0,
            collect_flows: false,
            per_shard_occupancy: false,
            pace: None,
            tier: None,
            batch: DEFAULT_BATCH,
            ring_depth: DEFAULT_RING_DEPTH,
            daemon_id: DaemonId::default(),
            sketch: true,
        }
    }
}

impl LiveConfig {
    /// Start a validated [`LiveConfigBuilder`] — the construction path the
    /// CLI and library users share.
    pub fn builder() -> LiveConfigBuilder {
        LiveConfigBuilder::new()
    }

    /// The cell count the pipeline actually runs with: at least 1, and
    /// clamped to `max_flows` when capped so every cell's flow quota is
    /// ≥ 1 (a zero-quota cell could admit nothing at all).
    pub fn effective_cells(&self) -> usize {
        let c = self.cells.max(1);
        if self.max_flows > 0 {
            c.min(self.max_flows)
        } else {
            c
        }
    }
}

/// The routing-and-merging end of the pipeline. All flow state lives in
/// the per-shard [`ShardEngine`]s; the driver decodes, routes by cell,
/// issues cut barriers, and folds the per-shard sub-reports in canonical
/// shard order.
struct Driver {
    shards_n: usize,
    per_shard: bool,
    daemon: DaemonId,
    sketch: bool,
    interval_us: u64,
    /// Effective cell count (see [`LiveConfig::effective_cells`]).
    ncells: usize,

    /// `--shards 1`: the one engine runs inline on the driver thread.
    inline: Option<ShardEngine>,

    dir_txs: Vec<RingProducer<Vec<Work>>>,
    /// Emptied batch buffers coming back from each shard for reuse.
    spare_rxs: Vec<RingConsumer<Vec<Work>>>,
    /// Per-shard staging buffers, flushed once per packet batch (or when
    /// a staging buffer reaches `batch_cap` mid-batch).
    staging: Vec<Vec<Work>>,
    batch_cap: usize,
    /// Per-shard buffer provenance counters, folded into the summary at
    /// shutdown in shard order (deterministic aggregation).
    ring_fresh: Vec<u64>,
    ring_recycled: Vec<u64>,
    /// Cut-barrier reply slots, indexed by shard (canonical merge order).
    msgs: Vec<Option<ShardMsg>>,

    summary: LiveSummary,
    prev_skipped: u64,
    cut_seq: u64,
}

impl Driver {
    fn new(
        cfg: &LiveConfig,
        ncells: usize,
        dir_txs: Vec<RingProducer<Vec<Work>>>,
        spare_rxs: Vec<RingConsumer<Vec<Work>>>,
    ) -> Driver {
        let shards_n = dir_txs.len().max(1);
        let batch_cap = cfg.batch.max(1);
        let inline = dir_txs
            .is_empty()
            .then(|| ShardEngine::new(engine_params(cfg, ncells, 1, 0)));
        let staging_n = dir_txs.len();
        let mut summary = LiveSummary {
            daemon: cfg.daemon_id,
            ..LiveSummary::default()
        };
        if cfg.sketch {
            summary.rtt_sketch = Some(QSketch::new());
            summary.stall_sketch = Some(QSketch::new());
        }
        Driver {
            shards_n,
            per_shard: cfg.per_shard_occupancy,
            daemon: cfg.daemon_id,
            sketch: cfg.sketch,
            interval_us: cfg.interval.as_micros().max(1),
            ncells,
            inline,
            dir_txs,
            spare_rxs,
            staging: (0..staging_n)
                .map(|_| Vec::with_capacity(batch_cap))
                .collect(),
            batch_cap,
            ring_fresh: vec![0; staging_n],
            ring_recycled: vec![0; staging_n],
            msgs: (0..shards_n).map(|_| None).collect(),
            summary,
            prev_skipped: 0,
            cut_seq: 0,
        }
    }

    /// Stage one unit of work for `shard`, flushing early if the staging
    /// buffer fills mid-batch.
    fn stage(&mut self, shard: usize, w: Work) {
        self.staging[shard].push(w);
        if self.staging[shard].len() >= self.batch_cap {
            self.flush(shard);
        }
    }

    /// Hand the shard's staging buffer down its ring, replacing it with a
    /// recycled buffer from the shard's spare ring (or, before the pool
    /// has warmed up, a fresh allocation — counted per shard, so tests
    /// can assert the steady state recycles).
    fn flush(&mut self, shard: usize) {
        if self.staging[shard].is_empty() {
            return;
        }
        let replacement = match self.spare_rxs[shard].try_pop() {
            Some(mut buf) => {
                self.ring_recycled[shard] += 1;
                buf.clear();
                buf
            }
            None => {
                self.ring_fresh[shard] += 1;
                Vec::with_capacity(self.batch_cap)
            }
        };
        let full = std::mem::replace(&mut self.staging[shard], replacement);
        self.dir_txs[shard].push(full).expect("shard alive");
    }

    /// One handoff per shard per packet batch (no-op when inline).
    fn flush_all(&mut self) {
        for shard in 0..self.staging.len() {
            self.flush(shard);
        }
    }

    /// Interval barrier at `now_us` (the trigger packet's capture time):
    /// cut every engine, merge the sub-reports in canonical shard order,
    /// fold the interval into the summary, and build the report.
    /// `skipped_cum` is the reader's cumulative skip count *as of the
    /// trigger packet* (recorded per packet by the batched reader), so
    /// attribution is identical at any batch size.
    fn cut(
        &mut self,
        iv: u64,
        skipped_cum: u64,
        now_us: u64,
        report_rx: &mpsc::Receiver<ShardMsg>,
    ) -> IntervalReport {
        let seq = self.cut_seq;
        self.cut_seq += 1;
        let mut delta = IntervalDelta::default();
        let mut active = 0u64;
        let mut heavy = 0u64;
        let mut occupancy = vec![0usize; self.shards_n];
        if let Some(eng) = self.inline.as_mut() {
            let (d, a, h) = eng.cut(now_us);
            delta = d;
            active = a;
            heavy = h;
            occupancy[0] = a as usize;
        } else {
            for shard in 0..self.staging.len() {
                self.staging[shard].push(Work::Cut { seq, now_us });
                self.flush(shard);
            }
            // Replies arrive in whatever order the shards reach the
            // barrier; park them by shard index, then fold ascending —
            // the canonical order that keeps every merge deterministic.
            for _ in 0..self.shards_n {
                let msg = report_rx.recv().expect("shard alive");
                debug_assert_eq!(msg.seq, seq, "cut barrier out of sync");
                let shard = msg.shard;
                self.msgs[shard] = Some(msg);
            }
            for slot in self.msgs.iter_mut() {
                let msg = slot.take().expect("one reply per shard");
                delta.merge(&msg.delta);
                active += msg.active;
                heavy += msg.heavy;
                occupancy[msg.shard] = msg.active as usize;
            }
        }
        let skipped = skipped_cum - self.prev_skipped;
        self.prev_skipped = skipped_cum;

        self.summary.flows_seen += delta.flows_opened;
        self.summary.flows_closed += delta.flows_closed;
        self.summary.flows_evicted_idle += delta.flows_evicted_idle;
        self.summary.flows_shed += delta.flows_shed;
        self.summary.flows_eof += delta.flows_eof;
        self.summary.flows_finalized += delta.flows_finalized;
        self.summary.packets += delta.packets;
        self.summary.packets_late += delta.packets_late;
        self.summary.promotions += delta.promotions;
        self.summary.demotions += delta.demotions;
        self.summary.promotions_denied += delta.promotions_denied;
        self.summary.live_stalls += delta.live_stalls;
        self.summary.breakdown.merge(&delta.breakdown);
        shard::merge_by_port(&mut self.summary.by_port, &delta.by_port);
        if let Some(s) = self.summary.rtt_sketch.as_mut() {
            s.merge(&delta.rtt_sketch);
        }
        if let Some(s) = self.summary.stall_sketch.as_mut() {
            s.merge(&delta.stall_sketch);
        }

        IntervalReport {
            daemon: self.daemon,
            interval: iv,
            start_us: iv * self.interval_us,
            end_us: (iv + 1) * self.interval_us,
            packets: delta.packets,
            packets_skipped: skipped,
            packets_late: delta.packets_late,
            flows_opened: delta.flows_opened,
            flows_finalized: delta.flows_finalized,
            flows_closed: delta.flows_closed,
            flows_evicted_idle: delta.flows_evicted_idle,
            flows_shed: delta.flows_shed,
            active_flows: active,
            flows_light: active - heavy,
            flows_heavy: heavy,
            promotions: delta.promotions,
            demotions: delta.demotions,
            live_stalls: delta.live_stalls,
            breakdown: delta.breakdown,
            by_port: delta.by_port,
            rtt_sketch: self.sketch.then_some(delta.rtt_sketch),
            stall_sketch: self.sketch.then_some(delta.stall_sketch),
            shard_occupancy: self.per_shard.then_some(occupancy),
        }
    }
}

fn engine_params(cfg: &LiveConfig, ncells: usize, shards: usize, shard: usize) -> EngineParams {
    EngineParams {
        analyzer: cfg.analyzer,
        collect: cfg.collect_flows,
        tier: cfg.tier,
        idle_us: cfg.idle_timeout.map(|d| d.as_micros()),
        linger_us: cfg.fin_linger.map(|d| d.as_micros()),
        ncells,
        shards,
        shard,
        max_flows: cfg.max_flows,
        sketch: cfg.sketch,
    }
}

/// Run the live pipeline over a packet stream until EOF, invoking
/// `on_report` (on the caller's thread) for each interval report, and
/// returning the whole-run summary.
pub fn run<R: Read>(
    input: R,
    cfg: &LiveConfig,
    mut on_report: impl FnMut(&IntervalReport),
) -> Result<LiveSummary, PcapError> {
    let shards_n = cfg.shards.max(1);
    let batch_cap = cfg.batch.max(1);
    let ring_depth = cfg.ring_depth.max(1);
    let ncells = cfg.effective_cells();
    let mut stream = PcapStream::new(input)?;
    let interval_us = cfg.interval.as_micros().max(1);

    std::thread::scope(|scope| -> Result<LiveSummary, PcapError> {
        let (report_tx, report_rx) = mpsc::channel::<ShardMsg>();
        let mut dir_txs = Vec::with_capacity(shards_n);
        let mut spare_rxs = Vec::with_capacity(shards_n);
        let mut handles = Vec::with_capacity(shards_n);
        // A single shard runs inline on the driver thread (no handoff);
        // worker threads and rings exist only when there is real
        // parallelism to exploit.
        if shards_n > 1 {
            for shard in 0..shards_n {
                let (dir_tx, dir_rx) = ring::ring::<Vec<Work>>(ring_depth);
                // The spare ring is slightly deeper than the forward ring
                // so a shard can always return a buffer even when every
                // forward slot is full and the driver holds a staging
                // buffer.
                let (spare_tx, spare_rx) = ring::ring::<Vec<Work>>(ring_depth + 2);
                dir_txs.push(dir_tx);
                spare_rxs.push(spare_rx);
                let rtx = report_tx.clone();
                let params = engine_params(cfg, ncells, shards_n, shard);
                handles.push(scope.spawn(move || shard_worker(params, dir_rx, spare_tx, rtx)));
            }
        }
        drop(report_tx);

        let mut drv = Driver::new(cfg, ncells, dir_txs, spare_rxs);

        let mut batch = PacketBatch::new();
        let mut cur_iv: Option<u64> = None;
        let mut next_cut_us = 0u64;
        let mut last_t_us = 0u64;
        let mut gidx = 0u64;
        let pace = cfg.pace.filter(|&p| p > 0.0);
        let mut pace_origin: Option<(std::time::Instant, u64)> = None;
        while stream.fill_batch(&mut batch, batch_cap)? > 0 {
            for j in 0..batch.len() {
                let pkt = &batch.pkts()[j];
                let t_us = pkt.t.as_micros();
                last_t_us = t_us;
                if let Some(p) = pace {
                    let (wall0, t0) = *pace_origin.get_or_insert((std::time::Instant::now(), t_us));
                    let target = std::time::Duration::from_secs_f64(
                        (t_us.saturating_sub(t0)) as f64 / 1e6 / p,
                    );
                    let elapsed = wall0.elapsed();
                    if target > elapsed {
                        std::thread::sleep(target - elapsed);
                    }
                }
                // Dividing only at interval boundaries keeps a 64-bit div
                // off the per-packet path. Engines expire deadlines up to
                // the barrier before taking the delta, so an eviction due
                // in the previous interval lands in its report.
                if t_us >= next_cut_us {
                    let iv = t_us / interval_us;
                    if let Some(ci) = cur_iv {
                        let r = drv.cut(ci, batch.skipped_before(j), t_us, &report_rx);
                        drv.summary.intervals += 1;
                        on_report(&r);
                    }
                    cur_iv = Some(iv);
                    next_cut_us = (iv + 1).saturating_mul(interval_us);
                }
                if let Some(eng) = drv.inline.as_mut() {
                    eng.process(gidx, pkt, t_us);
                } else {
                    let shard = cell_of(&pkt.key, drv.ncells) % drv.shards_n;
                    drv.stage(shard, Work::Pkt { gidx, pkt: *pkt });
                }
                gidx += 1;
            }
            drv.flush_all();
        }

        // EOF: every engine runs its timers to the last packet's time and
        // finalizes whatever is still open, oldest flow first; then one
        // final cut drains the deltas.
        if let Some(eng) = drv.inline.as_mut() {
            eng.eof(last_t_us);
        } else {
            for shard in 0..drv.staging.len() {
                drv.staging[shard].push(Work::Eof { now_us: last_t_us });
            }
            drv.flush_all();
        }
        let final_report = drv.cut(
            cur_iv.unwrap_or(0),
            stream.stats().packets_skipped,
            last_t_us,
            &report_rx,
        );
        if cur_iv.is_some() {
            drv.summary.intervals += 1;
            on_report(&final_report);
        }

        // Shut shards down; collect per-flow analyses (if any) and the
        // whole-run totals, folding both in shard order.
        drv.dir_txs.clear();
        let mut flows: Vec<(u64, FlowKey, FlowAnalysis)> = Vec::new();
        let mut totals = EngineTotals::default();
        if let Some(eng) = drv.inline.take() {
            let t = eng.totals();
            totals.active_hw += t.active_hw;
            totals.heavy_hw += t.heavy_hw;
            flows.extend(eng.into_collected());
        }
        for h in handles {
            let (collected, t) = h.join().expect("shard panicked");
            totals.active_hw += t.active_hw;
            totals.heavy_hw += t.heavy_hw;
            flows.extend(collected);
        }
        flows.sort_by_key(|&(uid, _, _)| uid);
        let mut summary = drv.summary;
        summary.max_active_flows = totals.active_hw;
        summary.max_heavy_flows = totals.heavy_hw;
        summary.ring_fresh_buffers = drv.ring_fresh.iter().sum();
        summary.ring_recycled_buffers = drv.ring_recycled.iter().sum();
        summary.flows = flows.into_iter().map(|(_, key, a)| (key, a)).collect();
        let stats = stream.stats();
        summary.packets_skipped = stats.packets_skipped;
        summary.records_truncated = stats.records_truncated;
        summary.stalled = summary.breakdown.total_stalled;
        Ok(summary)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;
    use tcp_trace::flow::FlowTrace;
    use tcp_trace::pcap::PcapWriter;
    use tcp_trace::record::{Direction, SackList, SegFlags, TraceRecord};

    fn rec(
        t_ms: u64,
        dir: Direction,
        seq: u64,
        len: u32,
        ack: u64,
        flags: SegFlags,
    ) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_millis(t_ms),
            dir,
            seq,
            len,
            flags,
            ack,
            rwnd: 1 << 20,
            sack: SackList::new(),
            dsack: false,
        }
    }

    /// A minimal complete flow: SYN, SYN-ACK, request, response, FIN.
    fn flow_trace(key: FlowKey, t0_ms: u64) -> FlowTrace {
        let mut f = FlowTrace::new(key);
        f.push(rec(t0_ms, Direction::In, 0, 0, 0, SegFlags::SYN));
        f.push(rec(t0_ms + 1, Direction::Out, 0, 0, 0, SegFlags::SYN_ACK));
        f.push(rec(t0_ms + 2, Direction::In, 0, 300, 0, SegFlags::ACK));
        f.push(rec(t0_ms + 10, Direction::Out, 0, 1448, 300, SegFlags::ACK));
        f.push(rec(t0_ms + 20, Direction::In, 0, 0, 1448, SegFlags::ACK));
        let fin = SegFlags {
            fin: true,
            ack: true,
            ..Default::default()
        };
        f.push(rec(t0_ms + 21, Direction::Out, 1448, 0, 300, fin));
        f
    }

    fn capture(traces: &[FlowTrace]) -> Vec<u8> {
        // Interleave by timestamp (stable by flow order).
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        let mut cursor: Vec<usize> = vec![0; traces.len()];
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (i, tr) in traces.iter().enumerate() {
                if let Some(r) = tr.records.get(cursor[i]) {
                    let t = r.t.as_micros();
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            w.write_record(&traces[i].key.unwrap(), &traces[i].records[cursor[i]])
                .unwrap();
            cursor[i] += 1;
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn reports_are_identical_across_shard_counts() {
        let traces: Vec<FlowTrace> = (0..20)
            .map(|i| flow_trace(FlowKey::synthetic(i), (i as u64) * 700))
            .collect();
        let buf = capture(&traces);
        let render = |shards: usize| {
            let cfg = LiveConfig {
                shards,
                interval: SimDuration::from_secs(2),
                ..Default::default()
            };
            let mut out = String::new();
            let summary = run(&buf[..], &cfg, |r| {
                out.push_str(&r.to_json().compact());
                out.push('\n');
            })
            .unwrap();
            out.push_str(&summary.to_json().compact());
            out
        };
        let one = render(1);
        assert_eq!(one, render(2));
        assert_eq!(one, render(4));
        assert!(one.contains("\"kind\":\"summary\""));
    }

    #[test]
    fn cap_sheds_lru_flows_and_counts_them() {
        // 8 overlapping flows, cap of 3: at least 5 finalizations must be
        // sheds, and the active count never exceeds the cap. One cell
        // keeps the cap global (exact legacy semantics) rather than split
        // into per-cell quotas.
        let traces: Vec<FlowTrace> = (0..8)
            .map(|i| flow_trace(FlowKey::synthetic(i), (i as u64) * 5))
            .collect();
        let buf = capture(&traces);
        let cfg = LiveConfig {
            max_flows: 3,
            cells: 1,
            fin_linger: None,
            idle_timeout: None,
            ..Default::default()
        };
        let mut max_active = 0;
        let summary = run(&buf[..], &cfg, |r| {
            max_active = max_active.max(r.active_flows);
        })
        .unwrap();
        assert_eq!(summary.flows_seen, 8);
        assert_eq!(summary.flows_finalized, 8);
        assert_eq!(summary.flows_shed, 5);
        assert!(summary.max_active_flows <= 3);
        assert!(max_active <= 3);
    }

    #[test]
    fn per_cell_caps_bound_the_total_and_stay_shard_invariant() {
        // With several cells, the cap is split into quotas that sum to it
        // exactly: the total tracked flows never exceed the cap, and the
        // shed/report stream is identical at any shard count.
        let traces: Vec<FlowTrace> = (0..24)
            .map(|i| flow_trace(FlowKey::synthetic(i), (i as u64) * 5))
            .collect();
        let buf = capture(&traces);
        let render = |shards: usize| {
            let cfg = LiveConfig {
                shards,
                max_flows: 6,
                fin_linger: None,
                idle_timeout: None,
                ..Default::default()
            };
            let mut out = String::new();
            let mut max_active = 0;
            let summary = run(&buf[..], &cfg, |r| {
                max_active = max_active.max(r.active_flows);
                out.push_str(&r.to_json().compact());
                out.push('\n');
            })
            .unwrap();
            assert!(summary.max_active_flows <= 6);
            assert!(max_active <= 6);
            assert!(summary.flows_shed > 0, "quota splits must shed under load");
            out.push_str(&summary.to_json().compact());
            out
        };
        let one = render(1);
        assert_eq!(one, render(2));
        assert_eq!(one, render(4));
    }

    #[test]
    fn idle_flows_are_evicted_and_stragglers_dropped() {
        let k_idle = FlowKey::synthetic(1);
        let k_busy = FlowKey::synthetic(2);
        let mut idle = FlowTrace::new(k_idle);
        idle.push(rec(0, Direction::In, 0, 0, 0, SegFlags::SYN));
        idle.push(rec(1, Direction::Out, 0, 0, 0, SegFlags::SYN_ACK));
        // ... then silence; a straggler arrives long after eviction.
        idle.push(rec(30_000, Direction::In, 0, 0, 0, SegFlags::ACK));
        let mut busy = FlowTrace::new(k_busy);
        busy.push(rec(0, Direction::In, 0, 0, 0, SegFlags::SYN));
        for i in 0..40u64 {
            busy.push(rec(
                500 + i * 800,
                Direction::Out,
                i * 100,
                100,
                0,
                SegFlags::ACK,
            ));
        }
        let buf = capture(&[idle, busy]);
        let cfg = LiveConfig {
            idle_timeout: Some(SimDuration::from_secs(5)),
            fin_linger: None,
            ..Default::default()
        };
        let summary = run(&buf[..], &cfg, |_| {}).unwrap();
        assert_eq!(summary.flows_seen, 2);
        assert_eq!(summary.flows_evicted_idle, 1, "idle flow evicted");
        assert_eq!(summary.packets_late, 1, "straggler dropped, not re-opened");
        assert_eq!(summary.flows_eof, 1, "busy flow survives to EOF");
    }

    #[test]
    fn fin_linger_finalizes_closed_flows() {
        let traces = vec![flow_trace(FlowKey::synthetic(1), 0)];
        let mut long = FlowTrace::new(FlowKey::synthetic(2));
        long.push(rec(0, Direction::In, 0, 0, 0, SegFlags::SYN));
        long.push(rec(10_000, Direction::Out, 0, 100, 0, SegFlags::ACK));
        let buf = capture(&[traces.into_iter().next().unwrap(), long]);
        let cfg = LiveConfig {
            fin_linger: Some(SimDuration::from_millis(100)),
            idle_timeout: None,
            ..Default::default()
        };
        let summary = run(&buf[..], &cfg, |_| {}).unwrap();
        assert_eq!(summary.flows_closed, 1, "FIN flow finalized by linger");
        assert_eq!(summary.flows_eof, 1);
    }

    #[test]
    fn key_reuse_opens_a_fresh_generation() {
        let k = FlowKey::synthetic(7);
        let mut gen1 = flow_trace(k, 0);
        // Reuse the 4-tuple 100 ms later.
        let gen2 = flow_trace(k, 100);
        gen1.records.extend(gen2.records.iter().copied());
        let buf = capture(&[gen1]);
        let cfg = LiveConfig {
            collect_flows: true,
            fin_linger: None,
            idle_timeout: None,
            ..Default::default()
        };
        let summary = run(&buf[..], &cfg, |_| {}).unwrap();
        assert_eq!(summary.flows_seen, 2, "SYN on closed key rotates");
        assert_eq!(summary.flows_closed, 1, "old generation finalized");
        assert_eq!(summary.flows.len(), 2);
        assert_eq!(summary.flows[0].0, k);
        assert_eq!(summary.flows[1].0, k);
    }

    #[test]
    fn empty_capture_yields_empty_summary() {
        let buf = capture(&[]);
        let mut reports = 0;
        let summary = run(&buf[..], &LiveConfig::default(), |_| reports += 1).unwrap();
        assert_eq!(reports, 0);
        assert_eq!(summary.flows_seen, 0);
        assert_eq!(summary.packets, 0);
        assert_eq!(summary.intervals, 0);
    }

    #[test]
    fn epoch_timestamped_capture_runs_quickly() {
        // Real tcpdump output carries wall-clock epoch timestamps; the
        // pipeline (and in particular the timer wheel, whose base starts
        // at 0) must not degrade on the jump to ~1.75e15 us.
        let epoch_ms = 1_754_000_000_000u64;
        let traces: Vec<FlowTrace> = (0..5)
            .map(|i| flow_trace(FlowKey::synthetic(i), epoch_ms + (i as u64) * 700))
            .collect();
        let buf = capture(&traces);
        let t0 = std::time::Instant::now();
        let summary = run(&buf[..], &LiveConfig::default(), |_| {}).unwrap();
        assert_eq!(summary.flows_seen, 5);
        assert_eq!(summary.packets, 30);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "epoch-timestamped capture stalled: {:?}",
            t0.elapsed()
        );
    }
}

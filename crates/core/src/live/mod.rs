//! The live diagnosis pipeline: daemon-grade TAPO.
//!
//! The paper deploys TAPO on production servers for daily maintenance — an
//! *online* tool watching live traffic, not a batch job over finished pcap
//! files. This module is that deployment shape: a bounded-memory, sharded,
//! continuously-reporting pipeline over an incremental packet stream
//! ([`tcp_trace::pcap::PcapStream`] — file, FIFO, or stdin).
//!
//! # Architecture
//!
//! The packet path is *batched end-to-end*. The segmented zero-copy reader
//! ([`tcp_trace::pcap::PcapStream::fill_batch`]) decodes up to `batch`
//! packets per refill into a reusable [`PacketBatch`]; one **serial
//! driver** walks each batch in capture order and makes *every* lifecycle
//! decision: flow admission, 4-tuple reuse (a bare SYN on a closed flow
//! finalizes the old generation and opens a fresh one, matching the
//! offline [`tcp_trace::flow::FlowTable`]), FIN/RST teardown with a linger
//! window, idle-timeout eviction through a lazy timer wheel
//! ([`TimerWheel`]), and LRU shedding ([`LruList`]) at a hard flow-table
//! cap. The driver also owns per-flow sequence translation
//! ([`tcp_trace::pcap::SeqTracker`]) and the FNV-keyed flow maps, then
//! groups directives by each flow's key hash into per-shard staging
//! buffers, flushed as one handoff per shard per batch down bounded SPSC
//! rings ([`ring`]) whose batch buffers the shards recycle back — the
//! steady state allocates nothing. N **worker shards** run the per-flow
//! [`crate::StreamAnalyzer`]s, addressed by dense driver slot indices.
//!
//! # Determinism
//!
//! Aggregate output is byte-identical at any shard count *and any batch
//! size*:
//! * lifecycle decisions are made serially by the driver, independent of
//!   shard placement and of how many packets a batch happened to carry;
//! * each flow's analysis depends only on its own records (analyzers are
//!   recycled through exact resets);
//! * per-interval shard deltas are commutative integer merges
//!   ([`crate::report::StallBreakdown::merge`]), collected at a cut barrier
//!   before each report is rendered;
//! * reader skip counts are recorded per decoded packet
//!   ([`PacketBatch::skipped_before`]), so interval attribution does not
//!   shift when the reader decodes ahead of processing.
//!
//! Only the opt-in `per_shard_occupancy` field depends on the shard count.
//!
//! # Memory bound
//!
//! With a cap of `max_flows`, driver + shards hold at most that many flow
//! states (plus recycled free pools); everything else is O(shards) or
//! O(interval). The load generator in the `workloads` crate feeds the
//! 10k-flow capture the bench gate uses to assert the bound.

mod config;
mod fnv;
mod lru;
mod monitor;
mod report;
pub mod ring;
mod shard;
mod wheel;

pub use config::{LiveConfigBuilder, LiveConfigError, MAX_BATCH, MAX_RING_DEPTH};
pub use fnv::{FnvHasher, FnvState};
pub use lru::LruList;
pub use monitor::{FlowMonitor, LightTable, MonitorSeed, TierConfig, Verdict};
pub use report::{class_slug, retrans_slug, IntervalReport, LiveSummary};
pub use shard::{shard_worker, Directive, IntervalDelta, ShardMsg, ShardState};
pub use wheel::{TimerEntry, TimerWheel};

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::sync::mpsc;

use simnet::time::SimDuration;
use tcp_trace::flow::FlowKey;
use tcp_trace::pcap::{PacketBatch, PcapError, PcapPacket, PcapStream, SeqTracker};

use crate::AnalyzerConfig;
use ring::{RingConsumer, RingProducer};

/// How the live pipeline runs: sharding, lifecycle timeouts, reporting
/// cadence, memory cap.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Per-flow analyzer parameters.
    pub analyzer: AnalyzerConfig,
    /// Worker shards (0 is treated as 1). Output is identical at any count.
    pub shards: usize,
    /// Reporting interval (capture time, aligned to multiples of itself).
    pub interval: SimDuration,
    /// Evict flows idle this long; `None` disables idle eviction.
    pub idle_timeout: Option<SimDuration>,
    /// Finalize a FIN/RST-closed flow after this linger (stragglers until
    /// then still reach the analyzer); `None` keeps closed flows until
    /// idle timeout / EOF, matching the offline reader.
    pub fin_linger: Option<SimDuration>,
    /// Hard cap on concurrently tracked flows; 0 = unbounded. At the cap,
    /// the least-recently-active flow is finalized early ("shed").
    pub max_flows: usize,
    /// Keep every finalized [`crate::FlowAnalysis`] in the summary —
    /// unbounded memory, for tests and offline comparison only.
    pub collect_flows: bool,
    /// Include per-shard occupancy in reports (shard-count-dependent, so
    /// off by default to keep output byte-identical across shard counts).
    pub per_shard_occupancy: bool,
    /// Replay pacing: sleep so capture time advances at `pace` × real time
    /// (1.0 = original timing). `None` = as fast as possible.
    pub pace: Option<f64>,
    /// Two-tier monitoring: `Some` keeps every flow in a compact light
    /// tier ([`LightTable`]) and promotes to a full [`crate::StreamAnalyzer`]
    /// only on suspicion; `None` (the default) analyzes every flow heavy
    /// from the first packet, as before.
    pub tier: Option<TierConfig>,
    /// Packets decoded (and directives staged) per batch; 0 is treated
    /// as 1. Output is identical at any batch size.
    pub batch: usize,
    /// Directive-ring depth in batch buffers (backpressure toward the
    /// driver); 0 is treated as 1.
    pub ring_depth: usize,
}

/// Default packets per batch (one handoff per shard per batch).
pub const DEFAULT_BATCH: usize = 256;
/// Default directive-ring depth in batch buffers.
pub const DEFAULT_RING_DEPTH: usize = 8;

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            analyzer: AnalyzerConfig::default(),
            shards: 1,
            interval: SimDuration::from_secs(1),
            idle_timeout: Some(SimDuration::from_secs(60)),
            fin_linger: Some(SimDuration::from_secs(1)),
            max_flows: 0,
            collect_flows: false,
            per_shard_occupancy: false,
            pace: None,
            tier: None,
            batch: DEFAULT_BATCH,
            ring_depth: DEFAULT_RING_DEPTH,
        }
    }
}

impl LiveConfig {
    /// Start a validated [`LiveConfigBuilder`] — the construction path the
    /// CLI and library users share.
    pub fn builder() -> LiveConfigBuilder {
        LiveConfigBuilder::new()
    }
}

/// Why the driver finalized a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// FIN/RST seen and the linger expired.
    Teardown,
    /// FIN/RST seen, then a reopening SYN displaced it (4-tuple reuse).
    Displaced,
    /// Idle timeout.
    Idle,
    /// LRU-shed at the flow-table cap.
    Shed,
    /// Capture ended while the flow was open.
    Eof,
}

/// Stragglers on an evicted key are dropped (and counted) for this long
/// before the key is forgotten and a new packet may reopen it as a flow.
const DEAD_TTL_US: u64 = 60_000_000;

struct DriverFlow {
    key: FlowKey,
    uid: u64,
    shard: usize,
    tracker: SeqTracker,
    closed: bool,
    /// Which tier this flow currently occupies.
    monitor: FlowMonitor,
    /// Authoritative eviction deadline; `u64::MAX` = none.
    deadline_us: u64,
    /// Earliest outstanding wheel entry (lazy-timer bookkeeping).
    wheel_deadline_us: u64,
}

/// Per-interval driver-side counters (shard counters arrive in deltas).
#[derive(Debug, Default, Clone, Copy)]
struct Accum {
    packets: u64,
    packets_late: u64,
    flows_opened: u64,
    flows_finalized: u64,
    flows_closed: u64,
    flows_evicted_idle: u64,
    flows_shed: u64,
    promotions: u64,
    demotions: u64,
}

struct Driver {
    shards_n: usize,
    max_flows: usize,
    collect: bool,
    per_shard: bool,
    idle_us: Option<u64>,
    linger_us: Option<u64>,
    interval_us: u64,
    /// `Some` enables two-tier monitoring with these thresholds.
    tier: Option<TierConfig>,
    /// Compact per-flow state for every tracked flow (rows indexed by
    /// slot; only touched when `tier` is on).
    light: LightTable,
    /// Flows currently holding a heavy-tier analyzer — a *global* count,
    /// so the promotion cap is shard-count-independent.
    heavy_active: usize,

    slots: Vec<Option<DriverFlow>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    map: HashMap<FlowKey, u32, FnvState>,
    lru: LruList,
    wheel: TimerWheel,
    expired: Vec<TimerEntry>,
    dead: HashMap<FlowKey, u64, FnvState>,
    dead_q: VecDeque<(u64, FlowKey)>,
    /// Expiry of `dead_q`'s front entry (`u64::MAX` when empty): the
    /// per-packet purge check is a register compare, not a deque probe.
    dead_next_us: u64,
    tracker_pool: Vec<SeqTracker>,
    next_uid: u64,
    /// uid → key, kept only under `collect` (grows with the stream).
    uid_keys: Vec<FlowKey>,

    dir_txs: Vec<RingProducer<Vec<Directive>>>,
    /// Emptied batch buffers coming back from each shard for reuse.
    spare_rxs: Vec<RingConsumer<Vec<Directive>>>,
    /// Per-shard staging buffers, flushed once per packet batch (or when
    /// a staging buffer reaches `batch_cap` mid-batch).
    staging: Vec<Vec<Directive>>,
    batch_cap: usize,
    /// With a single shard there is no one to hand off to: the shard state
    /// machine runs inline on the driver thread and every directive is
    /// applied immediately. The directive sequence is identical either
    /// way, so reports stay byte-identical — but the inline path skips the
    /// staging copy, the ring traffic and (on small machines) the context
    /// switches of a worker thread.
    inline_state: Option<ShardState>,

    accum: Accum,
    summary: LiveSummary,
    prev_skipped: u64,
    cut_seq: u64,
}

impl Driver {
    fn new(
        cfg: &LiveConfig,
        dir_txs: Vec<RingProducer<Vec<Directive>>>,
        spare_rxs: Vec<RingConsumer<Vec<Directive>>>,
    ) -> Driver {
        let shards_n = dir_txs.len().max(1);
        let batch_cap = cfg.batch.max(1);
        let inline_state = dir_txs
            .is_empty()
            .then(|| ShardState::new(cfg.analyzer, cfg.collect_flows));
        let staging_n = dir_txs.len();
        Driver {
            shards_n,
            max_flows: cfg.max_flows,
            collect: cfg.collect_flows,
            per_shard: cfg.per_shard_occupancy,
            idle_us: cfg.idle_timeout.map(|d| d.as_micros()),
            linger_us: cfg.fin_linger.map(|d| d.as_micros()),
            interval_us: cfg.interval.as_micros().max(1),
            tier: cfg.tier,
            light: LightTable::new(cfg.analyzer.replay),
            heavy_active: 0,
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            map: HashMap::default(),
            lru: LruList::new(),
            wheel: TimerWheel::with_default_geometry(),
            expired: Vec::new(),
            dead: HashMap::default(),
            dead_q: VecDeque::new(),
            dead_next_us: u64::MAX,
            tracker_pool: Vec::new(),
            next_uid: 0,
            uid_keys: Vec::new(),
            dir_txs,
            spare_rxs,
            staging: (0..staging_n)
                .map(|_| Vec::with_capacity(batch_cap))
                .collect(),
            batch_cap,
            inline_state,
            accum: Accum::default(),
            summary: LiveSummary::default(),
            prev_skipped: 0,
            cut_seq: 0,
        }
    }

    fn timers_enabled(&self) -> bool {
        self.idle_us.is_some() || self.linger_us.is_some()
    }

    fn deadline_for(&self, closed: bool, now_us: u64) -> u64 {
        let d = if closed {
            self.linger_us.or(self.idle_us)
        } else {
            self.idle_us
        };
        match d {
            Some(x) => now_us.saturating_add(x),
            None => u64::MAX,
        }
    }

    fn send(&mut self, shard: usize, d: Directive) {
        if let Some(st) = self.inline_state.as_mut() {
            st.apply(d);
            return;
        }
        self.staging[shard].push(d);
        if self.staging[shard].len() >= self.batch_cap {
            self.flush(shard);
        }
    }

    /// Per-packet record handoff; inline mode feeds the shard state by
    /// reference instead of building (and copying the record into) a
    /// [`Directive`].
    fn send_rec(&mut self, shard: usize, slot: u32, rec: tcp_trace::record::TraceRecord) {
        if let Some(st) = self.inline_state.as_mut() {
            st.apply_rec(slot, &rec);
            return;
        }
        self.send(shard, Directive::Rec { slot, rec });
    }

    /// Hand the shard's staging buffer down its ring, replacing it with a
    /// recycled buffer from the shard's spare ring (or, before the pool
    /// has warmed up, a fresh allocation — counted, so tests can assert
    /// the steady state recycles).
    fn flush(&mut self, shard: usize) {
        if self.staging[shard].is_empty() {
            return;
        }
        let replacement = match self.spare_rxs[shard].try_pop() {
            Some(mut buf) => {
                self.summary.ring_recycled_buffers += 1;
                buf.clear();
                buf
            }
            None => {
                self.summary.ring_fresh_buffers += 1;
                Vec::with_capacity(self.batch_cap)
            }
        };
        let full = std::mem::replace(&mut self.staging[shard], replacement);
        self.dir_txs[shard].push(full).expect("shard alive");
    }

    /// One handoff per shard per packet batch (no-op when inline).
    fn flush_all(&mut self) {
        for shard in 0..self.staging.len() {
            self.flush(shard);
        }
    }

    /// Set the slot's deadline, scheduling a wheel entry if it moved
    /// earlier than the earliest outstanding one (lazy timers: pushes to a
    /// *later* deadline are resolved when the stale entry fires).
    fn arm(&mut self, slot: u32, deadline_us: u64) {
        let flow = self.slots[slot as usize].as_mut().expect("occupied");
        flow.deadline_us = deadline_us;
        if deadline_us != u64::MAX && deadline_us < flow.wheel_deadline_us {
            flow.wheel_deadline_us = deadline_us;
            self.wheel
                .schedule((deadline_us, slot, self.gens[slot as usize]));
        }
    }

    fn admit(&mut self, pkt: &PcapPacket, t_us: u64) {
        if self.max_flows > 0 && self.map.len() >= self.max_flows {
            let victim = self.lru.pop_front().expect("cap > 0 implies tracked flows");
            self.finalize(victim, t_us, Reason::Shed);
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        let uid = self.next_uid;
        self.next_uid += 1;
        if self.collect {
            self.uid_keys.push(pkt.key);
        }
        let shard = shard_of(&pkt.key, self.shards_n);
        let mut tracker = self.tracker_pool.pop().unwrap_or_default();
        tracker.reset();
        // Two-tier: every flow starts light (no analyzer, no directive);
        // always-heavy: open the analyzer at the first packet, as before.
        let monitor = if self.tier.is_some() {
            self.light.init(slot);
            FlowMonitor::Light
        } else {
            FlowMonitor::Heavy
        };
        self.slots[slot as usize] = Some(DriverFlow {
            key: pkt.key,
            uid,
            shard,
            tracker,
            closed: false,
            monitor,
            deadline_us: u64::MAX,
            wheel_deadline_us: u64::MAX,
        });
        self.map.insert(pkt.key, slot);
        self.lru.push_back(slot);
        self.accum.flows_opened += 1;
        self.summary.max_active_flows = self.summary.max_active_flows.max(self.map.len() as u64);
        if monitor.is_heavy() {
            self.heavy_active += 1;
            self.summary.max_heavy_flows =
                self.summary.max_heavy_flows.max(self.heavy_active as u64);
            self.send(
                shard,
                Directive::Open {
                    slot,
                    uid,
                    seed: None,
                },
            );
        }
        self.deliver(slot, pkt, t_us);
    }

    fn deliver(&mut self, slot: u32, pkt: &PcapPacket, t_us: u64) {
        let flow = self.slots[slot as usize].as_mut().expect("occupied");
        let uid = flow.uid;
        let shard = flow.shard;
        let rec = flow.tracker.translate(pkt.t, &pkt.raw);
        if pkt.raw.flags.fin || pkt.raw.flags.rst {
            flow.closed = true;
        }
        let closed = flow.closed;
        let heavy = flow.monitor.is_heavy();
        if let Some(rec) = rec {
            match self.tier {
                // Always-heavy: the legacy path, zero light-tier overhead.
                None => self.send_rec(shard, slot, rec),
                Some(tier) => {
                    // The light row tracks every flow — heavy ones too, so
                    // the calm-streak hysteresis has something to read.
                    let verdict = self.light.update(slot, &rec, t_us, &tier);
                    if heavy {
                        self.send_rec(shard, slot, rec);
                        if tier.demote_streak > 0
                            && !closed
                            && !verdict.suspicious
                            && verdict.calm_streak >= tier.demote_streak
                        {
                            self.demote(slot, shard);
                        }
                    } else if verdict.suspicious && !closed {
                        self.promote(slot, uid, shard, &tier);
                    }
                }
            }
        }
        let deadline = self.deadline_for(closed, t_us);
        self.arm(slot, deadline);
        self.lru.touch(slot);
    }

    /// Escalate a light flow: snapshot the light row (which already
    /// reflects the triggering record) and open a seeded analyzer. The
    /// triggering record is *not* forwarded — its effect lives in the
    /// seed, and forwarding it too would double-apply it (e.g. new data
    /// misread as a retransmission against the seeded `snd_nxt`).
    ///
    /// Denied when the global heavy cap is full; the heuristics are
    /// level-triggered, so a still-suspicious flow simply retries on its
    /// next packet.
    fn promote(&mut self, slot: u32, uid: u64, shard: usize, tier: &TierConfig) {
        if tier.heavy_max > 0 && self.heavy_active >= tier.heavy_max {
            self.summary.promotions_denied += 1;
            return;
        }
        let seed = self.light.seed(slot);
        self.slots[slot as usize]
            .as_mut()
            .expect("occupied")
            .monitor = FlowMonitor::Heavy;
        self.heavy_active += 1;
        self.accum.promotions += 1;
        self.summary.max_heavy_flows = self.summary.max_heavy_flows.max(self.heavy_active as u64);
        self.send(
            shard,
            Directive::Open {
                slot,
                uid,
                seed: Some(seed),
            },
        );
    }

    /// Hysteresis demotion: the flow stayed calm for the configured
    /// streak, so recycle its analyzer and fall back to the light row
    /// (whose counters are re-armed so the next promotion needs fresh
    /// evidence, not leftovers from the previous episode).
    fn demote(&mut self, slot: u32, shard: usize) {
        self.slots[slot as usize]
            .as_mut()
            .expect("occupied")
            .monitor = FlowMonitor::Light;
        self.heavy_active -= 1;
        self.accum.demotions += 1;
        self.light.rearm(slot);
        self.send(shard, Directive::Demote { slot });
    }

    fn finalize(&mut self, slot: u32, t_us: u64, reason: Reason) {
        let mut flow = self.slots[slot as usize].take().expect("occupied");
        self.map.remove(&flow.key);
        self.lru.remove(slot);
        self.free.push(slot);
        // Only heavy flows have an analyzer to close; a light finalize is
        // driver-local (its flow contributes nothing to the breakdown —
        // undiagnosed by design, that is the whole saving).
        if flow.monitor.is_heavy() {
            self.heavy_active -= 1;
            self.send(flow.shard, Directive::Close { slot });
        }
        flow.tracker.reset();
        self.tracker_pool.push(flow.tracker);
        self.accum.flows_finalized += 1;
        match reason {
            Reason::Teardown | Reason::Displaced => self.accum.flows_closed += 1,
            Reason::Idle => self.accum.flows_evicted_idle += 1,
            Reason::Shed => self.accum.flows_shed += 1,
            Reason::Eof => self.summary.flows_eof += 1,
        }
        // Remember evicted keys so stragglers don't churn phantom flows.
        // Not needed at EOF (no more packets) or on displacement (the key
        // is immediately re-admitted by the reopening SYN).
        if matches!(reason, Reason::Idle | Reason::Shed | Reason::Teardown) {
            let expiry = t_us.saturating_add(DEAD_TTL_US);
            self.dead.insert(flow.key, expiry);
            self.dead_q.push_back((expiry, flow.key));
            // Expiries enqueue in nondecreasing order, so the front only
            // changes when the queue was empty.
            if self.dead_q.len() == 1 {
                self.dead_next_us = expiry;
            }
        }
    }

    fn purge_dead(&mut self, now_us: u64) {
        if now_us < self.dead_next_us {
            return;
        }
        while let Some(&(expiry, key)) = self.dead_q.front() {
            if expiry > now_us {
                self.dead_next_us = expiry;
                return;
            }
            self.dead_q.pop_front();
            // The key may have been re-added with a later expiry.
            if self.dead.get(&key) == Some(&expiry) {
                self.dead.remove(&key);
            }
        }
        self.dead_next_us = u64::MAX;
    }

    fn run_timers(&mut self, now_us: u64) {
        if !self.timers_enabled() || self.wheel.is_empty() {
            return;
        }
        let mut expired = std::mem::take(&mut self.expired);
        self.wheel.advance_into(now_us, &mut expired);
        for (entry_deadline, slot, gen) in expired.drain(..) {
            let Some(flow) = self.slots[slot as usize].as_mut() else {
                continue; // slot freed since scheduling
            };
            if self.gens[slot as usize] != gen || flow.wheel_deadline_us != entry_deadline {
                continue; // a different generation, or a superseded entry
            }
            flow.wheel_deadline_us = u64::MAX;
            if flow.deadline_us > now_us {
                // Activity pushed the true deadline out; re-arm lazily.
                let d = flow.deadline_us;
                if d != u64::MAX {
                    flow.wheel_deadline_us = d;
                    self.wheel.schedule((d, slot, gen));
                }
            } else {
                let reason = if flow.closed {
                    Reason::Teardown
                } else {
                    Reason::Idle
                };
                self.finalize(slot, now_us, reason);
            }
        }
        self.expired = expired;
    }

    fn process(&mut self, pkt: &PcapPacket, t_us: u64) {
        // Unconditional (not just when timers fire): sheds and teardowns
        // insert dead-map entries even with idle/linger timers disabled,
        // and the bounded-memory guarantee includes the dead map.
        self.purge_dead(t_us);
        self.accum.packets += 1;
        let bare_syn = pkt.raw.flags.syn && !pkt.raw.flags.ack;
        match self.map.get(&pkt.key).copied() {
            Some(slot) => {
                let closed = self.slots[slot as usize].as_ref().expect("occupied").closed;
                if closed && bare_syn {
                    // 4-tuple reuse: finalize the dead generation, start
                    // fresh (mirrors the offline FlowTable rotation).
                    self.finalize(slot, t_us, Reason::Displaced);
                    self.admit(pkt, t_us);
                } else {
                    self.deliver(slot, pkt, t_us);
                }
            }
            None => match self.dead.get(&pkt.key).copied() {
                Some(expiry) if expiry > t_us && !bare_syn => {
                    // Straggler on an evicted flow: drop, count.
                    self.accum.packets_late += 1;
                }
                _ => {
                    self.dead.remove(&pkt.key);
                    self.admit(pkt, t_us);
                }
            },
        }
    }

    /// Interval barrier: flush everything, cut every shard, merge their
    /// deltas, fold the interval into the summary, and build the report.
    /// `skipped_cum` is the reader's cumulative skip count *as of the
    /// packet that triggered this cut* (recorded per packet by the batched
    /// reader), so attribution is identical at any batch size.
    fn cut(
        &mut self,
        iv: u64,
        skipped_cum: u64,
        report_rx: &mpsc::Receiver<ShardMsg>,
    ) -> IntervalReport {
        let seq = self.cut_seq;
        self.cut_seq += 1;
        let mut delta = IntervalDelta::default();
        let mut occupancy = vec![0usize; self.shards_n];
        if let Some(st) = self.inline_state.as_mut() {
            let (d, occ) = st.cut();
            delta = d;
            occupancy[0] = occ;
        } else {
            for shard in 0..self.staging.len() {
                self.staging[shard].push(Directive::Cut { seq });
                self.flush(shard);
            }
            for _ in 0..self.shards_n {
                let msg = report_rx.recv().expect("shard alive");
                debug_assert_eq!(msg.seq, seq, "cut barrier out of sync");
                occupancy[msg.shard] = msg.occupancy;
                delta.merge(&msg.delta);
            }
        }
        let skipped = skipped_cum - self.prev_skipped;
        self.prev_skipped = skipped_cum;
        let accum = std::mem::take(&mut self.accum);

        self.summary.flows_seen += accum.flows_opened;
        self.summary.flows_closed += accum.flows_closed;
        self.summary.flows_evicted_idle += accum.flows_evicted_idle;
        self.summary.flows_shed += accum.flows_shed;
        self.summary.flows_finalized += accum.flows_finalized;
        self.summary.packets += accum.packets;
        self.summary.packets_late += accum.packets_late;
        self.summary.promotions += accum.promotions;
        self.summary.demotions += accum.demotions;
        self.summary.live_stalls += delta.live_stalls;
        self.summary.breakdown.merge(&delta.breakdown);

        IntervalReport {
            interval: iv,
            start_us: iv * self.interval_us,
            end_us: (iv + 1) * self.interval_us,
            packets: accum.packets,
            packets_skipped: skipped,
            packets_late: accum.packets_late,
            flows_opened: accum.flows_opened,
            flows_finalized: accum.flows_finalized,
            flows_closed: accum.flows_closed,
            flows_evicted_idle: accum.flows_evicted_idle,
            flows_shed: accum.flows_shed,
            active_flows: self.map.len() as u64,
            flows_light: (self.map.len() - self.heavy_active) as u64,
            flows_heavy: self.heavy_active as u64,
            promotions: accum.promotions,
            demotions: accum.demotions,
            live_stalls: delta.live_stalls,
            breakdown: delta.breakdown,
            shard_occupancy: self.per_shard.then_some(occupancy),
        }
    }
}

/// Stable (hasher-independent) shard placement: FNV-1a over the key bytes.
fn shard_of(key: &FlowKey, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |h: u64, b: u8| (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    for b in key.server_ip {
        h = eat(h, b);
    }
    for b in key.server_port.to_be_bytes() {
        h = eat(h, b);
    }
    for b in key.client_ip {
        h = eat(h, b);
    }
    for b in key.client_port.to_be_bytes() {
        h = eat(h, b);
    }
    (h % shards as u64) as usize
}

/// Run the live pipeline over a packet stream until EOF, invoking
/// `on_report` (on the caller's thread) for each interval report, and
/// returning the whole-run summary.
pub fn run<R: Read>(
    input: R,
    cfg: &LiveConfig,
    mut on_report: impl FnMut(&IntervalReport),
) -> Result<LiveSummary, PcapError> {
    let shards_n = cfg.shards.max(1);
    let batch_cap = cfg.batch.max(1);
    let ring_depth = cfg.ring_depth.max(1);
    let mut stream = PcapStream::new(input)?;
    let interval_us = cfg.interval.as_micros().max(1);

    std::thread::scope(|scope| -> Result<LiveSummary, PcapError> {
        let (report_tx, report_rx) = mpsc::channel::<ShardMsg>();
        let mut dir_txs = Vec::with_capacity(shards_n);
        let mut spare_rxs = Vec::with_capacity(shards_n);
        let mut handles = Vec::with_capacity(shards_n);
        // A single shard runs inline on the driver thread (no handoff);
        // worker threads and rings exist only when there is real
        // parallelism to exploit.
        if shards_n > 1 {
            for shard in 0..shards_n {
                let (dir_tx, dir_rx) = ring::ring::<Vec<Directive>>(ring_depth);
                // The spare ring is slightly deeper than the forward ring
                // so a shard can always return a buffer even when every
                // forward slot is full and the driver holds a staging
                // buffer.
                let (spare_tx, spare_rx) = ring::ring::<Vec<Directive>>(ring_depth + 2);
                dir_txs.push(dir_tx);
                spare_rxs.push(spare_rx);
                let rtx = report_tx.clone();
                let analyzer = cfg.analyzer;
                let collect = cfg.collect_flows;
                handles.push(
                    scope.spawn(move || {
                        shard_worker(shard, analyzer, collect, dir_rx, spare_tx, rtx)
                    }),
                );
            }
        }
        drop(report_tx);

        let mut drv = Driver::new(cfg, dir_txs, spare_rxs);

        let mut batch = PacketBatch::new();
        let mut cur_iv: Option<u64> = None;
        let mut next_cut_us = 0u64;
        let mut last_t_us = 0u64;
        let pace = cfg.pace.filter(|&p| p > 0.0);
        let mut pace_origin: Option<(std::time::Instant, u64)> = None;
        while stream.fill_batch(&mut batch, batch_cap)? > 0 {
            for j in 0..batch.len() {
                let pkt = &batch.pkts()[j];
                let t_us = pkt.t.as_micros();
                last_t_us = t_us;
                if let Some(p) = pace {
                    let (wall0, t0) = *pace_origin.get_or_insert((std::time::Instant::now(), t_us));
                    let target = std::time::Duration::from_secs_f64(
                        (t_us.saturating_sub(t0)) as f64 / 1e6 / p,
                    );
                    let elapsed = wall0.elapsed();
                    if target > elapsed {
                        std::thread::sleep(target - elapsed);
                    }
                }
                // Expire deadlines up to this packet *before* cutting, so
                // an eviction due in the previous interval lands in its
                // report.
                drv.run_timers(t_us);
                // Dividing only at interval boundaries keeps a 64-bit div
                // off the per-packet path.
                if t_us >= next_cut_us {
                    let iv = t_us / interval_us;
                    if let Some(ci) = cur_iv {
                        let r = drv.cut(ci, batch.skipped_before(j), &report_rx);
                        drv.summary.intervals += 1;
                        on_report(&r);
                    }
                    cur_iv = Some(iv);
                    next_cut_us = (iv + 1).saturating_mul(interval_us);
                }
                drv.process(pkt, t_us);
            }
            drv.flush_all();
        }

        // EOF: finalize everything still tracked, oldest flow first.
        let mut open: Vec<(u64, u32)> = drv
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|f| (f.uid, i as u32)))
            .collect();
        open.sort_unstable();
        for (_, slot) in open {
            drv.finalize(slot, last_t_us, Reason::Eof);
        }
        let final_report = drv.cut(
            cur_iv.unwrap_or(0),
            stream.stats().packets_skipped,
            &report_rx,
        );
        if cur_iv.is_some() {
            drv.summary.intervals += 1;
            on_report(&final_report);
        }

        // Shut shards down and collect per-flow analyses (if any).
        drv.dir_txs.clear();
        let mut flows: Vec<(u64, crate::FlowAnalysis)> = Vec::new();
        if let Some(st) = drv.inline_state.take() {
            flows.extend(st.into_collected());
        }
        for h in handles {
            flows.extend(h.join().expect("shard panicked"));
        }
        flows.sort_by_key(|&(uid, _)| uid);
        let mut summary = drv.summary;
        summary.flows = flows
            .into_iter()
            .map(|(uid, a)| (drv.uid_keys[uid as usize], a))
            .collect();
        let stats = stream.stats();
        summary.packets_skipped = stats.packets_skipped;
        summary.records_truncated = stats.records_truncated;
        summary.stalled = summary.breakdown.total_stalled;
        Ok(summary)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;
    use tcp_trace::flow::FlowTrace;
    use tcp_trace::pcap::PcapWriter;
    use tcp_trace::record::{Direction, SackList, SegFlags, TraceRecord};

    fn rec(
        t_ms: u64,
        dir: Direction,
        seq: u64,
        len: u32,
        ack: u64,
        flags: SegFlags,
    ) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_millis(t_ms),
            dir,
            seq,
            len,
            flags,
            ack,
            rwnd: 1 << 20,
            sack: SackList::new(),
            dsack: false,
        }
    }

    /// A minimal complete flow: SYN, SYN-ACK, request, response, FIN.
    fn flow_trace(key: FlowKey, t0_ms: u64) -> FlowTrace {
        let mut f = FlowTrace::new(key);
        f.push(rec(t0_ms, Direction::In, 0, 0, 0, SegFlags::SYN));
        f.push(rec(t0_ms + 1, Direction::Out, 0, 0, 0, SegFlags::SYN_ACK));
        f.push(rec(t0_ms + 2, Direction::In, 0, 300, 0, SegFlags::ACK));
        f.push(rec(t0_ms + 10, Direction::Out, 0, 1448, 300, SegFlags::ACK));
        f.push(rec(t0_ms + 20, Direction::In, 0, 0, 1448, SegFlags::ACK));
        let fin = SegFlags {
            fin: true,
            ack: true,
            ..Default::default()
        };
        f.push(rec(t0_ms + 21, Direction::Out, 1448, 0, 300, fin));
        f
    }

    fn capture(traces: &[FlowTrace]) -> Vec<u8> {
        // Interleave by timestamp (stable by flow order).
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        let mut cursor: Vec<usize> = vec![0; traces.len()];
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (i, tr) in traces.iter().enumerate() {
                if let Some(r) = tr.records.get(cursor[i]) {
                    let t = r.t.as_micros();
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            w.write_record(&traces[i].key.unwrap(), &traces[i].records[cursor[i]])
                .unwrap();
            cursor[i] += 1;
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn reports_are_identical_across_shard_counts() {
        let traces: Vec<FlowTrace> = (0..20)
            .map(|i| flow_trace(FlowKey::synthetic(i), (i as u64) * 700))
            .collect();
        let buf = capture(&traces);
        let render = |shards: usize| {
            let cfg = LiveConfig {
                shards,
                interval: SimDuration::from_secs(2),
                ..Default::default()
            };
            let mut out = String::new();
            let summary = run(&buf[..], &cfg, |r| {
                out.push_str(&r.to_json().compact());
                out.push('\n');
            })
            .unwrap();
            out.push_str(&summary.to_json().compact());
            out
        };
        let one = render(1);
        assert_eq!(one, render(2));
        assert_eq!(one, render(4));
        assert!(one.contains("\"kind\":\"summary\""));
    }

    #[test]
    fn cap_sheds_lru_flows_and_counts_them() {
        // 8 overlapping flows, cap of 3: at least 5 finalizations must be
        // sheds, and the active count never exceeds the cap.
        let traces: Vec<FlowTrace> = (0..8)
            .map(|i| flow_trace(FlowKey::synthetic(i), (i as u64) * 5))
            .collect();
        let buf = capture(&traces);
        let cfg = LiveConfig {
            max_flows: 3,
            fin_linger: None,
            idle_timeout: None,
            ..Default::default()
        };
        let mut max_active = 0;
        let summary = run(&buf[..], &cfg, |r| {
            max_active = max_active.max(r.active_flows);
        })
        .unwrap();
        assert_eq!(summary.flows_seen, 8);
        assert_eq!(summary.flows_finalized, 8);
        assert_eq!(summary.flows_shed, 5);
        assert!(summary.max_active_flows <= 3);
        assert!(max_active <= 3);
    }

    #[test]
    fn idle_flows_are_evicted_and_stragglers_dropped() {
        let k_idle = FlowKey::synthetic(1);
        let k_busy = FlowKey::synthetic(2);
        let mut idle = FlowTrace::new(k_idle);
        idle.push(rec(0, Direction::In, 0, 0, 0, SegFlags::SYN));
        idle.push(rec(1, Direction::Out, 0, 0, 0, SegFlags::SYN_ACK));
        // ... then silence; a straggler arrives long after eviction.
        idle.push(rec(30_000, Direction::In, 0, 0, 0, SegFlags::ACK));
        let mut busy = FlowTrace::new(k_busy);
        busy.push(rec(0, Direction::In, 0, 0, 0, SegFlags::SYN));
        for i in 0..40u64 {
            busy.push(rec(
                500 + i * 800,
                Direction::Out,
                i * 100,
                100,
                0,
                SegFlags::ACK,
            ));
        }
        let buf = capture(&[idle, busy]);
        let cfg = LiveConfig {
            idle_timeout: Some(SimDuration::from_secs(5)),
            fin_linger: None,
            ..Default::default()
        };
        let summary = run(&buf[..], &cfg, |_| {}).unwrap();
        assert_eq!(summary.flows_seen, 2);
        assert_eq!(summary.flows_evicted_idle, 1, "idle flow evicted");
        assert_eq!(summary.packets_late, 1, "straggler dropped, not re-opened");
        assert_eq!(summary.flows_eof, 1, "busy flow survives to EOF");
    }

    #[test]
    fn fin_linger_finalizes_closed_flows() {
        let traces = vec![flow_trace(FlowKey::synthetic(1), 0)];
        let mut long = FlowTrace::new(FlowKey::synthetic(2));
        long.push(rec(0, Direction::In, 0, 0, 0, SegFlags::SYN));
        long.push(rec(10_000, Direction::Out, 0, 100, 0, SegFlags::ACK));
        let buf = capture(&[traces.into_iter().next().unwrap(), long]);
        let cfg = LiveConfig {
            fin_linger: Some(SimDuration::from_millis(100)),
            idle_timeout: None,
            ..Default::default()
        };
        let summary = run(&buf[..], &cfg, |_| {}).unwrap();
        assert_eq!(summary.flows_closed, 1, "FIN flow finalized by linger");
        assert_eq!(summary.flows_eof, 1);
    }

    #[test]
    fn key_reuse_opens_a_fresh_generation() {
        let k = FlowKey::synthetic(7);
        let mut gen1 = flow_trace(k, 0);
        // Reuse the 4-tuple 100 ms later.
        let gen2 = flow_trace(k, 100);
        gen1.records.extend(gen2.records.iter().copied());
        let buf = capture(&[gen1]);
        let cfg = LiveConfig {
            collect_flows: true,
            fin_linger: None,
            idle_timeout: None,
            ..Default::default()
        };
        let summary = run(&buf[..], &cfg, |_| {}).unwrap();
        assert_eq!(summary.flows_seen, 2, "SYN on closed key rotates");
        assert_eq!(summary.flows_closed, 1, "old generation finalized");
        assert_eq!(summary.flows.len(), 2);
        assert_eq!(summary.flows[0].0, k);
        assert_eq!(summary.flows[1].0, k);
    }

    fn pkt(key: FlowKey, t_us: u64, flags: SegFlags) -> PcapPacket {
        PcapPacket {
            t: SimTime::from_micros(t_us),
            key,
            raw: tcp_trace::pcap::RawRecord::new(Direction::In, 0, 0, flags, 1024, 0),
        }
    }

    #[test]
    fn dead_map_is_purged_even_without_timers() {
        // Sheds insert dead-map entries; with idle/linger disabled the
        // timer path never runs, so the purge must happen on the packet
        // path or a long-running daemon leaks one entry per shed key.
        let (tx, _rx) = ring::ring::<Vec<Directive>>(64);
        let (_stx, srx) = ring::ring::<Vec<Directive>>(64);
        let cfg = LiveConfig {
            idle_timeout: None,
            fin_linger: None,
            max_flows: 1,
            ..Default::default()
        };
        let mut drv = Driver::new(&cfg, vec![tx], vec![srx]);
        assert!(!drv.timers_enabled());
        for i in 0..5u32 {
            let t = (i as u64) * 1_000;
            drv.process(&pkt(FlowKey::synthetic(i), t, SegFlags::SYN), t);
        }
        assert_eq!(drv.accum.flows_shed, 4);
        assert_eq!(drv.dead.len(), 4, "shed keys parked in the dead map");
        // A packet past the TTL drains every expired entry.
        let late = 4_000 + DEAD_TTL_US + 1;
        drv.process(&pkt(FlowKey::synthetic(99), late, SegFlags::SYN), late);
        assert!(drv.dead.len() <= 1, "expired dead entries purged");
        assert!(drv.dead_q.len() <= 1);
    }

    #[test]
    fn displacing_syn_leaves_no_dead_entry() {
        // 4-tuple reuse finalizes the old generation, but the key is
        // immediately re-admitted — it must not be parked in the dead map.
        let (tx, _rx) = ring::ring::<Vec<Directive>>(64);
        let (_stx, srx) = ring::ring::<Vec<Directive>>(64);
        let cfg = LiveConfig::default();
        let mut drv = Driver::new(&cfg, vec![tx], vec![srx]);
        let k = FlowKey::synthetic(7);
        let fin = SegFlags {
            fin: true,
            ack: true,
            ..Default::default()
        };
        drv.process(&pkt(k, 0, SegFlags::SYN), 0);
        drv.process(&pkt(k, 10, fin), 10);
        drv.process(&pkt(k, 20, SegFlags::SYN), 20); // reuse
        assert_eq!(drv.accum.flows_opened, 2);
        assert_eq!(drv.accum.flows_closed, 1);
        assert!(drv.dead.is_empty(), "displaced key must not be parked");
        assert!(drv.dead_q.is_empty());
    }

    #[test]
    fn empty_capture_yields_empty_summary() {
        let buf = capture(&[]);
        let mut reports = 0;
        let summary = run(&buf[..], &LiveConfig::default(), |_| reports += 1).unwrap();
        assert_eq!(reports, 0);
        assert_eq!(summary.flows_seen, 0);
        assert_eq!(summary.packets, 0);
        assert_eq!(summary.intervals, 0);
    }

    #[test]
    fn epoch_timestamped_capture_runs_quickly() {
        // Real tcpdump output carries wall-clock epoch timestamps; the
        // pipeline (and in particular the timer wheel, whose base starts
        // at 0) must not degrade on the jump to ~1.75e15 us.
        let epoch_ms = 1_754_000_000_000u64;
        let traces: Vec<FlowTrace> = (0..5)
            .map(|i| flow_trace(FlowKey::synthetic(i), epoch_ms + (i as u64) * 700))
            .collect();
        let buf = capture(&traces);
        let t0 = std::time::Instant::now();
        let summary = run(&buf[..], &LiveConfig::default(), |_| {}).unwrap();
        assert_eq!(summary.flows_seen, 5);
        assert_eq!(summary.packets, 30);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "epoch-timestamped capture stalled: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn shard_placement_is_stable() {
        let k = FlowKey::synthetic(123);
        assert_eq!(shard_of(&k, 4), shard_of(&k, 4));
        assert_eq!(shard_of(&k, 1), 0);
        // Distribution sanity: 256 keys over 4 shards leaves none empty.
        let mut counts = [0usize; 4];
        for i in 0..256 {
            counts[shard_of(&FlowKey::synthetic(i), 4)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "degenerate spread: {counts:?}"
        );
    }
}

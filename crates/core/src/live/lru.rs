//! Intrusive O(1) LRU list over driver slot indices.
//!
//! The live driver tracks at most `max_flows` concurrent flows; when the
//! cap is hit the least-recently-active flow is shed. Flows live in a slab
//! (`Vec` of slots), so recency is tracked by an intrusive doubly-linked
//! list over slot indices — no allocation per touch, no hashing, and
//! `touch`/`remove`/`pop_front` are all O(1).

const NIL: u32 = u32::MAX - 1;

/// Marks a slot as not on the list at all (its `prev` link). Kept distinct
/// from `NIL` so membership needs no separate flag array — `touch` on the
/// per-packet path stays within the one `links` cache line per slot.
const UNLINKED: u32 = u32::MAX;

/// Doubly-linked recency list over slab slot indices. Front = least
/// recently used, back = most recently used.
#[derive(Debug, Default)]
pub struct LruList {
    /// Per-slot `(prev, next)` links, `NIL`-terminated; `prev == UNLINKED`
    /// means the slot is not on the list.
    links: Vec<(u32, u32)>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            links: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slot is linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn ensure(&mut self, slot: u32) {
        let need = slot as usize + 1;
        if self.links.len() < need {
            self.links.resize(need, (UNLINKED, UNLINKED));
        }
    }

    /// Link `slot` at the most-recently-used end. Panics in debug builds if
    /// the slot is already linked.
    pub fn push_back(&mut self, slot: u32) {
        self.ensure(slot);
        debug_assert!(
            self.links[slot as usize].0 == UNLINKED,
            "slot already linked"
        );
        self.links[slot as usize] = (self.tail, NIL);
        if self.tail != NIL {
            self.links[self.tail as usize].1 = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.len += 1;
    }

    /// Unlink `slot` wherever it is. No-op if the slot is not linked.
    pub fn remove(&mut self, slot: u32) {
        if slot as usize >= self.links.len() || self.links[slot as usize].0 == UNLINKED {
            return;
        }
        let (prev, next) = self.links[slot as usize];
        if prev != NIL {
            self.links[prev as usize].1 = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.links[next as usize].0 = prev;
        } else {
            self.tail = prev;
        }
        self.links[slot as usize] = (UNLINKED, UNLINKED);
        self.len -= 1;
    }

    /// Move `slot` to the most-recently-used end.
    pub fn touch(&mut self, slot: u32) {
        if self.tail == slot {
            return; // already most recent
        }
        self.remove(slot);
        self.push_back(slot);
    }

    /// Unlink and return the least-recently-used slot.
    pub fn pop_front(&mut self) -> Option<u32> {
        if self.head == NIL {
            return None;
        }
        let slot = self.head;
        self.remove(slot);
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_recency_order() {
        let mut lru = LruList::new();
        for s in 0..4 {
            lru.push_back(s);
        }
        lru.touch(0); // order now 1, 2, 3, 0
        assert_eq!(lru.pop_front(), Some(1));
        lru.touch(2); // order now 3, 0, 2
        assert_eq!(lru.pop_front(), Some(3));
        assert_eq!(lru.pop_front(), Some(0));
        assert_eq!(lru.pop_front(), Some(2));
        assert_eq!(lru.pop_front(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn remove_mid_list_and_reinsert() {
        let mut lru = LruList::new();
        for s in 0..3 {
            lru.push_back(s);
        }
        lru.remove(1);
        assert_eq!(lru.len(), 2);
        lru.remove(1); // double remove is a no-op
        assert_eq!(lru.len(), 2);
        lru.push_back(1);
        assert_eq!(lru.pop_front(), Some(0));
        assert_eq!(lru.pop_front(), Some(2));
        assert_eq!(lru.pop_front(), Some(1));
    }

    #[test]
    fn sparse_slots_grow_lazily() {
        let mut lru = LruList::new();
        lru.push_back(100);
        lru.push_back(3);
        assert_eq!(lru.pop_front(), Some(100));
        assert_eq!(lru.pop_front(), Some(3));
    }
}

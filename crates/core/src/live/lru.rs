//! Intrusive O(1) multi-lane LRU over slab slot indices.
//!
//! Each live shard engine caps the flows of every cell it owns with that
//! cell's deterministic quota; when a cell's quota is hit, the least-
//! recently-active flow *of that cell* is shed. One [`LruList`] therefore
//! holds one recency lane per owned cell, all sharing a single `links`
//! arena indexed by slot (a slot is on at most one lane at a time), so
//! adding cells costs two `u32`s of head/tail bookkeeping each — not a
//! second per-slot array. `touch`/`remove`/`pop_front` stay O(1) and
//! allocation-free on the per-packet path.

const NIL: u32 = u32::MAX - 1;

/// Marks a slot as not on any lane (its `prev` link). Kept distinct from
/// `NIL` so membership needs no separate flag array — `touch` on the
/// per-packet path stays within the one `links` cache line per slot.
const UNLINKED: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Lane {
    head: u32,
    tail: u32,
    len: u32,
}

const EMPTY_LANE: Lane = Lane {
    head: NIL,
    tail: NIL,
    len: 0,
};

/// Doubly-linked recency lanes over slab slot indices. Within a lane,
/// front = least recently used, back = most recently used.
#[derive(Debug, Default)]
pub struct LruList {
    /// Per-slot `(prev, next)` links, `NIL`-terminated; `prev == UNLINKED`
    /// means the slot is not on any lane.
    links: Vec<(u32, u32)>,
    lanes: Vec<Lane>,
}

impl LruList {
    /// `lanes` empty recency lanes (one per owned cell).
    pub fn new(lanes: usize) -> Self {
        LruList {
            links: Vec::new(),
            lanes: vec![EMPTY_LANE; lanes.max(1)],
        }
    }

    /// Number of slots linked on `lane`.
    pub fn len(&self, lane: u32) -> usize {
        self.lanes[lane as usize].len as usize
    }

    /// True if no slot is linked on any lane.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.len == 0)
    }

    fn ensure(&mut self, slot: u32) {
        let need = slot as usize + 1;
        if self.links.len() < need {
            self.links.resize(need, (UNLINKED, UNLINKED));
        }
    }

    /// Link `slot` at `lane`'s most-recently-used end. Panics in debug
    /// builds if the slot is already linked.
    pub fn push_back(&mut self, lane: u32, slot: u32) {
        self.ensure(slot);
        debug_assert!(
            self.links[slot as usize].0 == UNLINKED,
            "slot already linked"
        );
        let tail = self.lanes[lane as usize].tail;
        self.links[slot as usize] = (tail, NIL);
        if tail != NIL {
            self.links[tail as usize].1 = slot;
        } else {
            self.lanes[lane as usize].head = slot;
        }
        self.lanes[lane as usize].tail = slot;
        self.lanes[lane as usize].len += 1;
    }

    /// Unlink `slot` from `lane`. No-op if the slot is not linked.
    pub fn remove(&mut self, lane: u32, slot: u32) {
        if slot as usize >= self.links.len() || self.links[slot as usize].0 == UNLINKED {
            return;
        }
        let (prev, next) = self.links[slot as usize];
        if prev != NIL {
            self.links[prev as usize].1 = next;
        } else {
            self.lanes[lane as usize].head = next;
        }
        if next != NIL {
            self.links[next as usize].0 = prev;
        } else {
            self.lanes[lane as usize].tail = prev;
        }
        self.links[slot as usize] = (UNLINKED, UNLINKED);
        self.lanes[lane as usize].len -= 1;
    }

    /// Move `slot` to `lane`'s most-recently-used end.
    pub fn touch(&mut self, lane: u32, slot: u32) {
        if self.lanes[lane as usize].tail == slot {
            return; // already most recent
        }
        self.remove(lane, slot);
        self.push_back(lane, slot);
    }

    /// Unlink and return `lane`'s least-recently-used slot.
    pub fn pop_front(&mut self, lane: u32) -> Option<u32> {
        let head = self.lanes[lane as usize].head;
        if head == NIL {
            return None;
        }
        self.remove(lane, head);
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_recency_order() {
        let mut lru = LruList::new(1);
        for s in 0..4 {
            lru.push_back(0, s);
        }
        lru.touch(0, 0); // order now 1, 2, 3, 0
        assert_eq!(lru.pop_front(0), Some(1));
        lru.touch(0, 2); // order now 3, 0, 2
        assert_eq!(lru.pop_front(0), Some(3));
        assert_eq!(lru.pop_front(0), Some(0));
        assert_eq!(lru.pop_front(0), Some(2));
        assert_eq!(lru.pop_front(0), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn remove_mid_list_and_reinsert() {
        let mut lru = LruList::new(1);
        for s in 0..3 {
            lru.push_back(0, s);
        }
        lru.remove(0, 1);
        assert_eq!(lru.len(0), 2);
        lru.remove(0, 1); // double remove is a no-op
        assert_eq!(lru.len(0), 2);
        lru.push_back(0, 1);
        assert_eq!(lru.pop_front(0), Some(0));
        assert_eq!(lru.pop_front(0), Some(2));
        assert_eq!(lru.pop_front(0), Some(1));
    }

    #[test]
    fn sparse_slots_grow_lazily() {
        let mut lru = LruList::new(1);
        lru.push_back(0, 100);
        lru.push_back(0, 3);
        assert_eq!(lru.pop_front(0), Some(100));
        assert_eq!(lru.pop_front(0), Some(3));
    }

    #[test]
    fn lanes_are_independent_over_one_arena() {
        let mut lru = LruList::new(3);
        // Interleave slots across lanes; recency is per lane.
        lru.push_back(0, 0);
        lru.push_back(1, 1);
        lru.push_back(0, 2);
        lru.push_back(2, 3);
        lru.push_back(1, 4);
        assert_eq!(lru.len(0), 2);
        assert_eq!(lru.len(1), 2);
        assert_eq!(lru.len(2), 1);
        lru.touch(0, 0); // lane 0 order: 2, 0
        assert_eq!(lru.pop_front(0), Some(2));
        assert_eq!(lru.pop_front(1), Some(1));
        assert_eq!(lru.pop_front(2), Some(3));
        assert_eq!(lru.pop_front(2), None);
        assert_eq!(lru.pop_front(0), Some(0));
        // A freed slot can be relinked on a different lane.
        lru.push_back(2, 0);
        assert_eq!(lru.pop_front(0), None);
        assert_eq!(lru.pop_front(2), Some(0));
        assert_eq!(lru.pop_front(1), Some(4));
        assert!(lru.is_empty());
    }
}

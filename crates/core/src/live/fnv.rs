//! FNV-1a hashing for the live pipeline's hot per-packet maps and for
//! flow-cell placement.
//!
//! Every packet costs at least one flow-map probe (two on the miss path:
//! flow map, then dead map), and `std`'s default SipHash is designed for
//! HashDoS resistance the live pipeline does not need — the keys are
//! 4-tuples from a capture the operator already controls, and the map is
//! bounded by `max_flows` anyway. FNV-1a folds the 12 key bytes in a few
//! cycles, and the same function places flows into virtual cells
//! ([`cell_of`]), the shard-count-independent unit of ownership the
//! parallel front end is built on.

use std::hash::{BuildHasherDefault, Hasher};

use tcp_trace::flow::FlowKey;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a, byte-at-a-time (the keys hashed here are ≤ 16 bytes).
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `std` maps:
/// `HashMap<K, V, FnvState>`.
pub type FnvState = BuildHasherDefault<FnvHasher>;

/// Stable (hasher-independent) cell placement: FNV-1a over the key bytes,
/// modulo the cell count. A flow's cell depends only on its 4-tuple and
/// the (shard-count-independent) cell count, and a shard owns cell `c`
/// iff `c % shards == shard` — so every cross-flow decision made within
/// one cell (LRU shed victims, quota denials) is identical at any shard
/// count.
pub fn cell_of(key: &FlowKey, ncells: usize) -> usize {
    let mut h: u64 = FNV_OFFSET;
    let eat = |h: u64, b: u8| (h ^ b as u64).wrapping_mul(FNV_PRIME);
    for b in key.server_ip {
        h = eat(h, b);
    }
    for b in key.server_port.to_be_bytes() {
        h = eat(h, b);
    }
    for b in key.client_ip {
        h = eat(h, b);
    }
    for b in key.client_port.to_be_bytes() {
        h = eat(h, b);
    }
    (h % ncells as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn known_fnv1a_vectors() {
        let hash = |bytes: &[u8]| {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        };
        // Reference vectors from the FNV specification.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut m: HashMap<u64, u32, FnvState> = HashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as u32);
        }
        assert_eq!(m.get(&977), Some(&977));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn cell_placement_is_stable_and_spread() {
        let k = FlowKey::synthetic(123);
        assert_eq!(cell_of(&k, 64), cell_of(&k, 64));
        assert_eq!(cell_of(&k, 1), 0);
        // Distribution sanity: 256 keys over 8 cells leaves none empty.
        let mut counts = [0usize; 8];
        for i in 0..256 {
            counts[cell_of(&FlowKey::synthetic(i), 8)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "degenerate spread: {counts:?}"
        );
    }
}

//! FNV-1a hashing for the driver's hot per-packet maps.
//!
//! Every packet costs at least one flow-map probe (two on the miss path:
//! flow map, then dead map), and `std`'s default SipHash is designed for
//! HashDoS resistance the live pipeline does not need — the keys are
//! 4-tuples from a capture the operator already controls, and the map is
//! bounded by `max_flows` anyway. FNV-1a folds the 12 key bytes in a few
//! cycles, the same function the sharder ([`super::shard_of`]) already
//! uses for placement.

use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a, byte-at-a-time (the keys hashed here are ≤ 16 bytes).
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `std` maps:
/// `HashMap<K, V, FnvState>`.
pub type FnvState = BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn known_fnv1a_vectors() {
        let hash = |bytes: &[u8]| {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        };
        // Reference vectors from the FNV specification.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut m: HashMap<u64, u32, FnvState> = HashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as u32);
        }
        assert_eq!(m.get(&977), Some(&977));
        assert_eq!(m.len(), 1000);
    }
}

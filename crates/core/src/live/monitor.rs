//! The light tier of two-phase flow monitoring: a struct-of-arrays flow
//! table holding tens of bytes per flow, updated allocation-free on every
//! packet.
//!
//! The paper's deployment target is a busy front-end with millions of
//! concurrent connections; holding a full [`crate::StreamAnalyzer`] (segment
//! histories, scoreboards, sample vectors) per flow does not scale there.
//! Dapper-style two-phase monitoring does: every flow gets a compact
//! always-on state block ([`LightTable`]) that tracks just enough TCP state
//! to *suspect* trouble — an RFC 6298-style SRTT/RTO estimate from a single
//! timing probe, last sequence/ack offsets, in-flight bytes, duplicate-ACK /
//! retransmission / ACK-silence counters — and only suspicious flows are
//! **promoted** to the heavy tier (a recycled full analyzer from the
//! owning shard's pool), carrying the light-tier estimates forward as a
//! [`MonitorSeed`]. Flows that go quiet again are **demoted** back with
//! hysteresis.
//!
//! Each shard engine owns one [`LightTable`] covering exactly the flows
//! whose hash cells it owns, and all decisions here are pure functions of
//! the flow's own packet stream — so promotion and demotion need no
//! cross-shard coordination and the live pipeline's reports stay
//! byte-identical at any shard count.

use tcp_trace::record::{Direction, TraceRecord};

use crate::replay::ReplayConfig;

/// Promotion/demotion thresholds for two-tier monitoring.
///
/// Present on [`crate::live::LiveConfig`] as `tier: Option<TierConfig>`;
/// `None` keeps every flow heavy from admission (the offline-equivalent
/// mode the differential tests rely on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Promote when this many duplicate ACKs accumulate with data
    /// outstanding (a fast-retransmit-scale loss signal).
    pub promote_dupacks: u32,
    /// Promote on the Nth retransmission observed while light.
    pub promote_retrans: u32,
    /// Promote on the Nth ACK silence longer than the light-tier stall
    /// threshold (`min(2·SRTT, RTO)`) with data outstanding.
    pub promote_stalls: u32,
    /// Demote a heavy flow after this many consecutive event-free packets
    /// (hysteresis against pool thrash); `0` never demotes.
    pub demote_streak: u32,
    /// Hard cap on concurrently promoted (heavy) flows across all shards;
    /// `0` is unbounded. Denied promotions retry on the next suspicious
    /// packet, so a drained pool degrades coverage, not correctness.
    pub heavy_max: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            promote_dupacks: 3,
            promote_retrans: 2,
            promote_stalls: 1,
            demote_streak: 256,
            heavy_max: 4096,
        }
    }
}

/// Which tier a flow currently occupies — the per-flow monitoring state
/// machine. Every tracked flow always has a light row; `Heavy` means a
/// full [`crate::StreamAnalyzer`] is additionally live on a shard.
///
/// Transitions (driver-serial, so identical at any shard count):
/// `Light → Heavy` when a [`LightTable`] heuristic flags suspicion (and the
/// heavy pool has room), seeding the analyzer with a [`MonitorSeed`];
/// `Heavy → Light` after [`TierConfig::demote_streak`] event-free packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowMonitor {
    /// Compact always-on state only; no analyzer allocated.
    Light,
    /// Escalated: a recycled heavy analyzer tracks the flow on its shard.
    Heavy,
}

impl FlowMonitor {
    /// True in the heavy (escalated) state.
    pub fn is_heavy(self) -> bool {
        matches!(self, FlowMonitor::Heavy)
    }
}

/// Light-tier estimates carried into a promoted analyzer so mid-flow
/// escalation starts from the flow's actual state instead of a cold boot:
/// the RTT estimate keeps the stall threshold meaningful from the first
/// post-promotion gap, and the stream offsets let re-sent pre-promotion
/// segments classify as retransmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorSeed {
    /// Smoothed RTT in microseconds; meaningful only when `has_rtt`.
    pub srtt_us: u32,
    /// RTT variance in microseconds; meaningful only when `has_rtt`.
    pub rttvar_us: u32,
    /// Whether the single-probe estimator has produced a sample yet.
    pub has_rtt: bool,
    /// Highest cumulative ACK seen from the client.
    pub snd_una: u64,
    /// Highest stream offset sent by the server.
    pub snd_nxt: u64,
    /// Last advertised receive window.
    pub last_rwnd: u64,
    /// Receive window from the client's first packet, if seen.
    pub init_rwnd: Option<u64>,
    /// Whether a non-SYN packet has been seen (the replay's `established`).
    pub established: bool,
    /// Whether any inbound ACK advertised a zero window.
    pub zero_rwnd_seen: bool,
}

/// What the light tier concluded from one packet.
#[derive(Debug, Clone, Copy)]
pub struct Verdict {
    /// A promotion heuristic crossed its threshold on this packet.
    pub suspicious: bool,
    /// Consecutive event-free packets ending here (hysteresis input; an
    /// "event" is any dup-ACK, retransmission, over-threshold silence or
    /// zero-window, even below its promotion threshold).
    pub calm_streak: u32,
}

/// Packed per-flow event flags (one byte per flow).
mod flag {
    pub const ESTABLISHED: u8 = 1 << 0;
    pub const HAS_RTT: u8 = 1 << 1;
    pub const PROBE_ARMED: u8 = 1 << 2;
    pub const INIT_RWND: u8 = 1 << 3;
    pub const ZERO_WND: u8 = 1 << 4;
    pub const HAS_LAST_T: u8 = 1 << 5;
}

/// RTO clamps shared by every row (copied out of the replay config once).
#[derive(Debug, Clone, Copy, Default)]
struct RtoClamps {
    min_us: u32,
    max_us: u32,
    initial_us: u32,
}

/// One flow's complete light-tier state, packed into a single small struct
/// so an update touches one or two cache lines. (The table was originally
/// struct-of-arrays, but `update` reads or writes nearly every field of
/// exactly one row per packet — fourteen parallel columns meant up to
/// fourteen cache-line touches where the row layout needs two.)
#[derive(Debug, Clone, Copy, Default)]
struct LightRow {
    snd_una: u64,
    snd_nxt: u64,
    probe_end: u64,
    probe_t_us: u64,
    last_t_us: u64,
    srtt_us: u32,
    rttvar_us: u32,
    last_rwnd: u32,
    init_rwnd: u32,
    calm_streak: u32,
    dupacks: u16,
    retrans: u16,
    stall_strikes: u16,
    flags: u8,
}

impl LightRow {
    fn rto_us(&self, c: RtoClamps) -> u32 {
        if self.flags & flag::HAS_RTT == 0 {
            return c.initial_us;
        }
        let var4 = self.rttvar_us.saturating_mul(4).max(c.min_us);
        self.srtt_us.saturating_add(var4).min(c.max_us)
    }

    /// The light stall threshold, mirroring `Replay::stall_threshold`:
    /// `min(2·SRTT, RTO)`, or the initial RTO before any RTT sample.
    fn stall_threshold_us(&self, c: RtoClamps) -> u64 {
        if self.flags & flag::HAS_RTT == 0 {
            return c.initial_us as u64;
        }
        let twice = self.srtt_us.saturating_mul(2);
        twice.min(self.rto_us(c)) as u64
    }

    fn observe_rtt(&mut self, rtt_us: u64) {
        let rtt = rtt_us.min(u32::MAX as u64) as u32;
        if self.flags & flag::HAS_RTT == 0 {
            self.flags |= flag::HAS_RTT;
            self.srtt_us = rtt;
            self.rttvar_us = rtt / 2;
        } else {
            // RFC 6298 gains in the same rounding order as the heavy
            // tier's `RttEstimator`: multiply *then* divide. The earlier
            // `(x/4)*3` / `(x/8)*7` form discards the remainder before
            // scaling, which biases every update low (up to 6µs on SRTT)
            // and drifts the light RTO below the heavy one over a flow's
            // lifetime. 64-bit intermediates: `srtt_us * 7` can overflow
            // `u32`.
            let err = self.srtt_us.abs_diff(rtt);
            let rttvar = (self.rttvar_us as u64 * 3) / 4 + (err / 4) as u64;
            let srtt = (self.srtt_us as u64 * 7) / 8 + (rtt / 8) as u64;
            self.rttvar_us = rttvar.min(u32::MAX as u64) as u32;
            self.srtt_us = srtt.min(u32::MAX as u64) as u32;
        }
    }
}

/// The light tier itself: a flat row table indexed by the driver's slot
/// number, so rows recycle exactly like driver slots and the per-flow cost
/// is [`LightTable::BYTES_PER_FLOW`] regardless of flow history.
///
/// Every update is allocation-free (the table grows only when the driver
/// grows its slot table, i.e. at the concurrent-flow high-water mark).
#[derive(Debug, Default)]
pub struct LightTable {
    clamps: RtoClamps,
    rows: Vec<LightRow>,
}

impl LightTable {
    /// Bytes of row storage per flow (the light tier's memory cost;
    /// asserted small by the unit tests — "tens of bytes per flow").
    pub const BYTES_PER_FLOW: usize = std::mem::size_of::<LightRow>();

    /// A table deriving its RTO clamps from the analyzer's replay config,
    /// so the light stall threshold approximates the heavy one.
    pub fn new(cfg: ReplayConfig) -> Self {
        let us = |d: simnet::time::SimDuration| d.as_micros().min(u32::MAX as u64) as u32;
        LightTable {
            clamps: RtoClamps {
                min_us: us(cfg.min_rto),
                max_us: us(cfg.max_rto),
                initial_us: us(cfg.initial_rto),
            },
            rows: Vec::new(),
        }
    }

    /// Reset slot `slot` for a newly admitted flow, growing the table if
    /// the driver grew its slot table.
    pub fn init(&mut self, slot: u32) {
        let i = slot as usize;
        if i >= self.rows.len() {
            self.rows.resize(i + 1, LightRow::default());
        } else {
            self.rows[i] = LightRow::default();
        }
    }

    /// Clear the sticky suspicion counters after a demotion, so the flow
    /// must accumulate *fresh* evidence before it is promoted again —
    /// without this, one historical retransmission burst would re-promote
    /// on the very next packet and thrash the heavy pool.
    pub fn rearm(&mut self, slot: u32) {
        let r = &mut self.rows[slot as usize];
        r.dupacks = 0;
        r.retrans = 0;
        r.stall_strikes = 0;
        r.calm_streak = 0;
        r.flags &= !flag::ZERO_WND;
    }

    #[cfg(test)]
    fn stall_threshold_us(&self, i: usize) -> u64 {
        self.rows[i].stall_threshold_us(self.clamps)
    }

    /// Fold one translated record into slot `slot`'s row and report whether
    /// a promotion heuristic fired. `t_us` is the capture timestamp.
    pub fn update(
        &mut self,
        slot: u32,
        rec: &TraceRecord,
        t_us: u64,
        tier: &TierConfig,
    ) -> Verdict {
        let clamps = self.clamps;
        let r = &mut self.rows[slot as usize];
        let mut event = false;
        let mut suspicious = false;

        // RTO-scale ACK silence: the previous packet left data in flight
        // and this one arrives after more than the light stall threshold.
        if r.flags & (flag::ESTABLISHED | flag::HAS_LAST_T)
            == (flag::ESTABLISHED | flag::HAS_LAST_T)
            && r.snd_nxt > r.snd_una
        {
            let gap = t_us.saturating_sub(r.last_t_us);
            if gap > r.stall_threshold_us(clamps) {
                r.stall_strikes = r.stall_strikes.saturating_add(1);
                event = true;
                if u32::from(r.stall_strikes) >= tier.promote_stalls {
                    suspicious = true;
                }
            }
        }

        match rec.dir {
            Direction::Out if rec.has_data() => {
                if rec.seq < r.snd_nxt {
                    // Retransmission (mirrors the replay's test). Karn:
                    // an armed probe can no longer yield a clean sample.
                    r.retrans = r.retrans.saturating_add(1);
                    r.flags &= !flag::PROBE_ARMED;
                    event = true;
                    if u32::from(r.retrans) >= tier.promote_retrans {
                        suspicious = true;
                    }
                } else {
                    if r.flags & flag::PROBE_ARMED == 0 {
                        r.flags |= flag::PROBE_ARMED;
                        r.probe_end = rec.seq_end();
                        r.probe_t_us = t_us;
                    }
                    r.snd_nxt = rec.seq_end();
                }
            }
            Direction::In => {
                if r.flags & flag::INIT_RWND == 0 {
                    r.flags |= flag::INIT_RWND;
                    r.init_rwnd = rec.rwnd.min(u32::MAX as u64) as u32;
                }
                r.last_rwnd = rec.rwnd.min(u32::MAX as u64) as u32;
                if rec.ack > r.snd_una {
                    r.snd_una = rec.ack;
                    r.dupacks = 0;
                    if r.flags & flag::PROBE_ARMED != 0 && rec.ack >= r.probe_end {
                        r.flags &= !flag::PROBE_ARMED;
                        let sample = t_us.saturating_sub(r.probe_t_us);
                        r.observe_rtt(sample);
                    }
                } else if rec.ack == r.snd_una
                    && !rec.has_data()
                    && !rec.flags.syn
                    && !rec.flags.fin
                    && !rec.flags.rst
                    && r.snd_nxt > r.snd_una
                {
                    r.dupacks = r.dupacks.saturating_add(1);
                    event = true;
                    if u32::from(r.dupacks) >= tier.promote_dupacks {
                        suspicious = true;
                    }
                }
                if rec.rwnd == 0 && !rec.flags.rst {
                    // Zero-window advertisements promote unconditionally.
                    r.flags |= flag::ZERO_WND;
                    event = true;
                    suspicious = true;
                }
            }
            _ => {}
        }

        if !rec.flags.syn {
            r.flags |= flag::ESTABLISHED;
        }
        r.last_t_us = t_us;
        r.flags |= flag::HAS_LAST_T;
        r.calm_streak = if event {
            0
        } else {
            r.calm_streak.saturating_add(1)
        };
        Verdict {
            suspicious,
            calm_streak: r.calm_streak,
        }
    }

    /// Snapshot slot `slot`'s estimates for seeding a promoted analyzer.
    /// Taken *after* the triggering record updated the row, which is why
    /// the driver does not replay that record into the fresh analyzer.
    pub fn seed(&self, slot: u32) -> MonitorSeed {
        let r = &self.rows[slot as usize];
        MonitorSeed {
            srtt_us: r.srtt_us,
            rttvar_us: r.rttvar_us,
            has_rtt: r.flags & flag::HAS_RTT != 0,
            snd_una: r.snd_una,
            snd_nxt: r.snd_nxt,
            last_rwnd: r.last_rwnd as u64,
            init_rwnd: (r.flags & flag::INIT_RWND != 0).then_some(r.init_rwnd as u64),
            established: r.flags & flag::ESTABLISHED != 0,
            zero_rwnd_seen: r.flags & flag::ZERO_WND != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;
    use tcp_trace::record::{SegFlags, TraceRecord};

    fn table() -> LightTable {
        let mut t = LightTable::new(ReplayConfig::default());
        t.init(0);
        t
    }

    fn out_data(t_ms: u64, seq: u64, len: u32) -> TraceRecord {
        TraceRecord::data(
            SimTime::from_millis(t_ms),
            Direction::Out,
            seq,
            len,
            0,
            1 << 20,
        )
    }

    fn in_ack(t_ms: u64, ack: u64) -> TraceRecord {
        TraceRecord::pure_ack(SimTime::from_millis(t_ms), Direction::In, ack, 1 << 20)
    }

    fn upd(t: &mut LightTable, rec: &TraceRecord, cfg: &TierConfig) -> Verdict {
        t.update(0, rec, rec.t.as_micros(), cfg)
    }

    #[test]
    fn light_estimator_matches_tcp_reference_exactly() {
        // Differential pin against the heavy stack's RFC 6298 estimator
        // (`tcp_sim::rtt::RttEstimator`, Linux `__tcp_set_rto` semantics):
        // identical samples must yield identical SRTT/RTTVAR/RTO at every
        // step. Odd microsecond values exercise the integer-rounding order
        // — `(x/8)*7`-style updates (the pre-fix form) diverge within a
        // few samples.
        use simnet::time::SimDuration;
        let rcfg = ReplayConfig::default();
        let mut reference = tcp_sim::rtt::RttEstimator::new(tcp_sim::rtt::RttConfig {
            min_rto: rcfg.min_rto,
            max_rto: rcfg.max_rto,
            initial_rto: rcfg.initial_rto,
        });
        let clamps = LightTable::new(rcfg).clamps;
        let mut row = LightRow::default();
        assert_eq!(row.rto_us(clamps) as u64, reference.rto().as_micros());
        let mut sample = 100_003u64; // odd on purpose
        for step in 0..64 {
            // A jittery walk with spikes — every remainder class gets hit.
            sample = if step % 7 == 3 {
                sample * 3 + 11
            } else {
                sample / 2 + 40_001 + step * 137
            };
            row.observe_rtt(sample);
            reference.observe(SimDuration::from_micros(sample));
            assert_eq!(
                row.srtt_us as u64,
                reference.srtt().unwrap().as_micros(),
                "srtt diverged at step {step}"
            );
            assert_eq!(
                row.rto_us(clamps) as u64,
                reference.rto().as_micros(),
                "rto diverged at step {step}"
            );
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn row_fits_in_tens_of_bytes() {
        assert!(
            LightTable::BYTES_PER_FLOW <= 96,
            "light row grew to {} bytes",
            LightTable::BYTES_PER_FLOW
        );
    }

    #[test]
    fn probe_rtt_feeds_the_stall_threshold() {
        let mut t = table();
        let cfg = TierConfig::default();
        upd(&mut t, &out_data(0, 0, 1000), &cfg);
        upd(&mut t, &in_ack(50, 1000), &cfg); // 50 ms sample
        let seed = t.seed(0);
        assert!(seed.has_rtt);
        assert_eq!(seed.srtt_us, 50_000);
        assert_eq!(seed.rttvar_us, 25_000);
        // Threshold = min(2·srtt, srtt + max(4·var, min_rto)) = 100 ms.
        assert_eq!(t.stall_threshold_us(0), 100_000);
    }

    #[test]
    fn dupack_burst_turns_suspicious_at_threshold() {
        let mut t = table();
        let cfg = TierConfig::default();
        upd(&mut t, &out_data(0, 0, 3000), &cfg);
        assert!(!upd(&mut t, &in_ack(10, 1000), &cfg).suspicious);
        assert!(!upd(&mut t, &in_ack(11, 1000), &cfg).suspicious);
        assert!(!upd(&mut t, &in_ack(12, 1000), &cfg).suspicious);
        // Third duplicate of ack=1000 (dupacks reaches 3).
        assert!(upd(&mut t, &in_ack(13, 1000), &cfg).suspicious);
        // An advancing ACK clears the count.
        assert!(!upd(&mut t, &in_ack(14, 3000), &cfg).suspicious);
        assert_eq!(t.rows[0].dupacks, 0);
    }

    #[test]
    fn retransmission_and_zero_window_flag_suspicion() {
        let mut t = table();
        let cfg = TierConfig::default();
        upd(&mut t, &out_data(0, 0, 1000), &cfg);
        upd(&mut t, &out_data(1, 1000, 1000), &cfg);
        // First re-send of old data: event, below the burst threshold.
        assert!(!upd(&mut t, &out_data(2, 0, 1000), &cfg).suspicious);
        assert!(upd(&mut t, &out_data(3, 0, 1000), &cfg).suspicious);
        // Zero window promotes on sight.
        let mut zw = in_ack(4, 1000);
        zw.rwnd = 0;
        let v = upd(&mut t, &zw, &cfg);
        assert!(v.suspicious);
        assert!(t.seed(0).zero_rwnd_seen);
    }

    #[test]
    fn ack_silence_with_data_outstanding_strikes() {
        let mut t = table();
        let cfg = TierConfig::default();
        upd(&mut t, &out_data(0, 0, 1000), &cfg);
        upd(&mut t, &in_ack(50, 1000), &cfg); // srtt = 50 ms
        upd(&mut t, &out_data(60, 1000, 1000), &cfg);
        // 500 ms of silence with 1000 B in flight >> 100 ms threshold.
        let v = upd(&mut t, &in_ack(560, 2000), &cfg);
        assert!(v.suspicious, "promote_stalls defaults to 1");
        // With nothing in flight, silence is idleness, not a stall.
        let v = upd(&mut t, &out_data(5_000, 2000, 500), &cfg);
        assert!(!v.suspicious);
    }

    #[test]
    fn calm_streak_resets_on_events_and_rearm_clears_history() {
        let mut t = table();
        let cfg = TierConfig::default();
        upd(&mut t, &out_data(0, 0, 2000), &cfg);
        for n in 1..=5u64 {
            let v = upd(&mut t, &in_ack(n, 1000), &cfg);
            // First ack advances (streak continues); the rest are dups.
            if n >= 2 {
                assert_eq!(v.calm_streak, 0, "dupack is an event");
            }
        }
        assert!(t.rows[0].dupacks >= 3);
        t.rearm(0);
        assert_eq!(t.rows[0].dupacks, 0);
        assert_eq!(t.rows[0].stall_strikes, 0);
        // Fresh evidence is required again after rearm.
        assert!(!upd(&mut t, &in_ack(10, 1000), &cfg).suspicious);
    }

    #[test]
    fn seed_reflects_offsets_after_the_trigger_record() {
        let mut t = table();
        let cfg = TierConfig::default();
        let syn = TraceRecord {
            flags: SegFlags::SYN,
            ..in_ack(0, 0)
        };
        upd(&mut t, &syn, &cfg);
        assert!(!t.seed(0).established, "SYN does not establish");
        upd(&mut t, &out_data(10, 0, 1000), &cfg);
        upd(&mut t, &out_data(11, 1000, 1000), &cfg);
        upd(&mut t, &in_ack(60, 1000), &cfg);
        let seed = t.seed(0);
        assert!(seed.established);
        assert_eq!(seed.snd_nxt, 2000);
        assert_eq!(seed.snd_una, 1000);
        assert_eq!(seed.init_rwnd, Some(1 << 20));
        assert_eq!(seed.last_rwnd, 1 << 20);
    }

    #[test]
    fn slot_rows_recycle_cleanly() {
        let mut t = table();
        let cfg = TierConfig::default();
        upd(&mut t, &out_data(0, 0, 1000), &cfg);
        upd(&mut t, &in_ack(50, 1000), &cfg);
        t.init(0); // driver reuses the slot for a new flow
        let seed = t.seed(0);
        assert!(!seed.has_rtt);
        assert_eq!(seed.snd_nxt, 0);
        assert!(!seed.established);
        assert_eq!(t.rows[0].calm_streak, 0);
    }
}

//! Shard-owned flow state: the complete live front end for one slice of
//! the flow space.
//!
//! Each shard runs a [`ShardEngine`] owning every per-flow structure for
//! the virtual cells it is responsible for: the FNV-keyed flow map, slot
//! slab, sequence trackers, light-tier rows ([`LightTable`]), recycled
//! heavy analyzers, a lazy timer wheel, per-cell LRU lanes, and the
//! dead-key map. *All* lifecycle decisions — admit, 4-tuple-reuse
//! displacement, FIN/RST linger, idle eviction, LRU shedding, light↔heavy
//! promotion/demotion — are made locally by the owning engine; the driver
//! only decodes packets, routes them by [`super::cell_of`], and merges
//! interval sub-reports.
//!
//! Determinism at any shard count is *by construction*:
//! * a flow's cell depends only on its key and the cell count, and a cell
//!   is wholly owned by exactly one shard (`cell % shards`), so every
//!   cross-flow decision (shed victim, quota denial) sees the same
//!   cell-local state regardless of how cells are spread over shards;
//! * global `max_flows`/`heavy_max` caps are split into fixed per-cell
//!   quotas ([`cell_quota`]) that sum exactly to the cap — no runtime
//!   coordination, identical admission at any shard count;
//! * timer evictions are attributed to intervals identically because an
//!   engine advances its wheel at each of its own packets *and* at each
//!   [`Work::Cut`] barrier, and dead-key expiries derive from the flow's
//!   deterministic deadline, never from when a timer happened to fire;
//! * every [`IntervalDelta`] field is a commutative integer merge, and
//!   the driver folds them in canonical shard order at each cut.
//!
//! Analyzers are recycled through a free pool
//! ([`crate::StreamAnalyzer::finish_reset`]), and emptied work-batch
//! buffers are pushed back to the driver on a reverse ring, so a
//! long-running shard reaches a steady state with zero per-batch
//! allocation.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;

use tcp_trace::flow::FlowKey;
use tcp_trace::pcap::{PcapPacket, SeqTracker};

use crate::fleet::sketch::QSketch;
use crate::live::lru::LruList;
use crate::live::monitor::{LightTable, TierConfig};
use crate::live::ring::{RingConsumer, RingProducer};
use crate::live::wheel::{TimerEntry, TimerWheel};
use crate::live::{cell_of, FnvState};
use crate::report::StallBreakdown;
use crate::{AnalyzerConfig, FlowAnalysis, StreamAnalyzer};

/// Sentinel: flow is light (no analyzer-pool index bound).
const NONE: u32 = u32::MAX;

/// Stragglers on an evicted key are dropped (and counted) for this long
/// before the key is forgotten and a new packet may reopen it as a flow.
pub(super) const DEAD_TTL_US: u64 = 60_000_000;

/// One unit of work for a shard, issued by the driver in capture order.
#[derive(Debug, Clone)]
pub enum Work {
    /// One decoded packet for a flow this shard owns. `gidx` is the
    /// packet's global capture index; a flow admitted by this packet gets
    /// `uid = gidx`, so uids are unique and monotone in admission order
    /// with no cross-shard coordination.
    Pkt {
        /// Global capture index of this packet (monotone over the run).
        gidx: u64,
        /// The decoded packet.
        pkt: PcapPacket,
    },
    /// Interval barrier: advance timers to `now_us` (the capture time of
    /// the packet that triggered the cut), take the delta, reply.
    Cut {
        /// Interval sequence number (matched by the driver).
        seq: u64,
        /// Capture time of the cut trigger.
        now_us: u64,
    },
    /// End of capture at `now_us`: run timers one last time, then
    /// finalize everything still open, oldest flow first.
    Eof {
        /// Capture time of the last decoded packet.
        now_us: u64,
    },
}

/// What a shard accumulated since the previous cut — the mergeable
/// interval sub-report. All fields merge commutatively, so folding deltas
/// in canonical shard order yields the same aggregate at any shard count.
#[derive(Debug, Default, Clone)]
pub struct IntervalDelta {
    /// Packets processed.
    pub packets: u64,
    /// Packets dropped because their flow was already evicted or shed.
    pub packets_late: u64,
    /// Flows admitted.
    pub flows_opened: u64,
    /// Flows finalized for any reason.
    pub flows_finalized: u64,
    /// Finalized after FIN/RST (teardown or a reopening SYN).
    pub flows_closed: u64,
    /// Finalized by idle timeout.
    pub flows_evicted_idle: u64,
    /// Finalized by LRU shedding at a cell's flow quota.
    pub flows_shed: u64,
    /// Finalized because the capture ended (only in the final interval).
    pub flows_eof: u64,
    /// Light→heavy escalations.
    pub promotions: u64,
    /// Heavy→light hysteresis demotions.
    pub demotions: u64,
    /// Suspicious flows left light because their cell's heavy quota was
    /// full.
    pub promotions_denied: u64,
    /// Provisional stalls surfaced by `StreamAnalyzer::push` (live early
    /// warning — final causes may differ once flows complete).
    pub live_stalls: u64,
    /// Stall breakdown over the flows finalized *or demoted* in this
    /// interval.
    pub breakdown: StallBreakdown,
    /// Per-server-port slice of the interval, sorted by port. Commutative
    /// keyed merge, so the fold is shard-count-independent like every
    /// other field.
    pub by_port: Vec<(u16, PortDelta)>,
    /// RTT samples (µs) of the flows finalized or demoted this interval.
    /// [`QSketch`] merges are partition-invariant bucket additions, so
    /// this field folds as deterministically as the integer counters.
    pub rtt_sketch: QSketch,
    /// Stall durations (µs) of the flows finalized or demoted this
    /// interval, same merge discipline.
    pub stall_sketch: QSketch,
}

/// One server port's share of an interval: flows finalized on it, and the
/// stalls diagnosed on those (plus demoted-episode) flows. In synthetic
/// captures the port identifies the service (`tapo advise` keys on it);
/// in real captures it is whatever the server listens on.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PortDelta {
    /// Flows finalized with this server port.
    pub flows: u64,
    /// Stalls in the analyses folded for this port (heavy flows only —
    /// light finalizes are undiagnosed by design).
    pub stalls: u64,
    /// Total stalled time of those stalls, microseconds.
    pub stalled_us: u64,
}

impl PortDelta {
    fn merge(&mut self, other: &PortDelta) {
        self.flows += other.flows;
        self.stalls += other.stalls;
        self.stalled_us += other.stalled_us;
    }
}

impl IntervalDelta {
    /// Fold another delta in (order-insensitive).
    pub fn merge(&mut self, other: &IntervalDelta) {
        self.packets += other.packets;
        self.packets_late += other.packets_late;
        self.flows_opened += other.flows_opened;
        self.flows_finalized += other.flows_finalized;
        self.flows_closed += other.flows_closed;
        self.flows_evicted_idle += other.flows_evicted_idle;
        self.flows_shed += other.flows_shed;
        self.flows_eof += other.flows_eof;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.promotions_denied += other.promotions_denied;
        self.live_stalls += other.live_stalls;
        self.breakdown.merge(&other.breakdown);
        merge_by_port(&mut self.by_port, &other.by_port);
        self.rtt_sketch.merge(&other.rtt_sketch);
        self.stall_sketch.merge(&other.stall_sketch);
    }

    /// The entry for `port`, inserted in sorted position if absent.
    pub fn port_entry(&mut self, port: u16) -> &mut PortDelta {
        port_entry(&mut self.by_port, port)
    }
}

/// The entry for `port` in a sorted per-port list, inserted if absent.
fn port_entry(list: &mut Vec<(u16, PortDelta)>, port: u16) -> &mut PortDelta {
    let idx = match list.binary_search_by_key(&port, |(p, _)| *p) {
        Ok(i) => i,
        Err(i) => {
            list.insert(i, (port, PortDelta::default()));
            i
        }
    };
    &mut list[idx].1
}

/// Keyed commutative merge of two sorted per-port lists (the driver also
/// uses this to fold interval slices into the run summary).
pub fn merge_by_port(dst: &mut Vec<(u16, PortDelta)>, src: &[(u16, PortDelta)]) {
    for (port, d) in src {
        port_entry(dst, *port).merge(d);
    }
}

/// A shard's answer to a [`Work::Cut`].
#[derive(Debug)]
pub struct ShardMsg {
    /// Which shard sent this (the driver merges in ascending order).
    pub shard: usize,
    /// Echo of the cut's sequence number.
    pub seq: u64,
    /// Everything accumulated since the previous cut.
    pub delta: IntervalDelta,
    /// Flows currently tracked by this shard.
    pub active: u64,
    /// Of those, flows currently holding a heavy analyzer.
    pub heavy: u64,
}

/// Whole-run totals an engine reports when it shuts down.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineTotals {
    /// Sum over this engine's cells of each cell's concurrent-flow
    /// high-water mark (summed across shards this bounds peak tracked
    /// flows, exactly `≤ max_flows` when capped, and is identical at any
    /// shard count because cells are).
    pub active_hw: u64,
    /// Sum over this engine's cells of each cell's concurrent-heavy
    /// high-water mark (bounds analyzer-pool memory; `≤ heavy_max` when
    /// capped).
    pub heavy_hw: u64,
}

/// Why an engine finalized a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// FIN/RST seen and the linger expired.
    Teardown,
    /// FIN/RST seen, then a reopening SYN displaced it (4-tuple reuse).
    Displaced,
    /// Idle timeout.
    Idle,
    /// LRU-shed at the cell's flow quota.
    Shed,
    /// Capture ended while the flow was open.
    Eof,
}

/// Cell `cell`'s share of a global cap of `total` over `ncells` cells:
/// `total / ncells`, with the remainder spread over the lowest-numbered
/// cells so the quotas sum to `total` exactly. `total == 0` (unbounded)
/// maps to an effectively-infinite quota.
fn cell_quota(total: usize, ncells: usize, cell: usize) -> u32 {
    if total == 0 {
        return u32::MAX;
    }
    (total / ncells + usize::from(cell < total % ncells)).min(u32::MAX as usize) as u32
}

/// Everything a [`ShardEngine`] needs to know at construction — plain
/// copies of the validated [`super::LiveConfig`] knobs plus this engine's
/// place in the cell→shard mapping.
#[derive(Debug, Clone, Copy)]
pub struct EngineParams {
    /// Per-flow analyzer parameters.
    pub analyzer: AnalyzerConfig,
    /// Keep finalized analyses for collection (unbounded memory; tests).
    pub collect: bool,
    /// `Some` enables two-tier monitoring with these thresholds.
    pub tier: Option<TierConfig>,
    /// Idle-eviction timeout in µs; `None` disables.
    pub idle_us: Option<u64>,
    /// FIN/RST linger in µs; `None` keeps closed flows until idle/EOF.
    pub linger_us: Option<u64>,
    /// Total virtual cells (shard-count-independent; ≥ 1).
    pub ncells: usize,
    /// Physical shard count (stride of the cell→lane mapping).
    pub shards: usize,
    /// This engine's shard index (owns cells ≡ `shard` mod `shards`).
    pub shard: usize,
    /// Global flow cap (0 = unbounded), split into per-cell quotas.
    pub max_flows: usize,
    /// Feed finalized/demoted analyses into the delta's RTT and
    /// stall-duration sketches.
    pub sketch: bool,
}

struct EngineFlow {
    key: FlowKey,
    uid: u64,
    /// Recency lane == index of the flow's cell among this engine's owned
    /// cells (`cell / shards`).
    lane: u32,
    tracker: SeqTracker,
    closed: bool,
    /// Analyzer-pool index when heavy; [`NONE`] when light.
    heavy_idx: u32,
    /// Authoritative eviction deadline; `u64::MAX` = none.
    deadline_us: u64,
    /// Earliest outstanding wheel entry (lazy-timer bookkeeping).
    wheel_deadline_us: u64,
}

/// One shard's complete live front end. The driver owns one inline when
/// `--shards 1` (no rings, no threads) and [`shard_worker`] owns one per
/// worker thread otherwise; the state machine is byte-for-byte the same
/// either way.
pub struct ShardEngine {
    analyzer_cfg: AnalyzerConfig,
    collect: bool,
    sketch: bool,
    tier: Option<TierConfig>,
    idle_us: Option<u64>,
    linger_us: Option<u64>,
    ncells: usize,
    shards: usize,
    shard: usize,
    /// Per-owned-cell (lane-indexed) admission quotas; sum over all
    /// engines = `max_flows` exactly.
    flow_quota: Vec<u32>,
    /// Per-owned-cell heavy quotas; sum = `tier.heavy_max` exactly.
    heavy_quota: Vec<u32>,
    /// Current heavy count per lane (quota enforcement).
    lane_heavy: Vec<u32>,
    /// Per-lane concurrent-flow / concurrent-heavy high-water marks.
    active_hw: Vec<u32>,
    heavy_hw: Vec<u32>,
    heavy_total: usize,

    map: HashMap<FlowKey, u32, FnvState>,
    slots: Vec<Option<EngineFlow>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    light: LightTable,
    lru: LruList,
    wheel: TimerWheel,
    expired: Vec<TimerEntry>,
    dead: HashMap<FlowKey, u64, FnvState>,
    dead_q: VecDeque<(u64, FlowKey)>,
    /// Earliest expiry in `dead_q` (`u64::MAX` when empty): the per-packet
    /// purge check is a register compare, not a deque probe.
    dead_next_us: u64,
    tracker_pool: Vec<SeqTracker>,

    pool: Vec<StreamAnalyzer>,
    pool_free: Vec<u32>,

    delta: IntervalDelta,
    collected: Vec<(u64, FlowKey, FlowAnalysis)>,
}

impl ShardEngine {
    /// An empty engine owning the cells `≡ p.shard (mod p.shards)`.
    pub fn new(p: EngineParams) -> ShardEngine {
        // Owned cells are shard, shard+shards, …; lane l ↔ cell
        // shard + l·shards.
        let nlanes = if p.shard < p.ncells {
            (p.ncells - p.shard).div_ceil(p.shards)
        } else {
            0
        };
        let cell = |l: usize| p.shard + l * p.shards;
        let flow_quota: Vec<u32> = (0..nlanes)
            .map(|l| cell_quota(p.max_flows, p.ncells, cell(l)))
            .collect();
        let heavy_max = p.tier.map_or(0, |t| t.heavy_max);
        let heavy_quota: Vec<u32> = (0..nlanes)
            .map(|l| cell_quota(heavy_max, p.ncells, cell(l)))
            .collect();
        ShardEngine {
            analyzer_cfg: p.analyzer,
            collect: p.collect,
            sketch: p.sketch,
            tier: p.tier,
            idle_us: p.idle_us,
            linger_us: p.linger_us,
            ncells: p.ncells,
            shards: p.shards.max(1),
            shard: p.shard,
            flow_quota,
            heavy_quota,
            lane_heavy: vec![0; nlanes],
            active_hw: vec![0; nlanes],
            heavy_hw: vec![0; nlanes],
            heavy_total: 0,
            map: HashMap::default(),
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            light: LightTable::new(p.analyzer.replay),
            lru: LruList::new(nlanes),
            wheel: TimerWheel::with_default_geometry(),
            expired: Vec::new(),
            dead: HashMap::default(),
            dead_q: VecDeque::new(),
            dead_next_us: u64::MAX,
            tracker_pool: Vec::new(),
            pool: Vec::new(),
            pool_free: Vec::new(),
            delta: IntervalDelta::default(),
            collected: Vec::new(),
        }
    }

    /// Fold a closed analysis's distributions into the interval sketches
    /// (the same fold discipline as `breakdown.add_flow`, applied on both
    /// the finalize and demote paths so no diagnosed episode is lost).
    fn sketch_analysis(&mut self, analysis: &FlowAnalysis) {
        if !self.sketch {
            return;
        }
        for s in &analysis.stalls {
            self.delta.stall_sketch.insert(s.duration.as_micros());
        }
        for r in &analysis.rtt_samples {
            self.delta.rtt_sketch.insert(r.as_micros());
        }
    }

    fn timers_enabled(&self) -> bool {
        self.idle_us.is_some() || self.linger_us.is_some()
    }

    fn deadline_for(&self, closed: bool, now_us: u64) -> u64 {
        let d = if closed {
            self.linger_us.or(self.idle_us)
        } else {
            self.idle_us
        };
        match d {
            Some(x) => now_us.saturating_add(x),
            None => u64::MAX,
        }
    }

    /// Set the slot's deadline, scheduling a wheel entry if it moved
    /// earlier than the earliest outstanding one (lazy timers: pushes to a
    /// *later* deadline are resolved when the stale entry fires).
    fn arm(&mut self, slot: u32, deadline_us: u64) {
        let flow = self.slots[slot as usize].as_mut().expect("occupied");
        flow.deadline_us = deadline_us;
        if deadline_us != u64::MAX && deadline_us < flow.wheel_deadline_us {
            flow.wheel_deadline_us = deadline_us;
            self.wheel
                .schedule((deadline_us, slot, self.gens[slot as usize]));
        }
    }

    /// Bind a recycled (or fresh) heavy analyzer to the flow in `slot`.
    fn open_heavy(&mut self, slot: u32, lane: u32, seed: Option<crate::live::MonitorSeed>) {
        let idx = match self.pool_free.pop() {
            Some(i) => i,
            None => {
                self.pool.push(StreamAnalyzer::new(self.analyzer_cfg));
                (self.pool.len() - 1) as u32
            }
        };
        match seed {
            Some(s) => self.pool[idx as usize].reset_seeded(self.analyzer_cfg, &s),
            None => self.pool[idx as usize].reset_for(self.analyzer_cfg),
        }
        self.slots[slot as usize]
            .as_mut()
            .expect("occupied")
            .heavy_idx = idx;
        self.lane_heavy[lane as usize] += 1;
        self.heavy_total += 1;
        let hw = &mut self.heavy_hw[lane as usize];
        *hw = (*hw).max(self.lane_heavy[lane as usize]);
    }

    fn admit(&mut self, gidx: u64, pkt: &PcapPacket, t_us: u64) {
        let cell = cell_of(&pkt.key, self.ncells);
        debug_assert_eq!(cell % self.shards, self.shard, "misrouted packet");
        let lane = (cell / self.shards) as u32;
        // Deterministic cap: the cell's quota, not a global count — the
        // shed victim is cell-local, so it is the same flow at any shard
        // count.
        if self.lru.len(lane) >= self.flow_quota[lane as usize] as usize {
            let victim = self
                .lru
                .pop_front(lane)
                .expect("quota ≥ 1 implies tracked flows");
            self.finalize(victim, t_us, Reason::Shed);
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        let mut tracker = self.tracker_pool.pop().unwrap_or_default();
        tracker.reset();
        // Two-tier: every flow starts light (no analyzer); always-heavy:
        // open the analyzer at the first packet, as before.
        if self.tier.is_some() {
            self.light.init(slot);
        }
        self.slots[slot as usize] = Some(EngineFlow {
            key: pkt.key,
            uid: gidx,
            lane,
            tracker,
            closed: false,
            heavy_idx: NONE,
            deadline_us: u64::MAX,
            wheel_deadline_us: u64::MAX,
        });
        self.map.insert(pkt.key, slot);
        self.lru.push_back(lane, slot);
        let hw = &mut self.active_hw[lane as usize];
        *hw = (*hw).max(self.lru.len(lane) as u32);
        self.delta.flows_opened += 1;
        if self.tier.is_none() {
            self.open_heavy(slot, lane, None);
        }
        self.deliver(slot, pkt, t_us);
    }

    fn deliver(&mut self, slot: u32, pkt: &PcapPacket, t_us: u64) {
        let flow = self.slots[slot as usize].as_mut().expect("occupied");
        let lane = flow.lane;
        let rec = flow.tracker.translate(pkt.t, &pkt.raw);
        if pkt.raw.flags.fin || pkt.raw.flags.rst {
            flow.closed = true;
        }
        let closed = flow.closed;
        let heavy_idx = flow.heavy_idx;
        if let Some(rec) = rec {
            match self.tier {
                // Always-heavy: the legacy path, zero light-tier overhead.
                None => {
                    if self.pool[heavy_idx as usize].push(&rec).is_some() {
                        self.delta.live_stalls += 1;
                    }
                }
                Some(tier) => {
                    // The light row tracks every flow — heavy ones too, so
                    // the calm-streak hysteresis has something to read.
                    let verdict = self.light.update(slot, &rec, t_us, &tier);
                    if heavy_idx != NONE {
                        if self.pool[heavy_idx as usize].push(&rec).is_some() {
                            self.delta.live_stalls += 1;
                        }
                        if tier.demote_streak > 0
                            && !closed
                            && !verdict.suspicious
                            && verdict.calm_streak >= tier.demote_streak
                        {
                            self.demote(slot, lane);
                        }
                    } else if verdict.suspicious && !closed {
                        self.promote(slot, lane, &tier);
                    }
                }
            }
        }
        let deadline = self.deadline_for(closed, t_us);
        self.arm(slot, deadline);
        self.lru.touch(lane, slot);
    }

    /// Escalate a light flow: snapshot the light row (which already
    /// reflects the triggering record) and open a seeded analyzer. The
    /// triggering record is *not* forwarded — its effect lives in the
    /// seed, and forwarding it too would double-apply it (e.g. new data
    /// misread as a retransmission against the seeded `snd_nxt`).
    ///
    /// Denied when the cell's heavy quota is full; the heuristics are
    /// level-triggered, so a still-suspicious flow simply retries on its
    /// next packet.
    fn promote(&mut self, slot: u32, lane: u32, _tier: &TierConfig) {
        if self.lane_heavy[lane as usize] >= self.heavy_quota[lane as usize] {
            self.delta.promotions_denied += 1;
            return;
        }
        let seed = self.light.seed(slot);
        self.open_heavy(slot, lane, Some(seed));
        self.delta.promotions += 1;
    }

    /// Hysteresis demotion: the flow stayed calm for the configured
    /// streak, so recycle its analyzer and fall back to the light row
    /// (whose counters are re-armed so the next promotion needs fresh
    /// evidence, not leftovers from the previous episode). The heavy
    /// episode's stalls are real and already reported live; fold them so
    /// demotion never loses diagnosed intervals.
    fn demote(&mut self, slot: u32, lane: u32) {
        let flow = self.slots[slot as usize].as_mut().expect("occupied");
        let idx = flow.heavy_idx;
        let port = flow.key.server_port;
        debug_assert_ne!(idx, NONE, "demoting a light flow");
        flow.heavy_idx = NONE;
        let analysis = self.pool[idx as usize].finish_reset();
        self.delta.breakdown.add_flow(&analysis);
        self.sketch_analysis(&analysis);
        let entry = self.delta.port_entry(port);
        entry.stalls += analysis.stalls.len() as u64;
        entry.stalled_us += analysis
            .stalls
            .iter()
            .map(|s| s.duration.as_micros())
            .sum::<u64>();
        self.pool_free.push(idx);
        self.lane_heavy[lane as usize] -= 1;
        self.heavy_total -= 1;
        self.delta.demotions += 1;
        self.light.rearm(slot);
    }

    fn finalize(&mut self, slot: u32, now_us: u64, reason: Reason) {
        let mut flow = self.slots[slot as usize].take().expect("occupied");
        self.map.remove(&flow.key);
        self.lru.remove(flow.lane, slot);
        self.free.push(slot);
        // Only heavy flows have an analyzer to close; a light finalize
        // contributes nothing to the breakdown — undiagnosed by design,
        // that is the whole saving.
        if flow.heavy_idx != NONE {
            let idx = flow.heavy_idx;
            let analysis = self.pool[idx as usize].finish_reset();
            self.delta.breakdown.add_flow(&analysis);
            self.sketch_analysis(&analysis);
            let entry = self.delta.port_entry(flow.key.server_port);
            entry.stalls += analysis.stalls.len() as u64;
            entry.stalled_us += analysis
                .stalls
                .iter()
                .map(|s| s.duration.as_micros())
                .sum::<u64>();
            if self.collect {
                self.collected.push((flow.uid, flow.key, analysis));
            }
            self.pool_free.push(idx);
            self.lane_heavy[flow.lane as usize] -= 1;
            self.heavy_total -= 1;
        }
        flow.tracker.reset();
        self.tracker_pool.push(flow.tracker);
        self.delta.flows_finalized += 1;
        self.delta.port_entry(flow.key.server_port).flows += 1;
        match reason {
            Reason::Teardown | Reason::Displaced => self.delta.flows_closed += 1,
            Reason::Idle => self.delta.flows_evicted_idle += 1,
            Reason::Shed => self.delta.flows_shed += 1,
            Reason::Eof => self.delta.flows_eof += 1,
        }
        // Remember evicted keys so stragglers don't churn phantom flows.
        // Not needed at EOF (no more packets) or on displacement (the key
        // is immediately re-admitted by the reopening SYN).
        if matches!(reason, Reason::Idle | Reason::Shed | Reason::Teardown) {
            // Timer-driven finalizes base the TTL on the flow's
            // *deadline*, not on when the timer happened to fire — firing
            // time depends on when this engine next saw a packet, which
            // varies with the shard count; the deadline does not.
            let base = if matches!(reason, Reason::Shed) {
                now_us
            } else {
                flow.deadline_us
            };
            let expiry = base.saturating_add(DEAD_TTL_US);
            self.dead.insert(flow.key, expiry);
            self.dead_q.push_back((expiry, flow.key));
            // Deadline-based expiries are not strictly nondecreasing, so
            // track the minimum; the queue is only a memory bound (the
            // map is authoritative for straggler checks) and every entry
            // is purged within one TTL of its expiry regardless of order.
            if expiry < self.dead_next_us {
                self.dead_next_us = expiry;
            }
        }
    }

    fn purge_dead(&mut self, now_us: u64) {
        if now_us < self.dead_next_us {
            return;
        }
        while let Some(&(expiry, key)) = self.dead_q.front() {
            if expiry > now_us {
                self.dead_next_us = expiry;
                return;
            }
            self.dead_q.pop_front();
            // The key may have been re-added with a later expiry.
            if self.dead.get(&key) == Some(&expiry) {
                self.dead.remove(&key);
            }
        }
        self.dead_next_us = u64::MAX;
    }

    fn run_timers(&mut self, now_us: u64) {
        if !self.timers_enabled() || self.wheel.is_empty() {
            return;
        }
        let mut expired = std::mem::take(&mut self.expired);
        self.wheel.advance_into(now_us, &mut expired);
        for (entry_deadline, slot, gen) in expired.drain(..) {
            let Some(flow) = self.slots[slot as usize].as_mut() else {
                continue; // slot freed since scheduling
            };
            if self.gens[slot as usize] != gen || flow.wheel_deadline_us != entry_deadline {
                continue; // a different generation, or a superseded entry
            }
            flow.wheel_deadline_us = u64::MAX;
            if flow.deadline_us > now_us {
                // Activity pushed the true deadline out; re-arm lazily.
                let d = flow.deadline_us;
                if d != u64::MAX {
                    flow.wheel_deadline_us = d;
                    self.wheel.schedule((d, slot, gen));
                }
            } else {
                let reason = if flow.closed {
                    Reason::Teardown
                } else {
                    Reason::Idle
                };
                self.finalize(slot, now_us, reason);
            }
        }
        self.expired = expired;
    }

    /// Process one packet of this engine's flow space. `gidx` is the
    /// packet's global capture index (becomes the uid of a flow it
    /// admits).
    pub fn process(&mut self, gidx: u64, pkt: &PcapPacket, t_us: u64) {
        // Unconditional (not just when timers fire): sheds and teardowns
        // insert dead-map entries even with idle/linger timers disabled,
        // and the bounded-memory guarantee includes the dead map.
        self.purge_dead(t_us);
        // Expire deadlines up to this packet before lifecycle decisions,
        // so admission sees the same occupancy at any shard count.
        self.run_timers(t_us);
        self.delta.packets += 1;
        let bare_syn = pkt.raw.flags.syn && !pkt.raw.flags.ack;
        match self.map.get(&pkt.key).copied() {
            Some(slot) => {
                let closed = self.slots[slot as usize].as_ref().expect("occupied").closed;
                if closed && bare_syn {
                    // 4-tuple reuse: finalize the dead generation, start
                    // fresh (mirrors the offline FlowTable rotation).
                    self.finalize(slot, t_us, Reason::Displaced);
                    self.admit(gidx, pkt, t_us);
                } else {
                    self.deliver(slot, pkt, t_us);
                }
            }
            None => match self.dead.get(&pkt.key).copied() {
                Some(expiry) if expiry > t_us && !bare_syn => {
                    // Straggler on an evicted flow: drop, count.
                    self.delta.packets_late += 1;
                }
                _ => {
                    self.dead.remove(&pkt.key);
                    self.admit(gidx, pkt, t_us);
                }
            },
        }
    }

    /// Interval barrier at `now_us` (the cut trigger's capture time):
    /// advance timers so evictions due before the boundary land in the
    /// closing interval — exactly where a single-shard run puts them —
    /// then take the delta. Returns `(delta, active, heavy)`.
    pub fn cut(&mut self, now_us: u64) -> (IntervalDelta, u64, u64) {
        self.run_timers(now_us);
        (
            std::mem::take(&mut self.delta),
            self.map.len() as u64,
            self.heavy_total as u64,
        )
    }

    /// End of capture: run timers to the last packet's time (evictions
    /// already due finalize with their real reason, as a single-shard run
    /// would have done on its last packet), then finalize everything
    /// still open, oldest flow first.
    pub fn eof(&mut self, now_us: u64) {
        self.run_timers(now_us);
        let mut open: Vec<(u64, u32)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|f| (f.uid, i as u32)))
            .collect();
        open.sort_unstable();
        for (_, slot) in open {
            self.finalize(slot, now_us, Reason::Eof);
        }
    }

    /// Whole-run totals (stable once [`ShardEngine::eof`] has run).
    pub fn totals(&self) -> EngineTotals {
        EngineTotals {
            active_hw: self.active_hw.iter().map(|&h| h as u64).sum(),
            heavy_hw: self.heavy_hw.iter().map(|&h| h as u64).sum(),
        }
    }

    /// Tear down, yielding the collected per-flow analyses (empty unless
    /// constructed with `collect`), uid-tagged and key-tagged.
    pub fn into_collected(self) -> Vec<(u64, FlowKey, FlowAnalysis)> {
        self.collected
    }
}

/// Run one shard to completion: consume work batches until the driver
/// drops its ring producer, recycling each emptied buffer back on the
/// `spare` ring and answering every cut. Returns the finalized per-flow
/// analyses (empty unless `collect`) and the engine's whole-run totals.
pub fn shard_worker(
    params: EngineParams,
    mut rx: RingConsumer<Vec<Work>>,
    mut spare: RingProducer<Vec<Work>>,
    tx: Sender<ShardMsg>,
) -> (Vec<(u64, FlowKey, FlowAnalysis)>, EngineTotals) {
    let shard = params.shard;
    let mut eng = ShardEngine::new(params);
    while let Some(mut batch) = rx.pop() {
        for w in batch.drain(..) {
            match w {
                Work::Pkt { gidx, pkt } => eng.process(gidx, &pkt, pkt.t.as_micros()),
                Work::Cut { seq, now_us } => {
                    let (delta, active, heavy) = eng.cut(now_us);
                    let msg = ShardMsg {
                        shard,
                        seq,
                        delta,
                        active,
                        heavy,
                    };
                    if tx.send(msg).is_err() {
                        // Driver gone; shut down.
                        let totals = eng.totals();
                        return (eng.into_collected(), totals);
                    }
                }
                Work::Eof { now_us } => eng.eof(now_us),
            }
        }
        // Hand the emptied buffer back for reuse; if the spare ring is
        // full the buffer is simply dropped (the driver allocates a
        // replacement and its fresh-buffer counter shows it).
        let _ = spare.try_push(batch);
    }
    let totals = eng.totals();
    (eng.into_collected(), totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;
    use tcp_trace::record::{Direction, SegFlags};

    fn params(max_flows: usize, idle_us: Option<u64>, linger_us: Option<u64>) -> EngineParams {
        EngineParams {
            analyzer: AnalyzerConfig::default(),
            collect: false,
            tier: None,
            idle_us,
            linger_us,
            ncells: if max_flows > 0 { max_flows.min(64) } else { 64 },
            shards: 1,
            shard: 0,
            max_flows,
            sketch: true,
        }
    }

    fn pkt(key: FlowKey, t_us: u64, flags: SegFlags) -> PcapPacket {
        PcapPacket {
            t: SimTime::from_micros(t_us),
            key,
            raw: tcp_trace::pcap::RawRecord::new(Direction::In, 0, 0, flags, 1024, 0),
        }
    }

    #[test]
    fn cell_quota_partitions_any_cap_exactly() {
        // Seeded property sweep: for any (total, ncells), the per-cell
        // quotas must (a) sum to the global cap exactly — no flow of
        // headroom gained or lost by splitting, at any cell count —
        // (b) differ by at most one across cells (remainder spread), and
        // (c) map total == 0 to the unbounded sentinel in every cell.
        let mut rng = simnet::rng::SimRng::seed(0xce11);
        let mut cases: Vec<(usize, usize)> = vec![
            (0, 1),
            (0, 64),
            (1, 64),
            (63, 64),
            (64, 64),
            (65, 64),
            (u32::MAX as usize, 3),
        ];
        for _ in 0..200 {
            let total = (rng.next_u64() % 1_000_000_000) as usize;
            let ncells = 1 + (rng.next_u64() % 4096) as usize;
            cases.push((total, ncells));
        }
        for (total, ncells) in cases {
            let quotas: Vec<u32> = (0..ncells).map(|c| cell_quota(total, ncells, c)).collect();
            if total == 0 {
                assert!(quotas.iter().all(|&q| q == u32::MAX), "ncells={ncells}");
                continue;
            }
            let sum: u64 = quotas.iter().map(|&q| q as u64).sum();
            assert_eq!(sum, total as u64, "total={total} ncells={ncells}");
            let (min, max) = (quotas.iter().min().unwrap(), quotas.iter().max().unwrap());
            assert!(max - min <= 1, "total={total} ncells={ncells}");
        }
    }

    #[test]
    fn dead_map_is_purged_even_without_timers() {
        // Sheds insert dead-map entries; with idle/linger disabled the
        // timer path never runs, so the purge must happen on the packet
        // path or a long-running daemon leaks one entry per shed key.
        let mut eng = ShardEngine::new(params(1, None, None));
        assert!(!eng.timers_enabled());
        for i in 0..5u32 {
            let t = (i as u64) * 1_000;
            eng.process(i as u64, &pkt(FlowKey::synthetic(i), t, SegFlags::SYN), t);
        }
        assert_eq!(eng.delta.flows_shed, 4);
        assert_eq!(eng.dead.len(), 4, "shed keys parked in the dead map");
        // A packet past the TTL drains every expired entry.
        let late = 4_000 + DEAD_TTL_US + 1;
        eng.process(5, &pkt(FlowKey::synthetic(99), late, SegFlags::SYN), late);
        assert!(eng.dead.len() <= 1, "expired dead entries purged");
        assert!(eng.dead_q.len() <= 1);
    }

    #[test]
    fn displacing_syn_leaves_no_dead_entry() {
        // 4-tuple reuse finalizes the old generation, but the key is
        // immediately re-admitted — it must not be parked in the dead map.
        let mut eng = ShardEngine::new(params(
            0,
            Some(60_000_000), // defaults: idle 60 s, linger 1 s
            Some(1_000_000),
        ));
        let k = FlowKey::synthetic(7);
        let fin = SegFlags {
            fin: true,
            ack: true,
            ..Default::default()
        };
        eng.process(0, &pkt(k, 0, SegFlags::SYN), 0);
        eng.process(1, &pkt(k, 10, fin), 10);
        eng.process(2, &pkt(k, 20, SegFlags::SYN), 20); // reuse
        assert_eq!(eng.delta.flows_opened, 2);
        assert_eq!(eng.delta.flows_closed, 1);
        assert!(eng.dead.is_empty(), "displaced key must not be parked");
        assert!(eng.dead_q.is_empty());
    }

    #[test]
    fn timer_eviction_dead_expiry_uses_the_deadline_not_firing_time() {
        // An idle eviction that fires late (because the engine saw no
        // packet for a while) must base the dead-key TTL on the idle
        // deadline: firing time varies with shard placement, the
        // deadline does not.
        let idle = 1_000_000u64; // 1 s
        let mut eng = ShardEngine::new(params(0, Some(idle), None));
        let k = FlowKey::synthetic(1);
        eng.process(0, &pkt(k, 0, SegFlags::SYN), 0);
        // Next packet (another flow) arrives far past the idle deadline;
        // the eviction fires now, but the dead expiry is deadline + TTL.
        let late = 10_000_000u64;
        eng.process(1, &pkt(FlowKey::synthetic(2), late, SegFlags::SYN), late);
        assert_eq!(eng.delta.flows_evicted_idle, 1);
        assert_eq!(eng.dead.get(&k).copied(), Some(idle + DEAD_TTL_US));
    }

    #[test]
    fn cell_quotas_sum_to_the_cap() {
        for (total, ncells) in [(512usize, 64usize), (7, 3), (3, 3), (1000, 64), (5, 5)] {
            let sum: usize = (0..ncells)
                .map(|c| cell_quota(total, ncells, c) as usize)
                .sum();
            assert_eq!(sum, total, "quota split must be exact for {total}/{ncells}");
        }
        assert_eq!(cell_quota(0, 64, 0), u32::MAX, "0 means unbounded");
    }

    #[test]
    fn delta_merge_is_invariant_to_order() {
        // Seeded LCG-built deltas merged in different orders agree —
        // the driver's canonical-order fold is deterministic regardless
        // of shard arrival interleaving.
        let mut state = 0x2015_cafe_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let deltas: Vec<IntervalDelta> = (0..16)
            .map(|_| IntervalDelta {
                packets: next() % 1000,
                packets_late: next() % 10,
                flows_opened: next() % 100,
                flows_finalized: next() % 100,
                flows_closed: next() % 50,
                flows_evicted_idle: next() % 20,
                flows_shed: next() % 20,
                flows_eof: next() % 5,
                promotions: next() % 30,
                demotions: next() % 30,
                promotions_denied: next() % 7,
                live_stalls: next() % 40,
                breakdown: StallBreakdown::default(),
                by_port: (0..next() % 4)
                    .map(|_| {
                        (
                            [80u16, 443, 8080, 8443][(next() % 4) as usize],
                            PortDelta {
                                flows: next() % 50,
                                stalls: next() % 20,
                                stalled_us: next() % 100_000,
                            },
                        )
                    })
                    .fold(Vec::new(), |mut acc, (p, d)| {
                        // Keep the fixture sorted+deduped like real deltas.
                        port_entry(&mut acc, p).merge(&d);
                        acc
                    }),
                rtt_sketch: QSketch::default(),
                stall_sketch: QSketch::default(),
            })
            .collect();
        let fold = |order: &[usize]| {
            let mut acc = IntervalDelta::default();
            for &i in order {
                acc.merge(&deltas[i]);
            }
            acc
        };
        let fwd = fold(&(0..deltas.len()).collect::<Vec<_>>());
        let rev = fold(&(0..deltas.len()).rev().collect::<Vec<_>>());
        // A seeded shuffle (Fisher–Yates driven by the same LCG family).
        let mut order: Vec<usize> = (0..deltas.len()).collect();
        let mut s = 0x5eed_u64;
        for i in (1..order.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, ((s >> 33) % (i as u64 + 1)) as usize);
        }
        let shuffled = fold(&order);
        for d in [&rev, &shuffled] {
            assert_eq!(fwd.packets, d.packets);
            assert_eq!(fwd.packets_late, d.packets_late);
            assert_eq!(fwd.flows_opened, d.flows_opened);
            assert_eq!(fwd.flows_finalized, d.flows_finalized);
            assert_eq!(fwd.flows_closed, d.flows_closed);
            assert_eq!(fwd.flows_evicted_idle, d.flows_evicted_idle);
            assert_eq!(fwd.flows_shed, d.flows_shed);
            assert_eq!(fwd.flows_eof, d.flows_eof);
            assert_eq!(fwd.promotions, d.promotions);
            assert_eq!(fwd.demotions, d.demotions);
            assert_eq!(fwd.promotions_denied, d.promotions_denied);
            assert_eq!(fwd.live_stalls, d.live_stalls);
            assert_eq!(fwd.by_port, d.by_port, "keyed per-port merge commutes");
        }
    }
}

//! Worker shards: per-flow streaming analysis off the driver thread.
//!
//! A shard owns the [`StreamAnalyzer`]s of the flows hashed to it. It never
//! makes lifecycle decisions — the serial driver decides every open, close
//! and eviction and streams [`Directive`]s down a per-shard SPSC ring
//! ([`super::ring`]) in recycled batch buffers, so the *set* of analyses
//! produced per interval is independent of both the shard count and the
//! batch size. Directives address flows by the driver's *slot* index
//! (dense, bounded by the flow-table cap), so the per-record lookup is an
//! array index, not a hash probe. Analyzers are recycled through a free
//! pool ([`StreamAnalyzer::finish_reset`]), and emptied batch buffers are
//! pushed back to the driver on a reverse ring, so a long-running shard
//! reaches a steady state with zero per-batch allocation.

use std::sync::mpsc::Sender;

use tcp_trace::record::TraceRecord;

use crate::live::ring::{RingConsumer, RingProducer};
use crate::live::MonitorSeed;
use crate::report::StallBreakdown;
use crate::{AnalyzerConfig, FlowAnalysis};

/// Slot-map sentinel: no analyzer bound to this driver slot.
const NONE: u32 = u32::MAX;

/// One unit of work for a shard, issued by the driver in stream order.
#[derive(Debug, Clone)]
pub enum Directive {
    /// Start tracking a flow in the driver's slot `slot`.
    Open {
        /// Driver flow-table slot (dense; recycled after `Close`).
        slot: u32,
        /// Global flow id (monotone across the whole run) — identifies the
        /// flow in collected output; slots are recycled, uids never.
        uid: u64,
        /// Light-tier estimates to adopt as the starting state — `Some`
        /// when this open is a *promotion* partway through the flow,
        /// `None` for an always-heavy open at the first packet.
        seed: Option<MonitorSeed>,
    },
    /// Feed one translated record to a tracked flow.
    Rec {
        /// Target driver slot.
        slot: u32,
        /// The ISN-relative record.
        rec: TraceRecord,
    },
    /// Finalize a flow: fold its analysis into the current interval delta.
    Close {
        /// Target driver slot.
        slot: u32,
    },
    /// Demote a flow back to the light tier: fold what the analyzer saw
    /// into the breakdown and recycle it, but do *not* count a
    /// finalization — the flow is still live, just cheaply monitored.
    Demote {
        /// Target driver slot.
        slot: u32,
    },
    /// Interval barrier: report the accumulated delta for sequence `seq`.
    Cut {
        /// Interval sequence number (matched by the driver).
        seq: u64,
    },
}

/// What a shard accumulated since the previous cut. All fields merge
/// commutatively, so summing deltas across shards yields the same aggregate
/// at any shard count.
#[derive(Debug, Default, Clone)]
pub struct IntervalDelta {
    /// Stall breakdown over the flows finalized *or demoted* in this
    /// interval (finalization counts themselves live in the driver, which
    /// sees every finalize whether the flow was light or heavy).
    pub breakdown: StallBreakdown,
    /// Provisional stalls surfaced by `StreamAnalyzer::push` (live early
    /// warning — final causes may differ once flows complete).
    pub live_stalls: u64,
}

impl IntervalDelta {
    /// Fold another delta in (order-insensitive).
    pub fn merge(&mut self, other: &IntervalDelta) {
        self.breakdown.merge(&other.breakdown);
        self.live_stalls += other.live_stalls;
    }
}

/// A shard's answer to a [`Directive::Cut`].
#[derive(Debug)]
pub struct ShardMsg {
    /// Which shard sent this.
    pub shard: usize,
    /// Echo of the cut's sequence number.
    pub seq: u64,
    /// Everything accumulated since the previous cut.
    pub delta: IntervalDelta,
    /// Flows currently tracked by this shard (for `--per-shard` occupancy).
    pub occupancy: usize,
}

/// The directive-application half of a shard, separated from the ring
/// transport so the driver can run it *inline* when there is only one
/// shard — same state machine, no threads, no handoff. Byte-identity of
/// the reports across the two transports follows from the driver issuing
/// the exact same directive sequence either way.
#[derive(Debug)]
pub struct ShardState {
    cfg: AnalyzerConfig,
    collect: bool,
    /// Driver slot → analyzer-pool index (dense; NONE = not this shard's
    /// flow or not open). Grows to the driver's slot high-water mark.
    slot_map: Vec<u32>,
    pool: Vec<crate::StreamAnalyzer>,
    /// uid of the flow currently bound to each pool entry.
    uids: Vec<u64>,
    free: Vec<u32>,
    open_count: usize,
    delta: IntervalDelta,
    collected: Vec<(u64, FlowAnalysis)>,
}

impl ShardState {
    /// An empty shard with no flows bound.
    pub fn new(cfg: AnalyzerConfig, collect: bool) -> ShardState {
        ShardState {
            cfg,
            collect,
            slot_map: Vec::new(),
            pool: Vec::new(),
            uids: Vec::new(),
            free: Vec::new(),
            open_count: 0,
            delta: IntervalDelta::default(),
            collected: Vec::new(),
        }
    }

    /// Apply one open/record/close/demote directive. Cuts go through
    /// [`ShardState::cut`] instead (the transport decides how to deliver
    /// the delta).
    pub fn apply(&mut self, d: Directive) {
        match d {
            Directive::Open { slot, uid, seed } => {
                let idx = match self.free.pop() {
                    Some(i) => i,
                    None => {
                        self.pool.push(crate::StreamAnalyzer::new(self.cfg));
                        self.uids.push(0);
                        (self.pool.len() - 1) as u32
                    }
                };
                match seed {
                    Some(s) => self.pool[idx as usize].reset_seeded(self.cfg, &s),
                    None => self.pool[idx as usize].reset_for(self.cfg),
                }
                self.uids[idx as usize] = uid;
                let s = slot as usize;
                if s >= self.slot_map.len() {
                    self.slot_map.resize(s + 1, NONE);
                }
                debug_assert_eq!(self.slot_map[s], NONE, "slot reused while open");
                self.slot_map[s] = idx;
                self.open_count += 1;
            }
            Directive::Rec { slot, rec } => self.apply_rec(slot, &rec),
            Directive::Close { slot } => {
                let idx = self.slot_map.get(slot as usize).copied().unwrap_or(NONE);
                if idx != NONE {
                    self.slot_map[slot as usize] = NONE;
                    self.open_count -= 1;
                    let analysis = self.pool[idx as usize].finish_reset();
                    self.delta.breakdown.add_flow(&analysis);
                    if self.collect {
                        self.collected.push((self.uids[idx as usize], analysis));
                    }
                    self.free.push(idx);
                }
            }
            Directive::Demote { slot } => {
                let idx = self.slot_map.get(slot as usize).copied().unwrap_or(NONE);
                if idx != NONE {
                    // The heavy-tier episode's stalls are real and already
                    // reported live; fold them so demotion never loses
                    // diagnosed intervals. The flow itself stays open
                    // (driver-side, light tier), so this is not a
                    // finalization and is never collected.
                    self.slot_map[slot as usize] = NONE;
                    self.open_count -= 1;
                    let analysis = self.pool[idx as usize].finish_reset();
                    self.delta.breakdown.add_flow(&analysis);
                    self.free.push(idx);
                }
            }
            Directive::Cut { .. } => debug_assert!(false, "cuts go through ShardState::cut"),
        }
    }

    /// Feed one record to the flow in `slot`, if bound here — the
    /// per-packet form the inline transport calls directly, skipping the
    /// [`Directive`] construction (and its record copy) entirely.
    pub fn apply_rec(&mut self, slot: u32, rec: &TraceRecord) {
        let idx = self.slot_map.get(slot as usize).copied().unwrap_or(NONE);
        if idx != NONE && self.pool[idx as usize].push(rec).is_some() {
            self.delta.live_stalls += 1;
        }
    }

    /// Interval barrier: take the accumulated delta and report the current
    /// occupancy.
    pub fn cut(&mut self) -> (IntervalDelta, usize) {
        (std::mem::take(&mut self.delta), self.open_count)
    }

    /// Tear down, yielding the collected per-flow analyses (empty unless
    /// constructed with `collect`).
    pub fn into_collected(self) -> Vec<(u64, FlowAnalysis)> {
        self.collected
    }
}

/// Run one shard to completion: consume directive batches until the driver
/// drops its ring producer, recycling each emptied buffer back on the
/// `spare` ring and answering every cut. Returns the finalized per-flow
/// analyses (empty unless `collect` — collection is unbounded memory, for
/// tests and offline-equivalence checks only).
pub fn shard_worker(
    shard: usize,
    cfg: AnalyzerConfig,
    collect: bool,
    mut rx: RingConsumer<Vec<Directive>>,
    mut spare: RingProducer<Vec<Directive>>,
    tx: Sender<ShardMsg>,
) -> Vec<(u64, FlowAnalysis)> {
    let mut st = ShardState::new(cfg, collect);
    while let Some(mut batch) = rx.pop() {
        for d in batch.drain(..) {
            if let Directive::Cut { seq } = d {
                let (delta, occupancy) = st.cut();
                let msg = ShardMsg {
                    shard,
                    seq,
                    delta,
                    occupancy,
                };
                if tx.send(msg).is_err() {
                    return st.into_collected(); // driver gone; shut down
                }
            } else {
                st.apply(d);
            }
        }
        // Hand the emptied buffer back for reuse; if the spare ring is
        // full the buffer is simply dropped (the driver allocates a
        // replacement and its fresh-buffer counter shows it).
        let _ = spare.try_push(batch);
    }
    // The driver closes every flow before dropping the ring; anything
    // still open here means an aborted run — drop it silently.
    st.into_collected()
}

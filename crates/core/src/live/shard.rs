//! Worker shards: per-flow streaming analysis off the driver thread.
//!
//! A shard owns the [`StreamAnalyzer`]s of the flows hashed to it. It never
//! makes lifecycle decisions — the serial driver decides every open, close
//! and eviction and streams [`Directive`]s down a per-shard channel, so the
//! *set* of analyses produced per interval is independent of the shard
//! count. Analyzers are recycled through a free pool
//! ([`StreamAnalyzer::finish_reset`]), so a long-running shard reaches a
//! steady state with zero per-flow allocation.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};

use tcp_trace::record::TraceRecord;

use crate::live::MonitorSeed;
use crate::report::StallBreakdown;
use crate::{AnalyzerConfig, FlowAnalysis};

/// One unit of work for a shard, issued by the driver in stream order.
#[derive(Debug, Clone)]
pub enum Directive {
    /// Start tracking a flow under a driver-assigned unique id.
    Open {
        /// Global flow id (monotone across the whole run).
        uid: u64,
        /// Light-tier estimates to adopt as the starting state — `Some`
        /// when this open is a *promotion* partway through the flow,
        /// `None` for an always-heavy open at the first packet.
        seed: Option<MonitorSeed>,
    },
    /// Feed one translated record to a tracked flow.
    Rec {
        /// Target flow.
        uid: u64,
        /// The ISN-relative record.
        rec: TraceRecord,
    },
    /// Finalize a flow: fold its analysis into the current interval delta.
    Close {
        /// Target flow.
        uid: u64,
    },
    /// Demote a flow back to the light tier: fold what the analyzer saw
    /// into the breakdown and recycle it, but do *not* count a
    /// finalization — the flow is still live, just cheaply monitored.
    Demote {
        /// Target flow.
        uid: u64,
    },
    /// Interval barrier: report the accumulated delta for sequence `seq`.
    Cut {
        /// Interval sequence number (matched by the driver).
        seq: u64,
    },
}

/// What a shard accumulated since the previous cut. All fields merge
/// commutatively, so summing deltas across shards yields the same aggregate
/// at any shard count.
#[derive(Debug, Default, Clone)]
pub struct IntervalDelta {
    /// Stall breakdown over the flows finalized *or demoted* in this
    /// interval (finalization counts themselves live in the driver, which
    /// sees every finalize whether the flow was light or heavy).
    pub breakdown: StallBreakdown,
    /// Provisional stalls surfaced by `StreamAnalyzer::push` (live early
    /// warning — final causes may differ once flows complete).
    pub live_stalls: u64,
}

impl IntervalDelta {
    /// Fold another delta in (order-insensitive).
    pub fn merge(&mut self, other: &IntervalDelta) {
        self.breakdown.merge(&other.breakdown);
        self.live_stalls += other.live_stalls;
    }
}

/// A shard's answer to a [`Directive::Cut`].
#[derive(Debug)]
pub struct ShardMsg {
    /// Which shard sent this.
    pub shard: usize,
    /// Echo of the cut's sequence number.
    pub seq: u64,
    /// Everything accumulated since the previous cut.
    pub delta: IntervalDelta,
    /// Flows currently tracked by this shard (for `--per-shard` occupancy).
    pub occupancy: usize,
}

/// Run one shard to completion: consume directive batches until the driver
/// drops the channel, answering every cut. Returns the finalized per-flow
/// analyses (empty unless `collect` — collection is unbounded memory, for
/// tests and offline-equivalence checks only).
pub fn shard_worker(
    shard: usize,
    cfg: AnalyzerConfig,
    collect: bool,
    rx: Receiver<Vec<Directive>>,
    tx: Sender<ShardMsg>,
) -> Vec<(u64, FlowAnalysis)> {
    let mut flows: HashMap<u64, usize> = HashMap::new();
    let mut pool: Vec<crate::StreamAnalyzer> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut delta = IntervalDelta::default();
    let mut collected = Vec::new();

    while let Ok(batch) = rx.recv() {
        for d in batch {
            match d {
                Directive::Open { uid, seed } => {
                    let idx = match free.pop() {
                        Some(i) => i,
                        None => {
                            pool.push(crate::StreamAnalyzer::new(cfg));
                            pool.len() - 1
                        }
                    };
                    match seed {
                        Some(s) => pool[idx].reset_seeded(cfg, &s),
                        None => pool[idx].reset_for(cfg),
                    }
                    let prev = flows.insert(uid, idx);
                    debug_assert!(prev.is_none(), "uid reused while open");
                }
                Directive::Rec { uid, rec } => {
                    if let Some(&idx) = flows.get(&uid) {
                        if pool[idx].push(&rec).is_some() {
                            delta.live_stalls += 1;
                        }
                    }
                }
                Directive::Close { uid } => {
                    if let Some(idx) = flows.remove(&uid) {
                        let analysis = pool[idx].finish_reset();
                        delta.breakdown.add_flow(&analysis);
                        if collect {
                            collected.push((uid, analysis));
                        }
                        free.push(idx);
                    }
                }
                Directive::Demote { uid } => {
                    if let Some(idx) = flows.remove(&uid) {
                        // The heavy-tier episode's stalls are real and
                        // already reported live; fold them so demotion
                        // never loses diagnosed intervals. The flow itself
                        // stays open (driver-side, light tier), so this is
                        // not a finalization and is never collected.
                        let analysis = pool[idx].finish_reset();
                        delta.breakdown.add_flow(&analysis);
                        free.push(idx);
                    }
                }
                Directive::Cut { seq } => {
                    let msg = ShardMsg {
                        shard,
                        seq,
                        delta: std::mem::take(&mut delta),
                        occupancy: flows.len(),
                    };
                    if tx.send(msg).is_err() {
                        return collected; // driver gone; shut down
                    }
                }
            }
        }
    }
    // The driver closes every flow before dropping the channel; anything
    // still open here means an aborted run — drop it silently.
    collected
}

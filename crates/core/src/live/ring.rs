//! Bounded SPSC rings for the driver→shard work handoff.
//!
//! `std::sync::mpsc::sync_channel` allocates a node per send and takes a
//! lock on both ends; at millions of packets per second the handoff must
//! instead recycle a fixed set of batch buffers with no steady-state
//! allocation. This ring is that handoff, built from `std` only and with
//! no `unsafe`: a fixed array of slots, each a per-slot flag
//! ([`AtomicBool`]) plus a tiny `Mutex<Option<T>>` holding the payload.
//! Exactly one producer and one consumer exist per ring, so each slot
//! mutex is uncontended except at the instant of handoff — it compiles to
//! a fetch-and-store, not a syscall.
//!
//! Backpressure parks the producer ([`std::thread::park_timeout`]) when
//! the ring is full and the consumer when it is empty; each wakes the
//! other after freeing/filling a slot. The timeout is a belt-and-braces
//! backstop (a lost wakeup degrades to polling at 1 kHz, it never
//! deadlocks). Dropping the producer closes the ring: the consumer drains
//! the remaining slots and then sees `None`. Dropping the consumer makes
//! further pushes fail, which the driver treats as a dead shard.
//!
//! Buffer *recycling* is a second ring running the other way (shard →
//! driver) carrying emptied `Vec`s; both directions use this same type —
//! the reverse direction just uses the non-blocking [`RingProducer::
//! try_push`] / [`RingConsumer::try_pop`] so neither side ever waits on a
//! spare buffer (a miss merely allocates a fresh one, and a counter on the
//! summary proves misses stop after warmup).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::Duration;

/// Park at most this long before re-checking the slot: purely a backstop
/// against a (theoretically impossible) lost unpark.
const PARK_BACKSTOP: Duration = Duration::from_millis(1);

struct Slot<T> {
    full: AtomicBool,
    val: Mutex<Option<T>>,
}

struct Shared<T> {
    slots: Box<[Slot<T>]>,
    /// Producer dropped: consumer drains what is left, then sees `None`.
    closed: AtomicBool,
    /// Consumer dropped: pushes fail immediately.
    abandoned: AtomicBool,
    /// Parked producer waiting for a free slot, if any.
    producer: Mutex<Option<Thread>>,
    /// Parked consumer waiting for a full slot, if any.
    consumer: Mutex<Option<Thread>>,
}

impl<T> Shared<T> {
    fn wake_consumer(&self) {
        if let Some(t) = self.consumer.lock().expect("ring lock").take() {
            t.unpark();
        }
    }

    fn wake_producer(&self) {
        if let Some(t) = self.producer.lock().expect("ring lock").take() {
            t.unpark();
        }
    }
}

/// The sending half of a bounded SPSC ring (exactly one per ring).
pub struct RingProducer<T> {
    shared: Arc<Shared<T>>,
    /// Next slot to fill (producer-local; slots are claimed in order).
    head: usize,
}

/// The receiving half of a bounded SPSC ring (exactly one per ring).
pub struct RingConsumer<T> {
    shared: Arc<Shared<T>>,
    /// Next slot to drain (consumer-local).
    tail: usize,
}

/// Returned by [`RingProducer::push`] when the consumer is gone; carries
/// the rejected value back.
#[derive(Debug)]
pub struct RingClosed<T>(pub T);

/// Create a bounded SPSC ring with `depth` slots (minimum 1).
pub fn ring<T>(depth: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let slots: Vec<Slot<T>> = (0..depth.max(1))
        .map(|_| Slot {
            full: AtomicBool::new(false),
            val: Mutex::new(None),
        })
        .collect();
    let shared = Arc::new(Shared {
        slots: slots.into_boxed_slice(),
        closed: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
        producer: Mutex::new(None),
        consumer: Mutex::new(None),
    });
    (
        RingProducer {
            shared: Arc::clone(&shared),
            head: 0,
        },
        RingConsumer { shared, tail: 0 },
    )
}

impl<T> RingProducer<T> {
    fn slot(&self) -> &Slot<T> {
        &self.shared.slots[self.head]
    }

    /// Non-blocking push; returns the value back if the ring is full or
    /// the consumer is gone.
    pub fn try_push(&mut self, v: T) -> Result<(), T> {
        if self.shared.abandoned.load(Ordering::Acquire) || self.slot().full.load(Ordering::Acquire)
        {
            return Err(v);
        }
        *self.slot().val.lock().expect("ring lock") = Some(v);
        self.slot().full.store(true, Ordering::Release);
        self.head = (self.head + 1) % self.shared.slots.len();
        self.shared.wake_consumer();
        Ok(())
    }

    /// Push, parking until a slot frees up. Fails only when the consumer
    /// is gone (returning the value).
    pub fn push(&mut self, mut v: T) -> Result<(), RingClosed<T>> {
        loop {
            match self.try_push(v) {
                Ok(()) => return Ok(()),
                Err(back) => v = back,
            }
            if self.shared.abandoned.load(Ordering::Acquire) {
                return Err(RingClosed(v));
            }
            // Register, re-check (the consumer may have freed the slot
            // between the failed try and the registration), then park.
            *self.shared.producer.lock().expect("ring lock") = Some(std::thread::current());
            if self.slot().full.load(Ordering::Acquire)
                && !self.shared.abandoned.load(Ordering::Acquire)
            {
                std::thread::park_timeout(PARK_BACKSTOP);
            }
            self.shared.producer.lock().expect("ring lock").take();
        }
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.wake_consumer();
    }
}

impl<T> RingConsumer<T> {
    fn slot(&self) -> &Slot<T> {
        &self.shared.slots[self.tail]
    }

    fn take(&mut self) -> T {
        let v = self
            .slot()
            .val
            .lock()
            .expect("ring lock")
            .take()
            .expect("full slot holds a value");
        self.slot().full.store(false, Ordering::Release);
        self.tail = (self.tail + 1) % self.shared.slots.len();
        self.shared.wake_producer();
        v
    }

    /// Non-blocking pop; `None` when the ring is currently empty (which
    /// says nothing about whether the producer is still alive).
    pub fn try_pop(&mut self) -> Option<T> {
        if self.slot().full.load(Ordering::Acquire) {
            Some(self.take())
        } else {
            None
        }
    }

    /// Pop, parking until a value arrives. `None` once the producer is
    /// gone *and* the ring is drained.
    pub fn pop(&mut self) -> Option<T> {
        loop {
            if self.slot().full.load(Ordering::Acquire) {
                return Some(self.take());
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Re-check: the producer may have filled the slot after
                // our load but before closing.
                if self.slot().full.load(Ordering::Acquire) {
                    return Some(self.take());
                }
                return None;
            }
            *self.shared.consumer.lock().expect("ring lock") = Some(std::thread::current());
            if !self.slot().full.load(Ordering::Acquire)
                && !self.shared.closed.load(Ordering::Acquire)
            {
                std::thread::park_timeout(PARK_BACKSTOP);
            }
            self.shared.consumer.lock().expect("ring lock").take();
        }
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        self.shared.abandoned.store(true, Ordering::Release);
        self.shared.wake_producer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_drain_on_close() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert!(tx.try_push(99).is_err(), "fifth push must not fit");
        drop(tx);
        // Consumer drains the full ring, then sees the close.
        assert_eq!(rx.pop(), Some(0));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.pop(), None, "close is sticky");
    }

    #[test]
    fn backpressure_blocks_then_resumes() {
        let (mut tx, mut rx) = ring::<u64>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.push(i).expect("consumer alive");
            }
        });
        let mut expect = 0u64;
        while let Some(v) = rx.pop() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, 10_000);
        producer.join().unwrap();
    }

    #[test]
    fn push_fails_when_consumer_gone() {
        let (mut tx, rx) = ring::<u8>(2);
        drop(rx);
        let RingClosed(v) = tx.push(7).unwrap_err();
        assert_eq!(v, 7);
    }

    #[test]
    fn try_pop_is_nonblocking() {
        let (mut tx, mut rx) = ring::<u8>(2);
        assert_eq!(rx.try_pop(), None);
        tx.try_push(1).unwrap();
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), None);
    }
}

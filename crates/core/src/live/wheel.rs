//! Timer wheel for flow deadline eviction.
//!
//! The same calendar-queue geometry as the simulator's event scheduler — a
//! ring of fixed-width time buckets plus an overflow heap for deadlines
//! beyond the ring's span — applied to flow lifecycle timers (idle timeout,
//! FIN linger). Near deadlines cost O(1) to schedule and fire; far ones
//! (the common 60 s idle timeout against a ~67 s span) sit in the heap and
//! migrate into the ring as the cursor approaches.
//!
//! Timers are **lazy**: an entry is never cancelled or updated in place.
//! Each shard engine owns one wheel covering exactly its own flows; it
//! stamps each flow slot with its authoritative deadline and a generation
//! counter, and when an entry fires it revalidates against the slot and
//! either ignores it (stale), reschedules at the true deadline (pushed
//! back by later activity), or evicts. This keeps the common per-packet
//! path — deadline pushed further out — allocation- and search-free, and
//! timers advance only on the owning shard's own packet/cut timeline, so
//! firing order is deterministic at any shard count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `(deadline_us, slot, generation)` — ordering by deadline first.
pub type TimerEntry = (u64, u32, u32);

/// Ring-and-heap timer queue over microsecond deadlines.
#[derive(Debug)]
pub struct TimerWheel {
    /// Width of one ring bucket in microseconds.
    width_us: u64,
    /// The ring; bucket `cursor` covers `[base_us, base_us + width_us)`.
    buckets: Vec<Vec<TimerEntry>>,
    base_us: u64,
    cursor: usize,
    /// Deadlines at or beyond `base_us + span`.
    far: BinaryHeap<Reverse<TimerEntry>>,
    len: usize,
}

impl TimerWheel {
    /// A wheel of `nbuckets` buckets of `width_us` each, starting at t=0.
    pub fn new(width_us: u64, nbuckets: usize) -> Self {
        assert!(width_us > 0 && nbuckets > 0);
        TimerWheel {
            width_us,
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            base_us: 0,
            cursor: 0,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Default geometry: 1024 buckets × ~65 ms ≈ 67 s span, sized so the
    /// default 60 s idle timeout lands in the ring once within one span.
    pub fn with_default_geometry() -> Self {
        TimerWheel::new(1 << 16, 1024)
    }

    fn span_us(&self) -> u64 {
        self.width_us * self.buckets.len() as u64
    }

    /// Pending entries (including stale ones not yet fired).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry. Deadlines already in the past fire on the next
    /// [`TimerWheel::advance_into`].
    pub fn schedule(&mut self, e: TimerEntry) {
        self.len += 1;
        if e.0 >= self.base_us + self.span_us() {
            self.far.push(Reverse(e));
            return;
        }
        let ahead = (e.0.saturating_sub(self.base_us) / self.width_us) as usize;
        let idx = (self.cursor + ahead) % self.buckets.len();
        self.buckets[idx].push(e);
    }

    fn refill_from_far(&mut self) {
        let horizon = self.base_us + self.span_us();
        while let Some(&Reverse(e)) = self.far.peek() {
            if e.0 >= horizon {
                break;
            }
            self.far.pop();
            let ahead = (e.0.saturating_sub(self.base_us) / self.width_us) as usize;
            let idx = (self.cursor + ahead) % self.buckets.len();
            self.buckets[idx].push(e);
        }
    }

    /// Move time forward to `now_us`, appending every entry with
    /// `deadline ≤ now_us` to `out` (deadline order is *not* guaranteed —
    /// callers revalidate against authoritative per-slot state anyway).
    /// Collecting into a caller buffer (rather than a callback) lets the
    /// caller reschedule stale entries while draining.
    pub fn advance_into(&mut self, now_us: u64, out: &mut Vec<TimerEntry>) {
        if self.len == 0 || now_us < self.base_us {
            return;
        }
        // Whole buckets whose window has fully passed.
        while self.base_us + self.width_us <= now_us {
            // Every ring bucket empty (all pending entries are in `far`):
            // fast-forward in O(1) instead of walking buckets one by one.
            // Without this, the first advance on a capture with epoch
            // timestamps would step through ~10^10 empty 65 ms windows.
            if self.len == self.far.len() {
                let target = match self.far.peek() {
                    Some(&Reverse(e)) => now_us.min(e.0),
                    None => now_us,
                };
                let skip = (target - self.base_us) / self.width_us;
                self.base_us += skip * self.width_us;
                self.refill_from_far();
                if self.len == self.far.len() {
                    break; // still nothing within the ring span
                }
                continue;
            }
            let mut bucket = std::mem::take(&mut self.buckets[self.cursor]);
            self.len -= bucket.len();
            out.append(&mut bucket);
            self.buckets[self.cursor] = bucket; // keep the allocation
            self.cursor = (self.cursor + 1) % self.buckets.len();
            self.base_us += self.width_us;
            self.refill_from_far();
        }
        // Due entries inside the current (partially elapsed) bucket.
        let cur = &mut self.buckets[self.cursor];
        let mut i = 0;
        while i < cur.len() {
            if cur[i].0 <= now_us {
                out.push(cur.swap_remove(i));
                self.len -= 1;
            } else {
                i += 1;
            }
        }
        // Far entries can be due directly after a large time jump.
        while let Some(&Reverse(e)) = self.far.peek() {
            if e.0 > now_us {
                break;
            }
            self.far.pop();
            self.len -= 1;
            out.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_sorted(w: &mut TimerWheel, now: u64) -> Vec<TimerEntry> {
        let mut out = Vec::new();
        w.advance_into(now, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn fires_due_entries_only() {
        let mut w = TimerWheel::new(100, 8);
        w.schedule((250, 1, 0));
        w.schedule((50, 2, 0));
        w.schedule((800_000, 3, 0)); // far beyond the ring span
        assert_eq!(w.len(), 3);
        assert_eq!(drain_sorted(&mut w, 60), vec![(50, 2, 0)]);
        assert_eq!(drain_sorted(&mut w, 249), vec![]);
        assert_eq!(drain_sorted(&mut w, 250), vec![(250, 1, 0)]);
        assert_eq!(w.len(), 1);
        assert_eq!(drain_sorted(&mut w, 1_000_000), vec![(800_000, 3, 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_entries_migrate_through_the_ring() {
        let mut w = TimerWheel::new(100, 4); // span = 400
        w.schedule((1_050, 7, 3));
        // Creep forward in steps smaller than the span; entry must fire
        // exactly once, at the right time.
        let mut fired = Vec::new();
        for now in (0..=1_200).step_by(150) {
            w.advance_into(now, &mut fired);
            if now < 1_050 {
                assert!(fired.is_empty(), "fired early at {now}");
            }
        }
        assert_eq!(fired, vec![(1_050, 7, 3)]);
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let mut w = TimerWheel::new(100, 8);
        let mut out = Vec::new();
        w.advance_into(5_000, &mut out); // move time forward first
        w.schedule((10, 1, 0)); // already past
        w.advance_into(5_000, &mut out);
        assert_eq!(out, vec![(10, 1, 0)]);
    }

    #[test]
    fn epoch_timestamps_advance_in_constant_time() {
        // Real tcpdump captures carry epoch timestamps (~1.75e15 us in
        // 2025). The first advance from base 0 must fast-forward over the
        // ~10^10 empty buckets, not walk them one by one.
        let mut w = TimerWheel::with_default_geometry();
        let epoch = 1_754_000_000_000_000u64;
        w.schedule((epoch + 60_000_000, 1, 0));
        let mut out = Vec::new();
        let t0 = std::time::Instant::now();
        w.advance_into(epoch, &mut out);
        assert!(out.is_empty(), "not due yet");
        w.advance_into(epoch + 60_000_000, &mut out);
        assert_eq!(out, vec![(epoch + 60_000_000, 1, 0)]);
        assert!(w.is_empty());
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "advance over empty span must be O(1), took {:?}",
            t0.elapsed()
        );
        // And scheduling keeps working at the new base.
        w.schedule((epoch + 60_010_000, 2, 0));
        w.advance_into(epoch + 60_020_000, &mut out);
        assert_eq!(out.last(), Some(&(epoch + 60_010_000, 2, 0)));
    }

    #[test]
    fn fast_forward_over_gap_between_entries() {
        // Two entries separated by a gap far larger than the ring span:
        // after the first fires, the walk to the second must also jump.
        let mut w = TimerWheel::new(100, 4); // span = 400
        w.schedule((50, 1, 0));
        w.schedule((10_000_000_000, 2, 0));
        let mut out = Vec::new();
        w.advance_into(60, &mut out);
        assert_eq!(out, vec![(50, 1, 0)]);
        out.clear();
        w.advance_into(9_999_999_999, &mut out);
        assert!(out.is_empty(), "second entry not due");
        w.advance_into(10_000_000_001, &mut out);
        assert_eq!(out, vec![(10_000_000_000, 2, 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn many_entries_across_wrap() {
        let mut w = TimerWheel::new(10, 4); // tiny ring, lots of wrapping
        for i in 0..200u64 {
            w.schedule((i * 7, i as u32, 0));
        }
        let mut out = Vec::new();
        w.advance_into(2_000, &mut out);
        assert_eq!(out.len(), 200);
        out.sort_unstable();
        for (i, e) in out.iter().enumerate() {
            assert_eq!(*e, (i as u64 * 7, i as u32, 0));
        }
    }
}

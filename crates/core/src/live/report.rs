//! Fixed-shape periodic reports and the end-of-run summary.
//!
//! Every interval the driver emits one [`IntervalReport`] — a snapshot a
//! monitoring pipeline can ingest as JSON-lines or CSV without schema
//! discovery: every field and every cause-class column is always present,
//! zero when idle. Under the partitioned front end each report is the fold
//! of per-shard [`IntervalDelta`](super::IntervalDelta) sub-reports merged
//! in canonical shard order at a cut barrier, and every value is derived
//! from integer counters (durations in integer microseconds, rates from
//! integer division inputs), so the rendered bytes are identical at any
//! shard count.

use simnet::time::SimDuration;
use tcp_trace::flow::FlowKey;

use super::config::DaemonId;
use super::shard::PortDelta;
use crate::causes::{RetransClass, StallClass};
use crate::fleet::sketch::QSketch;
use crate::json::Json;
use crate::report::StallBreakdown;
use crate::FlowAnalysis;

/// Machine-friendly column/key slug for a stall class (labels carry dots
/// and spaces; slugs are stable identifiers).
pub fn class_slug(class: StallClass) -> &'static str {
    match class {
        StallClass::DataUnavailable => "data_unavailable",
        StallClass::ResourceConstraint => "resource_constraint",
        StallClass::ClientIdle => "client_idle",
        StallClass::ZeroWindow => "zero_window",
        StallClass::PacketDelay => "packet_delay",
        StallClass::Retransmission => "retransmission",
        StallClass::Undetermined => "undetermined",
    }
}

/// Machine-friendly slug for a retransmission subclass.
pub fn retrans_slug(class: RetransClass) -> &'static str {
    match class {
        RetransClass::DoubleRetrans => "double_retrans",
        RetransClass::TailRetrans => "tail_retrans",
        RetransClass::SmallCwnd => "small_cwnd",
        RetransClass::SmallRwnd => "small_rwnd",
        RetransClass::ContinuousLoss => "continuous_loss",
        RetransClass::AckDelayLoss => "ack_delay_loss",
        RetransClass::Undetermined => "undetermined",
    }
}

fn breakdown_json(b: &StallBreakdown) -> Json {
    let by_cause = Json::Obj(
        StallClass::ALL
            .into_iter()
            .map(|c| {
                let (n, t) = b.cause_stats(c);
                (
                    class_slug(c).to_string(),
                    Json::obj([("n", Json::from(n)), ("us", Json::from(t.as_micros()))]),
                )
            })
            .collect(),
    );
    let by_retrans = Json::Obj(
        RetransClass::ALL
            .into_iter()
            .map(|c| {
                let (n, t) = b.retrans_stats(c);
                (
                    retrans_slug(c).to_string(),
                    Json::obj([("n", Json::from(n)), ("us", Json::from(t.as_micros()))]),
                )
            })
            .collect(),
    );
    Json::obj([
        ("stalls", Json::from(b.total_stalls)),
        ("stalled_us", Json::from(b.total_stalled.as_micros())),
        ("by_cause", by_cause),
        ("by_retrans", by_retrans),
    ])
}

/// Per-server-port slice as a JSON object keyed by port number, in
/// ascending port order (the list is kept sorted by construction).
fn by_port_json(by_port: &[(u16, PortDelta)]) -> Json {
    Json::Obj(
        by_port
            .iter()
            .map(|(port, d)| {
                (
                    port.to_string(),
                    Json::obj([
                        ("flows", Json::from(d.flows)),
                        ("stalls", Json::from(d.stalls)),
                        ("stalled_us", Json::from(d.stalled_us)),
                    ]),
                )
            })
            .collect(),
    )
}

/// The `"sketches"` section shared by interval and summary records:
/// canonical [`QSketch`] wire forms keyed by what they measure.
fn sketches_json(rtt: &QSketch, stall: &QSketch) -> Json {
    Json::obj([("rtt_us", rtt.to_json()), ("stall_us", stall.to_json())])
}

/// One interval's snapshot of the live pipeline.
#[derive(Debug, Clone)]
pub struct IntervalReport {
    /// Which daemon produced this report (fleet-ingestion attribution).
    pub daemon: DaemonId,
    /// Interval index: `start_us / interval_us` (gaps mean idle intervals,
    /// which are skipped rather than emitted empty).
    pub interval: u64,
    /// Interval start (inclusive), capture time in microseconds.
    pub start_us: u64,
    /// Interval end (exclusive), capture time in microseconds.
    pub end_us: u64,
    /// Packets processed in this interval.
    pub packets: u64,
    /// Malformed / non-IPv4-TCP packets skipped by the reader.
    pub packets_skipped: u64,
    /// Packets dropped because their flow was already evicted or shed.
    pub packets_late: u64,
    /// Flows opened.
    pub flows_opened: u64,
    /// Flows finalized for any reason (FIN/RST linger, idle, shed, reopen).
    pub flows_finalized: u64,
    /// Finalized after FIN/RST (teardown or a reopening SYN).
    pub flows_closed: u64,
    /// Finalized by idle timeout.
    pub flows_evicted_idle: u64,
    /// Finalized by LRU shedding at the flow-table cap.
    pub flows_shed: u64,
    /// Flows tracked at the end of the interval.
    pub active_flows: u64,
    /// Of the active flows, those in the compact light tier (equals
    /// `active_flows` minus `flows_heavy`; under always-heavy mode, 0).
    pub flows_light: u64,
    /// Of the active flows, those holding a full analyzer.
    pub flows_heavy: u64,
    /// Light→heavy escalations this interval.
    pub promotions: u64,
    /// Heavy→light hysteresis demotions this interval.
    pub demotions: u64,
    /// Provisional stalls surfaced live by `StreamAnalyzer::push`.
    pub live_stalls: u64,
    /// Stall breakdown over the flows finalized in this interval.
    pub breakdown: StallBreakdown,
    /// Per-server-port slice of the interval (flows finalized and stalls
    /// diagnosed per port), sorted by port. Shard-count-independent;
    /// JSON-only (CSV keeps a fixed width).
    pub by_port: Vec<(u16, PortDelta)>,
    /// RTT-sample sketch over the flows finalized/demoted this interval
    /// (`Some` when sketches are enabled; JSON-only). Partition-invariant,
    /// so present sketches do not perturb cross-shard byte identity.
    pub rtt_sketch: Option<QSketch>,
    /// Stall-duration sketch, same gating and invariance.
    pub stall_sketch: Option<QSketch>,
    /// Per-shard tracked-flow counts — only with `per_shard_occupancy`
    /// (shard-count-dependent, so off by default to keep reports
    /// byte-identical across `--shards`).
    pub shard_occupancy: Option<Vec<usize>>,
}

impl IntervalReport {
    /// Packets per second over the interval (from integer inputs, so the
    /// rendering is deterministic).
    pub fn pkts_per_sec(&self) -> f64 {
        let span_us = self.end_us.saturating_sub(self.start_us);
        if span_us == 0 {
            0.0
        } else {
            self.packets as f64 * 1e6 / span_us as f64
        }
    }

    /// The report as a JSON object (render with [`Json::compact`] for
    /// JSON-lines output).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind", Json::from("interval")),
            ("daemon", Json::from(self.daemon.as_str())),
            ("interval", Json::from(self.interval)),
            ("start_us", Json::from(self.start_us)),
            ("end_us", Json::from(self.end_us)),
            ("packets", Json::from(self.packets)),
            ("pkts_per_sec", Json::from(self.pkts_per_sec())),
            ("packets_skipped", Json::from(self.packets_skipped)),
            ("packets_late", Json::from(self.packets_late)),
            ("flows_opened", Json::from(self.flows_opened)),
            ("flows_finalized", Json::from(self.flows_finalized)),
            ("flows_closed", Json::from(self.flows_closed)),
            ("flows_evicted_idle", Json::from(self.flows_evicted_idle)),
            ("flows_shed", Json::from(self.flows_shed)),
            ("active_flows", Json::from(self.active_flows)),
            ("flows_light", Json::from(self.flows_light)),
            ("flows_heavy", Json::from(self.flows_heavy)),
            ("promotions", Json::from(self.promotions)),
            ("demotions", Json::from(self.demotions)),
            ("live_stalls", Json::from(self.live_stalls)),
            ("breakdown", breakdown_json(&self.breakdown)),
            ("by_port", by_port_json(&self.by_port)),
        ];
        if let (Some(rtt), Some(stall)) = (&self.rtt_sketch, &self.stall_sketch) {
            pairs.push(("sketches", sketches_json(rtt, stall)));
        }
        if let Some(occ) = &self.shard_occupancy {
            pairs.push(("shard_occupancy", Json::from(occ.clone())));
        }
        Json::obj(pairs)
    }

    /// The fixed CSV header matching [`IntervalReport::to_csv_row`].
    pub fn csv_header() -> String {
        let mut h = String::from(
            "daemon,interval,start_us,end_us,packets,pkts_per_sec,packets_skipped,\
             packets_late,flows_opened,flows_finalized,flows_closed,\
             flows_evicted_idle,flows_shed,active_flows,flows_light,\
             flows_heavy,promotions,demotions,live_stalls,\
             stalls,stalled_us",
        );
        for c in StallClass::ALL {
            h.push_str(&format!(",{0}_n,{0}_us", class_slug(c)));
        }
        h
    }

    /// One CSV row (shard occupancy and sketches are JSON-only; CSV keeps
    /// a fixed width). The daemon id's restricted alphabet never needs
    /// quoting, but it goes through [`crate::sink::csv_escape`] anyway so
    /// the row stays correct by construction.
    pub fn to_csv_row(&self) -> String {
        let mut row = format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            crate::sink::csv_escape(self.daemon.as_str()),
            self.interval,
            self.start_us,
            self.end_us,
            self.packets,
            self.pkts_per_sec(),
            self.packets_skipped,
            self.packets_late,
            self.flows_opened,
            self.flows_finalized,
            self.flows_closed,
            self.flows_evicted_idle,
            self.flows_shed,
            self.active_flows,
            self.flows_light,
            self.flows_heavy,
            self.promotions,
            self.demotions,
            self.live_stalls,
            self.breakdown.total_stalls,
            self.breakdown.total_stalled.as_micros(),
        );
        for c in StallClass::ALL {
            let (n, t) = self.breakdown.cause_stats(c);
            row.push_str(&format!(",{},{}", n, t.as_micros()));
        }
        row
    }
}

/// Whole-run totals, produced when the capture ends.
#[derive(Debug, Clone, Default)]
pub struct LiveSummary {
    /// Which daemon produced this summary.
    pub daemon: DaemonId,
    /// Distinct flows opened (key reuse counts each generation).
    pub flows_seen: u64,
    /// Flows finalized (always equals `flows_seen` at EOF).
    pub flows_finalized: u64,
    /// Finalized after FIN/RST.
    pub flows_closed: u64,
    /// Finalized by idle timeout.
    pub flows_evicted_idle: u64,
    /// Finalized by LRU shedding.
    pub flows_shed: u64,
    /// Still open at EOF (finalized with partial data).
    pub flows_eof: u64,
    /// Packets processed.
    pub packets: u64,
    /// Malformed / non-IPv4-TCP packets skipped.
    pub packets_skipped: u64,
    /// Packets dropped on evicted/shed flows.
    pub packets_late: u64,
    /// Truncated trailing pcap records.
    pub records_truncated: u64,
    /// Interval reports emitted.
    pub intervals: u64,
    /// Provisional stalls surfaced live.
    pub live_stalls: u64,
    /// Sum of per-cell concurrent high-water marks — a deterministic,
    /// shard-invariant upper bound on peak concurrency. With `max_flows`
    /// capped it never exceeds the cap (the per-cell quotas sum to it
    /// exactly); with one cell it is the exact global high-water mark.
    pub max_active_flows: u64,
    /// Light→heavy escalations over the whole run.
    pub promotions: u64,
    /// Heavy→light hysteresis demotions over the whole run.
    pub demotions: u64,
    /// Suspicious flows left light because the heavy pool was at its cap
    /// (they retry on their next suspicious packet).
    pub promotions_denied: u64,
    /// Sum of per-cell heavy high-water marks (bounds analyzer-pool
    /// memory; equals `max_active_flows` under always-heavy mode). Like
    /// `max_active_flows`, shard-invariant and never above `heavy_max`
    /// when capped.
    pub max_heavy_flows: u64,
    /// Work batch buffers allocated fresh because the spare ring had
    /// none to recycle, summed over shards in shard order. Telemetry for
    /// the zero-allocation claim: bounded by warmup (ring depth × shards),
    /// never growing in steady state. Deliberately *not* serialized — it
    /// depends on the batch size and shard count, which must not perturb
    /// report bytes.
    pub ring_fresh_buffers: u64,
    /// Work batch buffers reused from the spare ring (the steady state).
    /// Not serialized, same reason as `ring_fresh_buffers`.
    pub ring_recycled_buffers: u64,
    /// Aggregate stall breakdown over every finalized flow.
    pub breakdown: StallBreakdown,
    /// Whole-run per-server-port totals, sorted by port (fold of every
    /// interval's `by_port` slice). JSON-only, like the interval section.
    pub by_port: Vec<(u16, PortDelta)>,
    /// Whole-run RTT-sample sketch (fold of every interval's sketch;
    /// `Some` when sketches are enabled). JSON-only.
    pub rtt_sketch: Option<QSketch>,
    /// Whole-run stall-duration sketch, same gating.
    pub stall_sketch: Option<QSketch>,
    /// Per-flow analyses in open order — populated only under
    /// `collect_flows` (unbounded memory; tests and offline comparison).
    pub flows: Vec<(FlowKey, FlowAnalysis)>,
    /// Total stalled time convenience mirror of the breakdown.
    pub stalled: SimDuration,
}

impl LiveSummary {
    /// The summary as a JSON object. Collected per-flow analyses are *not*
    /// serialized; the summary stays shard-count-independent and small.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind", Json::from("summary")),
            ("daemon", Json::from(self.daemon.as_str())),
            ("flows_seen", Json::from(self.flows_seen)),
            ("flows_finalized", Json::from(self.flows_finalized)),
            ("flows_closed", Json::from(self.flows_closed)),
            ("flows_evicted_idle", Json::from(self.flows_evicted_idle)),
            ("flows_shed", Json::from(self.flows_shed)),
            ("flows_eof", Json::from(self.flows_eof)),
            ("packets", Json::from(self.packets)),
            ("packets_skipped", Json::from(self.packets_skipped)),
            ("packets_late", Json::from(self.packets_late)),
            ("records_truncated", Json::from(self.records_truncated)),
            ("intervals", Json::from(self.intervals)),
            ("live_stalls", Json::from(self.live_stalls)),
            ("max_active_flows", Json::from(self.max_active_flows)),
            ("promotions", Json::from(self.promotions)),
            ("demotions", Json::from(self.demotions)),
            ("promotions_denied", Json::from(self.promotions_denied)),
            ("max_heavy_flows", Json::from(self.max_heavy_flows)),
            ("breakdown", breakdown_json(&self.breakdown)),
            ("by_port", by_port_json(&self.by_port)),
        ];
        if let (Some(rtt), Some(stall)) = (&self.rtt_sketch, &self.stall_sketch) {
            pairs.push(("sketches", sketches_json(rtt, stall)));
        }
        Json::obj(pairs)
    }

    /// The fixed CSV header matching [`LiveSummary::to_csv_row`].
    pub fn csv_header() -> String {
        let mut h = String::from(
            "daemon,flows_seen,flows_finalized,flows_closed,flows_evicted_idle,\
             flows_shed,flows_eof,packets,packets_skipped,packets_late,\
             records_truncated,intervals,live_stalls,max_active_flows,\
             promotions,demotions,promotions_denied,max_heavy_flows,\
             stalls,stalled_us",
        );
        for c in StallClass::ALL {
            h.push_str(&format!(",{0}_n,{0}_us", class_slug(c)));
        }
        h
    }

    /// One CSV row (collected per-flow analyses are not serialized, as in
    /// [`LiveSummary::to_json`]).
    pub fn to_csv_row(&self) -> String {
        let mut row = format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            crate::sink::csv_escape(self.daemon.as_str()),
            self.flows_seen,
            self.flows_finalized,
            self.flows_closed,
            self.flows_evicted_idle,
            self.flows_shed,
            self.flows_eof,
            self.packets,
            self.packets_skipped,
            self.packets_late,
            self.records_truncated,
            self.intervals,
            self.live_stalls,
            self.max_active_flows,
            self.promotions,
            self.demotions,
            self.promotions_denied,
            self.max_heavy_flows,
            self.breakdown.total_stalls,
            self.breakdown.total_stalled.as_micros(),
        );
        for c in StallClass::ALL {
            let (n, t) = self.breakdown.cause_stats(c);
            row.push_str(&format!(",{},{}", n, t.as_micros()));
        }
        row
    }
}

impl crate::sink::Record for IntervalReport {
    fn header(&self) -> String {
        IntervalReport::csv_header()
    }
    fn csv(&self) -> String {
        self.to_csv_row()
    }
    fn json(&self) -> Json {
        self.to_json()
    }
}

impl crate::sink::Record for LiveSummary {
    fn header(&self) -> String {
        LiveSummary::csv_header()
    }
    fn csv(&self) -> String {
        self.to_csv_row()
    }
    fn json(&self) -> Json {
        self.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> IntervalReport {
        IntervalReport {
            daemon: DaemonId::default(),
            interval: 3,
            start_us: 3_000_000,
            end_us: 4_000_000,
            packets: 500,
            packets_skipped: 0,
            packets_late: 0,
            flows_opened: 2,
            flows_finalized: 1,
            flows_closed: 1,
            flows_evicted_idle: 0,
            flows_shed: 0,
            active_flows: 7,
            flows_light: 5,
            flows_heavy: 2,
            promotions: 1,
            demotions: 0,
            live_stalls: 4,
            breakdown: StallBreakdown::default(),
            by_port: vec![(
                80,
                PortDelta {
                    flows: 1,
                    stalls: 2,
                    stalled_us: 1500,
                },
            )],
            rtt_sketch: None,
            stall_sketch: None,
            shard_occupancy: None,
        }
    }

    #[test]
    fn csv_row_matches_header_width() {
        let header = IntervalReport::csv_header();
        let row = empty_report().to_csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "row and header column counts must match"
        );
        assert!(header.starts_with("daemon,interval,start_us"));
        assert!(row.starts_with("local,3,"));
    }

    #[test]
    fn json_shape_is_fixed_and_single_line() {
        let line = empty_report().to_json().compact();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"kind\":\"interval\",\"daemon\":\"local\""));
        assert!(line.contains("\"pkts_per_sec\":500"));
        for c in StallClass::ALL {
            assert!(line.contains(class_slug(c)), "missing {c:?}");
        }
        assert!(
            line.contains("\"by_port\":{\"80\":{\"flows\":1,\"stalls\":2,\"stalled_us\":1500}}")
        );
        // Occupancy is absent unless explicitly requested, and sketches
        // are absent when disabled.
        assert!(!line.contains("shard_occupancy"));
        assert!(!line.contains("sketches"));
    }

    #[test]
    fn sketches_serialize_when_enabled() {
        let mut r = empty_report();
        let mut rtt = QSketch::new();
        rtt.insert(30_000);
        rtt.insert(31_000);
        let mut stall = QSketch::new();
        stall.insert(2_000_000);
        r.rtt_sketch = Some(rtt.clone());
        r.stall_sketch = Some(stall.clone());
        let line = r.to_json().compact();
        let expected = format!(
            "\"sketches\":{{\"rtt_us\":{},\"stall_us\":{}}}",
            rtt.to_json().compact(),
            stall.to_json().compact()
        );
        assert!(line.contains(&expected), "missing {expected} in {line}");
        // The sketch section is JSON-only: CSV width does not change.
        assert_eq!(
            r.to_csv_row().split(',').count(),
            IntervalReport::csv_header().split(',').count()
        );
        // Round-trip: the wire form parses back to the same sketches.
        let doc = Json::parse(&line).unwrap();
        let s = doc.get("sketches").unwrap();
        assert_eq!(QSketch::from_json(s.get("rtt_us").unwrap()).unwrap(), rtt);
        assert_eq!(
            QSketch::from_json(s.get("stall_us").unwrap()).unwrap(),
            stall
        );
    }

    #[test]
    fn summary_json_omits_collected_flows() {
        let s = LiveSummary {
            flows: vec![],
            ..Default::default()
        };
        let line = s.to_json().compact();
        assert!(line.contains("\"kind\":\"summary\",\"daemon\":\"local\""));
        assert!(line.contains("\"max_heavy_flows\":0"));
        assert!(!line.contains("\"flows\":["));
    }

    #[test]
    fn summary_csv_row_matches_header_width() {
        let header = LiveSummary::csv_header();
        let row = LiveSummary::default().to_csv_row();
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(header.starts_with("daemon,flows_seen,flows_finalized"));
        assert!(row.starts_with("local,0,"));
    }
}

//! Validated construction of [`LiveConfig`].
//!
//! The `tapo live` CLI and library embedders share this one path: raw
//! values go in through setters, [`LiveConfigBuilder::build`] either
//! returns a coherent [`LiveConfig`] or a [`LiveConfigError`] naming the
//! offending knob — no panics, no half-validated structs, and the
//! cross-field rules (tier thresholds require a promotion threshold) live
//! in exactly one place.

use std::fmt;
use std::hash::Hasher;

use simnet::time::SimDuration;

use super::{LiveConfig, TierConfig};

/// Maximum [`DaemonId`] length in bytes.
pub const MAX_DAEMON_ID: usize = 40;

/// A validated daemon identifier, stamped into every interval and summary
/// record so fleet aggregation can attribute sources without trusting
/// file names.
///
/// Stored inline (fixed capacity, [`MAX_DAEMON_ID`] bytes) so
/// [`LiveConfig`] stays `Copy`. Restricted to `[A-Za-z0-9._:-]` — the
/// id appears verbatim in JSON keys-by-daemon and CSV cells, and the
/// restricted alphabet means it never needs escaping in either.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DaemonId {
    len: u8,
    bytes: [u8; MAX_DAEMON_ID],
}

impl DaemonId {
    /// Validate and store an id: 1..=[`MAX_DAEMON_ID`] bytes of
    /// `[A-Za-z0-9._:-]`.
    pub fn new(s: &str) -> Result<DaemonId, LiveConfigError> {
        let ok_char = |c: char| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':' | '-');
        if s.is_empty() || s.len() > MAX_DAEMON_ID || !s.chars().all(ok_char) {
            return Err(LiveConfigError::BadDaemonId(s.to_string()));
        }
        let mut bytes = [0u8; MAX_DAEMON_ID];
        bytes[..s.len()].copy_from_slice(s.as_bytes());
        Ok(DaemonId {
            len: s.len() as u8,
            bytes,
        })
    }

    /// The default pid-free derivation when the operator gives no id:
    /// `d-` + 16 hex digits of FNV-1a over the capture path. Stable
    /// across runs of the same input, so reports stay reproducible.
    pub fn derived_from_path(path: &str) -> DaemonId {
        let mut h = super::fnv::FnvHasher::default();
        h.write(path.as_bytes());
        DaemonId::new(&format!("d-{:016x}", h.finish())).expect("derived id is valid")
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("validated ASCII")
    }
}

impl Default for DaemonId {
    /// Library embedders that never set an id report as `"local"`.
    fn default() -> Self {
        DaemonId::new("local").expect("default id is valid")
    }
}

impl fmt::Debug for DaemonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DaemonId({:?})", self.as_str())
    }
}

impl fmt::Display for DaemonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rejected [`LiveConfigBuilder`] knob, carrying the offending value.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveConfigError {
    /// `shards` was 0.
    ZeroShards,
    /// `interval_ms` was 0 (reports need a positive cadence).
    ZeroInterval,
    /// `pace` was not a positive finite factor.
    BadPace(f64),
    /// `mss` was 0.
    ZeroMss,
    /// `dupthres` was 0 (a zero threshold would flag every pure ACK).
    ZeroDupthres,
    /// A promotion knob (`promote`) was 0.
    ZeroPromote,
    /// `demote`/`heavy_max` given without enabling promotion.
    TierKnobWithoutPromote(&'static str),
    /// `batch` was 0 or above [`MAX_BATCH`] (carries the bad value).
    BadBatch(usize),
    /// `ring_depth` was 0 or above [`MAX_RING_DEPTH`] (carries the bad
    /// value).
    BadRingDepth(usize),
    /// `cells` was 0 or above [`MAX_CELLS`] (carries the bad value).
    BadCells(usize),
    /// `daemon_id` was empty, longer than [`MAX_DAEMON_ID`] bytes, or
    /// contained a character outside `[A-Za-z0-9._:-]`.
    BadDaemonId(String),
}

/// Upper bound on `--batch`: beyond this the staging arrays stop fitting
/// in cache and interval cuts grow needlessly latent, so treat it as a
/// typo rather than a tuning choice.
pub const MAX_BATCH: usize = 1 << 16;

/// Upper bound on `--ring`: each slot pins a recycled work buffer of up
/// to `batch` entries per shard, so absurd depths are a memory typo.
pub const MAX_RING_DEPTH: usize = 1 << 12;

/// Upper bound on `--cells`: each cell costs O(1) quota/LRU bookkeeping
/// per shard, but a cell count far above any plausible shard count only
/// fragments the cap quotas into zeros.
pub const MAX_CELLS: usize = 1 << 12;

impl fmt::Display for LiveConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveConfigError::ZeroShards => write!(f, "--shards must be at least 1"),
            LiveConfigError::ZeroInterval => write!(f, "--interval must be at least 1 ms"),
            LiveConfigError::BadPace(p) => {
                write!(f, "--pace must be a positive finite factor, got {p}")
            }
            LiveConfigError::ZeroMss => write!(f, "--mss must be at least 1 byte"),
            LiveConfigError::ZeroDupthres => write!(f, "--dupthres must be at least 1"),
            LiveConfigError::ZeroPromote => write!(f, "--promote must be at least 1 dup-ACK"),
            LiveConfigError::TierKnobWithoutPromote(knob) => {
                write!(f, "--{knob} requires --promote (two-tier mode is off)")
            }
            LiveConfigError::BadBatch(n) => {
                write!(f, "--batch must be between 1 and {MAX_BATCH}, got {n}")
            }
            LiveConfigError::BadRingDepth(n) => {
                write!(f, "--ring must be between 1 and {MAX_RING_DEPTH}, got {n}")
            }
            LiveConfigError::BadCells(n) => {
                write!(f, "--cells must be between 1 and {MAX_CELLS}, got {n}")
            }
            LiveConfigError::BadDaemonId(s) => {
                write!(
                    f,
                    "--daemon-id must be 1..={MAX_DAEMON_ID} characters of \
                     [A-Za-z0-9._:-], got {s:?}"
                )
            }
        }
    }
}

impl std::error::Error for LiveConfigError {}

/// Builder for [`LiveConfig`]: setters take raw CLI-shaped values
/// (milliseconds, `0` meaning "off" where documented), [`Self::build`]
/// validates the whole set at once.
#[derive(Debug, Clone)]
pub struct LiveConfigBuilder {
    shards: usize,
    cells: usize,
    interval_ms: u64,
    /// 0 = idle eviction off.
    idle_ms: u64,
    /// 0 = linger off (closed flows wait for idle timeout / EOF).
    linger_ms: u64,
    max_flows: usize,
    per_shard: bool,
    collect: bool,
    pace: Option<f64>,
    mss: u32,
    dupthres: u32,
    /// `Some` enables two-tier monitoring at this dup-ACK threshold.
    promote: Option<u32>,
    demote: Option<u32>,
    heavy_max: Option<usize>,
    batch: usize,
    ring_depth: usize,
    /// `None` keeps [`DaemonId::default`] (`"local"`).
    daemon_id: Option<String>,
    sketch: bool,
}

/// The CLI-facing shard default: one worker per available core, capped
/// at 8 (beyond that the single reader thread is the bottleneck anyway).
/// [`LiveConfig::default`] stays at 1 so library embedders opt into
/// parallelism explicitly.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

impl Default for LiveConfigBuilder {
    fn default() -> Self {
        let d = LiveConfig::default();
        LiveConfigBuilder {
            shards: default_shards(),
            cells: d.cells,
            interval_ms: d.interval.as_micros() / 1_000,
            idle_ms: d.idle_timeout.map_or(0, |t| t.as_micros() / 1_000),
            linger_ms: d.fin_linger.map_or(0, |t| t.as_micros() / 1_000),
            max_flows: d.max_flows,
            per_shard: d.per_shard_occupancy,
            collect: d.collect_flows,
            pace: d.pace,
            mss: d.analyzer.replay.mss,
            dupthres: d.analyzer.replay.dupthres,
            promote: None,
            demote: None,
            heavy_max: None,
            batch: d.batch,
            ring_depth: d.ring_depth,
            daemon_id: None,
            sketch: d.sketch,
        }
    }
}

impl LiveConfigBuilder {
    /// A builder preloaded with [`LiveConfig::default`]'s values.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker shard count (must be ≥ 1; defaults to [`default_shards`]).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Virtual flow-cell count (1..=[`MAX_CELLS`]) — the shard-count-
    /// independent unit of flow ownership and cap splitting.
    pub fn cells(mut self, n: usize) -> Self {
        self.cells = n;
        self
    }

    /// Reporting interval in milliseconds (must be ≥ 1).
    pub fn interval_ms(mut self, ms: u64) -> Self {
        self.interval_ms = ms;
        self
    }

    /// Idle-eviction timeout in milliseconds; 0 disables idle eviction.
    pub fn idle_ms(mut self, ms: u64) -> Self {
        self.idle_ms = ms;
        self
    }

    /// FIN/RST linger in milliseconds; 0 keeps closed flows until idle
    /// timeout or EOF.
    pub fn linger_ms(mut self, ms: u64) -> Self {
        self.linger_ms = ms;
        self
    }

    /// Hard cap on concurrently tracked flows; 0 = unbounded.
    pub fn max_flows(mut self, n: usize) -> Self {
        self.max_flows = n;
        self
    }

    /// Include per-shard occupancy in reports (shard-count-dependent).
    pub fn per_shard_occupancy(mut self, on: bool) -> Self {
        self.per_shard = on;
        self
    }

    /// Keep every finalized analysis in the summary (unbounded memory).
    pub fn collect_flows(mut self, on: bool) -> Self {
        self.collect = on;
        self
    }

    /// Replay pacing factor (must be positive and finite when set).
    pub fn pace(mut self, factor: Option<f64>) -> Self {
        self.pace = factor;
        self
    }

    /// Analyzer MSS assumption in bytes (must be ≥ 1).
    pub fn mss(mut self, bytes: u32) -> Self {
        self.mss = bytes;
        self
    }

    /// Analyzer duplicate-ACK threshold (must be ≥ 1).
    pub fn dupthres(mut self, n: u32) -> Self {
        self.dupthres = n;
        self
    }

    /// Enable two-tier monitoring, promoting a flow to a full analyzer
    /// after `dupacks` duplicate ACKs (the other promotion triggers —
    /// retransmissions, ACK-silence stalls, zero window — scale from
    /// [`TierConfig::default`]). Must be ≥ 1.
    pub fn promote(mut self, dupacks: u32) -> Self {
        self.promote = Some(dupacks);
        self
    }

    /// Demote a heavy flow after this many consecutive calm packets;
    /// 0 = never demote. Requires [`Self::promote`].
    pub fn demote(mut self, streak: u32) -> Self {
        self.demote = Some(streak);
        self
    }

    /// Global cap on concurrently heavy flows; 0 = unbounded. Requires
    /// [`Self::promote`].
    pub fn heavy_max(mut self, n: usize) -> Self {
        self.heavy_max = Some(n);
        self
    }

    /// Ingestion batch size in packets (1..=[`MAX_BATCH`]). Batch size 1
    /// degenerates to per-packet handoff; reports are byte-identical at
    /// any batch size either way.
    pub fn batch(mut self, n: usize) -> Self {
        self.batch = n;
        self
    }

    /// Depth of each driver→shard work ring in batch buffers
    /// (1..=[`MAX_RING_DEPTH`]).
    pub fn ring_depth(mut self, n: usize) -> Self {
        self.ring_depth = n;
        self
    }

    /// Daemon identifier stamped into every interval and summary record
    /// (1..=[`MAX_DAEMON_ID`] characters of `[A-Za-z0-9._:-]`). The CLI
    /// defaults to [`DaemonId::derived_from_path`] over the capture path.
    pub fn daemon_id(mut self, id: impl Into<String>) -> Self {
        self.daemon_id = Some(id.into());
        self
    }

    /// Emit mergeable RTT / stall-duration quantile sketches in interval
    /// and summary reports (default on; `--sketch off` to disable).
    pub fn sketch(mut self, on: bool) -> Self {
        self.sketch = on;
        self
    }

    /// Validate every knob and the cross-field rules; on success the
    /// returned [`LiveConfig`] is coherent by construction.
    pub fn build(self) -> Result<LiveConfig, LiveConfigError> {
        if self.shards == 0 {
            return Err(LiveConfigError::ZeroShards);
        }
        if self.interval_ms == 0 {
            return Err(LiveConfigError::ZeroInterval);
        }
        if let Some(p) = self.pace {
            if !(p.is_finite() && p > 0.0) {
                return Err(LiveConfigError::BadPace(p));
            }
        }
        if self.mss == 0 {
            return Err(LiveConfigError::ZeroMss);
        }
        if self.dupthres == 0 {
            return Err(LiveConfigError::ZeroDupthres);
        }
        if self.batch == 0 || self.batch > MAX_BATCH {
            return Err(LiveConfigError::BadBatch(self.batch));
        }
        if self.ring_depth == 0 || self.ring_depth > MAX_RING_DEPTH {
            return Err(LiveConfigError::BadRingDepth(self.ring_depth));
        }
        if self.cells == 0 || self.cells > MAX_CELLS {
            return Err(LiveConfigError::BadCells(self.cells));
        }
        let tier = match self.promote {
            Some(0) => return Err(LiveConfigError::ZeroPromote),
            Some(dupacks) => {
                let mut t = TierConfig {
                    promote_dupacks: dupacks,
                    ..TierConfig::default()
                };
                if let Some(streak) = self.demote {
                    t.demote_streak = streak;
                }
                if let Some(cap) = self.heavy_max {
                    t.heavy_max = cap;
                }
                Some(t)
            }
            None => {
                if self.demote.is_some() {
                    return Err(LiveConfigError::TierKnobWithoutPromote("demote"));
                }
                if self.heavy_max.is_some() {
                    return Err(LiveConfigError::TierKnobWithoutPromote("heavy-max"));
                }
                None
            }
        };
        let daemon_id = match &self.daemon_id {
            Some(s) => DaemonId::new(s)?,
            None => DaemonId::default(),
        };
        let mut cfg = LiveConfig {
            shards: self.shards,
            daemon_id,
            sketch: self.sketch,
            cells: self.cells,
            interval: SimDuration::from_millis(self.interval_ms),
            idle_timeout: (self.idle_ms > 0).then(|| SimDuration::from_millis(self.idle_ms)),
            fin_linger: (self.linger_ms > 0).then(|| SimDuration::from_millis(self.linger_ms)),
            max_flows: self.max_flows,
            collect_flows: self.collect,
            per_shard_occupancy: self.per_shard,
            pace: self.pace,
            tier,
            batch: self.batch,
            ring_depth: self.ring_depth,
            ..LiveConfig::default()
        };
        cfg.analyzer.replay.mss = self.mss;
        cfg.analyzer.replay.dupthres = self.dupthres;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_to_the_default_config() {
        let built = LiveConfigBuilder::new().build().unwrap();
        let d = LiveConfig::default();
        // The builder (the CLI path) defaults shards to the machine's
        // parallelism; the plain library default stays at 1.
        assert_eq!(built.shards, default_shards());
        assert!((1..=8).contains(&built.shards));
        assert_eq!(d.shards, 1);
        assert_eq!(built.cells, d.cells);
        assert_eq!(built.interval, d.interval);
        assert_eq!(built.idle_timeout, d.idle_timeout);
        assert_eq!(built.fin_linger, d.fin_linger);
        assert_eq!(built.max_flows, d.max_flows);
        assert!(built.tier.is_none());
    }

    #[test]
    fn cells_bounds_are_enforced() {
        assert_eq!(
            LiveConfigBuilder::new().cells(0).build().unwrap_err(),
            LiveConfigError::BadCells(0)
        );
        assert_eq!(
            LiveConfigBuilder::new()
                .cells(MAX_CELLS + 1)
                .build()
                .unwrap_err(),
            LiveConfigError::BadCells(MAX_CELLS + 1)
        );
        let err = LiveConfigBuilder::new().cells(0).build().unwrap_err();
        assert!(err.to_string().contains("--cells"));
        let cfg = LiveConfigBuilder::new().cells(MAX_CELLS).build().unwrap();
        assert_eq!(cfg.cells, MAX_CELLS);
        // Effective cells clamp to the flow cap so every cell can admit.
        let capped = LiveConfigBuilder::new()
            .cells(64)
            .max_flows(6)
            .build()
            .unwrap();
        assert_eq!(capped.effective_cells(), 6);
    }

    #[test]
    fn zero_knobs_are_rejected_with_names() {
        assert_eq!(
            LiveConfigBuilder::new().shards(0).build().unwrap_err(),
            LiveConfigError::ZeroShards
        );
        assert_eq!(
            LiveConfigBuilder::new().interval_ms(0).build().unwrap_err(),
            LiveConfigError::ZeroInterval
        );
        assert_eq!(
            LiveConfigBuilder::new().mss(0).build().unwrap_err(),
            LiveConfigError::ZeroMss
        );
        assert_eq!(
            LiveConfigBuilder::new().dupthres(0).build().unwrap_err(),
            LiveConfigError::ZeroDupthres
        );
        let err = LiveConfigBuilder::new()
            .pace(Some(-1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, LiveConfigError::BadPace(_)));
        assert!(err.to_string().contains("--pace"));
    }

    #[test]
    fn zero_ms_means_disabled_for_idle_and_linger() {
        let cfg = LiveConfigBuilder::new()
            .idle_ms(0)
            .linger_ms(0)
            .build()
            .unwrap();
        assert!(cfg.idle_timeout.is_none());
        assert!(cfg.fin_linger.is_none());
    }

    #[test]
    fn batch_and_ring_bounds_are_enforced() {
        assert_eq!(
            LiveConfigBuilder::new().batch(0).build().unwrap_err(),
            LiveConfigError::BadBatch(0)
        );
        assert_eq!(
            LiveConfigBuilder::new()
                .batch(MAX_BATCH + 1)
                .build()
                .unwrap_err(),
            LiveConfigError::BadBatch(MAX_BATCH + 1)
        );
        assert_eq!(
            LiveConfigBuilder::new().ring_depth(0).build().unwrap_err(),
            LiveConfigError::BadRingDepth(0)
        );
        assert_eq!(
            LiveConfigBuilder::new()
                .ring_depth(MAX_RING_DEPTH + 1)
                .build()
                .unwrap_err(),
            LiveConfigError::BadRingDepth(MAX_RING_DEPTH + 1)
        );
        // Zero shards is caught before the batch knobs, even when both
        // are bad — the shard error names the first offending flag.
        assert_eq!(
            LiveConfigBuilder::new()
                .shards(0)
                .batch(0)
                .build()
                .unwrap_err(),
            LiveConfigError::ZeroShards
        );
        let cfg = LiveConfigBuilder::new()
            .batch(1)
            .ring_depth(MAX_RING_DEPTH)
            .build()
            .unwrap();
        assert_eq!(cfg.batch, 1);
        assert_eq!(cfg.ring_depth, MAX_RING_DEPTH);
        let d = LiveConfigBuilder::new().build().unwrap();
        assert_eq!(d.batch, crate::live::DEFAULT_BATCH);
        assert_eq!(d.ring_depth, crate::live::DEFAULT_RING_DEPTH);
    }

    #[test]
    fn tier_knobs_require_promote() {
        assert_eq!(
            LiveConfigBuilder::new().demote(64).build().unwrap_err(),
            LiveConfigError::TierKnobWithoutPromote("demote")
        );
        assert_eq!(
            LiveConfigBuilder::new().heavy_max(100).build().unwrap_err(),
            LiveConfigError::TierKnobWithoutPromote("heavy-max")
        );
        assert_eq!(
            LiveConfigBuilder::new().promote(0).build().unwrap_err(),
            LiveConfigError::ZeroPromote
        );
        let cfg = LiveConfigBuilder::new()
            .promote(3)
            .demote(64)
            .heavy_max(1000)
            .build()
            .unwrap();
        let tier = cfg.tier.unwrap();
        assert_eq!(tier.promote_dupacks, 3);
        assert_eq!(tier.demote_streak, 64);
        assert_eq!(tier.heavy_max, 1000);
    }

    #[test]
    fn daemon_id_is_validated_and_defaulted() {
        let d = LiveConfigBuilder::new().build().unwrap();
        assert_eq!(d.daemon_id.as_str(), "local");
        assert!(d.sketch, "sketches default on");

        let cfg = LiveConfigBuilder::new()
            .daemon_id("fe1.pop-a:8080")
            .sketch(false)
            .build()
            .unwrap();
        assert_eq!(cfg.daemon_id.as_str(), "fe1.pop-a:8080");
        assert!(!cfg.sketch);

        for bad in ["", "has space", "comma,", "q\"uote", &"x".repeat(41)] {
            let err = LiveConfigBuilder::new().daemon_id(bad).build().unwrap_err();
            assert_eq!(err, LiveConfigError::BadDaemonId(bad.to_string()));
            assert!(err.to_string().contains("--daemon-id"));
        }
        let max = "x".repeat(MAX_DAEMON_ID);
        assert_eq!(
            LiveConfigBuilder::new()
                .daemon_id(max.clone())
                .build()
                .unwrap()
                .daemon_id
                .as_str(),
            max
        );
    }

    #[test]
    fn derived_daemon_id_is_stable_and_path_sensitive() {
        let a = DaemonId::derived_from_path("captures/fe1.pcap");
        let b = DaemonId::derived_from_path("captures/fe1.pcap");
        let c = DaemonId::derived_from_path("captures/fe2.pcap");
        assert_eq!(a, b, "same path must derive the same id");
        assert_ne!(a, c, "different paths must derive different ids");
        assert!(a.as_str().starts_with("d-"));
        assert_eq!(a.as_str().len(), 18);
        assert!(DaemonId::new(a.as_str()).is_ok(), "derived ids validate");
    }
}

//! Per-flow summaries in the spirit of tcptrace/tstat — the tools the
//! paper positions TAPO against. Where those report transfer statistics,
//! TAPO adds the stall diagnosis; this module provides both in one row per
//! flow, for the CLI's `--flows` view and for programmatic triage (e.g.
//! "worst ten flows by stalled time").

use simnet::time::SimDuration;

use crate::causes::StallCause;
use crate::FlowAnalysis;

/// One flow's summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Index of the flow in the analyzed set.
    pub index: usize,
    /// Response bytes served.
    pub bytes: u64,
    /// Flow lifetime.
    pub duration: SimDuration,
    /// Mean RTT, if sampled.
    pub mean_rtt: Option<SimDuration>,
    /// Retransmitted data packets.
    pub retrans_pkts: u64,
    /// Retransmission ratio over all data packets.
    pub retrans_ratio: f64,
    /// Number of stalls.
    pub stalls: usize,
    /// Total stalled time.
    pub stalled: SimDuration,
    /// Stalled share of the lifetime.
    pub stall_ratio: f64,
    /// The single most expensive stall's cause, if any.
    pub worst_cause: Option<StallCause>,
    /// The single most expensive stall's duration.
    pub worst_stall: SimDuration,
    /// Initial receive window from the handshake.
    pub init_rwnd: Option<u64>,
}

impl FlowSummary {
    /// Summarize one analysis.
    pub fn from_analysis(index: usize, a: &FlowAnalysis) -> Self {
        let worst = a.stalls.iter().max_by_key(|s| s.duration);
        FlowSummary {
            index,
            bytes: a.metrics.goodput_bytes,
            duration: a.metrics.duration,
            mean_rtt: a.metrics.mean_rtt,
            retrans_pkts: a.metrics.retrans_pkts,
            retrans_ratio: if a.metrics.data_pkts_out == 0 {
                0.0
            } else {
                a.metrics.retrans_pkts as f64 / a.metrics.data_pkts_out as f64
            },
            stalls: a.stalls.len(),
            stalled: a.metrics.stalled_time,
            stall_ratio: a.stall_ratio(),
            worst_cause: worst.map(|s| s.cause),
            worst_stall: worst.map(|s| s.duration).unwrap_or(SimDuration::ZERO),
            init_rwnd: a.init_rwnd,
        }
    }

    /// One fixed-width text row (pair with [`FlowSummary::header`]).
    pub fn row(&self) -> String {
        format!(
            "{:>5}  {:>9}  {:>8.2}s  {:>7}  {:>6.1}%  {:>4}  {:>8.2}s  {:>5.0}%  {:<24}",
            self.index,
            self.bytes,
            self.duration.as_secs_f64(),
            self.mean_rtt
                .map(|d| format!("{:.0}ms", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "–".into()),
            self.retrans_ratio * 100.0,
            self.stalls,
            self.stalled.as_secs_f64(),
            self.stall_ratio * 100.0,
            self.worst_cause
                .map(|c| match c {
                    StallCause::Retransmission(rc) => format!("retrans: {}", rc.label()),
                    other => other.label().to_string(),
                })
                .unwrap_or_else(|| "–".into()),
        )
    }

    /// The header matching [`FlowSummary::row`].
    pub fn header() -> String {
        format!(
            "{:>5}  {:>9}  {:>9}  {:>7}  {:>7}  {:>4}  {:>9}  {:>6}  {:<24}",
            "flow", "bytes", "duration", "rtt", "retr%", "#st", "stalled", "st%", "worst stall"
        )
    }
}

/// Summarize a whole set and rank by stalled time, worst first.
pub fn rank_by_stalled(analyses: &[FlowAnalysis]) -> Vec<FlowSummary> {
    let mut rows: Vec<FlowSummary> = analyses
        .iter()
        .enumerate()
        .map(|(i, a)| FlowSummary::from_analysis(i, a))
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.stalled));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_flow, AnalyzerConfig};
    use simnet::time::SimTime;
    use tcp_trace::flow::FlowTrace;
    use tcp_trace::record::{Direction, TraceRecord};

    fn analysis_with_stall(backend_ms: u64) -> FlowAnalysis {
        let mut trace = FlowTrace::default();
        trace.push(TraceRecord::data(
            SimTime::from_millis(0),
            Direction::In,
            0,
            300,
            0,
            65535,
        ));
        trace.push(TraceRecord::data(
            SimTime::from_millis(backend_ms),
            Direction::Out,
            0,
            1448,
            300,
            65535,
        ));
        trace.push(TraceRecord::pure_ack(
            SimTime::from_millis(backend_ms + 100),
            Direction::In,
            1448,
            65535,
        ));
        analyze_flow(&trace, AnalyzerConfig::default())
    }

    #[test]
    fn summary_captures_worst_stall() {
        let a = analysis_with_stall(2500);
        let s = FlowSummary::from_analysis(3, &a);
        assert_eq!(s.index, 3);
        assert_eq!(s.stalls, 1);
        assert_eq!(s.worst_cause, Some(StallCause::DataUnavailable));
        assert_eq!(s.worst_stall, SimDuration::from_millis(2500));
        assert!(s.stall_ratio > 0.9);
    }

    #[test]
    fn ranking_is_by_stalled_time_desc() {
        let analyses = vec![
            analysis_with_stall(1200),
            analysis_with_stall(4000),
            analysis_with_stall(2000),
        ];
        let ranked = rank_by_stalled(&analyses);
        assert_eq!(ranked[0].index, 1);
        assert_eq!(ranked[1].index, 2);
        assert_eq!(ranked[2].index, 0);
    }

    #[test]
    fn rows_align_with_header() {
        let a = analysis_with_stall(1500);
        let s = FlowSummary::from_analysis(0, &a);
        // Loose sanity: both render and are non-empty; widths are visual.
        assert!(!FlowSummary::header().is_empty());
        assert!(s.row().contains("data una."));
    }
}

//! `tapo advise` — the counterfactual mitigation advisor that closes the
//! paper's diagnosis→mitigation loop.
//!
//! The live pipeline (`tapo live`) *diagnoses*: its interval reports carry a
//! per-server-port slice of flow and stall totals. The paper's answer to a
//! stalling service is a *mitigation* — deploy TLP, S-RTO or T-RACKs at the
//! server — but Tables 8 & 9 answer "which mechanism helps" only for the
//! paper's three studied services in aggregate. This module answers it for
//! *your* capture: it reads the interval reports back, attributes observed
//! stall time to services by server port ([`Service::from_server_port`]),
//! and for each service that actually stalled runs a **counterfactual
//! replay** — the calibrated service population simulated under all four
//! recovery mechanisms on identical per-flow seeds — to estimate how much
//! of that stall time each mechanism would have removed.
//!
//! The replay is a paired experiment with seeded replicates: replicate `r`
//! draws its own flow population (master seed derived from `(seed, r)`),
//! every mechanism sees the same flows on the same seeds within a
//! replicate, and the per-replicate stall-time reductions give a mean and a
//! normal-approximation 95% confidence interval. Everything folds in index
//! order from [`simnet::par::par_map_with`], so the emitted recommendations
//! are byte-identical at any `--threads`.

use std::io::BufRead;

use simnet::par;
use simnet::rng::splitmix64;
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::sim::FlowScratch;
use workloads::{sample_flow, simulate_flow_into_scratch, Service, ServiceModel};

use crate::json::Json;
use crate::report::parse::{parse_reports, ParseError};
use crate::sink::{csv_escape, Record};
use crate::stream::StreamAnalyzer;
use crate::AnalyzerConfig;

/// The recovery mechanisms a service is replayed under, in report order.
/// Index 0 (native Linux) is the baseline the others are paired against;
/// S-RTO uses the service's deployment parameters (Table 8's `T1`).
fn mechanisms(service: Service) -> [RecoveryMechanism; 4] {
    [
        RecoveryMechanism::Native,
        RecoveryMechanism::tlp(),
        RecoveryMechanism::Srto(service.srto_config()),
        RecoveryMechanism::tracks(),
    ]
}

/// Master seed for replicate `r`: a fresh stream per replicate so the
/// replicate means are independent draws, while staying a pure function of
/// `(seed, r)` — the same determinism discipline as
/// [`workloads::flow_seed`].
fn replicate_seed(seed: u64, replicate: usize) -> u64 {
    splitmix64(splitmix64(seed ^ 0xadb1_5e00) ^ replicate as u64)
}

/// What one service's port slice accumulated across the parsed reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceObserved {
    /// Flows finalized on this service's port.
    pub flows: u64,
    /// Stalls detected on this service's port.
    pub stalls: u64,
    /// Total stalled time on this service's port, microseconds.
    pub stalled_us: u64,
}

/// The advisor's view of a `tapo live` run: per-service rollups of the
/// `by_port` sections plus bookkeeping about what was (not) parsed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observations {
    /// Per-service totals, indexed like [`Service::ALL`].
    pub per_service: [ServiceObserved; 3],
    /// Flows observed on ports that map to no known service.
    pub unmapped_flows: u64,
    /// Interval reports aggregated.
    pub intervals: u64,
    /// Well-formed lines skipped (summaries — already rollups of the
    /// intervals — and objects of unknown kind).
    pub skipped: u64,
}

/// A malformed input line — the shared report-parse error, re-exported
/// under the advisor's historical name.
pub type AdviseError = ParseError;

/// Fold one parsed interval's `by_port` slice into the per-service rollup.
pub(crate) fn attribute_ports(
    obs: &mut Observations,
    by_port: &[(u16, crate::report::parse::PortCounts)],
) {
    for (port, p) in by_port {
        match Service::from_server_port(*port) {
            Some(service) => {
                let slot = Service::ALL.iter().position(|s| *s == service).unwrap();
                let s = &mut obs.per_service[slot];
                s.flows += p.flows;
                s.stalls += p.stalls;
                s.stalled_us += p.stalled_us;
            }
            None => obs.unmapped_flows += p.flows,
        }
    }
}

/// Parse a `tapo live` JSON-lines report stream and roll its `by_port`
/// sections up per service.
///
/// Only `"kind":"interval"` objects are aggregated: the end-of-run summary
/// is itself a merge of the interval deltas, so counting it too would
/// double every total. Blank lines are ignored; anything that is not a
/// JSON object is an error (this is how feeding the CSV rendering, or a
/// pcap, fails fast). The schema and skip rule live in
/// [`crate::report::parse`], shared bytewise with `tapo fleet`.
pub fn parse_observations<R: BufRead>(input: R) -> Result<Observations, AdviseError> {
    let (intervals, skipped) = parse_reports(input)?;
    let mut obs = Observations {
        intervals: intervals.len() as u64,
        skipped,
        ..Observations::default()
    };
    for rec in &intervals {
        attribute_ports(&mut obs, &rec.by_port);
    }
    Ok(obs)
}

/// Advisor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdviseConfig {
    /// Flows simulated per replicate per service.
    pub flows: usize,
    /// Seeded replicates per service (each draws its own population).
    pub replicates: usize,
    /// Master seed the replicate seeds derive from.
    pub seed: u64,
    /// Worker threads for the replay; 0 = all available. Output is
    /// byte-identical at any value.
    pub threads: usize,
    /// A service is only replayed if it observed at least this much
    /// stalled time (microseconds).
    pub min_stalled_us: u64,
}

impl Default for AdviseConfig {
    fn default() -> Self {
        AdviseConfig {
            flows: 30,
            replicates: 5,
            seed: 1,
            threads: 0,
            min_stalled_us: 1,
        }
    }
}

/// One mechanism's estimated effect on a service, from the paired replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MechanismEffect {
    /// Mean over replicates of `1 - mechanism_stall / native_stall`.
    pub mean_reduction: f64,
    /// 95% confidence half-width over the replicate means (normal
    /// approximation; 0 with fewer than two usable replicates).
    pub ci95: f64,
}

/// The advisor's verdict for one service: what was observed, what the
/// counterfactual replay measured, and which mechanism to deploy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAdvice {
    /// The service advised on.
    pub service: Service,
    /// Its observed per-port totals from the report stream.
    pub observed: ServiceObserved,
    /// Replicates simulated.
    pub replicates: usize,
    /// Flows per replicate.
    pub flows: usize,
    /// Total simulated stall time under native recovery, microseconds
    /// (all replicates).
    pub native_stall_us: u64,
    /// Paired effects for TLP, S-RTO and T-RACKs (in that order).
    pub effects: [MechanismEffect; 3],
    /// Label of the recommended mechanism ("Linux" when nothing beats the
    /// native baseline).
    pub recommendation: &'static str,
    /// The recommended mechanism's mean stall-time reduction (0 when the
    /// recommendation is to keep native recovery).
    pub expected_reduction: f64,
}

/// Non-baseline mechanism labels, aligned with [`ServiceAdvice::effects`].
const EFFECT_LABELS: [&str; 3] = ["TLP", "S-RTO", "T-RACKs"];

impl ServiceAdvice {
    /// The fixed CSV header matching [`Record::csv`] for this type.
    pub fn csv_header() -> String {
        "service,observed_flows,observed_stalls,observed_stalled_us,\
         replicates,flows_per_replicate,native_stall_us,\
         tlp_reduction,tlp_ci95,srto_reduction,srto_ci95,\
         tracks_reduction,tracks_ci95,recommendation,expected_reduction"
            .into()
    }
}

impl Record for ServiceAdvice {
    fn header(&self) -> String {
        ServiceAdvice::csv_header()
    }

    fn csv(&self) -> String {
        let mut row = format!(
            "{},{},{},{},{},{},{}",
            csv_escape(self.service.label()),
            self.observed.flows,
            self.observed.stalls,
            self.observed.stalled_us,
            self.replicates,
            self.flows,
            self.native_stall_us,
        );
        for e in &self.effects {
            row.push_str(&format!(",{:.4},{:.4}", e.mean_reduction, e.ci95));
        }
        row.push_str(&format!(
            ",{},{:.4}",
            csv_escape(self.recommendation),
            self.expected_reduction
        ));
        row
    }

    fn json(&self) -> Json {
        let effects = Json::Obj(
            EFFECT_LABELS
                .iter()
                .zip(&self.effects)
                .map(|(label, e)| {
                    (
                        label.to_string(),
                        Json::obj([
                            ("reduction", Json::from(round4(e.mean_reduction))),
                            ("ci95", Json::from(round4(e.ci95))),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("kind", Json::from("advice")),
            ("service", Json::from(self.service.label())),
            (
                "observed",
                Json::obj([
                    ("flows", Json::from(self.observed.flows)),
                    ("stalls", Json::from(self.observed.stalls)),
                    ("stalled_us", Json::from(self.observed.stalled_us)),
                ]),
            ),
            ("replicates", Json::from(self.replicates as u64)),
            ("flows_per_replicate", Json::from(self.flows as u64)),
            ("native_stall_us", Json::from(self.native_stall_us)),
            ("mechanisms", effects),
            ("recommendation", Json::from(self.recommendation)),
            (
                "expected_reduction",
                Json::from(round4(self.expected_reduction)),
            ),
        ])
    }
}

/// Round for report emission: four decimals is well inside the replicate
/// noise floor and keeps the JSON stable to read.
fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

/// Run the counterfactual replay for every service that observed stall
/// time, in [`Service::ALL`] order. Deterministic in `(obs, cfg.flows,
/// cfg.replicates, cfg.seed)`; `cfg.threads` cannot change the result.
pub fn advise(obs: &Observations, cfg: &AdviseConfig) -> Vec<ServiceAdvice> {
    let selected: Vec<(Service, ServiceObserved)> = Service::ALL
        .iter()
        .zip(&obs.per_service)
        .filter(|(_, o)| o.stalls > 0 && o.stalled_us >= cfg.min_stalled_us)
        .map(|(s, o)| (*s, *o))
        .collect();
    if selected.is_empty() || cfg.flows == 0 || cfg.replicates == 0 {
        return Vec::new();
    }
    let models: Vec<ServiceModel> = selected
        .iter()
        .map(|(s, _)| ServiceModel::calibrated(*s))
        .collect();
    let acfg = AnalyzerConfig::default();
    let per_service = cfg.replicates * cfg.flows;
    let threads = if cfg.threads == 0 {
        par::available_threads()
    } else {
        cfg.threads
    };
    // One work item per (service, replicate, flow): all four mechanisms run
    // back-to-back on the same sampled flow and seed, so the comparison is
    // paired at the finest grain and an item's cost covers a full quartet.
    let per_flow: Vec<[u64; 4]> = par::par_map_with(
        selected.len() * per_service,
        threads,
        || (FlowScratch::new(), StreamAnalyzer::new(acfg)),
        |idx, (sim, slot)| {
            let svc_i = idx / per_service;
            let rep = (idx % per_service) / cfg.flows;
            let flow_i = idx % cfg.flows;
            let (service, _) = selected[svc_i];
            let rep_seed = replicate_seed(cfg.seed, rep);
            let (spec, path) = sample_flow(&models[svc_i], rep_seed, flow_i);
            let fseed = rep_seed.wrapping_add(flow_i as u64);
            let mut stall_us = [0u64; 4];
            for (m, mech) in mechanisms(service).into_iter().enumerate() {
                let analyzer = std::mem::replace(slot, StreamAnalyzer::new(acfg));
                let (_out, mut analyzer) =
                    simulate_flow_into_scratch(&spec, &path, mech, fseed, analyzer, sim);
                let analysis = analyzer.finish_reset();
                *slot = analyzer;
                stall_us[m] = analysis.stalls.iter().map(|s| s.duration.as_micros()).sum();
            }
            stall_us
        },
    );
    // Serial fold in index order: replicate totals, then replicate-mean
    // reductions per mechanism. Identical at any thread count.
    selected
        .iter()
        .enumerate()
        .map(|(svc_i, (service, observed))| {
            let mut rep_totals = vec![[0u64; 4]; cfg.replicates];
            for rep in 0..cfg.replicates {
                for flow_i in 0..cfg.flows {
                    let item = &per_flow[svc_i * per_service + rep * cfg.flows + flow_i];
                    for (m, us) in item.iter().enumerate() {
                        rep_totals[rep][m] += us;
                    }
                }
            }
            let native_stall_us = rep_totals.iter().map(|t| t[0]).sum();
            let mut effects = [MechanismEffect::default(); 3];
            for (m, effect) in effects.iter_mut().enumerate() {
                // Replicates whose native run never stalled carry no
                // pairing signal; they are dropped from the mean.
                let reductions: Vec<f64> = rep_totals
                    .iter()
                    .filter(|t| t[0] > 0)
                    .map(|t| 1.0 - t[m + 1] as f64 / t[0] as f64)
                    .collect();
                *effect = summarize(&reductions);
            }
            let best = effects
                .iter()
                .enumerate()
                .filter(|(_, e)| e.mean_reduction > 0.0)
                .max_by(|(_, a), (_, b)| {
                    a.mean_reduction
                        .partial_cmp(&b.mean_reduction)
                        .expect("reductions are finite")
                })
                .map(|(m, e)| (EFFECT_LABELS[m], e.mean_reduction));
            let (recommendation, expected_reduction) =
                best.unwrap_or((RecoveryMechanism::Native.label(), 0.0));
            ServiceAdvice {
                service: *service,
                observed: *observed,
                replicates: cfg.replicates,
                flows: cfg.flows,
                native_stall_us,
                effects,
                recommendation,
                expected_reduction,
            }
        })
        .collect()
}

/// Mean and normal-approximation 95% half-width of replicate reductions.
fn summarize(xs: &[f64]) -> MechanismEffect {
    if xs.is_empty() {
        return MechanismEffect::default();
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let ci95 = if xs.len() < 2 {
        0.0
    } else {
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        1.96 * (var / n).sqrt()
    };
    MechanismEffect {
        mean_reduction: mean,
        ci95,
    }
}

/// [`parse_observations`] + [`advise`] in one call — the library form of
/// the `tapo advise` subcommand.
pub fn advise_from_reports<R: BufRead>(
    input: R,
    cfg: &AdviseConfig,
) -> Result<(Observations, Vec<ServiceAdvice>), AdviseError> {
    let obs = parse_observations(input)?;
    let advices = advise(&obs, cfg);
    Ok((obs, advices))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval_line(port: u16, flows: u64, stalls: u64, stalled_us: u64) -> String {
        format!(
            "{{\"kind\":\"interval\",\"by_port\":{{\"{port}\":\
             {{\"flows\":{flows},\"stalls\":{stalls},\"stalled_us\":{stalled_us}}}}}}}"
        )
    }

    #[test]
    fn observations_fold_intervals_and_skip_summaries() {
        let mut input = String::new();
        input.push_str(&interval_line(80, 10, 2, 5_000));
        input.push('\n');
        input.push_str(&interval_line(80, 5, 1, 2_500));
        input.push('\n');
        input.push_str(&interval_line(9999, 7, 3, 1_000));
        input.push('\n');
        // A summary is a rollup of the intervals: it must not double-count.
        input.push_str("{\"kind\":\"summary\",\"by_port\":{\"80\":{\"flows\":15,\"stalls\":3,\"stalled_us\":7500}}}\n");
        input.push('\n'); // blank lines are fine
        let obs = parse_observations(input.as_bytes()).unwrap();
        assert_eq!(obs.intervals, 3);
        assert_eq!(obs.skipped, 1);
        assert_eq!(obs.unmapped_flows, 7);
        let web = Service::ALL
            .iter()
            .position(|s| *s == Service::WebSearch)
            .unwrap();
        assert_eq!(
            obs.per_service[web],
            ServiceObserved {
                flows: 15,
                stalls: 3,
                stalled_us: 7_500
            }
        );
    }

    #[test]
    fn observations_reject_garbage() {
        assert!(parse_observations("not json\n".as_bytes()).is_err());
        assert!(parse_observations("[1,2,3]\n".as_bytes()).is_err());
        let bad_port = "{\"kind\":\"interval\",\"by_port\":{\"sixty\":{\"flows\":1,\"stalls\":0,\"stalled_us\":0}}}\n";
        assert!(parse_observations(bad_port.as_bytes()).is_err());
        let bad_field = "{\"kind\":\"interval\",\"by_port\":{\"80\":{\"flows\":\"x\"}}}\n";
        let err = parse_observations(bad_field.as_bytes()).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn only_stalled_services_are_replayed() {
        let mut obs = Observations::default();
        // Web search saw flows but no stalls; nothing selected.
        obs.per_service[2] = ServiceObserved {
            flows: 100,
            stalls: 0,
            stalled_us: 0,
        };
        let cfg = AdviseConfig {
            flows: 2,
            replicates: 1,
            ..AdviseConfig::default()
        };
        assert!(advise(&obs, &cfg).is_empty());
    }

    #[test]
    fn advice_is_deterministic_across_thread_counts() {
        let mut obs = Observations::default();
        obs.per_service[2] = ServiceObserved {
            flows: 20,
            stalls: 4,
            stalled_us: 900_000,
        };
        let cfg = |threads| AdviseConfig {
            flows: 6,
            replicates: 2,
            seed: 11,
            threads,
            min_stalled_us: 1,
        };
        let serial = advise(&obs, &cfg(1));
        assert_eq!(serial.len(), 1);
        assert_eq!(serial[0].service, Service::WebSearch);
        assert!(serial[0].native_stall_us > 0, "grid should stall");
        for threads in [2, 4] {
            let parallel = advise(&obs, &cfg(threads));
            assert_eq!(serial, parallel, "threads={threads}");
            // Byte-level: the emitted record must match too.
            assert_eq!(serial[0].csv(), parallel[0].csv());
            assert_eq!(serial[0].json().compact(), parallel[0].json().compact());
        }
    }

    #[test]
    fn record_shapes_are_fixed() {
        let advice = ServiceAdvice {
            service: Service::WebSearch,
            observed: ServiceObserved {
                flows: 3,
                stalls: 2,
                stalled_us: 1_000,
            },
            replicates: 2,
            flows: 4,
            native_stall_us: 50_000,
            effects: [
                MechanismEffect {
                    mean_reduction: 0.1,
                    ci95: 0.05,
                },
                MechanismEffect::default(),
                MechanismEffect {
                    mean_reduction: 0.25,
                    ci95: 0.1,
                },
            ],
            recommendation: "T-RACKs",
            expected_reduction: 0.25,
        };
        let header = advice.header();
        assert_eq!(header.split(',').count(), advice.csv().split(',').count());
        let line = advice.json().compact();
        assert!(line.contains("\"kind\":\"advice\""));
        assert!(line.contains("\"recommendation\":\"T-RACKs\""));
        assert!(line.contains("\"T-RACKs\":{\"reduction\":0.25,\"ci95\":0.1}"));
    }

    #[test]
    fn summarize_handles_degenerate_inputs() {
        assert_eq!(summarize(&[]), MechanismEffect::default());
        let one = summarize(&[0.3]);
        assert_eq!(one.mean_reduction, 0.3);
        assert_eq!(one.ci95, 0.0);
        let two = summarize(&[0.2, 0.4]);
        assert!((two.mean_reduction - 0.3).abs() < 1e-12);
        assert!(two.ci95 > 0.0);
    }
}

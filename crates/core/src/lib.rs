//! # tapo — TCP stall diagnosis from server-side packet traces
//!
//! The primary contribution of *"Demystifying and Mitigating TCP Stalls at
//! the Server Side"* (Zhou et al., CoNEXT 2015): given a packet-level trace
//! captured at a server, TAPO
//!
//! 1. **reconstructs** the sender's TCP state by mimicking the stack
//!    against the observed packets ([`replay`] — every parameter of the
//!    paper's Table 2),
//! 2. **detects stalls** — inter-packet gaps exceeding
//!    `min(2·SRTT, RTO)` ([`classify`]),
//! 3. **classifies** each stall's root cause with the Fig. 5 decision tree,
//!    breaking timeout-retransmission stalls down by the Table 5 rules
//!    ([`causes`]), and
//! 4. **aggregates** across flows into the paper's tables and figures
//!    ([`report`]).
//!
//! ```
//! use tapo::{analyze_flow, AnalyzerConfig};
//! use tcp_trace::{FlowTrace, TraceRecord, Direction};
//! use simnet::time::SimTime;
//!
//! let mut trace = FlowTrace::default();
//! trace.push(TraceRecord::data(SimTime::from_millis(0), Direction::In, 0, 300, 0, 65535));
//! trace.push(TraceRecord::data(SimTime::from_millis(1500), Direction::Out, 0, 1448, 300, 65535));
//! trace.push(TraceRecord::pure_ack(SimTime::from_millis(1600), Direction::In, 1448, 65535));
//! let analysis = analyze_flow(&trace, AnalyzerConfig::default());
//! assert_eq!(analysis.stalls.len(), 1); // a data-unavailable stall
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advise;
pub mod causes;
pub mod classify;
pub mod fleet;
pub mod json;
pub mod live;
pub mod replay;
pub mod report;
pub mod sink;
pub mod stream;
pub mod summary;
pub mod validate;

pub use advise::{
    advise, advise_from_reports, parse_observations, AdviseConfig, AdviseError, MechanismEffect,
    Observations, ServiceAdvice, ServiceObserved,
};
pub use causes::{RetransCause, RetransClass, StallCategory, StallCause, StallClass};
pub use classify::{ClassifyConfig, Stall};
pub use fleet::{
    aggregate, read_report_files, read_reports, DriftConfig, FleetAlert, FleetConfig, FleetError,
    FleetInterval, FleetOutcome, FleetSummary, QSketch,
};
pub use live::{
    FlowMonitor, IntervalReport, LiveConfig, LiveConfigBuilder, LiveConfigError, LiveSummary,
    MonitorSeed, TierConfig,
};
pub use replay::{EstCaState, Replay, ReplayConfig, RetransKind, Snapshot};
pub use report::{CauseStats, Cdf, Share, StallBreakdown};
pub use sink::{csv_escape, csv_fields, CsvSink, JsonLinesSink, Record, ReportSink};
pub use stream::StreamAnalyzer;
pub use summary::FlowSummary;
pub use validate::{Confusion, ValidationReport};

use simnet::time::SimDuration;
use tcp_trace::flow::FlowTrace;

/// Analyzer configuration: replay assumptions plus classifier thresholds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnalyzerConfig {
    /// Trace-replay parameters (MSS, dupthres, RTO bounds).
    pub replay: ReplayConfig,
    /// Decision-tree thresholds.
    pub classify: ClassifyConfig,
}

/// Flow-level metrics feeding Table 1 and Figures 1 & 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowMetrics {
    /// Trace span (first to last packet).
    pub duration: SimDuration,
    /// Sum of detected stall durations.
    pub stalled_time: SimDuration,
    /// Unique response bytes (highest outbound offset).
    pub goodput_bytes: u64,
    /// Outbound payload bytes on the wire (including retransmissions).
    pub wire_bytes_out: u64,
    /// Outbound data packets (including retransmissions).
    pub data_pkts_out: u64,
    /// Retransmitted outbound data packets.
    pub retrans_pkts: u64,
    /// Mean of the flow's RTT samples.
    pub mean_rtt: Option<SimDuration>,
    /// Mean RTO across the flow's timeout retransmissions.
    pub mean_rto: Option<SimDuration>,
    /// Goodput in bytes/second over the trace span.
    pub avg_speed_bps: f64,
}

/// The result of analyzing one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowAnalysis {
    /// Detected and classified stalls, in time order.
    pub stalls: Vec<Stall>,
    /// Flow-level metrics.
    pub metrics: FlowMetrics,
    /// Raw RTT samples (never-retransmitted segments).
    pub rtt_samples: Vec<SimDuration>,
    /// RTO estimates recorded at each timeout retransmission.
    pub rto_samples: Vec<SimDuration>,
    /// `in_flight` recorded on each inbound ACK (Fig. 11).
    pub in_flight_on_ack: Vec<u32>,
    /// Initial receive window from the client's SYN.
    pub init_rwnd: Option<u64>,
    /// Whether any inbound ACK advertised a zero window.
    pub zero_rwnd_seen: bool,
    /// Records rejected because their timestamp ran *backwards* relative
    /// to the previous record. A capture is expected to be time-ordered;
    /// regressed records are skipped (they would otherwise snapshot bogus
    /// stall candidates) and counted here so callers can flag the capture.
    pub time_regressions: u64,
}

impl FlowAnalysis {
    /// Ratio of stalled time to the flow's transmission time (Fig. 3).
    pub fn stall_ratio(&self) -> f64 {
        let d = self.metrics.duration.as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            (self.metrics.stalled_time.as_secs_f64() / d).min(1.0)
        }
    }

    /// Assemble the analysis from classified stalls and a finished replay —
    /// the single finalization path shared by the offline [`analyze_flow`]
    /// and the streaming [`StreamAnalyzer::finish`], so offline and
    /// streaming metrics cannot drift.
    pub(crate) fn finalize(
        stalls: Vec<Stall>,
        duration: SimDuration,
        wire_bytes_out: u64,
        data_pkts_out: u64,
        time_regressions: u64,
        replay: &mut Replay,
    ) -> FlowAnalysis {
        let stalled_time = stalls
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration);
        let goodput = replay.snd_nxt();
        let mean = |v: &[SimDuration]| {
            if v.is_empty() {
                None
            } else {
                Some(SimDuration::from_micros(
                    v.iter().map(|d| d.as_micros()).sum::<u64>() / v.len() as u64,
                ))
            }
        };
        let metrics = FlowMetrics {
            duration,
            stalled_time,
            goodput_bytes: goodput,
            wire_bytes_out,
            data_pkts_out,
            retrans_pkts: replay.retrans_events.len() as u64,
            mean_rtt: mean(&replay.rtt_samples),
            mean_rto: mean(&replay.rto_samples),
            avg_speed_bps: if duration.is_zero() {
                0.0
            } else {
                goodput as f64 / duration.as_secs_f64()
            },
        };
        FlowAnalysis {
            stalls,
            metrics,
            rtt_samples: std::mem::take(&mut replay.rtt_samples),
            rto_samples: std::mem::take(&mut replay.rto_samples),
            in_flight_on_ack: std::mem::take(&mut replay.in_flight_on_ack),
            init_rwnd: replay.init_rwnd,
            zero_rwnd_seen: replay.zero_rwnd_seen,
            time_regressions,
        }
    }
}

/// Recyclable offline-analysis arenas: the replay state and stall-candidate
/// buffer [`analyze_flow_with`] rewinds and reuses across flows, so a
/// worker analyzing a corpus stops paying a fresh allocation round per
/// trace.
#[derive(Debug)]
pub struct AnalyzeScratch {
    replay: Replay,
    candidates: Vec<classify::Candidate>,
}

impl Default for AnalyzeScratch {
    fn default() -> Self {
        AnalyzeScratch {
            replay: Replay::new(ReplayConfig::default()),
            candidates: Vec::new(),
        }
    }
}

impl AnalyzeScratch {
    /// Fresh arenas with no retained capacity yet.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Analyze one flow trace end to end: replay, detect stalls, classify.
pub fn analyze_flow(trace: &FlowTrace, cfg: AnalyzerConfig) -> FlowAnalysis {
    analyze_flow_with(trace, cfg, &mut AnalyzeScratch::default())
}

/// [`analyze_flow`] against caller-provided arenas: `scratch` is fully
/// rewound on entry (so results are bit-identical to the fresh-state path)
/// and its storage is reused across calls.
pub fn analyze_flow_with(
    trace: &FlowTrace,
    cfg: AnalyzerConfig,
    scratch: &mut AnalyzeScratch,
) -> FlowAnalysis {
    scratch.replay.reset(cfg.replay);
    scratch.candidates.clear();
    let replay = &mut scratch.replay;
    let candidates = &mut scratch.candidates;
    let mut prev_t = None;
    let mut first_t = None;
    let mut last_t = None;
    let mut wire_bytes_out = 0u64;
    let mut data_pkts_out = 0u64;
    let mut time_regressions = 0u64;
    for (idx, rec) in trace.records.iter().enumerate() {
        if let Some(pt) = prev_t {
            // A timestamp running backwards means the capture is not
            // time-ordered; replaying it would corrupt the reconstructed
            // state and the gap math. Skip and count (mirrors
            // `StreamAnalyzer::push`).
            if rec.t < pt {
                time_regressions += 1;
                continue;
            }
            if replay.established {
                let gap = rec.t.saturating_since(pt);
                if gap > replay.stall_threshold() {
                    candidates.push(classify::Candidate {
                        start: pt,
                        end: rec.t,
                        end_record: idx,
                        snapshot: replay.snapshot(),
                    });
                }
            }
        }
        replay.process(idx, rec);
        if rec.dir == tcp_trace::record::Direction::Out && rec.has_data() {
            wire_bytes_out += rec.len as u64;
            data_pkts_out += 1;
        }
        first_t.get_or_insert(rec.t);
        last_t = Some(rec.t);
        prev_t = Some(rec.t);
    }
    replay.finish();

    let stalls: Vec<Stall> = candidates
        .iter()
        .map(|c| classify::classify(c, &trace.records[c.end_record], replay, &cfg.classify))
        .collect();

    let duration = match (first_t, last_t) {
        (Some(a), Some(b)) => b.saturating_since(a),
        _ => SimDuration::ZERO,
    };
    FlowAnalysis::finalize(
        stalls,
        duration,
        wire_bytes_out,
        data_pkts_out,
        time_regressions,
        replay,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;
    use tcp_trace::record::{Direction, TraceRecord};

    #[test]
    fn metrics_account_stall_ratio_and_speed() {
        let mut trace = FlowTrace::default();
        trace.push(TraceRecord::data(
            SimTime::from_millis(0),
            Direction::In,
            0,
            300,
            0,
            65535,
        ));
        trace.push(TraceRecord::data(
            SimTime::from_millis(2000),
            Direction::Out,
            0,
            1448,
            300,
            65535,
        ));
        trace.push(TraceRecord::pure_ack(
            SimTime::from_millis(2100),
            Direction::In,
            1448,
            65535,
        ));
        let a = analyze_flow(&trace, AnalyzerConfig::default());
        assert_eq!(a.stalls.len(), 1);
        assert_eq!(a.metrics.stalled_time, SimDuration::from_millis(2000));
        assert!((a.stall_ratio() - 2000.0 / 2100.0).abs() < 1e-9);
        assert_eq!(a.metrics.goodput_bytes, 1448);
        assert_eq!(a.metrics.data_pkts_out, 1);
        assert_eq!(a.metrics.retrans_pkts, 0);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let a = analyze_flow(&FlowTrace::default(), AnalyzerConfig::default());
        assert!(a.stalls.is_empty());
        assert_eq!(a.stall_ratio(), 0.0);
    }
}

//! # Fleet mode — deterministic multi-daemon aggregation
//!
//! One `tapo live` daemon diagnoses one capture point. A service fleet has
//! many: front-end processes on one box, boxes in a PoP, PoPs in a region.
//! Fleet mode aggregates the JSON-lines interval reports those daemons
//! already emit into cluster-wide time buckets, merges the per-service and
//! per-cause stall shares, and watches the merged series for longitudinal
//! regressions — without requiring the daemons to coordinate or even be
//! time-synchronized beyond their shared capture clock.
//!
//! The pipeline is three stages, each its own module:
//!
//! 1. [`ingest`] — read interval reports from files, FIFOs, or a stdin
//!    multiplex; parse and validate them (shared schema with `tapo advise`
//!    via [`crate::report::parse`]).
//! 2. [`merge`] — align records into fleet-wide time buckets and fold them
//!    in canonical order (bucket, then daemon id, then record order), so
//!    the output is byte-identical regardless of arrival interleaving.
//!    Distributions merge losslessly because the quantile [`sketch`] is a
//!    bucket-count homomorphism: merge = vector addition.
//! 3. [`drift`] — interval-over-interval and daemon-vs-fleet stall-share
//!    drift detection with a deterministic integer EWMA rule, emitted as
//!    `fleet_alert` records through the existing report sinks.
//!
//! Determinism is a hard requirement, not an aspiration: CI diffs the
//! output of sorted vs shuffled input orders, file vs stdin ingestion, and
//! 1 vs 4 worker threads, byte for byte.

pub mod alerts;
pub mod drift;
pub mod ingest;
pub mod merge;
pub mod sketch;

pub use alerts::FleetAlert;
pub use drift::{DriftConfig, DriftDetector};
pub use ingest::{read_report_files, read_reports, FleetError};
pub use merge::{aggregate, FleetConfig, FleetInterval, FleetOutcome, FleetSummary};
pub use sketch::QSketch;

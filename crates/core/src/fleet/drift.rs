//! Longitudinal regression detection over the merged fleet series.
//!
//! Two deterministic rules, both in integer microseconds so the emitted
//! alerts are byte-identical on every platform:
//!
//! 1. **Fleet drift** (interval-over-interval): each bucket's fleet-wide
//!    stall share (stalled µs per finalized flow) is compared against an
//!    integer EWMA of the *preceding* buckets. The share must exceed the
//!    baseline by `drift_pct` percent and clear the `min_share_us` noise
//!    floor, and the first `warmup` buckets only feed the EWMA.
//! 2. **Daemon drift** (daemon-vs-fleet): within one bucket, a daemon
//!    whose stall share exceeds the fleet-wide share by
//!    `daemon_drift_pct` percent is flagged — the "one sick front end"
//!    signal that a fleet-wide average hides.
//!
//! Both rules are *edge-triggered*: an alert fires when a scope crosses
//! into the drifting state, not on every bucket it stays there, so a
//! sustained regression is one alert, not a flood.

use std::collections::BTreeMap;

use super::alerts::FleetAlert;
use super::merge::FleetInterval;

/// Drift-rule knobs. All integer; the defaults flag a 1.5× fleet
/// regression and a daemon stalling at twice the fleet rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftConfig {
    /// Buckets that only feed the EWMA before fleet alerts may fire.
    pub warmup: u64,
    /// Fleet share must exceed the EWMA baseline by this many percent.
    pub drift_pct: u64,
    /// A daemon's share must exceed the fleet share by this many percent.
    pub daemon_drift_pct: u64,
    /// Shares below this floor (microseconds per flow) never alert.
    pub min_share_us: u64,
    /// EWMA weight denominator `D`: `ewma' = ((D-1)·ewma + share) / D`.
    pub ewma_weight: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            warmup: 3,
            drift_pct: 50,
            daemon_drift_pct: 100,
            min_share_us: 1_000,
            ewma_weight: 8,
        }
    }
}

/// `value` exceeds `baseline` by more than `pct` percent (exact integer
/// comparison; u128 so the cross-multiplication cannot overflow).
fn exceeds_by_pct(value: u64, baseline: u64, pct: u64) -> bool {
    (value as u128) * 100 > (baseline as u128) * (100 + pct as u128)
}

/// The stateful drift detector: feed it each [`FleetInterval`] in bucket
/// order and collect the alerts it emits. Purely a function of the
/// interval sequence and the config — no clocks, no randomness.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    seen: u64,
    ewma_us: Option<u64>,
    fleet_over: bool,
    daemon_over: BTreeMap<String, bool>,
}

impl DriftDetector {
    /// A fresh detector with no baseline yet.
    pub fn new(cfg: DriftConfig) -> Self {
        DriftDetector {
            cfg,
            seen: 0,
            ewma_us: None,
            fleet_over: false,
            daemon_over: BTreeMap::new(),
        }
    }

    /// The current EWMA baseline, if any bucket has been observed.
    pub fn baseline_us(&self) -> Option<u64> {
        self.ewma_us
    }

    /// Observe one fleet bucket; returns the alerts it triggers (fleet
    /// scope first, then drifting daemons in ascending id order).
    pub fn observe(&mut self, iv: &FleetInterval) -> Vec<FleetAlert> {
        let mut alerts = Vec::new();
        let share = iv.stall_share_us();

        // Rule 1: fleet share vs the EWMA of the preceding buckets.
        let over = match self.ewma_us {
            Some(baseline)
                if self.seen >= self.cfg.warmup
                    && share >= self.cfg.min_share_us
                    && exceeds_by_pct(share, baseline, self.cfg.drift_pct) =>
            {
                if !self.fleet_over {
                    alerts.push(FleetAlert {
                        bucket: iv.bucket,
                        start_us: iv.start_us,
                        scope: "fleet".into(),
                        metric: "stall_share_us",
                        value_us: share,
                        baseline_us: baseline,
                        threshold_pct: self.cfg.drift_pct,
                        flows: iv.flows_finalized,
                    });
                }
                true
            }
            _ => false,
        };
        self.fleet_over = over;
        let w = self.cfg.ewma_weight.max(1);
        self.ewma_us = Some(match self.ewma_us {
            None => share,
            Some(e) => (((w - 1) as u128 * e as u128 + share as u128) / w as u128) as u64,
        });
        self.seen += 1;

        // Rule 2: each daemon vs the fleet-wide share, same bucket.
        let mut over_now = BTreeMap::new();
        for (id, d) in &iv.per_daemon {
            let dshare = d.stall_share_us();
            if dshare >= self.cfg.min_share_us
                && exceeds_by_pct(dshare, share, self.cfg.daemon_drift_pct)
            {
                if !self.daemon_over.get(id).copied().unwrap_or(false) {
                    alerts.push(FleetAlert {
                        bucket: iv.bucket,
                        start_us: iv.start_us,
                        scope: id.clone(),
                        metric: "stall_share_us",
                        value_us: dshare,
                        baseline_us: share,
                        threshold_pct: self.cfg.daemon_drift_pct,
                        flows: d.flows_finalized,
                    });
                }
                over_now.insert(id.clone(), true);
            }
        }
        // A daemon absent from this bucket (or back under the line) must
        // re-cross to alert again.
        self.daemon_over = over_now;
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::super::merge::DaemonSlice;
    use super::*;

    fn bucket(b: u64, flows: u64, stalled_us: u64) -> FleetInterval {
        FleetInterval {
            bucket: b,
            start_us: b * 1_000_000,
            end_us: (b + 1) * 1_000_000,
            flows_finalized: flows,
            stalled_us,
            ..FleetInterval::default()
        }
    }

    #[test]
    fn fleet_drift_fires_after_warmup_and_is_edge_triggered() {
        let mut det = DriftDetector::new(DriftConfig::default());
        // Three warmup buckets at a 10ms/flow share: baseline settles.
        for b in 0..3 {
            assert!(det.observe(&bucket(b, 10, 100_000)).is_empty(), "b={b}");
        }
        // A 3× regression fires exactly once while sustained...
        let first = det.observe(&bucket(3, 10, 300_000));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].scope, "fleet");
        assert_eq!(first[0].value_us, 30_000);
        assert!(first[0].baseline_us < 30_000);
        assert!(det.observe(&bucket(4, 10, 300_000)).is_empty(), "sustained");
        // ...and re-fires only after recovering below the line. The spike
        // fed the EWMA, so recovery takes a few quiet buckets.
        for b in 5..9 {
            assert!(det.observe(&bucket(b, 10, 100_000)).is_empty());
        }
        let again = det.observe(&bucket(9, 10, 300_000));
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn warmup_buckets_never_alert() {
        let cfg = DriftConfig {
            warmup: 5,
            ..DriftConfig::default()
        };
        let mut det = DriftDetector::new(cfg);
        det.observe(&bucket(0, 10, 100_000));
        for b in 1..5 {
            // Wild swings inside warmup stay silent.
            assert!(det.observe(&bucket(b, 10, 900_000 * b)).is_empty());
        }
    }

    #[test]
    fn noise_floor_suppresses_tiny_shares() {
        let cfg = DriftConfig {
            min_share_us: 1_000,
            ..DriftConfig::default()
        };
        let mut det = DriftDetector::new(cfg);
        for b in 0..4 {
            det.observe(&bucket(b, 100, 10_000)); // 100 µs/flow baseline
        }
        // 5× the baseline but still under the 1ms floor: no alert.
        assert!(det.observe(&bucket(4, 100, 50_000)).is_empty());
    }

    #[test]
    fn daemon_drift_flags_the_sick_daemon_once() {
        let mut det = DriftDetector::new(DriftConfig::default());
        let mut iv = bucket(0, 20, 200_000); // fleet share 10ms/flow
        iv.per_daemon = vec![
            (
                "fe1".into(),
                DaemonSlice {
                    flows_finalized: 10,
                    stalled_us: 10_000, // 1ms/flow: healthy
                    ..DaemonSlice::default()
                },
            ),
            (
                "fe2".into(),
                DaemonSlice {
                    flows_finalized: 10,
                    stalled_us: 190_000, // 19ms/flow: nearly 2× fleet — still under 100%+share
                    ..DaemonSlice::default()
                },
            ),
            (
                "fe3".into(),
                DaemonSlice {
                    flows_finalized: 10,
                    stalled_us: 300_000, // 30ms/flow: 3× the fleet share
                    ..DaemonSlice::default()
                },
            ),
        ];
        let alerts = det.observe(&iv);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].scope, "fe3");
        assert_eq!(alerts[0].baseline_us, 10_000);
        assert_eq!(alerts[0].value_us, 30_000);
        // Same shape next bucket: edge-triggered, no repeat.
        let mut next = iv.clone();
        next.bucket = 1;
        assert!(det.observe(&next).is_empty());
        // Daemon drops out, then comes back over the line: fires again.
        let mut quiet = bucket(2, 20, 200_000);
        quiet.per_daemon = vec![];
        det.observe(&quiet);
        let mut back = iv.clone();
        back.bucket = 3;
        let alerts = det.observe(&back);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].scope, "fe3");
    }
}

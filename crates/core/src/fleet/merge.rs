//! Canonical-order merge: parsed interval records → fleet time buckets.
//!
//! Every fold here is either commutative integer addition or a
//! [`QSketch`] merge (bucket-count vector addition, itself commutative),
//! and the presentation order is fixed by `BTreeMap` iteration — buckets
//! ascending, daemon ids ascending, ports ascending. The aggregate is
//! therefore a pure function of the *multiset* of input records: arrival
//! interleaving, file boundaries, and parse-thread count cannot perturb a
//! byte of the output.

use std::collections::{BTreeMap, BTreeSet};

use workloads::Service;

use crate::advise::{attribute_ports, Observations};
use crate::causes::{RetransClass, StallClass};
use crate::json::Json;
use crate::live::{class_slug, retrans_slug};
use crate::report::parse::{ParsedInterval, PortCounts};
use crate::sink::Record;

use super::alerts::FleetAlert;
use super::drift::{DriftConfig, DriftDetector};
use super::sketch::QSketch;

/// Fleet aggregation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Fleet bucket width in microseconds; a record lands in the bucket
    /// containing its interval start.
    pub bucket_us: u64,
    /// Worker threads for input parsing; 0 = all available. Cannot change
    /// the output (parse results fold in line order).
    pub threads: usize,
    /// Drift-detection rule parameters.
    pub drift: DriftConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            bucket_us: 1_000_000,
            threads: 0,
            drift: DriftConfig::default(),
        }
    }
}

/// One daemon's slice of one fleet bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonSlice {
    /// Interval records merged into this slice.
    pub records: u64,
    /// Packets the daemon processed.
    pub packets: u64,
    /// Flows the daemon finalized.
    pub flows_finalized: u64,
    /// Stalls the daemon diagnosed.
    pub stalls: u64,
    /// Total stalled time, microseconds.
    pub stalled_us: u64,
}

impl DaemonSlice {
    /// Stalled microseconds per finalized flow — the drift metric.
    pub fn stall_share_us(&self) -> u64 {
        self.stalled_us / self.flows_finalized.max(1)
    }
}

/// One fleet-wide time bucket: the merge of every daemon's interval
/// records whose start falls inside it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetInterval {
    /// Bucket index: `start_us / bucket_us`.
    pub bucket: u64,
    /// Bucket start (inclusive), capture time in microseconds.
    pub start_us: u64,
    /// Bucket end (exclusive), capture time in microseconds.
    pub end_us: u64,
    /// Interval records merged.
    pub records: u64,
    /// Packets processed fleet-wide.
    pub packets: u64,
    /// Flows finalized fleet-wide.
    pub flows_finalized: u64,
    /// Stalls diagnosed fleet-wide.
    pub stalls: u64,
    /// Total stalled time fleet-wide, microseconds.
    pub stalled_us: u64,
    /// Per top-level stall class `(count, microseconds)`, indexed like
    /// [`StallClass::ALL`].
    pub by_cause: [(u64, u64); StallClass::ALL.len()],
    /// Per retransmission subclass, indexed like [`RetransClass::ALL`].
    pub by_retrans: [(u64, u64); RetransClass::ALL.len()],
    /// Per-server-port fold, ascending port order.
    pub by_port: Vec<(u16, PortCounts)>,
    /// Merged RTT-sample sketch (empty when no input carried sketches).
    pub rtt_sketch: QSketch,
    /// Merged stall-duration sketch, same caveat.
    pub stall_sketch: QSketch,
    /// Per-daemon slices, ascending daemon-id order.
    pub per_daemon: Vec<(String, DaemonSlice)>,
}

impl FleetInterval {
    /// Distinct daemons contributing to this bucket.
    pub fn daemons(&self) -> u64 {
        self.per_daemon.len() as u64
    }

    /// Fleet-wide stalled microseconds per finalized flow.
    pub fn stall_share_us(&self) -> u64 {
        self.stalled_us / self.flows_finalized.max(1)
    }
}

/// The live breakdown shape, reassembled from the parsed class arrays so
/// fleet records read like daemon records.
fn breakdown_json(
    stalls: u64,
    stalled_us: u64,
    by_cause: &[(u64, u64); StallClass::ALL.len()],
    by_retrans: &[(u64, u64); RetransClass::ALL.len()],
) -> Json {
    let causes = Json::Obj(
        StallClass::ALL
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    class_slug(c).to_string(),
                    Json::obj([
                        ("n", Json::from(by_cause[i].0)),
                        ("us", Json::from(by_cause[i].1)),
                    ]),
                )
            })
            .collect(),
    );
    let retrans = Json::Obj(
        RetransClass::ALL
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    retrans_slug(c).to_string(),
                    Json::obj([
                        ("n", Json::from(by_retrans[i].0)),
                        ("us", Json::from(by_retrans[i].1)),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([
        ("stalls", Json::from(stalls)),
        ("stalled_us", Json::from(stalled_us)),
        ("by_cause", causes),
        ("by_retrans", retrans),
    ])
}

fn by_port_json(by_port: &[(u16, PortCounts)]) -> Json {
    Json::Obj(
        by_port
            .iter()
            .map(|(port, p)| {
                (
                    port.to_string(),
                    Json::obj([
                        ("flows", Json::from(p.flows)),
                        ("stalls", Json::from(p.stalls)),
                        ("stalled_us", Json::from(p.stalled_us)),
                    ]),
                )
            })
            .collect(),
    )
}

/// Nearest-rank quantile summary of a merged sketch: the fleet record
/// carries the *answers* (p50/p90/p99), not the sketch itself — the fleet
/// is the end of the aggregation chain.
fn quantiles_json(s: &QSketch) -> Json {
    let q = |p: f64| Json::from(s.quantile(p).unwrap_or(0));
    Json::obj([
        ("n", Json::from(s.count())),
        ("p50_us", q(0.50)),
        ("p90_us", q(0.90)),
        ("p99_us", q(0.99)),
    ])
}

fn quantile_csv(row: &mut String, s: &QSketch) {
    let q = |p: f64| s.quantile(p).unwrap_or(0);
    row.push_str(&format!(
        ",{},{},{},{}",
        s.count(),
        q(0.50),
        q(0.90),
        q(0.99)
    ));
}

/// Shared tail of the interval/summary CSV headers: per-class columns,
/// then the two quantile blocks.
fn csv_header_tail(h: &mut String) {
    for c in StallClass::ALL {
        h.push_str(&format!(",{0}_n,{0}_us", class_slug(c)));
    }
    h.push_str(",rtt_n,rtt_p50_us,rtt_p90_us,rtt_p99_us");
    h.push_str(",stall_n,stall_p50_us,stall_p90_us,stall_p99_us");
}

fn csv_row_tail(
    row: &mut String,
    by_cause: &[(u64, u64); StallClass::ALL.len()],
    rtt: &QSketch,
    stall: &QSketch,
) {
    for (n, us) in by_cause {
        row.push_str(&format!(",{n},{us}"));
    }
    quantile_csv(row, rtt);
    quantile_csv(row, stall);
}

impl FleetInterval {
    /// The fixed CSV header matching [`Record::csv`] for this type.
    pub fn csv_header() -> String {
        let mut h = String::from(
            "bucket,start_us,end_us,daemons,records,packets,\
             flows_finalized,stalls,stalled_us,stall_share_us",
        );
        csv_header_tail(&mut h);
        h
    }
}

impl Record for FleetInterval {
    fn header(&self) -> String {
        FleetInterval::csv_header()
    }

    fn csv(&self) -> String {
        let mut row = format!(
            "{},{},{},{},{},{},{},{},{},{}",
            self.bucket,
            self.start_us,
            self.end_us,
            self.daemons(),
            self.records,
            self.packets,
            self.flows_finalized,
            self.stalls,
            self.stalled_us,
            self.stall_share_us(),
        );
        csv_row_tail(
            &mut row,
            &self.by_cause,
            &self.rtt_sketch,
            &self.stall_sketch,
        );
        row
    }

    fn json(&self) -> Json {
        let by_daemon = Json::Obj(
            self.per_daemon
                .iter()
                .map(|(id, d)| {
                    (
                        id.clone(),
                        Json::obj([
                            ("records", Json::from(d.records)),
                            ("packets", Json::from(d.packets)),
                            ("flows_finalized", Json::from(d.flows_finalized)),
                            ("stalls", Json::from(d.stalls)),
                            ("stalled_us", Json::from(d.stalled_us)),
                            ("stall_share_us", Json::from(d.stall_share_us())),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("kind", Json::from("fleet_interval")),
            ("bucket", Json::from(self.bucket)),
            ("start_us", Json::from(self.start_us)),
            ("end_us", Json::from(self.end_us)),
            ("daemons", Json::from(self.daemons())),
            ("records", Json::from(self.records)),
            ("packets", Json::from(self.packets)),
            ("flows_finalized", Json::from(self.flows_finalized)),
            ("stalls", Json::from(self.stalls)),
            ("stalled_us", Json::from(self.stalled_us)),
            ("stall_share_us", Json::from(self.stall_share_us())),
            (
                "breakdown",
                breakdown_json(
                    self.stalls,
                    self.stalled_us,
                    &self.by_cause,
                    &self.by_retrans,
                ),
            ),
            ("by_port", by_port_json(&self.by_port)),
            ("by_daemon", by_daemon),
            (
                "quantiles",
                Json::obj([
                    ("rtt_us", quantiles_json(&self.rtt_sketch)),
                    ("stall_us", quantiles_json(&self.stall_sketch)),
                ]),
            ),
        ])
    }
}

/// Whole-run fleet totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSummary {
    /// Non-empty fleet buckets emitted.
    pub buckets: u64,
    /// Distinct daemons seen across the whole run.
    pub daemons: u64,
    /// Interval records merged.
    pub records: u64,
    /// Well-formed non-interval lines skipped (summaries).
    pub skipped: u64,
    /// Packets processed fleet-wide.
    pub packets: u64,
    /// Flows finalized fleet-wide.
    pub flows_finalized: u64,
    /// Stalls diagnosed fleet-wide.
    pub stalls: u64,
    /// Total stalled time, microseconds.
    pub stalled_us: u64,
    /// Drift alerts emitted.
    pub alerts: u64,
    /// Per top-level stall class, indexed like [`StallClass::ALL`].
    pub by_cause: [(u64, u64); StallClass::ALL.len()],
    /// Per retransmission subclass, indexed like [`RetransClass::ALL`].
    pub by_retrans: [(u64, u64); RetransClass::ALL.len()],
    /// Whole-run per-port fold, ascending port order.
    pub by_port: Vec<(u16, PortCounts)>,
    /// Whole-run merged RTT sketch.
    pub rtt_sketch: QSketch,
    /// Whole-run merged stall-duration sketch.
    pub stall_sketch: QSketch,
}

impl FleetSummary {
    /// The fixed CSV header matching [`Record::csv`] for this type.
    pub fn csv_header() -> String {
        let mut h = String::from(
            "buckets,daemons,records,skipped,packets,\
             flows_finalized,stalls,stalled_us,alerts",
        );
        csv_header_tail(&mut h);
        h
    }

    /// The advisor's view of the merged fleet: per-service rollups of the
    /// whole-run `by_port` fold, ready for
    /// [`crate::advise::advise`] — the same counterfactual path a single
    /// daemon's reports feed.
    pub fn observations(&self) -> Observations {
        let mut obs = Observations {
            intervals: self.records,
            skipped: self.skipped,
            ..Observations::default()
        };
        attribute_ports(&mut obs, &self.by_port);
        obs
    }
}

impl Record for FleetSummary {
    fn header(&self) -> String {
        FleetSummary::csv_header()
    }

    fn csv(&self) -> String {
        let mut row = format!(
            "{},{},{},{},{},{},{},{},{}",
            self.buckets,
            self.daemons,
            self.records,
            self.skipped,
            self.packets,
            self.flows_finalized,
            self.stalls,
            self.stalled_us,
            self.alerts,
        );
        csv_row_tail(
            &mut row,
            &self.by_cause,
            &self.rtt_sketch,
            &self.stall_sketch,
        );
        row
    }

    fn json(&self) -> Json {
        let obs = self.observations();
        let by_service = Json::Obj(
            Service::ALL
                .iter()
                .zip(&obs.per_service)
                .map(|(s, o)| {
                    (
                        s.label().to_string(),
                        Json::obj([
                            ("flows", Json::from(o.flows)),
                            ("stalls", Json::from(o.stalls)),
                            ("stalled_us", Json::from(o.stalled_us)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("kind", Json::from("fleet_summary")),
            ("buckets", Json::from(self.buckets)),
            ("daemons", Json::from(self.daemons)),
            ("records", Json::from(self.records)),
            ("skipped", Json::from(self.skipped)),
            ("packets", Json::from(self.packets)),
            ("flows_finalized", Json::from(self.flows_finalized)),
            ("stalls", Json::from(self.stalls)),
            ("stalled_us", Json::from(self.stalled_us)),
            ("alerts", Json::from(self.alerts)),
            (
                "breakdown",
                breakdown_json(
                    self.stalls,
                    self.stalled_us,
                    &self.by_cause,
                    &self.by_retrans,
                ),
            ),
            ("by_port", by_port_json(&self.by_port)),
            ("by_service", by_service),
            ("unmapped_flows", Json::from(obs.unmapped_flows)),
            (
                "quantiles",
                Json::obj([
                    ("rtt_us", quantiles_json(&self.rtt_sketch)),
                    ("stall_us", quantiles_json(&self.stall_sketch)),
                ]),
            ),
        ])
    }
}

/// Everything one fleet aggregation produces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetOutcome {
    /// Non-empty fleet buckets, ascending.
    pub intervals: Vec<FleetInterval>,
    /// Drift alerts, in bucket order (fleet scope before daemon scopes
    /// within a bucket).
    pub alerts: Vec<FleetAlert>,
    /// Whole-run totals.
    pub summary: FleetSummary,
}

/// Per-(bucket, daemon) accumulator.
#[derive(Debug, Default)]
struct Acc {
    slice: DaemonSlice,
    by_cause: [(u64, u64); StallClass::ALL.len()],
    by_retrans: [(u64, u64); RetransClass::ALL.len()],
    by_port: BTreeMap<u16, PortCounts>,
    rtt: QSketch,
    stall: QSketch,
}

impl Acc {
    fn fold(&mut self, rec: &ParsedInterval) {
        self.slice.records += 1;
        self.slice.packets += rec.packets;
        self.slice.flows_finalized += rec.flows_finalized;
        self.slice.stalls += rec.stalls;
        self.slice.stalled_us += rec.stalled_us;
        for (e, o) in self.by_cause.iter_mut().zip(&rec.by_cause) {
            e.0 += o.0;
            e.1 += o.1;
        }
        for (e, o) in self.by_retrans.iter_mut().zip(&rec.by_retrans) {
            e.0 += o.0;
            e.1 += o.1;
        }
        for (port, p) in &rec.by_port {
            let e = self.by_port.entry(*port).or_default();
            e.flows += p.flows;
            e.stalls += p.stalls;
            e.stalled_us += p.stalled_us;
        }
        if let Some(s) = &rec.rtt_sketch {
            self.rtt.merge(s);
        }
        if let Some(s) = &rec.stall_sketch {
            self.stall.merge(s);
        }
    }
}

/// Merge parsed interval records into fleet buckets, run drift detection,
/// and fold the whole-run summary.
///
/// Output is a pure function of the record multiset and `cfg` — see the
/// module docs for why no input ordering can change a byte of it.
pub fn aggregate(records: &[ParsedInterval], skipped: u64, cfg: &FleetConfig) -> FleetOutcome {
    let bucket_us = cfg.bucket_us.max(1);
    let mut grouped: BTreeMap<u64, BTreeMap<&str, Acc>> = BTreeMap::new();
    for rec in records {
        grouped
            .entry(rec.start_us / bucket_us)
            .or_default()
            .entry(rec.daemon.as_str())
            .or_default()
            .fold(rec);
    }

    let mut detector = DriftDetector::new(cfg.drift);
    let mut intervals = Vec::with_capacity(grouped.len());
    let mut alerts = Vec::new();
    let mut all_daemons: BTreeSet<&str> = BTreeSet::new();
    let mut summary = FleetSummary {
        records: records.len() as u64,
        skipped,
        ..FleetSummary::default()
    };
    let mut summary_ports: BTreeMap<u16, PortCounts> = BTreeMap::new();

    for (bucket, daemons) in &grouped {
        let mut iv = FleetInterval {
            bucket: *bucket,
            start_us: bucket * bucket_us,
            end_us: (bucket + 1) * bucket_us,
            ..FleetInterval::default()
        };
        let mut ports: BTreeMap<u16, PortCounts> = BTreeMap::new();
        for (id, acc) in daemons {
            all_daemons.insert(id);
            iv.records += acc.slice.records;
            iv.packets += acc.slice.packets;
            iv.flows_finalized += acc.slice.flows_finalized;
            iv.stalls += acc.slice.stalls;
            iv.stalled_us += acc.slice.stalled_us;
            for (e, o) in iv.by_cause.iter_mut().zip(&acc.by_cause) {
                e.0 += o.0;
                e.1 += o.1;
            }
            for (e, o) in iv.by_retrans.iter_mut().zip(&acc.by_retrans) {
                e.0 += o.0;
                e.1 += o.1;
            }
            for (port, p) in &acc.by_port {
                let e = ports.entry(*port).or_default();
                e.flows += p.flows;
                e.stalls += p.stalls;
                e.stalled_us += p.stalled_us;
            }
            iv.rtt_sketch.merge(&acc.rtt);
            iv.stall_sketch.merge(&acc.stall);
            iv.per_daemon.push((id.to_string(), acc.slice));
        }
        iv.by_port = ports.into_iter().collect();

        summary.packets += iv.packets;
        summary.flows_finalized += iv.flows_finalized;
        summary.stalls += iv.stalls;
        summary.stalled_us += iv.stalled_us;
        for (e, o) in summary.by_cause.iter_mut().zip(&iv.by_cause) {
            e.0 += o.0;
            e.1 += o.1;
        }
        for (e, o) in summary.by_retrans.iter_mut().zip(&iv.by_retrans) {
            e.0 += o.0;
            e.1 += o.1;
        }
        for (port, p) in &iv.by_port {
            let e = summary_ports.entry(*port).or_default();
            e.flows += p.flows;
            e.stalls += p.stalls;
            e.stalled_us += p.stalled_us;
        }
        summary.rtt_sketch.merge(&iv.rtt_sketch);
        summary.stall_sketch.merge(&iv.stall_sketch);

        alerts.extend(detector.observe(&iv));
        intervals.push(iv);
    }

    summary.buckets = intervals.len() as u64;
    summary.daemons = all_daemons.len() as u64;
    summary.alerts = alerts.len() as u64;
    summary.by_port = summary_ports.into_iter().collect();

    FleetOutcome {
        intervals,
        alerts,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built record: `daemon` at `start_us` with `flows` finalized,
    /// `stalled_us` of stall time on port 80, and a stall sketch holding
    /// one sample of that duration.
    fn rec(daemon: &str, start_us: u64, flows: u64, stalled_us: u64) -> ParsedInterval {
        let stalls = u64::from(stalled_us > 0);
        let mut stall_sketch = QSketch::new();
        if stalled_us > 0 {
            stall_sketch.insert(stalled_us);
        }
        let mut by_cause = <[(u64, u64); StallClass::ALL.len()]>::default();
        by_cause[StallClass::Retransmission.index()] = (stalls, stalled_us);
        ParsedInterval {
            daemon: daemon.to_string(),
            interval: start_us / 1_000_000,
            start_us,
            end_us: start_us + 1_000_000,
            packets: 100,
            flows_finalized: flows,
            stalls,
            stalled_us,
            by_cause,
            by_port: vec![(
                80,
                PortCounts {
                    flows,
                    stalls,
                    stalled_us,
                },
            )],
            rtt_sketch: Some(QSketch::new()),
            stall_sketch: Some(stall_sketch),
            ..ParsedInterval::default()
        }
    }

    fn render(out: &FleetOutcome) -> String {
        let mut s = String::new();
        for iv in &out.intervals {
            s.push_str(&iv.json().compact());
            s.push('\n');
        }
        for a in &out.alerts {
            s.push_str(&a.json().compact());
            s.push('\n');
        }
        s.push_str(&out.summary.json().compact());
        s.push('\n');
        s
    }

    #[test]
    fn aggregate_is_input_order_invariant() {
        let mut records = Vec::new();
        for daemon in ["fe1", "fe2", "fe3"] {
            for b in 0..6u64 {
                records.push(rec(daemon, b * 1_000_000 + 250_000, 10, 40_000 * (b + 1)));
            }
        }
        let cfg = FleetConfig::default();
        let sorted = aggregate(&records, 3, &cfg);
        // Reverse, interleave, rotate: same multiset, different orders.
        let mut reversed = records.clone();
        reversed.reverse();
        let mut rotated = records.clone();
        rotated.rotate_left(7);
        for (name, shuffled) in [("reversed", reversed), ("rotated", rotated)] {
            let other = aggregate(&shuffled, 3, &cfg);
            assert_eq!(sorted, other, "{name}");
            assert_eq!(render(&sorted), render(&other), "{name} bytes");
        }
    }

    #[test]
    fn buckets_align_daemons_and_fold_everything() {
        // Two daemons reporting half-second intervals: both halves of
        // second 0 land in fleet bucket 0.
        let records = vec![
            rec("fe2", 0, 4, 8_000),
            rec("fe1", 500_000, 6, 0),
            rec("fe1", 0, 10, 2_000),
        ];
        let out = aggregate(&records, 0, &FleetConfig::default());
        assert_eq!(out.intervals.len(), 1);
        let iv = &out.intervals[0];
        assert_eq!(iv.bucket, 0);
        assert_eq!(iv.daemons(), 2);
        assert_eq!(iv.records, 3);
        assert_eq!(iv.flows_finalized, 20);
        assert_eq!(iv.stalled_us, 10_000);
        assert_eq!(iv.stall_share_us(), 500);
        // Canonical daemon order, merged slices.
        assert_eq!(iv.per_daemon[0].0, "fe1");
        assert_eq!(iv.per_daemon[0].1.flows_finalized, 16);
        assert_eq!(iv.per_daemon[1].0, "fe2");
        assert_eq!(iv.per_daemon[1].1.stalled_us, 8_000);
        // Port fold and sketch fold follow.
        assert_eq!(
            iv.by_port,
            vec![(
                80,
                PortCounts {
                    flows: 20,
                    stalls: 2,
                    stalled_us: 10_000
                }
            )]
        );
        assert_eq!(iv.stall_sketch.count(), 2);
        let retr = iv.by_cause[StallClass::Retransmission.index()];
        assert_eq!(retr, (2, 10_000));
        // Summary mirrors the single bucket.
        assert_eq!(out.summary.buckets, 1);
        assert_eq!(out.summary.daemons, 2);
        assert_eq!(out.summary.stalled_us, 10_000);
        assert_eq!(out.summary.stall_sketch.count(), 2);
    }

    #[test]
    fn summary_observations_feed_the_advisor() {
        let records = vec![rec("fe1", 0, 12, 5_000), rec("fe2", 1_000_000, 8, 3_000)];
        let out = aggregate(&records, 1, &FleetConfig::default());
        let obs = out.summary.observations();
        assert_eq!(obs.intervals, 2);
        assert_eq!(obs.skipped, 1);
        // Port 80 is web search in the service map.
        let web = Service::ALL
            .iter()
            .position(|s| *s == Service::WebSearch)
            .unwrap();
        assert_eq!(obs.per_service[web].flows, 20);
        assert_eq!(obs.per_service[web].stalled_us, 8_000);
        assert_eq!(obs.unmapped_flows, 0);
    }

    #[test]
    fn record_shapes_are_fixed() {
        let out = aggregate(&[rec("fe1", 0, 5, 7_000)], 0, &FleetConfig::default());
        let iv = &out.intervals[0];
        assert_eq!(iv.header().split(',').count(), iv.csv().split(',').count());
        let line = iv.json().compact();
        assert!(line.contains("\"kind\":\"fleet_interval\""));
        assert!(line.contains("\"by_daemon\":{\"fe1\":{\"records\":1"));
        assert!(line.contains("\"quantiles\":{\"rtt_us\":{\"n\":0"));
        assert!(line.contains("\"stall_us\":{\"n\":1,\"p50_us\":"));
        let s = &out.summary;
        assert_eq!(s.header().split(',').count(), s.csv().split(',').count());
        let line = s.json().compact();
        assert!(line.contains("\"kind\":\"fleet_summary\""));
        assert!(line.contains("\"by_service\":{"));
        assert!(line.contains("\"unmapped_flows\":0"));
    }

    #[test]
    fn bucket_width_regroups_records() {
        let records = vec![
            rec("fe1", 0, 1, 0),
            rec("fe1", 1_000_000, 1, 0),
            rec("fe1", 2_000_000, 1, 0),
        ];
        let narrow = aggregate(&records, 0, &FleetConfig::default());
        assert_eq!(narrow.intervals.len(), 3);
        let wide = aggregate(
            &records,
            0,
            &FleetConfig {
                bucket_us: 10_000_000,
                ..FleetConfig::default()
            },
        );
        assert_eq!(wide.intervals.len(), 1);
        assert_eq!(wide.intervals[0].records, 3);
        assert_eq!(wide.intervals[0].end_us, 10_000_000);
    }
}

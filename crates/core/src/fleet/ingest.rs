//! Fleet input: JSON-lines report streams from files, FIFOs, or a stdin
//! multiplex, parsed in parallel.
//!
//! Ingestion is deliberately dumb: records carry their own daemon id, so
//! *where* a line arrived from (which file, what interleaving) carries no
//! information and cannot influence the aggregate. Lines are buffered and
//! parsed with [`par_map`](simnet::par::par_map) — results fold in line
//! order, and the first malformed line in that order wins as the error —
//! so the parse is byte-identical at any `--threads`.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use simnet::par;

use crate::report::parse::{parse_interval_line, ParsedInterval};

/// A malformed fleet input: which stream, which line, what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetError {
    /// The stream the line came from (a path, or `"-"` for stdin).
    pub source: String,
    /// 1-based line number within that stream (0 for stream-level errors
    /// such as a file that cannot be opened).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.source, self.line, self.message)
    }
}

impl std::error::Error for FleetError {}

/// One parsed line: blank, a skipped non-interval object, or a record.
enum Line {
    Blank,
    Skip,
    Rec(Box<ParsedInterval>),
    Bad(String),
}

/// Read one named report stream: every interval record in line order plus
/// the count of well-formed non-interval lines skipped.
///
/// `threads` caps the parse workers (0 = all available); it cannot change
/// the result or the error reported.
pub fn read_reports<R: BufRead>(
    source: &str,
    input: R,
    threads: usize,
) -> Result<(Vec<ParsedInterval>, u64), FleetError> {
    let at = |line: usize, message: String| FleetError {
        source: source.to_string(),
        line,
        message,
    };
    let mut lines = Vec::new();
    for (i, line) in input.lines().enumerate() {
        lines.push(line.map_err(|e| at(i + 1, format!("read error: {e}")))?);
    }
    let threads = if threads == 0 {
        par::available_threads()
    } else {
        threads
    };
    let parsed = par::par_map(lines.len(), threads, |i| {
        let line: &str = &lines[i];
        if line.trim().is_empty() {
            return Line::Blank;
        }
        match parse_interval_line(line) {
            Ok(Some(rec)) => Line::Rec(Box::new(rec)),
            Ok(None) => Line::Skip,
            Err(message) => Line::Bad(message),
        }
    });
    let mut records = Vec::new();
    let mut skipped = 0u64;
    for (i, item) in parsed.into_iter().enumerate() {
        match item {
            Line::Blank => {}
            Line::Skip => skipped += 1,
            Line::Rec(rec) => records.push(*rec),
            Line::Bad(message) => return Err(at(i + 1, message)),
        }
    }
    Ok((records, skipped))
}

/// Read several report files (one per daemon, or any other split) and
/// concatenate their records. File order cannot influence the aggregate —
/// records carry their daemon ids — but errors are attributed to the file
/// and line they came from.
pub fn read_report_files<P: AsRef<Path>>(
    paths: &[P],
    threads: usize,
) -> Result<(Vec<ParsedInterval>, u64), FleetError> {
    let mut records = Vec::new();
    let mut skipped = 0u64;
    for path in paths {
        let name = path.as_ref().display().to_string();
        let file = File::open(path.as_ref()).map_err(|e| FleetError {
            source: name.clone(),
            line: 0,
            message: format!("open error: {e}"),
        })?;
        let (mut recs, skip) = read_reports(&name, BufReader::new(file), threads)?;
        records.append(&mut recs);
        skipped += skip;
    }
    Ok((records, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_reports_is_thread_count_invariant() {
        let mut input = String::new();
        for i in 0..40 {
            input.push_str(&format!(
                "{{\"kind\":\"interval\",\"daemon\":\"fe{}\",\"start_us\":{}}}\n",
                i % 4,
                i * 250_000
            ));
            if i % 7 == 0 {
                input.push_str("{\"kind\":\"summary\"}\n\n");
            }
        }
        let serial = read_reports("-", input.as_bytes(), 1).unwrap();
        for threads in [2, 4, 8] {
            let parallel = read_reports("-", input.as_bytes(), threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
        assert_eq!(serial.0.len(), 40);
        assert_eq!(serial.1, 6);
    }

    #[test]
    fn first_bad_line_in_order_wins() {
        let input = "{\"kind\":\"interval\"}\nbad one\nbad two\n";
        for threads in [1, 4] {
            let err = read_reports("stream", input.as_bytes(), threads).unwrap_err();
            assert_eq!(err.line, 2, "threads={threads}");
            assert_eq!(err.source, "stream");
            assert!(err.to_string().starts_with("stream:2: not a JSON report:"));
        }
    }

    #[test]
    fn missing_file_is_a_stream_level_error() {
        let err = read_report_files(&["/nonexistent/fleet-input.jsonl"], 1).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.starts_with("open error:"));
    }
}

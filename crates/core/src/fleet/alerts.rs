//! The fleet's regression-alert record: a fixed-shape row per detected
//! drift, emitted through the same [`ReportSink`](crate::sink::ReportSink)
//! machinery as every other TAPO record so a monitoring pipeline ingests
//! alerts exactly like interval reports.

use crate::json::Json;
use crate::sink::{csv_escape, Record};

/// One detected stall-share regression: either the fleet series drifting
/// above its own EWMA baseline, or one daemon drifting above the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAlert {
    /// Fleet time bucket the drift was detected in.
    pub bucket: u64,
    /// Bucket start, capture time in microseconds.
    pub start_us: u64,
    /// `"fleet"` for the longitudinal rule, or the drifting daemon's id
    /// for the daemon-vs-fleet rule.
    pub scope: String,
    /// The drifting metric (currently always `"stall_share_us"`).
    pub metric: &'static str,
    /// The metric's value in the alerting bucket, microseconds.
    pub value_us: u64,
    /// The baseline it was compared against (the EWMA for fleet scope,
    /// the fleet-wide share for daemon scope), microseconds.
    pub baseline_us: u64,
    /// The percentage threshold that was exceeded.
    pub threshold_pct: u64,
    /// Flows behind `value_us` (the scope's finalized flows this bucket).
    pub flows: u64,
}

impl FleetAlert {
    /// The fixed CSV header matching [`Record::csv`] for this type.
    pub fn csv_header() -> String {
        "bucket,start_us,scope,metric,value_us,baseline_us,threshold_pct,flows".into()
    }
}

impl Record for FleetAlert {
    fn header(&self) -> String {
        FleetAlert::csv_header()
    }

    fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{}",
            self.bucket,
            self.start_us,
            csv_escape(&self.scope),
            self.metric,
            self.value_us,
            self.baseline_us,
            self.threshold_pct,
            self.flows
        )
    }

    fn json(&self) -> Json {
        Json::obj([
            ("kind", Json::from("fleet_alert")),
            ("bucket", Json::from(self.bucket)),
            ("start_us", Json::from(self.start_us)),
            ("scope", Json::from(self.scope.as_str())),
            ("metric", Json::from(self.metric)),
            ("value_us", Json::from(self.value_us)),
            ("baseline_us", Json::from(self.baseline_us)),
            ("threshold_pct", Json::from(self.threshold_pct)),
            ("flows", Json::from(self.flows)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_record_shapes_are_fixed() {
        let a = FleetAlert {
            bucket: 7,
            start_us: 7_000_000,
            scope: "fe1".into(),
            metric: "stall_share_us",
            value_us: 90_000,
            baseline_us: 30_000,
            threshold_pct: 100,
            flows: 42,
        };
        assert_eq!(a.header().split(',').count(), a.csv().split(',').count());
        let line = a.json().compact();
        assert!(line.contains("\"kind\":\"fleet_alert\""));
        assert!(line.contains("\"scope\":\"fe1\""));
        assert!(line.contains("\"value_us\":90000"));
    }
}

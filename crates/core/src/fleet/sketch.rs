//! Deterministic mergeable quantile sketch for fleet aggregation.
//!
//! Fleet mode merges RTT and stall-duration distributions from N daemons
//! whose reports arrive in arbitrary order, and the hard requirement is
//! byte-identical output regardless of merge order or how the population
//! was partitioned across daemons and shards. Randomized compactor
//! sketches (KLL) and greedy tuple-compressing sketches (GK) cannot give
//! that: their internal state depends on insertion and merge order, so
//! `merge(a, b)` and `merge(b, a)` generally differ byte-for-byte even
//! when their *estimates* agree.
//!
//! [`QSketch`] instead uses deterministic logarithmic buckets
//! (DDSketch-style): a fixed global table of bucket lower bounds growing
//! by γ = 101/99 per bucket (relative half-width 1/99 ≈ 1.01%), an exact
//! zero bucket, and exact min/max for clamping. A value maps to exactly
//! one bucket independent of everything else in the sketch, so a sketch
//! is just a sparse counter vector and merging is bucket-wise addition —
//! a commutative, associative monoid homomorphism. Partitioning a stream
//! k ways, sketching each part, and merging gives *the same bytes* as
//! sketching the whole stream, which is what keeps live reports identical
//! across shard counts and fleet output identical across daemon arrival
//! order.
//!
//! Rank accuracy is exact at bucket granularity (quantile lookup walks
//! exact cumulative counts, so the returned bucket contains the true
//! nearest-rank element); value accuracy is the bucket half-width,
//! ≤ value/99 + 1 (the +1 absorbs integer rounding of the bounds table).

use std::sync::OnceLock;

use crate::json::Json;

/// Bucket growth numerator: γ = GAMMA_NUM / GAMMA_DEN.
const GAMMA_NUM: u128 = 101;
/// Bucket growth denominator.
const GAMMA_DEN: u128 = 99;

/// The global bucket lower-bound table: `b₀ = 1`,
/// `bᵢ₊₁ = max(bᵢ + 1, ceil(bᵢ·γ))`, covering all of `u64`. Integer-only
/// construction makes the table identical on every platform. Bucket `i`
/// covers `[bᵢ, bᵢ₊₁)`; the last covers `[bₗₐₛₜ, u64::MAX]`.
fn bounds() -> &'static [u64] {
    static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v: Vec<u64> = vec![1];
        loop {
            let b = *v.last().expect("table is non-empty") as u128;
            let next = ((b * GAMMA_NUM).div_ceil(GAMMA_DEN)).max(b + 1);
            if next > u64::MAX as u128 {
                break;
            }
            v.push(next as u64);
        }
        assert!(v.len() <= u16::MAX as usize, "bucket index must fit u16");
        v
    })
}

/// Bucket index for a non-zero value: the largest `i` with `bᵢ ≤ v`.
fn bucket_of(v: u64) -> u16 {
    debug_assert!(v > 0);
    let table = bounds();
    (table.partition_point(|&b| b <= v) - 1) as u16
}

/// A deterministic mergeable quantile sketch over `u64` samples
/// (microseconds, in this codebase).
///
/// Merging is bucket-wise count addition: byte-exact commutative,
/// associative, and partition-invariant (see module docs). The canonical
/// serialized form is [`QSketch::to_json`]`.compact()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QSketch {
    /// Exact count of zero-valued samples (zero has no log bucket).
    zero: u64,
    /// Total samples, including zeros.
    total: u64,
    /// Exact minimum sample (`u64::MAX` when empty).
    min: u64,
    /// Exact maximum sample (0 when empty).
    max: u64,
    /// Sparse non-zero bucket counts, sorted ascending by bucket index.
    buckets: Vec<(u16, u64)>,
}

impl Default for QSketch {
    fn default() -> Self {
        QSketch {
            zero: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }
}

impl QSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QSketch::default()
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Record one sample.
    pub fn insert(&mut self, v: u64) {
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0 {
            self.zero += 1;
            return;
        }
        let idx = bucket_of(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Fold another sketch into this one. Bucket-wise addition: the result
    /// is byte-identical no matter how the population was split or in
    /// which order parts are merged.
    pub fn merge(&mut self, other: &QSketch) {
        self.zero += other.zero;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
    }

    /// Nearest-rank quantile estimate (same rank rule as
    /// [`crate::report::Cdf::quantile`]): the representative value of the
    /// bucket containing the element of rank `ceil(total·q)`. `None` when
    /// empty. Value error ≤ `true/99 + 1`; rank error is zero at bucket
    /// granularity.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total as f64 * q).ceil() as u64)
            .saturating_sub(1)
            .min(self.total - 1);
        if rank < self.zero {
            return Some(0);
        }
        let mut cum = self.zero;
        for &(idx, n) in &self.buckets {
            cum += n;
            if rank < cum {
                let table = bounds();
                let lo = table[idx as usize];
                let hi = table
                    .get(idx as usize + 1)
                    .map_or(u64::MAX, |&b| b.saturating_sub(1));
                let rep = lo + (hi - lo) / 2;
                return Some(rep.clamp(self.min, self.max));
            }
        }
        // Unreachable when counts are consistent; fall back to max.
        Some(self.max)
    }

    /// Canonical JSON form: `{"n":..,"zero":..,"min":..,"max":..,"b":[[i,c],..]}`.
    /// `min` serializes as 0 when empty so the wire form has no sentinel.
    pub fn to_json(&self) -> Json {
        let min = if self.total == 0 { 0 } else { self.min };
        Json::obj([
            ("n", Json::Int(self.total as i64)),
            ("zero", Json::Int(self.zero as i64)),
            ("min", Json::Int(min as i64)),
            ("max", Json::Int(self.max as i64)),
            (
                "b",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| Json::Arr(vec![Json::Int(i as i64), Json::Int(n as i64)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the canonical JSON form back. `None` on shape mismatch.
    pub fn from_json(doc: &Json) -> Option<QSketch> {
        let total = doc.get("n")?.as_u64()?;
        let zero = doc.get("zero")?.as_u64()?;
        let min = doc.get("min")?.as_u64()?;
        let max = doc.get("max")?.as_u64()?;
        let mut buckets = Vec::new();
        let mut prev: Option<u16> = None;
        for pair in doc.get("b")?.items()? {
            let cells = pair.items()?;
            if cells.len() != 2 {
                return None;
            }
            let idx = cells[0].as_u64()?;
            let n = cells[1].as_u64()?;
            if idx >= bounds().len() as u64 || n == 0 {
                return None;
            }
            let idx = idx as u16;
            if prev.is_some_and(|p| p >= idx) {
                return None; // not strictly ascending — not canonical
            }
            prev = Some(idx);
            buckets.push((idx, n));
        }
        Some(QSketch {
            zero,
            total,
            min: if total == 0 { u64::MAX } else { min },
            max,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — the deterministic sample-stream generator for
    /// property tests (no external crates, no process entropy).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn stream(seed: u64, len: usize, shape: usize) -> Vec<u64> {
        let mut s = seed;
        let mut v: Vec<u64> = (0..len)
            .map(|_| {
                let r = splitmix64(&mut s);
                match shape {
                    0 => r % 1_000_000,                         // uniform µs up to 1s
                    1 => (r % 1_000) * 1_000,                   // clustered on ms grid
                    2 => r % 50,                                // tiny values + zeros
                    3 => 1 + (r % 8),                           // near the first buckets
                    _ => (r % 1_000_000_000).saturating_pow(1), // wide range
                }
            })
            .collect();
        if shape == 4 {
            v.sort_unstable(); // sorted arrival
        }
        if shape == 5 {
            v.sort_unstable_by(|a, b| b.cmp(a)); // reverse-sorted arrival
        }
        v
    }

    fn sketch_of(samples: &[u64]) -> QSketch {
        let mut s = QSketch::new();
        for &v in samples {
            s.insert(v);
        }
        s
    }

    #[test]
    fn bounds_table_is_sane() {
        let t = bounds();
        assert_eq!(t[0], 1);
        assert!(
            t.len() <= u16::MAX as usize,
            "len {} overflows u16",
            t.len()
        );
        for w in t.windows(2) {
            assert!(w[1] > w[0], "bounds must be strictly increasing");
        }
        // Growth never exceeds γ by more than integer rounding.
        for w in t.windows(2) {
            let ceil_gamma = ((w[0] as u128 * GAMMA_NUM).div_ceil(GAMMA_DEN)) as u64;
            assert!(w[1] == ceil_gamma || w[1] == w[0] + 1);
        }
    }

    #[test]
    fn every_value_lands_in_its_bucket() {
        let t = bounds();
        for v in [1u64, 2, 3, 98, 99, 100, 101, 12345, u64::MAX / 2, u64::MAX] {
            let i = bucket_of(v) as usize;
            assert!(t[i] <= v, "bucket {i} lower bound {} > {v}", t[i]);
            if let Some(&next) = t.get(i + 1) {
                assert!(v < next, "{v} belongs above bucket {i}");
            }
        }
    }

    #[test]
    fn rank_error_bound_holds_across_shapes_and_seeds() {
        for shape in 0..6 {
            for seed in [1u64, 7, 2015] {
                let mut samples = stream(seed ^ (shape as u64) << 32, 500, shape % 5);
                if shape == 4 {
                    samples.sort_unstable();
                }
                let sk = sketch_of(&samples);
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                for &q in &[0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    let idx = ((sorted.len() as f64 * q).ceil() as usize)
                        .saturating_sub(1)
                        .min(sorted.len() - 1);
                    let truth = sorted[idx];
                    let est = sk.quantile(q).expect("non-empty");
                    let tol = truth as f64 * 0.0102 + 1.0;
                    let err = (est as f64 - truth as f64).abs();
                    assert!(
                        err <= tol,
                        "shape {shape} seed {seed} q {q}: est {est} vs true {truth} (err {err} > tol {tol})"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_associative_bytewise() {
        let a = sketch_of(&stream(11, 300, 0));
        let b = sketch_of(&stream(22, 200, 1));
        let c = sketch_of(&stream(33, 100, 2));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.to_json().compact(),
            ba.to_json().compact(),
            "merge must be byte-commutative"
        );

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(
            ab_c.to_json().compact(),
            a_bc.to_json().compact(),
            "merge must be byte-associative"
        );
    }

    #[test]
    fn merge_is_partition_invariant() {
        // Sketching k disjoint partitions and merging must be byte-equal
        // to sketching the whole stream — the property that keeps live
        // reports identical across shard counts.
        let samples = stream(2015, 997, 0);
        let whole = sketch_of(&samples);
        for k in [2usize, 3, 7] {
            let mut parts: Vec<QSketch> = (0..k).map(|_| QSketch::new()).collect();
            for (i, &v) in samples.iter().enumerate() {
                parts[i % k].insert(v);
            }
            // Fold in reverse order on purpose — order must not matter.
            let mut merged = QSketch::new();
            for p in parts.iter().rev() {
                merged.merge(p);
            }
            assert_eq!(
                merged.to_json().compact(),
                whole.to_json().compact(),
                "{k}-way partition must merge back to the same bytes"
            );
        }
    }

    #[test]
    fn empty_and_singleton_edges() {
        let empty = QSketch::new();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);

        let mut one = QSketch::new();
        one.insert(777);
        assert_eq!(one.count(), 1);
        for &q in &[0.0, 0.5, 1.0] {
            assert_eq!(one.quantile(q), Some(777), "singleton clamps to itself");
        }

        let mut zeros = QSketch::new();
        zeros.insert(0);
        zeros.insert(0);
        zeros.insert(10);
        assert_eq!(zeros.quantile(0.5), Some(0));
        assert_eq!(zeros.quantile(1.0), Some(10));

        // Merging an empty sketch is the identity, both ways.
        let s = sketch_of(&stream(5, 50, 0));
        let mut left = s.clone();
        left.merge(&empty);
        assert_eq!(left.to_json().compact(), s.to_json().compact());
        let mut right = QSketch::new();
        right.merge(&s);
        assert_eq!(right.to_json().compact(), s.to_json().compact());
    }

    #[test]
    fn json_round_trip_is_exact() {
        for shape in 0..3 {
            let s = sketch_of(&stream(99, 200, shape));
            let wire = s.to_json().compact();
            let doc = Json::parse(&wire).expect("canonical form parses");
            let back = QSketch::from_json(&doc).expect("canonical form loads");
            assert_eq!(back, s);
            assert_eq!(back.to_json().compact(), wire);
        }
        // Empty round-trips through the 0 sentinel substitution too.
        let e = QSketch::new();
        let doc = Json::parse(&e.to_json().compact()).unwrap();
        assert_eq!(QSketch::from_json(&doc).unwrap(), e);
    }

    #[test]
    fn from_json_rejects_non_canonical_forms() {
        for bad in [
            r#"{"n":1,"zero":0,"min":5,"max":5}"#, // missing b
            r#"{"n":1,"zero":0,"min":5,"max":5,"b":[[1,1],[1,1]]}"#, // dup bucket
            r#"{"n":1,"zero":0,"min":5,"max":5,"b":[[9,1],[2,1]]}"#, // unsorted
            r#"{"n":1,"zero":0,"min":5,"max":5,"b":[[2,0]]}"#, // zero count
            r#"{"n":1,"zero":0,"min":5,"max":5,"b":[[70000,1]]}"#, // idx overflow
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(QSketch::from_json(&doc).is_none(), "accepted {bad}");
        }
    }
}

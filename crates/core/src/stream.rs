//! Online (streaming) stall analysis.
//!
//! The paper's TAPO ran integrated into Qihoo 360's TCP analysis platform
//! for daily maintenance. [`StreamAnalyzer`] supports that deployment
//! style: records are pushed one at a time as they are captured, stalls are
//! surfaced the moment the packet ending them arrives (with a
//! *provisional* cause based on the flow so far), and [`StreamAnalyzer::finish`]
//! produces the exact same [`FlowAnalysis`] as the offline
//! [`crate::analyze_flow`] — final causes can differ from provisional ones
//! only where later evidence (a DSACK proving a retransmission spurious, a
//! later request delimiting a response tail) changes the verdict.
//!
//! Memory: the analyzer keeps per-segment history (as the offline pass
//! does) plus only the stall-ending records — not the whole trace.

use simnet::time::{SimDuration, SimTime};
use tcp_trace::record::{Direction, RecordSink, TraceRecord};

use crate::classify::{self, Candidate, Stall};
use crate::replay::Replay;
use crate::{AnalyzerConfig, FlowAnalysis};

/// Incremental TAPO: push records, get stalls as they end, finish for the
/// full analysis.
#[derive(Debug)]
pub struct StreamAnalyzer {
    cfg: AnalyzerConfig,
    replay: Replay,
    prev_t: Option<SimTime>,
    idx: usize,
    /// Stall candidates with their (owned) ending records.
    pending: Vec<(Candidate, TraceRecord)>,
    first_t: Option<SimTime>,
    last_t: Option<SimTime>,
    wire_bytes_out: u64,
    data_pkts_out: u64,
    time_regressions: u64,
}

impl StreamAnalyzer {
    /// A fresh analyzer for one flow.
    pub fn new(cfg: AnalyzerConfig) -> Self {
        StreamAnalyzer {
            cfg,
            replay: Replay::new(cfg.replay),
            prev_t: None,
            idx: 0,
            pending: Vec::new(),
            first_t: None,
            last_t: None,
            wire_bytes_out: 0,
            data_pkts_out: 0,
            time_regressions: 0,
        }
    }

    /// Feed the next captured record (must be in time order). If this
    /// record ends a stall, the stall is returned immediately with a
    /// provisional cause.
    ///
    /// A record whose timestamp runs *backwards* relative to the previous
    /// one is rejected: it is not replayed (a regressed timestamp would
    /// corrupt the reconstructed sender state and could snapshot a bogus
    /// stall candidate) and is instead counted in
    /// [`FlowAnalysis::time_regressions`].
    pub fn push(&mut self, rec: &TraceRecord) -> Option<Stall> {
        let mut emitted = None;
        if let Some(pt) = self.prev_t {
            if rec.t < pt {
                self.time_regressions += 1;
                self.idx += 1;
                return None;
            }
            if self.replay.established {
                let gap = rec.t.saturating_since(pt);
                if gap > self.replay.stall_threshold() {
                    let cand = Candidate {
                        start: pt,
                        end: rec.t,
                        end_record: self.idx,
                        snapshot: self.replay.snapshot(),
                    };
                    // Provisional classification against the flow so far.
                    // (`finish` re-classifies with complete knowledge.)
                    let stall = classify::classify(&cand, rec, &self.replay, &self.cfg.classify);
                    self.pending.push((cand, *rec));
                    emitted = Some(stall);
                }
            }
        }
        self.replay.process(self.idx, rec);
        if rec.dir == Direction::Out && rec.has_data() {
            self.wire_bytes_out += rec.len as u64;
            self.data_pkts_out += 1;
        }
        self.first_t.get_or_insert(rec.t);
        self.last_t = Some(rec.t);
        self.prev_t = Some(rec.t);
        self.idx += 1;
        emitted
    }

    /// Rewind the analyzer to a fresh state for the next flow under `cfg`,
    /// keeping all backing storage (the replay's flat maps and vectors, the
    /// pending-stall buffer). A reset analyzer fed a trace produces
    /// bit-identical output to a new analyzer fed the same trace.
    pub fn reset_for(&mut self, cfg: AnalyzerConfig) {
        self.cfg = cfg;
        self.replay.reset(cfg.replay);
        self.prev_t = None;
        self.idx = 0;
        self.pending.clear();
        self.first_t = None;
        self.last_t = None;
        self.wire_bytes_out = 0;
        self.data_pkts_out = 0;
        self.time_regressions = 0;
    }

    /// Rewind like [`StreamAnalyzer::reset_for`], then adopt light-tier
    /// estimates ([`crate::live::MonitorSeed`]) as the starting state — the
    /// promotion path of two-tier monitoring. The seeded SRTT keeps the
    /// stall threshold meaningful from the first post-promotion gap
    /// (instead of falling back to the initial RTO), and the seeded stream
    /// offsets make re-sent pre-promotion segments classify as
    /// retransmissions.
    pub fn reset_seeded(&mut self, cfg: AnalyzerConfig, seed: &crate::live::MonitorSeed) {
        self.reset_for(cfg);
        self.replay.seed(seed);
    }

    /// Close the flow and produce the full (offline-equivalent) analysis.
    pub fn finish(mut self) -> FlowAnalysis {
        self.finish_reset()
    }

    /// Like [`StreamAnalyzer::finish`], but in place: produce the analysis
    /// and leave the analyzer reset (storage retained) for the next flow —
    /// the recycling entry point workers use between flows.
    pub fn finish_reset(&mut self) -> FlowAnalysis {
        self.replay.finish();
        let stalls: Vec<Stall> = self
            .pending
            .iter()
            .map(|(cand, rec)| classify::classify(cand, rec, &self.replay, &self.cfg.classify))
            .collect();
        let duration = match (self.first_t, self.last_t) {
            (Some(a), Some(b)) => b.saturating_since(a),
            _ => SimDuration::ZERO,
        };
        let analysis = FlowAnalysis::finalize(
            stalls,
            duration,
            self.wire_bytes_out,
            self.data_pkts_out,
            self.time_regressions,
            &mut self.replay,
        );
        self.reset_for(self.cfg);
        analysis
    }
}

/// Lets a flow simulator stream records straight into the analyzer,
/// skipping trace materialization entirely. Provisional stalls surfaced
/// mid-flow are dropped; call [`StreamAnalyzer::finish`] for the
/// offline-equivalent analysis.
impl RecordSink for StreamAnalyzer {
    fn record(&mut self, rec: &TraceRecord) {
        let _ = self.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_flow;
    use tcp_trace::flow::FlowTrace;

    fn sample_trace() -> FlowTrace {
        let mut t = FlowTrace::default();
        t.push(TraceRecord::data(
            SimTime::from_millis(0),
            Direction::In,
            0,
            300,
            0,
            1 << 20,
        ));
        t.push(TraceRecord::data(
            SimTime::from_millis(1500),
            Direction::Out,
            0,
            1448,
            300,
            1 << 20,
        ));
        t.push(TraceRecord::pure_ack(
            SimTime::from_millis(1600),
            Direction::In,
            1448,
            1 << 20,
        ));
        // Tail loss repaired by a timeout.
        t.push(TraceRecord::data(
            SimTime::from_millis(1601),
            Direction::Out,
            1448,
            1448,
            300,
            1 << 20,
        ));
        t.push(TraceRecord::data(
            SimTime::from_millis(2400),
            Direction::Out,
            1448,
            1448,
            300,
            1 << 20,
        ));
        t.push(TraceRecord::pure_ack(
            SimTime::from_millis(2500),
            Direction::In,
            2896,
            1 << 20,
        ));
        t
    }

    #[test]
    fn streaming_emits_stalls_as_they_end() {
        let trace = sample_trace();
        let mut an = StreamAnalyzer::new(AnalyzerConfig::default());
        let mut live = Vec::new();
        for rec in &trace.records {
            if let Some(stall) = an.push(rec) {
                live.push(stall);
            }
        }
        assert_eq!(
            live.len(),
            2,
            "data-unavailable and tail stalls surface live"
        );
        let offline = an.finish();
        assert_eq!(offline.stalls.len(), 2);
    }

    #[test]
    fn recycled_analyzer_matches_fresh_per_flow() {
        // finish_reset must leave the analyzer indistinguishable from new:
        // feeding the same traces through one recycled analyzer and through
        // fresh analyzers must agree field-for-field (run the stall-bearing
        // sample trace twice so retained capacity is actually exercised).
        let trace = sample_trace();
        let mut recycled = StreamAnalyzer::new(AnalyzerConfig::default());
        for _ in 0..3 {
            let mut fresh = StreamAnalyzer::new(AnalyzerConfig::default());
            for rec in &trace.records {
                recycled.push(rec);
                fresh.push(rec);
            }
            let a = recycled.finish_reset();
            let b = fresh.finish();
            assert_eq!(a.stalls, b.stalls);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.rtt_samples, b.rtt_samples);
            assert_eq!(a.rto_samples, b.rto_samples);
            assert_eq!(a.in_flight_on_ack, b.in_flight_on_ack);
            assert_eq!(a.init_rwnd, b.init_rwnd);
            assert_eq!(a.zero_rwnd_seen, b.zero_rwnd_seen);
        }
    }

    #[test]
    fn out_of_order_records_are_skipped_and_flagged() {
        // Inject a record whose timestamp runs backwards mid-trace. Before
        // the guard, `saturating_since` silently turned the regression into
        // a zero gap and the record perturbed the replayed state; now both
        // paths skip it, flag it, and still agree with the clean trace.
        let clean = sample_trace();
        let mut dirty = FlowTrace::default();
        for (i, rec) in clean.records.iter().enumerate() {
            dirty.records.push(*rec);
            if i == 3 {
                // A stale duplicate of the first data record, 2.4s late.
                let mut stale = clean.records[1];
                stale.t = SimTime::from_millis(1);
                dirty.records.push(stale);
            }
        }
        let offline_clean = analyze_flow(&clean, AnalyzerConfig::default());
        let offline_dirty = analyze_flow(&dirty, AnalyzerConfig::default());
        assert_eq!(offline_dirty.time_regressions, 1);
        // The skipped record still occupies a trace index, so `end_record`
        // shifts by one past the injection point; every semantic field of
        // every stall must be unchanged.
        assert_eq!(offline_clean.stalls.len(), offline_dirty.stalls.len());
        for (c, d) in offline_clean.stalls.iter().zip(&offline_dirty.stalls) {
            assert_eq!((c.start, c.end, c.duration), (d.start, d.end, d.duration));
            assert_eq!(c.cause, d.cause);
            assert_eq!(c.snapshot, d.snapshot);
        }
        assert_eq!(
            offline_clean.metrics.duration,
            offline_dirty.metrics.duration
        );
        assert_eq!(
            offline_clean.metrics.wire_bytes_out,
            offline_dirty.metrics.wire_bytes_out
        );

        let mut an = StreamAnalyzer::new(AnalyzerConfig::default());
        for rec in &dirty.records {
            let live = an.push(rec);
            if rec.t == SimTime::from_millis(1) {
                assert!(live.is_none(), "a regressed record must not end a stall");
            }
        }
        let streamed = an.finish();
        assert_eq!(streamed.time_regressions, 1);
        assert_eq!(streamed.stalls, offline_dirty.stalls);
        assert_eq!(streamed.metrics, offline_dirty.metrics);
    }

    #[test]
    fn seeded_analyzer_keeps_the_light_tiers_stall_threshold() {
        // A promoted flow's first post-promotion gap must be judged by the
        // light tier's RTT estimate, not the initial RTO. Seed 50 ms SRTT:
        // threshold = min(2·SRTT, RTO) = 100 ms, so a 150 ms ACK silence
        // with data in flight is a stall. A cold (unseeded) analyzer has
        // no sample yet and falls back to the 1 s initial RTO — the same
        // gap passes unnoticed there.
        let seed = crate::live::MonitorSeed {
            srtt_us: 50_000,
            rttvar_us: 25_000,
            has_rtt: true,
            snd_una: 1000,
            snd_nxt: 2000,
            last_rwnd: 1 << 20,
            init_rwnd: Some(1 << 20),
            established: true,
            zero_rwnd_seen: true,
        };
        let post = [
            TraceRecord::data(
                SimTime::from_millis(0),
                Direction::Out,
                2000,
                1000,
                0,
                1 << 20,
            ),
            TraceRecord::pure_ack(SimTime::from_millis(150), Direction::In, 3000, 1 << 20),
        ];

        let mut seeded = StreamAnalyzer::new(AnalyzerConfig::default());
        seeded.reset_seeded(AnalyzerConfig::default(), &seed);
        let mut live = Vec::new();
        for rec in &post {
            if let Some(s) = seeded.push(rec) {
                live.push(s);
            }
        }
        assert_eq!(live.len(), 1, "the seeded threshold must flag the gap");
        assert_eq!(live[0].duration, SimDuration::from_millis(150));
        let analysis = seeded.finish();
        assert_eq!(analysis.stalls.len(), 1);
        assert!(
            analysis.zero_rwnd_seen,
            "light-tier zero-window history survives promotion"
        );
        assert_eq!(analysis.init_rwnd, Some(1 << 20));

        let mut cold = StreamAnalyzer::new(AnalyzerConfig::default());
        for rec in &post {
            assert!(
                cold.push(rec).is_none(),
                "the initial-RTO threshold must not flag a 150 ms gap"
            );
        }
        assert_eq!(cold.finish().stalls.len(), 0);
    }

    #[test]
    fn finish_matches_offline_analysis() {
        let trace = sample_trace();
        let offline = analyze_flow(&trace, AnalyzerConfig::default());
        let mut an = StreamAnalyzer::new(AnalyzerConfig::default());
        for rec in &trace.records {
            an.push(rec);
        }
        let streamed = an.finish();
        assert_eq!(offline.stalls, streamed.stalls);
        assert_eq!(offline.metrics, streamed.metrics);
        assert_eq!(offline.init_rwnd, streamed.init_rwnd);
        assert_eq!(offline.rtt_samples, streamed.rtt_samples);
    }
}

//! Stall detection and the decision-tree root-cause classifier (Fig. 5).
//!
//! A stall is an inter-packet gap at the server — either direction —
//! exceeding `min(τ·SRTT, RTO)` with τ = 2 (§2.2 of the paper). Each stall
//! is attributed to the packet that *ends* it (`cur_pkt`), walking the
//! decision tree:
//!
//! ```text
//! cur_pkt inbound?
//! ├─ carries data (a request)            → client idle
//! ├─ window was zero during the stall    → zero rwnd
//! └─ otherwise (a late ACK, no retrans)  → packet delay
//! cur_pkt outbound data?
//! ├─ retransmission                      → timeout-retransmission subtree
//! ├─ head of a response                  → data unavailable
//! ├─ window was zero                     → zero rwnd
//! └─ otherwise                           → resource constraint
//! cur_pkt outbound pure ACK?
//! ├─ window was zero (persist probe)     → zero rwnd
//! └─ otherwise                           → undetermined
//! ```
//!
//! The retransmission subtree applies the Table 5 rules **in the paper's
//! priority order**: double retransmission → tail retransmission → small
//! cwnd → small rwnd → continuous loss → ACK delay/loss → undetermined.

use simnet::time::{SimDuration, SimTime};
use tcp_trace::record::{Direction, TraceRecord};

use crate::causes::{RetransCause, StallCause};
use crate::replay::{EstCaState, Replay, Snapshot};

/// Classifier thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifyConfig {
    /// "Small in-flight" bound: below this many packets fast retransmit is
    /// considered infeasible (4 in the paper).
    pub small_in_flight: u32,
    /// Minimum outstanding packets for a continuous-loss verdict (4).
    pub continuous_loss_min: u32,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            small_in_flight: 4,
            continuous_loss_min: 4,
        }
    }
}

/// One detected and classified stall.
#[derive(Debug, Clone, PartialEq)]
pub struct Stall {
    /// Last packet before the gap.
    pub start: SimTime,
    /// The packet ending the stall.
    pub end: SimTime,
    /// `end − start`.
    pub duration: SimDuration,
    /// Index (into the flow trace) of the stall-ending packet.
    pub end_record: usize,
    /// The inferred root cause.
    pub cause: StallCause,
    /// Reconstructed sender state just before the stall-ending packet.
    pub snapshot: Snapshot,
    /// Relative position in the flow's byte stream where the stall-ending
    /// packet sits, in `[0, 1]` (Figs. 7a and 10a).
    pub rel_position: f64,
}

/// A stall candidate captured during replay, before causes are assigned.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub start: SimTime,
    pub end: SimTime,
    pub end_record: usize,
    pub snapshot: Snapshot,
}

/// Classify one candidate using the completed replay.
pub(crate) fn classify(
    cand: &Candidate,
    rec: &TraceRecord,
    replay: &Replay,
    cfg: &ClassifyConfig,
) -> Stall {
    let cause = decide(cand, rec, replay, cfg);
    let denom = replay.snd_nxt().max(1) as f64;
    let rel_position = if rec.dir == Direction::Out && rec.has_data() {
        (rec.seq as f64 / denom).min(1.0)
    } else {
        (replay.snd_una() as f64 / denom).min(1.0)
    };
    Stall {
        start: cand.start,
        end: cand.end,
        duration: cand.end.saturating_since(cand.start),
        end_record: cand.end_record,
        cause,
        snapshot: cand.snapshot,
        rel_position,
    }
}

fn decide(
    cand: &Candidate,
    rec: &TraceRecord,
    replay: &Replay,
    cfg: &ClassifyConfig,
) -> StallCause {
    let snap = &cand.snapshot;
    match rec.dir {
        Direction::In => {
            if rec.has_data() {
                StallCause::ClientIdle
            } else if snap.rwnd == 0 {
                StallCause::ZeroWindow
            } else if rec.flags.ack {
                StallCause::PacketDelay
            } else {
                StallCause::Undetermined
            }
        }
        Direction::Out => {
            if rec.has_data() {
                if let Some(ev) = replay
                    .retrans_events
                    .iter()
                    .find(|e| e.idx == cand.end_record)
                {
                    return StallCause::Retransmission(retrans_cause(
                        rec, ev.nth, snap, replay, cfg,
                    ));
                }
                if replay.is_head(rec.seq) {
                    StallCause::DataUnavailable
                } else if snap.rwnd == 0 {
                    StallCause::ZeroWindow
                } else {
                    StallCause::ResourceConstraint
                }
            } else if snap.rwnd == 0 {
                // A persist (zero-window) probe ended the stall.
                StallCause::ZeroWindow
            } else {
                StallCause::Undetermined
            }
        }
    }
}

fn retrans_cause(
    rec: &TraceRecord,
    nth: u32,
    snap: &Snapshot,
    replay: &Replay,
    cfg: &ClassifyConfig,
) -> RetransCause {
    let mss = replay.config().mss as u64;

    // 1. Double retransmission: the segment had already been retransmitted.
    if nth >= 2 {
        let first_was_fast = replay
            .hist
            .get(rec.seq)
            .and_then(|h| h.first_retrans)
            .map(|k| k == crate::replay::RetransKind::Fast)
            .unwrap_or(false);
        return RetransCause::DoubleRetrans { first_was_fast };
    }

    // The paper's rules use the trace's *real*, DSACK-corrected loss
    // knowledge (§3.3): a retransmission later reported as a duplicate by
    // DSACK means the data was never lost, so the loss-based rules below
    // cannot apply — the stall was caused by delayed or dropped ACKs.
    let dsacked = replay.hist.get(rec.seq).is_some_and(|h| h.dsacked);

    // 2. Tail retransmission: too few segments after it in its response to
    // raise dupthres dupacks.
    if !dsacked && replay.is_tail(rec.seq, rec.len) {
        let open_state = matches!(snap.ca_state, EstCaState::Open | EstCaState::Disorder);
        return RetransCause::TailRetrans { open_state };
    }

    // 3/4. Small in-flight: fast retransmit starved of dupacks. Attribute
    // to whichever window was the limiter (Eq. 2).
    if !dsacked && snap.in_flight < cfg.small_in_flight {
        if snap.rwnd < cfg.small_in_flight as u64 * mss {
            return RetransCause::SmallRwnd;
        }
        return RetransCause::SmallCwnd;
    }

    // 5. Continuous loss: a whole window (≥ 4) vanished without any
    // feedback before the timeout.
    if snap.packets_out >= cfg.continuous_loss_min
        && snap.sacked_out == 0
        && snap.dupacks == 0
        && !dsacked
    {
        return RetransCause::ContinuousLoss;
    }

    // 6. ACK delay/loss: the data was delivered after all (DSACKed later).
    if dsacked {
        return RetransCause::AckDelayLoss;
    }

    RetransCause::Undetermined
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_trace::record::{SackBlock, SegFlags};

    const MSS: u32 = 1448;

    fn out_data(t_ms: u64, seq: u64, len: u32) -> TraceRecord {
        TraceRecord::data(
            SimTime::from_millis(t_ms),
            Direction::Out,
            seq,
            len,
            0,
            1 << 20,
        )
    }

    fn in_ack(t_ms: u64, ack: u64) -> TraceRecord {
        TraceRecord::pure_ack(SimTime::from_millis(t_ms), Direction::In, ack, 1 << 20)
    }

    fn in_req(t_ms: u64, seq: u64) -> TraceRecord {
        TraceRecord::data(
            SimTime::from_millis(t_ms),
            Direction::In,
            seq,
            300,
            0,
            1 << 20,
        )
    }

    /// Run the full pipeline on a hand-written trace.
    fn analyze(recs: Vec<TraceRecord>) -> Vec<Stall> {
        let trace = tcp_trace::flow::FlowTrace {
            key: None,
            records: recs,
        };
        crate::analyze_flow(&trace, crate::AnalyzerConfig::default()).stalls
    }

    #[test]
    fn client_idle_stall() {
        let m = MSS as u64;
        let stalls = analyze(vec![
            in_req(0, 0),
            out_data(10, 0, MSS),
            in_ack(110, m),
            // 3 seconds of think time, then a new request.
            in_req(3110, 300),
            out_data(3120, m, MSS),
            in_ack(3220, 2 * m),
        ]);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cause, StallCause::ClientIdle);
        assert_eq!(stalls[0].duration, SimDuration::from_millis(3000));
    }

    #[test]
    fn data_unavailable_stall_at_response_head() {
        let m = MSS as u64;
        let stalls = analyze(vec![
            in_req(0, 0),
            // Back-end fetch takes 1.5s before the first response byte.
            out_data(1500, 0, MSS),
            in_ack(1600, m),
        ]);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cause, StallCause::DataUnavailable);
    }

    #[test]
    fn resource_constraint_stall_mid_response() {
        let m = MSS as u64;
        let stalls = analyze(vec![
            in_req(0, 0),
            out_data(10, 0, MSS),
            in_ack(110, m),
            // Server supplies nothing for 2s mid-transfer, window open.
            out_data(2110, m, MSS),
            in_ack(2210, 2 * m),
        ]);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cause, StallCause::ResourceConstraint);
    }

    #[test]
    fn zero_window_stall_ended_by_window_update() {
        let m = MSS as u64;
        let mut zero = in_ack(110, m);
        zero.rwnd = 0;
        let mut update = in_ack(2110, m);
        update.rwnd = 65535;
        let stalls = analyze(vec![
            in_req(0, 0),
            out_data(10, 0, MSS),
            zero,
            update,
            out_data(2111, m, MSS),
            in_ack(2211, 2 * m),
        ]);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cause, StallCause::ZeroWindow);
    }

    #[test]
    fn packet_delay_stall_ended_by_late_ack() {
        let m = MSS as u64;
        let stalls = analyze(vec![
            in_req(0, 0),
            out_data(10, 0, MSS),
            in_ack(110, m),
            out_data(111, m, MSS),
            out_data(112, 2 * m, MSS),
            // The ACK takes ~900ms (several RTTs) but nothing was lost and
            // no retransmission happened (gap < RTO = 300ms? no: RTO after
            // one 100ms sample is 300ms, so use a 250ms gap > 2·SRTT=200ms).
            in_ack(362, 3 * m),
        ]);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cause, StallCause::PacketDelay);
    }

    #[test]
    fn tail_retransmission_stall() {
        let m = MSS as u64;
        let stalls = analyze(vec![
            in_req(0, 0),
            out_data(10, 0, MSS),
            in_ack(110, m),
            // The final (tail) segment of the response is lost...
            out_data(111, m, MSS),
            // ...and repaired only by a timeout retransmission.
            out_data(1111, m, MSS),
            in_ack(1211, 2 * m),
        ]);
        assert_eq!(stalls.len(), 1);
        match stalls[0].cause {
            StallCause::Retransmission(RetransCause::TailRetrans { open_state }) => {
                assert!(open_state);
            }
            other => panic!("expected tail retrans, got {other:?}"),
        }
    }

    #[test]
    fn double_retransmission_stall_f_double() {
        let m = MSS as u64;
        let mut recs = vec![in_req(0, 0)];
        for i in 0..6 {
            recs.push(out_data(10 + i, i * m, MSS));
        }
        // Establish RTT, then dupacks → fast retransmit of seg 0.
        let mk = |t: u64, blocks: &[(u64, u64)]| {
            let mut r = in_ack(t, 0);
            r.sack = blocks.iter().map(|&(a, b)| SackBlock::new(a, b)).collect();
            r
        };
        recs.push(mk(110, &[(m, 2 * m)]));
        recs.push(mk(112, &[(m, 3 * m)]));
        recs.push(mk(114, &[(m, 4 * m)]));
        recs.push(out_data(115, 0, MSS)); // fast retransmit
        recs.push(mk(116, &[(m, 5 * m)]));
        recs.push(mk(118, &[(m, 6 * m)]));
        // The retransmission is lost too; only the RTO (~1s later) repairs.
        recs.push(out_data(1300, 0, MSS));
        recs.push(in_ack(1400, 6 * m));
        let stalls = analyze(recs);
        assert_eq!(stalls.len(), 1, "stalls: {stalls:?}");
        match stalls[0].cause {
            StallCause::Retransmission(RetransCause::DoubleRetrans { first_was_fast }) => {
                assert!(first_was_fast, "f-double");
            }
            other => panic!("expected double retrans, got {other:?}"),
        }
    }

    #[test]
    fn small_cwnd_retransmission_stall() {
        let m = MSS as u64;
        // Big rwnd, only 2 packets in flight mid-response (cwnd-limited),
        // one lost → timeout.
        let stalls = analyze(vec![
            in_req(0, 0),
            out_data(10, 0, MSS),
            in_ack(110, m),
            out_data(111, m, MSS),
            out_data(112, 2 * m, MSS),
            // more of the response exists later, so seg 1 is not the tail
            out_data(113, 3 * m, MSS),
            out_data(114, 4 * m, MSS),
            out_data(115, 5 * m, MSS),
            out_data(116, 6 * m, MSS),
            in_ack(215, 2 * m),
            in_ack(216, 5 * m),
            in_ack(217, 7 * m),
            // New mini-burst: 2 in flight; the first is lost.
            out_data(300, 7 * m, MSS),
            out_data(301, 8 * m, MSS),
            {
                let mut r = in_ack(400, 7 * m);
                r.sack = [SackBlock::new(8 * m, 9 * m)].into();
                r
            },
            // Stall, then timeout retransmission of seg 7m. More data
            // follows later so it is not a tail segment.
            out_data(1400, 7 * m, MSS),
            in_ack(1500, 9 * m),
            out_data(1501, 9 * m, MSS),
            out_data(1502, 10 * m, MSS),
            out_data(1503, 11 * m, MSS),
            out_data(1504, 12 * m, MSS),
            in_ack(1600, 13 * m),
        ]);
        let retrans_stalls: Vec<_> = stalls
            .iter()
            .filter(|s| matches!(s.cause, StallCause::Retransmission(_)))
            .collect();
        assert_eq!(retrans_stalls.len(), 1, "stalls: {stalls:?}");
        assert_eq!(
            retrans_stalls[0].cause,
            StallCause::Retransmission(RetransCause::SmallCwnd)
        );
    }

    #[test]
    fn small_rwnd_retransmission_stall() {
        let m = MSS as u64;
        // The client advertises a 2-MSS window throughout.
        let small = |t: u64, ack: u64| {
            let mut r = in_ack(t, ack);
            r.rwnd = 2 * m;
            r
        };
        let mut req = in_req(0, 0);
        req.rwnd = 2 * m;
        let stalls = analyze(vec![
            req,
            out_data(10, 0, MSS),
            small(110, m),
            out_data(111, m, MSS),
            out_data(112, 2 * m, MSS),
            // Segment at m is lost; only one dupack possible; timeout.
            small(212, m),
            out_data(1211, m, MSS),
            small(1311, 3 * m),
            // The response continues (so the loss was not at the tail).
            out_data(1312, 3 * m, MSS),
            out_data(1313, 4 * m, MSS),
            out_data(1314, 5 * m, MSS),
            out_data(1315, 6 * m, MSS),
            small(1415, 7 * m),
        ]);
        let retrans: Vec<_> = stalls
            .iter()
            .filter(|s| matches!(s.cause, StallCause::Retransmission(_)))
            .collect();
        assert_eq!(retrans.len(), 1, "stalls: {stalls:?}");
        assert_eq!(
            retrans[0].cause,
            StallCause::Retransmission(RetransCause::SmallRwnd)
        );
    }

    #[test]
    fn continuous_loss_stall() {
        let m = MSS as u64;
        let mut recs = vec![in_req(0, 0)];
        // Warm up RTT.
        recs.push(out_data(10, 0, MSS));
        recs.push(in_ack(110, m));
        // A burst of 6, all lost: total silence, then timeout retransmit.
        for i in 1..=6u64 {
            recs.push(out_data(110 + i, i * m, MSS));
        }
        recs.push(out_data(1200, m, MSS)); // RTO retransmission of head
        recs.push(in_ack(1300, 2 * m));
        // Continue the response so the head is not a tail segment.
        for i in 7..=10u64 {
            recs.push(out_data(1301 + i, i * m, MSS));
        }
        recs.push(in_ack(1500, 11 * m));
        let stalls = analyze(recs);
        let retrans: Vec<_> = stalls
            .iter()
            .filter(|s| matches!(s.cause, StallCause::Retransmission(_)))
            .collect();
        assert_eq!(retrans.len(), 1, "stalls: {stalls:?}");
        assert_eq!(
            retrans[0].cause,
            StallCause::Retransmission(RetransCause::ContinuousLoss)
        );
    }

    #[test]
    fn ack_delay_stall_detected_via_dsack() {
        let m = MSS as u64;
        // 5 packets in flight (not small), one ACK comes back late; the
        // sender times out, retransmits, and the client DSACKs.
        let mut recs = vec![in_req(0, 0)];
        recs.push(out_data(10, 0, MSS));
        recs.push(in_ack(110, m));
        for i in 1..=5u64 {
            recs.push(out_data(110 + i, i * m, MSS));
        }
        // One dupack-ish ACK so it's not "continuous loss" silence.
        recs.push(in_ack(211, 2 * m));
        // Timeout retransmission of seg at 2m.
        recs.push(out_data(1300, 2 * m, MSS));
        // The delayed ACK arrives along with a DSACK for the retransmission.
        let mut d = in_ack(1400, 6 * m);
        d.sack = [SackBlock::new(2 * m, 3 * m)].into();
        d.dsack = true;
        recs.push(d);
        // Response continues.
        for i in 6..=9u64 {
            recs.push(out_data(1401 + i, i * m, MSS));
        }
        recs.push(in_ack(1600, 10 * m));
        let stalls = analyze(recs);
        let retrans: Vec<_> = stalls
            .iter()
            .filter(|s| matches!(s.cause, StallCause::Retransmission(_)))
            .collect();
        assert_eq!(retrans.len(), 1, "stalls: {stalls:?}");
        assert_eq!(
            retrans[0].cause,
            StallCause::Retransmission(RetransCause::AckDelayLoss)
        );
    }

    #[test]
    fn no_stalls_in_smooth_transfer() {
        let m = MSS as u64;
        let mut recs = vec![in_req(0, 0)];
        for i in 0..20u64 {
            recs.push(out_data(10 + i * 50, i * m, MSS));
            recs.push(in_ack(10 + i * 50 + 40, (i + 1) * m));
        }
        assert!(analyze(recs).is_empty());
    }

    #[test]
    fn handshake_gaps_are_not_stalls() {
        let m = MSS as u64;
        let mut syn = TraceRecord::pure_ack(SimTime::ZERO, Direction::In, 0, 65535);
        syn.flags = SegFlags::SYN;
        let mut synack = TraceRecord::pure_ack(SimTime::from_millis(1), Direction::Out, 0, 1 << 20);
        synack.flags = SegFlags::SYN_ACK;
        // 5s between handshake and first request: not counted.
        let stalls = analyze(vec![
            syn,
            synack,
            in_req(5000, 0),
            out_data(5010, 0, MSS),
            in_ack(5110, m),
        ]);
        assert!(stalls.is_empty(), "{stalls:?}");
    }
}

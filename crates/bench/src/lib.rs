//! # bench-suite — the paper's evaluation as benchmarks
//!
//! Two self-contained bench targets (`harness = false`, no external
//! framework — the workspace builds fully offline):
//!
//! * `paper` — regenerates each table and figure of the evaluation at the
//!   quick scale and times the full pipeline behind it (synthesis →
//!   simulation → TAPO → aggregation), plus a serial-vs-parallel engine
//!   comparison. Run with `cargo bench -p bench-suite --bench paper`.
//! * `micro` — microbenchmarks of the substrates: per-flow simulation,
//!   trace analysis, pcap encode/decode and scoreboard operations.
//!
//! The library hosts the shared timing harness and dataset helper.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

use experiments::{Dataset, Scale};

/// Build the shared quick-scale dataset once per bench process.
pub fn quick_dataset() -> Dataset {
    Dataset::build(Scale::quick())
}

/// Minimal timing harness: adaptive iteration count, median-of-batches
/// reporting, optional substring filter from the command line (the
/// arguments `cargo bench` forwards after `--`).
pub struct Harness {
    filter: Option<String>,
    /// Target wall time per benchmark (split over batches).
    budget: Duration,
}

impl Harness {
    /// Parse the bench target's command line: the first non-flag argument
    /// is a substring filter on benchmark names. Flags (`--bench`, the
    /// target name Cargo passes) are ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "paper" && a != "micro");
        Harness {
            filter,
            budget: Duration::from_millis(600),
        }
    }

    fn runs(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Time `f`, printing ns/iter (median of 5 batches) and spread.
    /// Returns the median per-iteration time, or `None` if filtered out.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<Duration> {
        self.bench_inner(name, None, &mut f)
    }

    /// Like [`Harness::bench`], additionally reporting `bytes`/s throughput.
    pub fn bench_bytes<T>(
        &self,
        name: &str,
        bytes: u64,
        mut f: impl FnMut() -> T,
    ) -> Option<Duration> {
        self.bench_inner(name, Some(("B", bytes)), &mut f)
    }

    /// Like [`Harness::bench`], additionally reporting `elems`/s throughput.
    pub fn bench_elems<T>(
        &self,
        name: &str,
        elems: u64,
        mut f: impl FnMut() -> T,
    ) -> Option<Duration> {
        self.bench_inner(name, Some(("elem", elems)), &mut f)
    }

    fn bench_inner<T>(
        &self,
        name: &str,
        throughput: Option<(&str, u64)>,
        f: &mut dyn FnMut() -> T,
    ) -> Option<Duration> {
        if !self.runs(name) {
            return None;
        }
        // Warm up and size the batch so each of the 5 batches runs for
        // roughly a fifth of the budget.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = self.budget / 5;
        let iters = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut batches: Vec<Duration> = (0..5)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed() / iters as u32
            })
            .collect();
        batches.sort();
        let median = batches[2];
        let spread = batches[4].saturating_sub(batches[0]);
        let rate = throughput
            .map(|(unit, n)| {
                let per_sec = n as f64 / median.as_secs_f64().max(1e-12);
                format!("  {}/s", human_rate(per_sec, unit))
            })
            .unwrap_or_default();
        println!(
            "{name:<44} {:>12}/iter  (±{}, {iters} iters×5){rate}",
            human_time(median),
            human_time(spread),
        );
        Some(median)
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_args()
    }
}

/// Extract the first number following `"key":` in a JSON text. The
/// workspace's [`tapo::json::Json`] only *writes* JSON; the engine bench's
/// regression gate needs to read two numbers back out of the committed
/// `BENCH_engine.json`, and a field scan is all that takes. Returns `None`
/// if the key is absent or not followed by a number.
pub fn extract_json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract `key` from inside the named top-level `section` object of a
/// JSON text (e.g. `current.flows_per_sec_1t` in `BENCH_engine.json`).
/// A bare [`extract_json_number`] scan finds the *first* occurrence of the
/// key anywhere in the file — in the committed layout that is the
/// `baseline_pre_pr` section, not the current run — so every gate read
/// must be section-scoped. Only flat (non-nested) sections are supported,
/// which is all the bench schema uses.
pub fn section_field(text: &str, section: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{section}\"");
    let at = text.find(&needle)?;
    let body = &text[at..];
    let open = body.find('{')?;
    let end = body[open..].find('}').map(|e| open + e)?;
    extract_json_number(&body[open..end], key)
}

/// Peak resident-set size of this process in bytes (the `VmHWM` high-water
/// mark from `/proc/self/status`). Returns `None` off Linux — the bench
/// reports it as a memory-footprint proxy, not a portable measurement.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}k{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}{unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_closure() {
        let h = Harness {
            filter: None,
            budget: Duration::from_millis(5),
        };
        let mut n = 0u64;
        let d = h.bench("trivial", || {
            n += 1;
            n
        });
        assert!(d.is_some());
    }

    #[test]
    fn harness_filter_skips_nonmatching() {
        let h = Harness {
            filter: Some("nomatch".into()),
            budget: Duration::from_millis(5),
        };
        assert!(h.bench("other", || 1).is_none());
    }

    #[test]
    fn extract_json_number_finds_nested_fields() {
        let text = r#"{ "a": { "flows_per_sec_1t": 123.5 }, "b": -2e3 }"#;
        assert_eq!(extract_json_number(text, "flows_per_sec_1t"), Some(123.5));
        assert_eq!(extract_json_number(text, "b"), Some(-2000.0));
        assert_eq!(extract_json_number(text, "missing"), None);
        assert_eq!(extract_json_number(r#"{"a": "str"}"#, "a"), None);
    }

    #[test]
    fn section_field_scopes_to_the_named_section() {
        let text = r#"{
            "baseline_pre_pr": { "flows_per_sec_1t": 910.5, "peak_rss_bytes": 111 },
            "current": { "flows_per_sec_1t": 1496.8, "peak_rss_bytes": 222 }
        }"#;
        assert_eq!(
            section_field(text, "current", "flows_per_sec_1t"),
            Some(1496.8)
        );
        assert_eq!(
            section_field(text, "current", "peak_rss_bytes"),
            Some(222.0)
        );
        assert_eq!(
            section_field(text, "baseline_pre_pr", "flows_per_sec_1t"),
            Some(910.5)
        );
        assert_eq!(section_field(text, "current", "missing"), None);
        assert_eq!(section_field(text, "absent", "flows_per_sec_1t"), None);
        // The unscoped scan demonstrates the trap section_field exists for:
        // it reads the baseline, not the current value.
        assert_eq!(extract_json_number(text, "flows_per_sec_1t"), Some(910.5));
    }

    #[test]
    fn peak_rss_reports_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }

    #[test]
    fn human_units_format() {
        assert_eq!(human_time(Duration::from_nanos(500)), "500ns");
        assert_eq!(human_time(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(human_rate(2_500_000.0, "B"), "2.50MB");
    }
}

//! # bench-suite — the paper's evaluation as benchmarks
//!
//! Two Criterion targets:
//!
//! * `paper` — regenerates each table and figure of the evaluation at the
//!   quick scale and times the full pipeline behind it (synthesis →
//!   simulation → TAPO → aggregation). Run with
//!   `cargo bench -p bench-suite --bench paper`.
//! * `micro` — microbenchmarks of the substrates: per-flow simulation,
//!   trace analysis, pcap encode/decode and scoreboard operations.
//!
//! The library itself only hosts shared helpers for the two targets.

#![forbid(unsafe_code)]

use experiments::{Dataset, Scale};

/// Build the shared quick-scale dataset once per bench process.
pub fn quick_dataset() -> Dataset {
    Dataset::build(Scale::quick())
}

//! Microbenchmarks of the substrates: how fast the simulator, analyzer and
//! trace codec run — the numbers that bound how large a corpus the `repro`
//! harness can synthesize per second.

use bench_suite::Harness;
use simnet::loss::LossSpec;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use tapo::{analyze_flow, AnalyzerConfig};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::scoreboard::Scoreboard;
use tcp_trace::pcap::{PcapReader, PcapWriter};
use tcp_trace::record::SackBlock;
use workloads::{simulate_flow, FlowSpec, PathSpec};

fn flow_simulation(h: &Harness) {
    let spec = FlowSpec::response_bytes(1_000_000);
    let path = PathSpec {
        rtt: SimDuration::from_millis(100),
        loss: LossSpec::bursty(0.03, SimDuration::from_millis(80)),
        ..PathSpec::default()
    };
    for (name, mech) in [
        ("simulate_flow/native_1MB", RecoveryMechanism::Native),
        ("simulate_flow/srto_1MB", RecoveryMechanism::srto()),
    ] {
        let mut seed = 0u64;
        h.bench_bytes(name, 1_000_000, || {
            seed += 1;
            simulate_flow(&spec, &path, mech, seed).trace.records.len()
        });
    }
}

fn trace_analysis(h: &Harness) {
    let spec = FlowSpec::response_bytes(1_000_000);
    let path = PathSpec {
        rtt: SimDuration::from_millis(100),
        loss: LossSpec::bursty(0.03, SimDuration::from_millis(80)),
        ..PathSpec::default()
    };
    let out = simulate_flow(&spec, &path, RecoveryMechanism::Native, 7);
    h.bench_elems(
        "tapo/analyze_1MB_flow",
        out.trace.records.len() as u64,
        || {
            analyze_flow(&out.trace, AnalyzerConfig::default())
                .stalls
                .len()
        },
    );

    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf).unwrap();
    w.write_flow(&out.trace).unwrap();
    w.finish().unwrap();
    let pcap_bytes = buf.len() as u64;
    h.bench_bytes("pcap/write_1MB_flow", pcap_bytes, || {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_flow(&out.trace).unwrap();
        w.finish().unwrap();
        buf.len()
    });
    h.bench_bytes("pcap/read_1MB_flow", pcap_bytes, || {
        PcapReader::read_all(&buf[..]).unwrap().len()
    });
}

fn scoreboard_ops(h: &Harness) {
    h.bench_elems("scoreboard/transmit_sack_ack_1000", 1_000, || {
        let mut sb = Scoreboard::new();
        let mss = 1448u32;
        for i in 0..1_000u64 {
            sb.transmit_new(SimTime::from_micros(i), mss);
        }
        sb.apply_sack(&[SackBlock::new(500 * 1448, 900 * 1448)]);
        sb.mark_lost_fack(3, mss);
        sb.ack_to(SimTime::from_millis(100), 1_000 * 1448);
        sb.packets_out()
    });
}

fn loss_models(h: &Harness) {
    let spec = LossSpec::bursty(0.04, SimDuration::from_millis(100));
    h.bench_elems("loss_model/gilbert_elliott_10k", 10_000, || {
        let mut rng = SimRng::seed(1);
        let mut m = spec.build(&mut rng);
        let mut drops = 0u32;
        for i in 0..10_000u64 {
            if m.should_drop(SimTime::from_micros(i * 300), &mut rng) {
                drops += 1;
            }
        }
        drops
    });
}

fn main() {
    let h = Harness::from_args();
    flow_simulation(&h);
    trace_analysis(&h);
    scoreboard_ops(&h);
    loss_models(&h);
}

//! Microbenchmarks of the substrates: how fast the simulator, analyzer and
//! trace codec run — the numbers that bound how large a corpus the `repro`
//! harness can synthesize per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use simnet::loss::LossSpec;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use tapo::{analyze_flow, AnalyzerConfig};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::scoreboard::Scoreboard;
use tcp_trace::pcap::{PcapReader, PcapWriter};
use tcp_trace::record::SackBlock;
use workloads::{simulate_flow, FlowSpec, PathSpec};

fn flow_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_flow");
    let spec = FlowSpec::response_bytes(1_000_000);
    let path = PathSpec {
        rtt: SimDuration::from_millis(100),
        loss: LossSpec::bursty(0.03, SimDuration::from_millis(80)),
        ..PathSpec::default()
    };
    g.throughput(Throughput::Bytes(1_000_000));
    g.sample_size(20);
    for (name, mech) in [
        ("native_1MB", RecoveryMechanism::Native),
        ("srto_1MB", RecoveryMechanism::srto()),
    ] {
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                simulate_flow(&spec, &path, mech, seed).trace.records.len()
            })
        });
    }
    g.finish();
}

fn trace_analysis(c: &mut Criterion) {
    let spec = FlowSpec::response_bytes(1_000_000);
    let path = PathSpec {
        rtt: SimDuration::from_millis(100),
        loss: LossSpec::bursty(0.03, SimDuration::from_millis(80)),
        ..PathSpec::default()
    };
    let out = simulate_flow(&spec, &path, RecoveryMechanism::Native, 7);
    let mut g = c.benchmark_group("tapo");
    g.throughput(Throughput::Elements(out.trace.records.len() as u64));
    g.bench_function("analyze_1MB_flow", |b| {
        b.iter(|| {
            analyze_flow(&out.trace, AnalyzerConfig::default())
                .stalls
                .len()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("pcap");
    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf).unwrap();
    w.write_flow(&out.trace).unwrap();
    w.finish().unwrap();
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("write_1MB_flow", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            let mut w = PcapWriter::new(&mut buf).unwrap();
            w.write_flow(&out.trace).unwrap();
            w.finish().unwrap();
            buf.len()
        })
    });
    g.bench_function("read_1MB_flow", |b| {
        b.iter(|| PcapReader::read_all(&buf[..]).unwrap().len())
    });
    g.finish();
}

fn scoreboard_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("scoreboard");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("transmit_sack_ack_1000", |b| {
        b.iter(|| {
            let mut sb = Scoreboard::new();
            let mss = 1448u32;
            for i in 0..1_000u64 {
                sb.transmit_new(SimTime::from_micros(i), mss);
            }
            sb.apply_sack(&[SackBlock::new(500 * 1448, 900 * 1448)]);
            sb.mark_lost_fack(3, mss);
            sb.ack_to(SimTime::from_millis(100), 1_000 * 1448);
            sb.packets_out()
        })
    });
    g.finish();
}

fn loss_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("loss_model");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("gilbert_elliott_10k", |b| {
        let spec = LossSpec::bursty(0.04, SimDuration::from_millis(100));
        b.iter(|| {
            let mut rng = SimRng::seed(1);
            let mut m = spec.build(&mut rng);
            let mut drops = 0u32;
            for i in 0..10_000u64 {
                if m.should_drop(SimTime::from_micros(i * 300), &mut rng) {
                    drops += 1;
                }
            }
            drops
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    flow_simulation,
    trace_analysis,
    scoreboard_ops,
    loss_models
);
criterion_main!(micro);

//! The engine micro-bench: end-to-end flows/sec through the full
//! sample → simulate → analyze pipeline across a thread-scaling curve,
//! emitted machine-readably as `BENCH_engine.json` so every PR has a
//! perf trajectory to compare against.
//!
//! Run with `cargo bench -p bench-suite --bench engine`. Knobs:
//!
//! * `BENCH_ENGINE_FLOWS` — flows per service (default 40; CI uses a
//!   smaller count). flows/sec is normalized, so counts are comparable.
//! * `BENCH_ENGINE_THREADS` — cap on the scaling curve's thread counts.
//!   The curve is `[1, 2, 4, all-cores]`, deduped and clipped to
//!   `min(cap, cores_available)`; CI smoke runs with a cap of 2.
//! * `BENCH_ENGINE_OUT` — output path (default `BENCH_engine.json` at the
//!   workspace root).
//! * `BENCH_LIVE_FLOWS` — flows per service for the live-path phases
//!   (default 3334, i.e. ≥ 10k flows total; CI smoke uses a small count).
//! * `BENCH_LIVE_SHARDS` — shard count for a live child phase (set by the
//!   parent while sweeping the per-shard-count scaling curve).
//! * `BENCH_FLEET_DAEMONS` — simulated daemon report streams for the
//!   fleet aggregation phase (default 8).
//! * `BENCH_FLEET_INTERVALS` — interval records per daemon stream
//!   (default 2000; CI smoke uses a smaller count). records/sec is
//!   normalized, so counts are comparable.
//! * `-- --gate` — regression-gate mode, comparing this run against the
//!   *committed* JSON's `current` section:
//!   - single-thread flows/sec must be ≥ 80% of the committed value;
//!   - live-path packets/sec must be ≥ 80% of the committed `live` value;
//!   - the million-flow two-tier phase must shed **zero** flows, and its
//!     packets/sec (≥ 80%) and peak RSS (≤ 120%) gate against the
//!     committed `live_1m` section;
//!   - peak RSS must be ≤ 120% of the committed value; each phase runs in
//!     a child process, so this gate sees only the engine curve and the
//!     per-phase gates see only their own pipeline — capture generation
//!     can no longer mask a pipeline memory regression;
//!   - when the capture holds more flows than the cap, the cap must have
//!     actually shed flows and the high-water mark must respect it;
//!   - on machines with ≥ 2 cores, the best multi-shard live pkts/s must
//!     be at least the single-shard pkts/s (the parallel front end must
//!     not cost throughput);
//!   - the fleet phase must aggregate every record it was fed (an
//!     absolute count check), and its records/sec (≥ 80%) and peak RSS
//!     (≤ 120%) gate against the committed `fleet` section;
//!   - on machines with ≥ 4 cores (and a curve reaching ≥ 4 threads),
//!     all-thread flows/sec must exceed 1.5× single-thread. Scaling
//!     gates are skipped — not failed — on smaller machines, so the
//!     single-core CI runner still gates throughput and memory.
//!
//! The emitted file keeps two sections: `baseline_pre_pr` (the tree
//! before the PR 2 hot-path overhaul, preserved from the committed file)
//! and `current` (this run), plus — on multi-core machines — the measured
//! thread-`scaling` curve, and the `live` / `live_1m` streaming-path
//! phases with their per-shard-count `live_scaling` / `live_1m_scaling`
//! curves. The ratio of the sections is the committed speedup. On a
//! 1-core box the multi-thread points are oversubscription noise that
//! reads as a regression, so `flows_per_sec_nt` and the scaling section
//! are omitted entirely rather than recorded.
//!
//! Phase isolation: `peak_rss_bytes` reads `VmHWM`, which is process-wide
//! and monotone, so phases that must report *their own* memory (the live
//! pipelines) re-execute this binary with `BENCH_ENGINE_PHASE` set and
//! report one JSON line on stdout. The capture is generated once (in a
//! child too, so its merge window never counts against anyone) and shared
//! by both live phases.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::time::Instant;

use bench_suite::{extract_json_number, peak_rss_bytes, section_field};
use experiments::{Dataset, Engine, Scale};
use simnet::time::SimDuration;
use tapo::json::Json;
use tapo::live::{self, DaemonId, LiveConfig, TierConfig};
use tapo::{aggregate, read_report_files, FleetConfig};
use workloads::{generate_interleaved, LiveGenSpec};

/// One measured configuration: flows/sec over `repeats` dataset builds
/// (median), at the engine's thread count.
///
/// Measures the *streaming* build — records flow straight from the
/// simulator into the analyzer, no per-flow trace materialization — which
/// is the hot path the engine exposes for anything that does not need raw
/// traces. Analyses and breakdowns are bit-identical to the materializing
/// `Dataset::build_with` (asserted by `fused_pipeline_matches_two_pass_pipeline`).
fn measure(engine: &Engine, scale: Scale, repeats: usize) -> f64 {
    let total_flows = (scale.flows_per_service * workloads::Service::ALL.len()) as f64;
    // Warm-up build: page in code, warm allocator arenas.
    std::hint::black_box(Dataset::build_streaming(scale, engine));
    let mut secs: Vec<f64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(Dataset::build_streaming(scale, engine));
            t.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    total_flows / secs[repeats / 2]
}

fn out_path() -> PathBuf {
    std::env::var_os("BENCH_ENGINE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
        })
}

/// The thread counts to measure: `[1, 2, 4, all-cores]`, deduped, clipped
/// to `cap`. Deliberately *not* clipped to the core count — on a small
/// machine the oversubscribed points still exercise the parallel engine
/// and record its threading overhead; only the scaling *gate* is
/// conditional on real cores. Always contains 1 so the throughput gate
/// can run.
fn curve(cores: usize, cap: usize) -> Vec<usize> {
    let cap = cap.max(1);
    let mut counts: Vec<usize> = [1, 2, 4, cores].into_iter().filter(|&t| t <= cap).collect();
    if counts.is_empty() {
        counts.push(1);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// At a 5 ms mean gap the 10k-flow capture peaks just under 1000
/// concurrent flows; a cap of 512 keeps LRU shedding on the measured
/// path without starving most flows of their packets.
const LIVE_CAP: usize = 512;

/// The two-tier phase's admission ceiling — the paper-scale "million
/// concurrent flows" deployment shape. Nothing should ever be shed.
const LIVE_1M_CAP: usize = 1_000_000;

/// What one live-path child phase measured, parsed back from its single
/// JSON stdout line. Tier fields are zero for the heavy-only phase.
struct LiveRun {
    flows: u64,
    packets: u64,
    packets_per_sec: f64,
    flows_shed: u64,
    max_active_flows: u64,
    promotions: u64,
    demotions: u64,
    max_heavy_flows: u64,
    peak_rss_bytes: u64,
    cap: usize,
    batch_size: u64,
    wall_secs: f64,
}

/// Stream the capture at `path` through `tapo::live::run` under `cfg` and
/// print the phase result as one JSON line (the parent parses it back with
/// [`extract_json_number`]). Runs inside a child process so
/// `peak_rss_bytes` sees *only* this pipeline's memory.
fn live_phase(path: &Path, cfg: &LiveConfig, cap: usize) -> std::io::Result<()> {
    let t = Instant::now();
    let result = live::run(BufReader::new(File::open(path)?), cfg, |_| {});
    let secs = t.elapsed().as_secs_f64();
    let summary = result.map_err(|e| std::io::Error::other(e.to_string()))?;
    let doc = Json::obj([
        ("flows", Json::Int(summary.flows_seen as i64)),
        ("packets", Json::Int(summary.packets as i64)),
        (
            "packets_per_sec",
            Json::Num(summary.packets as f64 / secs.max(1e-12)),
        ),
        ("flows_shed", Json::Int(summary.flows_shed as i64)),
        (
            "max_active_flows",
            Json::Int(summary.max_active_flows as i64),
        ),
        ("promotions", Json::Int(summary.promotions as i64)),
        ("demotions", Json::Int(summary.demotions as i64)),
        ("max_heavy_flows", Json::Int(summary.max_heavy_flows as i64)),
        (
            "peak_rss_bytes",
            Json::Int(peak_rss_bytes().unwrap_or(0) as i64),
        ),
        ("max_flows_cap", Json::Int(cap as i64)),
        ("batch_size", Json::Int(cfg.batch as i64)),
        ("wall_secs", Json::Num(secs)),
    ]);
    println!("{}", doc.compact());
    Ok(())
}

/// Shard count for a live child phase (`BENCH_LIVE_SHARDS`, default 1 —
/// the inline path, which stays the section baseline for comparability
/// across machines).
fn phase_shards() -> usize {
    std::env::var("BENCH_LIVE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Simulated daemon streams for the fleet phase (`BENCH_FLEET_DAEMONS`,
/// default 8 — the issue's "cluster of front ends" floor).
fn fleet_daemons() -> usize {
    std::env::var("BENCH_FLEET_DAEMONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Interval records per simulated daemon stream (`BENCH_FLEET_INTERVALS`,
/// default 2000; CI smoke uses a smaller count).
fn fleet_intervals() -> usize {
    std::env::var("BENCH_FLEET_INTERVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

/// Per-daemon report file path under the parent-chosen prefix.
fn fleet_stream_path(prefix: &Path, daemon: usize) -> PathBuf {
    let mut p = prefix.as_os_str().to_os_string();
    p.push(format!("_d{daemon}.jsonl"));
    PathBuf::from(p)
}

/// Write the simulated daemon report streams: one real `tapo live` run
/// supplies template interval records (sketches on), which are then
/// stamped with per-daemon ids and tiled along the time axis until every
/// daemon has its record quota. This keeps the record *content* honest —
/// real breakdowns, real per-port slices, real sketches — while the
/// stream length scales independently of capture size.
fn fleet_gen_phase(prefix: &Path) -> std::io::Result<()> {
    use std::io::Write;
    let daemons = fleet_daemons();
    let per_daemon = fleet_intervals();
    let spec = LiveGenSpec {
        flows_per_service: 30,
        seed: 2015,
        mean_gap: SimDuration::from_millis(5),
        ..Default::default()
    };
    let mut capture = Vec::new();
    generate_interleaved(&mut capture, &spec)?;
    let cfg = LiveConfig {
        interval: SimDuration::from_millis(250),
        ..Default::default()
    };
    let mut templates = Vec::new();
    live::run(&capture[..], &cfg, |r| templates.push(r.clone()))
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    if templates.is_empty() {
        return Err(std::io::Error::other(
            "capture produced no interval reports",
        ));
    }
    let span = templates.last().expect("non-empty").end_us;
    let mut records = 0u64;
    for d in 0..daemons {
        let id = DaemonId::new(&format!("fe{d}")).expect("bench ids are valid");
        let mut out = BufWriter::new(File::create(fleet_stream_path(prefix, d))?);
        for k in 0..per_daemon {
            let mut rec = templates[k % templates.len()].clone();
            let shift = (k / templates.len()) as u64 * span;
            rec.daemon = id;
            rec.interval = k as u64;
            rec.start_us += shift;
            rec.end_us += shift;
            writeln!(out, "{}", rec.to_json().compact())?;
            records += 1;
        }
        out.into_inner()?.sync_all()?;
    }
    let doc = Json::obj([
        ("daemons", Json::Int(daemons as i64)),
        ("records", Json::Int(records as i64)),
    ]);
    println!("{}", doc.compact());
    Ok(())
}

/// Ingest + aggregate the simulated daemon streams once and report fleet
/// throughput. Runs in a child process so `peak_rss_bytes` sees only the
/// aggregation pipeline's memory.
fn fleet_phase(prefix: &Path) -> std::io::Result<()> {
    let paths: Vec<PathBuf> = (0..fleet_daemons())
        .map(|d| fleet_stream_path(prefix, d))
        .collect();
    let t = Instant::now();
    let (records, skipped) =
        read_report_files(&paths, 0).map_err(|e| std::io::Error::other(e.to_string()))?;
    let out = aggregate(&records, skipped, &FleetConfig::default());
    let secs = t.elapsed().as_secs_f64();
    let doc = Json::obj([
        ("daemons", Json::Int(out.summary.daemons as i64)),
        ("records", Json::Int(out.summary.records as i64)),
        ("buckets", Json::Int(out.summary.buckets as i64)),
        ("alerts", Json::Int(out.summary.alerts as i64)),
        (
            "records_per_sec",
            Json::Num(out.summary.records as f64 / secs.max(1e-12)),
        ),
        (
            "peak_rss_bytes",
            Json::Int(peak_rss_bytes().unwrap_or(0) as i64),
        ),
        ("wall_secs", Json::Num(secs)),
    ]);
    println!("{}", doc.compact());
    Ok(())
}

/// Child-phase dispatch: generate the shared capture, run one live
/// pipeline over it, or run a fleet phase, then exit. The capture path
/// arrives via `BENCH_LIVE_CAPTURE`, the fleet stream prefix via
/// `BENCH_FLEET_PREFIX` — both set by the parent.
fn run_child_phase(phase: &str) -> std::io::Result<()> {
    if phase == "fleet_gen" || phase == "fleet" {
        let prefix = PathBuf::from(
            std::env::var_os("BENCH_FLEET_PREFIX")
                .ok_or_else(|| std::io::Error::other("BENCH_FLEET_PREFIX not set"))?,
        );
        return if phase == "fleet_gen" {
            fleet_gen_phase(&prefix)
        } else {
            fleet_phase(&prefix)
        };
    }
    let path = PathBuf::from(
        std::env::var_os("BENCH_LIVE_CAPTURE")
            .ok_or_else(|| std::io::Error::other("BENCH_LIVE_CAPTURE not set"))?,
    );
    match phase {
        "gen" => {
            let flows_per_service: usize = std::env::var("BENCH_LIVE_FLOWS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(3334);
            let spec = LiveGenSpec {
                flows_per_service,
                seed: 2015,
                mean_gap: SimDuration::from_millis(5),
                ..Default::default()
            };
            let stats = generate_interleaved(BufWriter::new(File::create(&path)?), &spec)?;
            let doc = Json::obj([
                ("flows", Json::Int(stats.flows as i64)),
                ("packets", Json::Int(stats.packets as i64)),
            ]);
            println!("{}", doc.compact());
            Ok(())
        }
        "live" => {
            let cfg = LiveConfig {
                max_flows: LIVE_CAP,
                shards: phase_shards(),
                ..Default::default()
            };
            live_phase(&path, &cfg, LIVE_CAP)
        }
        "live_1m" => {
            let cfg = LiveConfig {
                max_flows: LIVE_1M_CAP,
                tier: Some(TierConfig::default()),
                shards: phase_shards(),
                ..Default::default()
            };
            live_phase(&path, &cfg, LIVE_1M_CAP)
        }
        other => Err(std::io::Error::other(format!(
            "unknown BENCH_ENGINE_PHASE {other:?}"
        ))),
    }
}

/// Re-execute this bench binary as a one-phase child and return its JSON
/// stdout line. Exits the whole bench on child failure — a phase that
/// cannot run is a broken bench, not a skippable gate.
fn spawn_phase(phase: &str, capture: &Path, shards: usize) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("--bench") // libtest harness arg, ignored by our main
        .env("BENCH_ENGINE_PHASE", phase)
        .env("BENCH_LIVE_CAPTURE", capture)
        .env("BENCH_LIVE_SHARDS", shards.to_string())
        .output()
        .expect("spawn bench child phase");
    if !out.status.success() {
        eprintln!("child phase {phase} failed:");
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
        std::process::exit(1);
    }
    String::from_utf8(out.stdout).expect("child phase stdout is UTF-8")
}

/// Like [`spawn_phase`] but for the fleet phases, which take a report
/// stream prefix instead of a capture path. `BENCH_FLEET_DAEMONS` and
/// `BENCH_FLEET_INTERVALS` are inherited from the parent's environment.
fn spawn_fleet(phase: &str, prefix: &Path) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("--bench") // libtest harness arg, ignored by our main
        .env("BENCH_ENGINE_PHASE", phase)
        .env("BENCH_FLEET_PREFIX", prefix)
        .output()
        .expect("spawn bench child phase");
    if !out.status.success() {
        eprintln!("child phase {phase} failed:");
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
        std::process::exit(1);
    }
    String::from_utf8(out.stdout).expect("child phase stdout is UTF-8")
}

/// What the fleet child phase measured.
struct FleetRun {
    daemons: u64,
    records: u64,
    buckets: u64,
    alerts: u64,
    records_per_sec: f64,
    peak_rss_bytes: u64,
    wall_secs: f64,
}

/// Parse the fleet child's JSON line into a [`FleetRun`].
fn parse_fleet(text: &str) -> FleetRun {
    let field = |key: &str| extract_json_number(text, key).unwrap_or(0.0);
    FleetRun {
        daemons: field("daemons") as u64,
        records: field("records") as u64,
        buckets: field("buckets") as u64,
        alerts: field("alerts") as u64,
        records_per_sec: field("records_per_sec"),
        peak_rss_bytes: field("peak_rss_bytes") as u64,
        wall_secs: field("wall_secs"),
    }
}

/// Parse one live child's JSON line into a [`LiveRun`].
fn parse_live(text: &str, cap: usize) -> LiveRun {
    let field = |key: &str| extract_json_number(text, key).unwrap_or(0.0);
    LiveRun {
        flows: field("flows") as u64,
        packets: field("packets") as u64,
        packets_per_sec: field("packets_per_sec"),
        flows_shed: field("flows_shed") as u64,
        max_active_flows: field("max_active_flows") as u64,
        promotions: field("promotions") as u64,
        demotions: field("demotions") as u64,
        max_heavy_flows: field("max_heavy_flows") as u64,
        peak_rss_bytes: field("peak_rss_bytes") as u64,
        cap,
        batch_size: field("batch_size") as u64,
        wall_secs: field("wall_secs"),
    }
}

fn main() {
    if let Ok(phase) = std::env::var("BENCH_ENGINE_PHASE") {
        if let Err(e) = run_child_phase(&phase) {
            eprintln!("phase {phase} failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let gate = std::env::args().any(|a| a == "--gate");
    let flows: usize = std::env::var("BENCH_ENGINE_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let cap: usize = std::env::var("BENCH_ENGINE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let scale = Scale {
        flows_per_service: flows,
        seed: 2015,
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out = out_path();
    let committed = std::fs::read_to_string(&out).unwrap_or_default();

    // On a 1-core box every multi-thread (and multi-shard) point is pure
    // oversubscription noise that reads as a regression, so the curves
    // and their gates are skipped — not failed — below 2 cores.
    let multi = cores >= 2;
    let counts = if multi { curve(cores, cap) } else { vec![1] };
    let mut points: Vec<(usize, f64)> = Vec::new();
    for &t in &counts {
        let fps = measure(&Engine::new(t), scale, 5);
        let label = format!("engine/flows_per_sec_{t}t");
        let note = if t == 1 {
            format!("({flows} flows/service)")
        } else {
            format!("(scaling {:.2}x vs 1t)", fps / points[0].1.max(1e-12))
        };
        println!("{label:<36} {fps:>12.1} flows/s  {note}");
        points.push((t, fps));
    }
    let fps_1t = points[0].1;
    let (threads_max, fps_nt) = *points.last().expect("curve is non-empty");

    // Live phases, each in its own child process: generate the interleaved
    // capture once (`BENCH_LIVE_FLOWS` is inherited by the gen child), then
    // stream it through the heavy-only capped pipeline and the two-tier
    // million-flow pipeline. The capture file is shared, the address spaces
    // are not — each phase reports its own peak RSS.
    let capture = std::env::temp_dir().join(format!("tapo_live_bench_{}.pcap", std::process::id()));
    spawn_phase("gen", &capture, 1);
    let live = parse_live(&spawn_phase("live", &capture, 1), LIVE_CAP);
    let live_1m = parse_live(&spawn_phase("live_1m", &capture, 1), LIVE_1M_CAP);
    // Per-shard-count scaling sweep. The single-shard (inline) run above
    // stays the primary `live`/`live_1m` section so committed baselines
    // compare like-for-like across machines; the extra shard counts only
    // feed the scaling curves and the multi-shard gate.
    let shard_counts: Vec<usize> = {
        let hi = cores.min(8);
        let mut v: Vec<usize> = [1, 2, 4, hi].into_iter().filter(|&s| s <= hi).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut live_curve: Vec<(usize, f64)> = vec![(1, live.packets_per_sec)];
    let mut live_1m_curve: Vec<(usize, f64)> = vec![(1, live_1m.packets_per_sec)];
    for &s in shard_counts.iter().filter(|&&s| s > 1) {
        let pps = parse_live(&spawn_phase("live", &capture, s), LIVE_CAP).packets_per_sec;
        live_curve.push((s, pps));
        let pps_1m = parse_live(&spawn_phase("live_1m", &capture, s), LIVE_1M_CAP).packets_per_sec;
        live_1m_curve.push((s, pps_1m));
    }
    let _ = std::fs::remove_file(&capture);
    // Fleet phase: N simulated daemon report streams, generated and then
    // aggregated in their own child processes (the aggregator's RSS must
    // not include stream generation).
    let fleet_prefix =
        std::env::temp_dir().join(format!("tapo_fleet_bench_{}", std::process::id()));
    let fleet_gen = spawn_fleet("fleet_gen", &fleet_prefix);
    let fleet_expected = extract_json_number(&fleet_gen, "records").unwrap_or(0.0) as u64;
    let fleet = parse_fleet(&spawn_fleet("fleet", &fleet_prefix));
    for d in 0..fleet_daemons() {
        let _ = std::fs::remove_file(fleet_stream_path(&fleet_prefix, d));
    }
    println!(
        "live/packets_per_sec                 {:>12.1} pkts/s  ({} flows, {} pkts, cap {}, shed {}, rss {:.1} MiB)",
        live.packets_per_sec,
        live.flows,
        live.packets,
        live.cap,
        live.flows_shed,
        live.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "live_1m/packets_per_sec              {:>12.1} pkts/s  ({} flows, shed {}, heavy peak {}, promoted {}, demoted {}, rss {:.1} MiB)",
        live_1m.packets_per_sec,
        live_1m.flows,
        live_1m.flows_shed,
        live_1m.max_heavy_flows,
        live_1m.promotions,
        live_1m.demotions,
        live_1m.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
    for (name, curve) in [("live", &live_curve), ("live_1m", &live_1m_curve)] {
        let base = curve[0].1.max(1e-12);
        for &(s, pps) in curve.iter().skip(1) {
            let label = format!("{name}/packets_per_sec_{s}sh");
            println!(
                "{label:<36} {pps:>12.1} pkts/s  (scaling {:.2}x vs 1 shard)",
                pps / base
            );
        }
    }

    println!(
        "fleet/records_per_sec                {:>12.1} rec/s  ({} daemons, {} records, {} buckets, {} alerts, rss {:.1} MiB)",
        fleet.records_per_sec,
        fleet.daemons,
        fleet.records,
        fleet.buckets,
        fleet.alerts,
        fleet.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );

    let rss = peak_rss_bytes().unwrap_or(0);
    println!(
        "engine/peak_rss                      {:>12.1} MiB  ({cores} cores available)",
        rss as f64 / (1024.0 * 1024.0)
    );

    if gate {
        let mut failed = false;
        match section_field(&committed, "current", "flows_per_sec_1t") {
            Some(baseline) if baseline > 0.0 => {
                let floor = 0.8 * baseline;
                if fps_1t < floor {
                    eprintln!(
                        "REGRESSION: {fps_1t:.1} flows/s single-thread is more than 20% below \
                         the committed baseline {baseline:.1} flows/s (floor {floor:.1})"
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok: {fps_1t:.1} flows/s >= 80% of committed {baseline:.1} flows/s"
                    );
                }
            }
            _ => println!("gate skipped: no committed baseline at {}", out.display()),
        }
        match section_field(&committed, "live", "packets_per_sec") {
            Some(baseline) if baseline > 0.0 => {
                let floor = 0.8 * baseline;
                if live.packets_per_sec < floor {
                    eprintln!(
                        "REGRESSION: live path {:.1} pkts/s is more than 20% below the \
                         committed baseline {baseline:.1} pkts/s (floor {floor:.1})",
                        live.packets_per_sec
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok: live {:.1} pkts/s >= 80% of committed {baseline:.1} pkts/s",
                        live.packets_per_sec
                    );
                }
            }
            _ => println!("gate skipped: no committed live baseline to compare against"),
        }
        if live.flows > live.cap as u64 {
            if live.flows_shed == 0 {
                eprintln!(
                    "REGRESSION: {} flows exceeded the cap of {} but none were shed",
                    live.flows, live.cap
                );
                failed = true;
            } else if live.max_active_flows > live.cap as u64 {
                eprintln!(
                    "REGRESSION: live high-water mark {} flows breaks the cap of {}",
                    live.max_active_flows, live.cap
                );
                failed = true;
            } else {
                println!(
                    "gate ok: live flow cap held ({} shed, high-water {} <= {})",
                    live.flows_shed, live.max_active_flows, live.cap
                );
            }
        } else {
            println!(
                "gate skipped: {} flows never reached the cap of {}",
                live.flows, live.cap
            );
        }
        // The two-tier phase's whole point is admitting every flow: any
        // shed at a 1M cap is a regression, no baseline needed.
        if live_1m.flows_shed != 0 {
            eprintln!(
                "REGRESSION: two-tier phase shed {} flows under a {} cap",
                live_1m.flows_shed, live_1m.cap
            );
            failed = true;
        } else {
            println!(
                "gate ok: live_1m shed 0 flows ({} admitted, heavy peak {})",
                live_1m.flows, live_1m.max_heavy_flows
            );
        }
        match section_field(&committed, "live_1m", "packets_per_sec") {
            Some(baseline) if baseline > 0.0 => {
                let floor = 0.8 * baseline;
                if live_1m.packets_per_sec < floor {
                    eprintln!(
                        "REGRESSION: two-tier path {:.1} pkts/s is more than 20% below the \
                         committed baseline {baseline:.1} pkts/s (floor {floor:.1})",
                        live_1m.packets_per_sec
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok: live_1m {:.1} pkts/s >= 80% of committed {baseline:.1} pkts/s",
                        live_1m.packets_per_sec
                    );
                }
            }
            _ => println!("gate skipped: no committed live_1m baseline to compare against"),
        }
        // Per-phase memory ceilings: each child reported its own VmHWM, so
        // these gates cannot be masked by capture generation or by each
        // other.
        for (name, run) in [("live", &live), ("live_1m", &live_1m)] {
            match section_field(&committed, name, "peak_rss_bytes") {
                Some(base) if base > 0.0 && run.peak_rss_bytes > 0 => {
                    let ceil = 1.2 * base;
                    if run.peak_rss_bytes as f64 > ceil {
                        eprintln!(
                            "REGRESSION: {name} peak RSS {} bytes is more than 20% above \
                             the committed {base:.0} bytes (ceiling {ceil:.0})",
                            run.peak_rss_bytes
                        );
                        failed = true;
                    } else {
                        println!(
                            "gate ok: {name} peak RSS {} bytes <= 120% of committed {base:.0}",
                            run.peak_rss_bytes
                        );
                    }
                }
                _ => println!("gate skipped: no committed {name} peak RSS to compare against"),
            }
        }
        match section_field(&committed, "current", "peak_rss_bytes") {
            Some(base_rss) if base_rss > 0.0 && rss > 0 => {
                let ceil = 1.2 * base_rss;
                if rss as f64 > ceil {
                    eprintln!(
                        "REGRESSION: peak RSS {rss} bytes is more than 20% above the \
                         committed {base_rss:.0} bytes (ceiling {ceil:.0})"
                    );
                    failed = true;
                } else {
                    println!("gate ok: peak RSS {rss} bytes <= 120% of committed {base_rss:.0}");
                }
            }
            _ => println!("gate skipped: no committed peak RSS to compare against"),
        }
        // The fleet aggregate is lossless by construction: every generated
        // record must land in a bucket. Absolute check, no baseline needed.
        if fleet.records != fleet_expected || fleet.records == 0 {
            eprintln!(
                "REGRESSION: fleet aggregated {} of {} generated records",
                fleet.records, fleet_expected
            );
            failed = true;
        } else {
            println!(
                "gate ok: fleet aggregated all {} records from {} daemons into {} buckets",
                fleet.records, fleet.daemons, fleet.buckets
            );
        }
        // Throughput is only comparable at the committed scale: a reduced
        // `BENCH_FLEET_INTERVALS` run is dominated by fixed startup cost,
        // so rec/s would undershoot the baseline without any regression.
        let fleet_committed_records = section_field(&committed, "fleet", "records");
        match section_field(&committed, "fleet", "records_per_sec") {
            Some(baseline)
                if baseline > 0.0 && fleet_committed_records != Some(fleet.records as f64) =>
            {
                println!(
                    "gate skipped: fleet run has {} records, committed baseline has {}",
                    fleet.records,
                    fleet_committed_records.unwrap_or(0.0)
                );
            }
            Some(baseline) if baseline > 0.0 => {
                let floor = 0.8 * baseline;
                if fleet.records_per_sec < floor {
                    eprintln!(
                        "REGRESSION: fleet {:.1} rec/s is more than 20% below the \
                         committed baseline {baseline:.1} rec/s (floor {floor:.1})",
                        fleet.records_per_sec
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok: fleet {:.1} rec/s >= 80% of committed {baseline:.1} rec/s",
                        fleet.records_per_sec
                    );
                }
            }
            _ => println!("gate skipped: no committed fleet baseline to compare against"),
        }
        match section_field(&committed, "fleet", "peak_rss_bytes") {
            Some(base) if base > 0.0 && fleet.peak_rss_bytes > 0 => {
                let ceil = 1.2 * base;
                if fleet.peak_rss_bytes as f64 > ceil {
                    eprintln!(
                        "REGRESSION: fleet peak RSS {} bytes is more than 20% above \
                         the committed {base:.0} bytes (ceiling {ceil:.0})",
                        fleet.peak_rss_bytes
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok: fleet peak RSS {} bytes <= 120% of committed {base:.0}",
                        fleet.peak_rss_bytes
                    );
                }
            }
            _ => println!("gate skipped: no committed fleet peak RSS to compare against"),
        }
        if cores >= 4 && threads_max >= 4 {
            let need = 1.5 * fps_1t;
            if fps_nt <= need {
                eprintln!(
                    "REGRESSION: {fps_nt:.1} flows/s at {threads_max} threads does not \
                     reach 1.5x single-thread ({need:.1})"
                );
                failed = true;
            } else {
                println!("gate ok: {threads_max}-thread {fps_nt:.1} flows/s > 1.5x single-thread");
            }
        } else {
            println!("gate skipped: scaling gate needs >= 4 cores (have {cores})");
        }
        // The parallel front end must never cost live throughput: on a
        // multi-core box the best multi-shard point has to at least match
        // the single-shard (inline) run.
        if multi && live_curve.len() >= 2 {
            let &(best_s, best) = live_curve[1..]
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("curve has a multi-shard point");
            if best < live.packets_per_sec {
                eprintln!(
                    "REGRESSION: best multi-shard live throughput {best:.1} pkts/s \
                     ({best_s} shards) is below single-shard {:.1} pkts/s",
                    live.packets_per_sec
                );
                failed = true;
            } else {
                println!(
                    "gate ok: {best_s}-shard live {best:.1} pkts/s >= single-shard {:.1} pkts/s",
                    live.packets_per_sec
                );
            }
        } else {
            println!("gate skipped: multi-shard live gate needs >= 2 cores (have {cores})");
        }
        if failed {
            std::process::exit(1);
        }
    }

    // Preserve the pre-PR baseline section from the committed file; a
    // first-ever run seeds it from this run so the speedup starts at 1.0.
    // Multi-thread fields are simply absent below 2 cores — `section_field`
    // returns None for a missing field, so every gate reading them skips.
    let section = |f1: f64, fnt: Option<f64>, r: u64| {
        let mut fields = vec![("flows_per_sec_1t", Json::Num(f1))];
        if let Some(fnt) = fnt {
            fields.push(("flows_per_sec_nt", Json::Num(fnt)));
        }
        fields.push(("peak_rss_bytes", Json::Int(r as i64)));
        Json::obj(fields)
    };
    let base_1t =
        section_field(&committed, "baseline_pre_pr", "flows_per_sec_1t").unwrap_or(fps_1t);
    let base_nt = multi.then(|| {
        section_field(&committed, "baseline_pre_pr", "flows_per_sec_nt").unwrap_or(fps_nt)
    });
    let base_rss =
        section_field(&committed, "baseline_pre_pr", "peak_rss_bytes").unwrap_or(rss as f64);
    let scaling = Json::Arr(
        points
            .iter()
            .map(|&(t, fps)| {
                Json::obj([
                    ("threads", Json::Int(t as i64)),
                    ("flows_per_sec", Json::Num(fps)),
                ])
            })
            .collect(),
    );
    let shard_curve_json = |curve: &[(usize, f64)]| {
        Json::Arr(
            curve
                .iter()
                .map(|&(s, pps)| {
                    Json::obj([
                        ("shards", Json::Int(s as i64)),
                        ("packets_per_sec", Json::Num(pps)),
                    ])
                })
                .collect(),
        )
    };
    let mut doc_fields = vec![
        ("schema", Json::Int(2)),
        ("bench", Json::Str("engine".into())),
        ("flows_per_service", Json::Int(flows as i64)),
        ("services", Json::Int(workloads::Service::ALL.len() as i64)),
        ("cores_available", Json::Int(cores as i64)),
        ("threads_parallel", Json::Int(threads_max as i64)),
        (
            "baseline_pre_pr",
            section(base_1t, base_nt, base_rss as u64),
        ),
        ("current", section(fps_1t, multi.then_some(fps_nt), rss)),
    ];
    if multi {
        doc_fields.push(("scaling", scaling));
    }
    doc_fields.push((
        "live",
        Json::obj([
            ("flows", Json::Int(live.flows as i64)),
            ("packets", Json::Int(live.packets as i64)),
            ("packets_per_sec", Json::Num(live.packets_per_sec)),
            ("flows_shed", Json::Int(live.flows_shed as i64)),
            ("max_active_flows", Json::Int(live.max_active_flows as i64)),
            ("max_flows_cap", Json::Int(live.cap as i64)),
            ("batch_size", Json::Int(live.batch_size as i64)),
            ("wall_secs", Json::Num(live.wall_secs)),
            ("peak_rss_bytes", Json::Int(live.peak_rss_bytes as i64)),
        ]),
    ));
    if multi {
        doc_fields.push(("live_scaling", shard_curve_json(&live_curve)));
    }
    doc_fields.push((
        "live_1m",
        Json::obj([
            ("flows", Json::Int(live_1m.flows as i64)),
            ("packets", Json::Int(live_1m.packets as i64)),
            ("packets_per_sec", Json::Num(live_1m.packets_per_sec)),
            ("flows_shed", Json::Int(live_1m.flows_shed as i64)),
            (
                "max_active_flows",
                Json::Int(live_1m.max_active_flows as i64),
            ),
            ("max_flows_cap", Json::Int(live_1m.cap as i64)),
            ("promotions", Json::Int(live_1m.promotions as i64)),
            ("demotions", Json::Int(live_1m.demotions as i64)),
            ("max_heavy_flows", Json::Int(live_1m.max_heavy_flows as i64)),
            ("batch_size", Json::Int(live_1m.batch_size as i64)),
            ("wall_secs", Json::Num(live_1m.wall_secs)),
            ("peak_rss_bytes", Json::Int(live_1m.peak_rss_bytes as i64)),
        ]),
    ));
    if multi {
        doc_fields.push(("live_1m_scaling", shard_curve_json(&live_1m_curve)));
    }
    doc_fields.push((
        "fleet",
        Json::obj([
            ("daemons", Json::Int(fleet.daemons as i64)),
            ("records", Json::Int(fleet.records as i64)),
            ("buckets", Json::Int(fleet.buckets as i64)),
            ("alerts", Json::Int(fleet.alerts as i64)),
            ("records_per_sec", Json::Num(fleet.records_per_sec)),
            ("wall_secs", Json::Num(fleet.wall_secs)),
            ("peak_rss_bytes", Json::Int(fleet.peak_rss_bytes as i64)),
        ]),
    ));
    doc_fields.push((
        "speedup_1t_vs_pre_pr",
        Json::Num(fps_1t / base_1t.max(1e-12)),
    ));
    let doc = Json::obj(doc_fields);
    let body = format!("{}\n", doc.pretty());
    match std::fs::write(&out, body) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

//! The engine micro-bench: end-to-end flows/sec through the full
//! sample → simulate → analyze pipeline across a thread-scaling curve,
//! emitted machine-readably as `BENCH_engine.json` so every PR has a
//! perf trajectory to compare against.
//!
//! Run with `cargo bench -p bench-suite --bench engine`. Knobs:
//!
//! * `BENCH_ENGINE_FLOWS` — flows per service (default 40; CI uses a
//!   smaller count). flows/sec is normalized, so counts are comparable.
//! * `BENCH_ENGINE_THREADS` — cap on the scaling curve's thread counts.
//!   The curve is `[1, 2, 4, all-cores]`, deduped and clipped to
//!   `min(cap, cores_available)`; CI smoke runs with a cap of 2.
//! * `BENCH_ENGINE_OUT` — output path (default `BENCH_engine.json` at the
//!   workspace root).
//! * `BENCH_LIVE_FLOWS` — flows per service for the live-path phase
//!   (default 3334, i.e. ≥ 10k flows total; CI smoke uses a small count).
//! * `-- --gate` — regression-gate mode, comparing this run against the
//!   *committed* JSON's `current` section:
//!   - single-thread flows/sec must be ≥ 80% of the committed value;
//!   - live-path packets/sec must be ≥ 80% of the committed `live` value;
//!   - peak RSS must be ≤ 120% of the committed value (the live phase
//!     streams its capture from disk under a hard flow cap, so a
//!     memory-unbounded live pipeline trips this ceiling);
//!   - when the capture holds more flows than the cap, the cap must have
//!     actually shed flows and the high-water mark must respect it;
//!   - on machines with ≥ 4 cores (and a curve reaching ≥ 4 threads),
//!     all-thread flows/sec must exceed 1.5× single-thread. Scaling
//!     gates are skipped — not failed — on smaller machines, so the
//!     single-core CI runner still gates throughput and memory.
//!
//! The emitted file keeps two sections: `baseline_pre_pr` (the tree
//! before the PR 2 hot-path overhaul, preserved verbatim from the
//! committed file) and `current` (this run), plus the measured `scaling`
//! curve and the `live` streaming-path phase. The ratio of the sections
//! is the committed speedup.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::time::Instant;

use bench_suite::{peak_rss_bytes, section_field};
use experiments::{Dataset, Engine, Scale};
use simnet::time::SimDuration;
use tapo::json::Json;
use tapo::live::{self, LiveConfig};
use workloads::{generate_interleaved, LiveGenSpec};

/// One measured configuration: flows/sec over `repeats` dataset builds
/// (median), at the engine's thread count.
///
/// Measures the *streaming* build — records flow straight from the
/// simulator into the analyzer, no per-flow trace materialization — which
/// is the hot path the engine exposes for anything that does not need raw
/// traces. Analyses and breakdowns are bit-identical to the materializing
/// `Dataset::build_with` (asserted by `fused_pipeline_matches_two_pass_pipeline`).
fn measure(engine: &Engine, scale: Scale, repeats: usize) -> f64 {
    let total_flows = (scale.flows_per_service * workloads::Service::ALL.len()) as f64;
    // Warm-up build: page in code, warm allocator arenas.
    std::hint::black_box(Dataset::build_streaming(scale, engine));
    let mut secs: Vec<f64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(Dataset::build_streaming(scale, engine));
            t.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    total_flows / secs[repeats / 2]
}

fn out_path() -> PathBuf {
    std::env::var_os("BENCH_ENGINE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
        })
}

/// The thread counts to measure: `[1, 2, 4, all-cores]`, deduped, clipped
/// to `cap`. Deliberately *not* clipped to the core count — on a small
/// machine the oversubscribed points still exercise the parallel engine
/// and record its threading overhead; only the scaling *gate* is
/// conditional on real cores. Always contains 1 so the throughput gate
/// can run.
fn curve(cores: usize, cap: usize) -> Vec<usize> {
    let cap = cap.max(1);
    let mut counts: Vec<usize> = [1, 2, 4, cores].into_iter().filter(|&t| t <= cap).collect();
    if counts.is_empty() {
        counts.push(1);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// What the live-path phase measured, for the report and the gate.
struct LiveRun {
    flows: u64,
    packets: u64,
    packets_per_sec: f64,
    flows_shed: u64,
    max_active_flows: u64,
    cap: usize,
}

/// The live streaming-path phase: synthesize an interleaved multi-service
/// capture to a temp file, then stream it through `tapo::live::run` under
/// a hard flow cap — the daemon deployment shape (bounded memory, file
/// input). Generation is *not* timed; only the live pipeline is.
fn measure_live(flows_per_service: usize) -> std::io::Result<LiveRun> {
    // At a 5 ms mean gap the 10k-flow capture peaks just under 1000
    // concurrent flows; a cap of 512 keeps LRU shedding on the measured
    // path without starving most flows of their packets.
    const CAP: usize = 512;
    let spec = LiveGenSpec {
        flows_per_service,
        seed: 2015,
        mean_gap: SimDuration::from_millis(5),
        ..Default::default()
    };
    let path = std::env::temp_dir().join(format!("tapo_live_bench_{}.pcap", std::process::id()));
    generate_interleaved(BufWriter::new(File::create(&path)?), &spec)?;

    let cfg = LiveConfig {
        max_flows: CAP,
        ..Default::default()
    };
    let t = Instant::now();
    let result = live::run(BufReader::new(File::open(&path)?), &cfg, |_| {});
    let secs = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    let summary = result.map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(LiveRun {
        flows: summary.flows_seen,
        packets: summary.packets,
        packets_per_sec: summary.packets as f64 / secs.max(1e-12),
        flows_shed: summary.flows_shed,
        max_active_flows: summary.max_active_flows,
        cap: CAP,
    })
}

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let flows: usize = std::env::var("BENCH_ENGINE_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let cap: usize = std::env::var("BENCH_ENGINE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let scale = Scale {
        flows_per_service: flows,
        seed: 2015,
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out = out_path();
    let committed = std::fs::read_to_string(&out).unwrap_or_default();

    let counts = curve(cores, cap);
    let mut points: Vec<(usize, f64)> = Vec::new();
    for &t in &counts {
        let fps = measure(&Engine::new(t), scale, 5);
        let label = format!("engine/flows_per_sec_{t}t");
        let note = if t == 1 {
            format!("({flows} flows/service)")
        } else {
            format!("(scaling {:.2}x vs 1t)", fps / points[0].1.max(1e-12))
        };
        println!("{label:<36} {fps:>12.1} flows/s  {note}");
        points.push((t, fps));
    }
    let fps_1t = points[0].1;
    let (threads_max, fps_nt) = *points.last().expect("curve is non-empty");

    let live_flows: usize = std::env::var("BENCH_LIVE_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3334); // 3 services × 3334 ≥ 10k flows
    let live = match measure_live(live_flows) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("live phase failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "live/packets_per_sec                 {:>12.1} pkts/s  ({} flows, {} pkts, cap {}, shed {})",
        live.packets_per_sec, live.flows, live.packets, live.cap, live.flows_shed
    );

    let rss = peak_rss_bytes().unwrap_or(0);
    println!(
        "engine/peak_rss                      {:>12.1} MiB  ({cores} cores available)",
        rss as f64 / (1024.0 * 1024.0)
    );

    if gate {
        let mut failed = false;
        match section_field(&committed, "current", "flows_per_sec_1t") {
            Some(baseline) if baseline > 0.0 => {
                let floor = 0.8 * baseline;
                if fps_1t < floor {
                    eprintln!(
                        "REGRESSION: {fps_1t:.1} flows/s single-thread is more than 20% below \
                         the committed baseline {baseline:.1} flows/s (floor {floor:.1})"
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok: {fps_1t:.1} flows/s >= 80% of committed {baseline:.1} flows/s"
                    );
                }
            }
            _ => println!("gate skipped: no committed baseline at {}", out.display()),
        }
        match section_field(&committed, "live", "packets_per_sec") {
            Some(baseline) if baseline > 0.0 => {
                let floor = 0.8 * baseline;
                if live.packets_per_sec < floor {
                    eprintln!(
                        "REGRESSION: live path {:.1} pkts/s is more than 20% below the \
                         committed baseline {baseline:.1} pkts/s (floor {floor:.1})",
                        live.packets_per_sec
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok: live {:.1} pkts/s >= 80% of committed {baseline:.1} pkts/s",
                        live.packets_per_sec
                    );
                }
            }
            _ => println!("gate skipped: no committed live baseline to compare against"),
        }
        if live.flows > live.cap as u64 {
            if live.flows_shed == 0 {
                eprintln!(
                    "REGRESSION: {} flows exceeded the cap of {} but none were shed",
                    live.flows, live.cap
                );
                failed = true;
            } else if live.max_active_flows > live.cap as u64 {
                eprintln!(
                    "REGRESSION: live high-water mark {} flows breaks the cap of {}",
                    live.max_active_flows, live.cap
                );
                failed = true;
            } else {
                println!(
                    "gate ok: live flow cap held ({} shed, high-water {} <= {})",
                    live.flows_shed, live.max_active_flows, live.cap
                );
            }
        } else {
            println!(
                "gate skipped: {} flows never reached the cap of {}",
                live.flows, live.cap
            );
        }
        match section_field(&committed, "current", "peak_rss_bytes") {
            Some(base_rss) if base_rss > 0.0 && rss > 0 => {
                let ceil = 1.2 * base_rss;
                if rss as f64 > ceil {
                    eprintln!(
                        "REGRESSION: peak RSS {rss} bytes is more than 20% above the \
                         committed {base_rss:.0} bytes (ceiling {ceil:.0})"
                    );
                    failed = true;
                } else {
                    println!("gate ok: peak RSS {rss} bytes <= 120% of committed {base_rss:.0}");
                }
            }
            _ => println!("gate skipped: no committed peak RSS to compare against"),
        }
        if cores >= 4 && threads_max >= 4 {
            let need = 1.5 * fps_1t;
            if fps_nt <= need {
                eprintln!(
                    "REGRESSION: {fps_nt:.1} flows/s at {threads_max} threads does not \
                     reach 1.5x single-thread ({need:.1})"
                );
                failed = true;
            } else {
                println!("gate ok: {threads_max}-thread {fps_nt:.1} flows/s > 1.5x single-thread");
            }
        } else {
            println!("gate skipped: scaling gate needs >= 4 cores (have {cores})");
        }
        if failed {
            std::process::exit(1);
        }
    }

    // Preserve the pre-PR baseline section from the committed file; a
    // first-ever run seeds it from this run so the speedup starts at 1.0.
    let section = |f1: f64, fnt: f64, r: u64| {
        Json::obj([
            ("flows_per_sec_1t", Json::Num(f1)),
            ("flows_per_sec_nt", Json::Num(fnt)),
            ("peak_rss_bytes", Json::Int(r as i64)),
        ])
    };
    let base_1t =
        section_field(&committed, "baseline_pre_pr", "flows_per_sec_1t").unwrap_or(fps_1t);
    let base_nt =
        section_field(&committed, "baseline_pre_pr", "flows_per_sec_nt").unwrap_or(fps_nt);
    let base_rss =
        section_field(&committed, "baseline_pre_pr", "peak_rss_bytes").unwrap_or(rss as f64);
    let scaling = Json::Arr(
        points
            .iter()
            .map(|&(t, fps)| {
                Json::obj([
                    ("threads", Json::Int(t as i64)),
                    ("flows_per_sec", Json::Num(fps)),
                ])
            })
            .collect(),
    );
    let doc = Json::obj([
        ("schema", Json::Int(2)),
        ("bench", Json::Str("engine".into())),
        ("flows_per_service", Json::Int(flows as i64)),
        ("services", Json::Int(workloads::Service::ALL.len() as i64)),
        ("cores_available", Json::Int(cores as i64)),
        ("threads_parallel", Json::Int(threads_max as i64)),
        (
            "baseline_pre_pr",
            section(base_1t, base_nt, base_rss as u64),
        ),
        ("current", section(fps_1t, fps_nt, rss)),
        ("scaling", scaling),
        (
            "live",
            Json::obj([
                ("flows", Json::Int(live.flows as i64)),
                ("packets", Json::Int(live.packets as i64)),
                ("packets_per_sec", Json::Num(live.packets_per_sec)),
                ("flows_shed", Json::Int(live.flows_shed as i64)),
                ("max_active_flows", Json::Int(live.max_active_flows as i64)),
                ("max_flows_cap", Json::Int(live.cap as i64)),
            ]),
        ),
        (
            "speedup_1t_vs_pre_pr",
            Json::Num(fps_1t / base_1t.max(1e-12)),
        ),
    ]);
    let body = format!("{}\n", doc.pretty());
    match std::fs::write(&out, body) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

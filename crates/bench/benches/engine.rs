//! The engine micro-bench: end-to-end flows/sec through the full
//! sample → simulate → analyze pipeline, at 1 thread and at all cores,
//! emitted machine-readably as `BENCH_engine.json` so every PR has a
//! perf trajectory to compare against.
//!
//! Run with `cargo bench -p bench-suite --bench engine`. Knobs:
//!
//! * `BENCH_ENGINE_FLOWS` — flows per service (default 40; CI uses a
//!   smaller count). flows/sec is normalized, so counts are comparable.
//! * `BENCH_ENGINE_OUT` — output path (default `BENCH_engine.json` at the
//!   workspace root).
//! * `-- --gate` — regression-gate mode: compare the fresh single-thread
//!   flows/sec against `current.flows_per_sec_1t` in the *committed* JSON
//!   and exit non-zero on a >20% regression.
//!
//! The emitted file keeps two sections: `baseline_pre_pr` (the tree before
//! the hot-path overhaul, preserved verbatim from the existing file) and
//! `current` (this run). The ratio of the two is the committed speedup.

use std::path::PathBuf;
use std::time::Instant;

use bench_suite::{extract_json_number, peak_rss_bytes};
use experiments::{Dataset, Engine, Scale};
use tapo::json::Json;

/// One measured configuration: flows/sec over `repeats` dataset builds
/// (median), at the engine's thread count.
///
/// Measures the *streaming* build — records flow straight from the
/// simulator into the analyzer, no per-flow trace materialization — which
/// is the hot path the engine exposes for anything that does not need raw
/// traces. Analyses and breakdowns are bit-identical to the materializing
/// `Dataset::build_with` (asserted by `fused_pipeline_matches_two_pass_pipeline`).
fn measure(engine: &Engine, scale: Scale, repeats: usize) -> f64 {
    let total_flows = (scale.flows_per_service * workloads::Service::ALL.len()) as f64;
    // Warm-up build: page in code, warm allocator arenas.
    std::hint::black_box(Dataset::build_streaming(scale, engine));
    let mut secs: Vec<f64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(Dataset::build_streaming(scale, engine));
            t.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    total_flows / secs[repeats / 2]
}

fn out_path() -> PathBuf {
    std::env::var_os("BENCH_ENGINE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
        })
}

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let flows: usize = std::env::var("BENCH_ENGINE_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let scale = Scale {
        flows_per_service: flows,
        seed: 2015,
    };
    let out = out_path();
    let committed = std::fs::read_to_string(&out).unwrap_or_default();

    let serial = Engine::serial();
    let auto = Engine::auto();
    let fps_1t = measure(&serial, scale, 5);
    let fps_nt = measure(&auto, scale, 5);
    let rss = peak_rss_bytes().unwrap_or(0);
    println!(
        "engine/flows_per_sec_1t              {fps_1t:>12.1} flows/s  ({flows} flows/service)"
    );
    println!(
        "engine/flows_per_sec_{}t              {fps_nt:>12.1} flows/s  (speedup {:.2}x)",
        auto.threads(),
        fps_nt / fps_1t.max(1e-12)
    );
    println!(
        "engine/peak_rss                      {:>12.1} MiB",
        rss as f64 / (1024.0 * 1024.0)
    );

    if gate {
        match extract_json_number(&committed, "flows_per_sec_1t") {
            Some(baseline) if baseline > 0.0 => {
                let floor = 0.8 * baseline;
                if fps_1t < floor {
                    eprintln!(
                        "REGRESSION: {fps_1t:.1} flows/s single-thread is more than 20% below \
                         the committed baseline {baseline:.1} flows/s (floor {floor:.1})"
                    );
                    std::process::exit(1);
                }
                println!("gate ok: {fps_1t:.1} flows/s >= 80% of committed {baseline:.1} flows/s");
            }
            _ => println!("gate skipped: no committed baseline at {}", out.display()),
        }
    }

    // Preserve the pre-PR baseline section from the committed file; a
    // first-ever run seeds it from this run so the speedup starts at 1.0.
    let section = |f1: f64, fnt: f64, r: u64| {
        Json::obj([
            ("flows_per_sec_1t", Json::Num(f1)),
            ("flows_per_sec_nt", Json::Num(fnt)),
            ("peak_rss_bytes", Json::Int(r as i64)),
        ])
    };
    let base_1t = baseline_field(&committed, "flows_per_sec_1t").unwrap_or(fps_1t);
    let base_nt = baseline_field(&committed, "flows_per_sec_nt").unwrap_or(fps_nt);
    let base_rss = baseline_field(&committed, "peak_rss_bytes").unwrap_or(rss as f64);
    let doc = Json::obj([
        ("schema", Json::Int(1)),
        ("bench", Json::Str("engine".into())),
        ("flows_per_service", Json::Int(flows as i64)),
        ("services", Json::Int(workloads::Service::ALL.len() as i64)),
        ("threads_parallel", Json::Int(auto.threads() as i64)),
        (
            "baseline_pre_pr",
            section(base_1t, base_nt, base_rss as u64),
        ),
        ("current", section(fps_1t, fps_nt, rss)),
        (
            "speedup_1t_vs_pre_pr",
            Json::Num(fps_1t / base_1t.max(1e-12)),
        ),
    ]);
    let body = format!("{}\n", doc.pretty());
    match std::fs::write(&out, body) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

/// Read a numeric field out of the `baseline_pre_pr` section specifically
/// (the top-level scan in [`extract_json_number`] would find the first
/// occurrence, which is the baseline section in the committed layout — but
/// slice to the section so reordering the file cannot silently flip it).
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let at = text.find("\"baseline_pre_pr\"")?;
    let section = &text[at..];
    let end = section.find('}').unwrap_or(section.len());
    extract_json_number(&section[..end], key)
}

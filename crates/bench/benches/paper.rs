//! One bench per table and figure of the paper's evaluation.
//!
//! Each bench regenerates its artifact from the shared quick-scale dataset
//! (the data-dependent experiments) or by running the underlying pipeline
//! (Fig. 2 and the Table 8/9 mechanism comparison). The point is twofold:
//! the artifacts are reproduced under `cargo bench`, and regressions in the
//! analysis pipeline's performance are caught. A final section compares the
//! serial engine against the parallel one on the same workload.

use bench_suite::{quick_dataset, Harness};
use experiments::{
    ablation, fig1, fig11, fig2, fig3, fig6, fig7, mechanism, table1, table3, table4, table5,
    table6, ComparisonScale, Dataset, Engine,
};

fn dataset_benches(h: &Harness) {
    // Building the dataset is the expensive step shared by most artifacts:
    // benchmark it once, at a reduced scale.
    h.bench("dataset/synthesize_and_analyze_quick", || {
        let ds = Dataset::build(experiments::Scale {
            flows_per_service: 10,
            seed: 1,
        });
        ds.services.len()
    });

    let ds = quick_dataset();
    h.bench("tables/table1", || table1::table1(&ds));
    h.bench("tables/table3", || table3::table3(&ds));
    h.bench("tables/table4", || table4::table4(&ds));
    h.bench("tables/table5", || table5::table5(&ds));
    h.bench("tables/table6", || table6::table6(&ds));
    h.bench("tables/table7", || table6::table7(&ds));

    h.bench("figures/fig1a", || fig1::fig1a(&ds));
    h.bench("figures/fig1b", || fig1::fig1b(&ds));
    h.bench("figures/fig3", || fig3::fig3(&ds));
    h.bench("figures/fig6", || fig6::fig6(&ds));
    h.bench("figures/fig7", || fig7::fig7(&ds));
    h.bench("figures/fig10", || fig7::fig10(&ds));
    h.bench("figures/fig11", || fig11::fig11(&ds));
    h.bench("figures/fig12", || fig11::fig12(&ds));

    // Print the regenerated artifacts once so `cargo bench` leaves the
    // paper's numbers in its log.
    println!("{}", table1::table1(&ds).render());
    println!("{}", table3::table3(&ds).render());
    println!("{}", table5::table5(&ds).render());
}

fn scenario_benches(h: &Harness) {
    h.bench("scenario/fig2_illustrative_flow", || {
        fig2::fig2_flow().1.stalls.len()
    });
}

fn mechanism_benches(h: &Harness) {
    let scale = ComparisonScale {
        web_flows: 20,
        cloud_short_flows: 20,
        cloud_flows: 10,
        seed: 360,
    };
    h.bench("mechanism/table8_table9_comparison", || {
        let cmp = mechanism::run_comparison(scale);
        (mechanism::table8(&cmp), mechanism::table9(&cmp))
    });

    let cmp = mechanism::run_comparison(ComparisonScale::quick());
    println!("{}", mechanism::table8(&cmp).render());
    println!("{}", mechanism::table9(&cmp).render());
    println!("{}", mechanism::large_flow_throughput(&cmp).render());
}

fn ablation_benches(h: &Harness) {
    let engine = Engine::serial();
    h.bench("ablation/burstiness", || {
        ablation::burstiness_ablation(10, 99, &engine)
    });
    h.bench("ablation/srto_t2", || {
        ablation::srto_t2_ablation(15, 99, &engine)
    });
}

fn engine_benches(h: &Harness) {
    // The tentpole comparison: the same dataset build, serial vs all cores.
    // Parallel output is bit-identical; the ratio of these two numbers is
    // the speedup on this machine.
    let scale = experiments::Scale {
        flows_per_service: 40,
        seed: 2015,
    };
    let serial = h.bench("engine/dataset_serial", || {
        Dataset::build_with(scale, &Engine::serial()).services.len()
    });
    let auto = Engine::auto();
    let parallel = h.bench(
        &format!("engine/dataset_{}_threads", auto.threads()),
        || Dataset::build_with(scale, &auto).services.len(),
    );
    if let (Some(s), Some(p)) = (serial, parallel) {
        println!(
            "engine speedup: {:.2}x on {} threads",
            s.as_secs_f64() / p.as_secs_f64().max(1e-12),
            auto.threads()
        );
    }
}

fn main() {
    let h = Harness::from_args();
    dataset_benches(&h);
    scenario_benches(&h);
    mechanism_benches(&h);
    ablation_benches(&h);
    engine_benches(&h);
}

//! One bench per table and figure of the paper's evaluation.
//!
//! Each bench regenerates its artifact from the shared quick-scale dataset
//! (the data-dependent experiments) or by running the underlying pipeline
//! (Fig. 2 and the Table 8/9 mechanism comparison). The point is twofold:
//! the artifacts are reproduced under `cargo bench`, and regressions in the
//! analysis pipeline's performance are caught.

use criterion::{criterion_group, criterion_main, Criterion};

use bench_suite::quick_dataset;
use experiments::{
    ablation, fig1, fig11, fig2, fig3, fig6, fig7, mechanism, table1, table3, table4, table5,
    table6, ComparisonScale, Dataset,
};

fn dataset_benches(c: &mut Criterion) {
    // Building the dataset is the expensive step shared by most artifacts:
    // benchmark it once, at a reduced scale.
    let mut g = c.benchmark_group("dataset");
    g.sample_size(10);
    g.bench_function("synthesize_and_analyze_quick", |b| {
        b.iter(|| {
            let ds = Dataset::build(experiments::Scale {
                flows_per_service: 10,
                seed: 1,
            });
            std::hint::black_box(ds.services.len())
        })
    });
    g.finish();

    let ds = quick_dataset();
    let mut g = c.benchmark_group("tables");
    g.sample_size(20);
    g.bench_function("table1", |b| b.iter(|| table1::table1(&ds)));
    g.bench_function("table3", |b| b.iter(|| table3::table3(&ds)));
    g.bench_function("table4", |b| b.iter(|| table4::table4(&ds)));
    g.bench_function("table5", |b| b.iter(|| table5::table5(&ds)));
    g.bench_function("table6", |b| b.iter(|| table6::table6(&ds)));
    g.bench_function("table7", |b| b.iter(|| table6::table7(&ds)));
    g.finish();

    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    g.bench_function("fig1a", |b| b.iter(|| fig1::fig1a(&ds)));
    g.bench_function("fig1b", |b| b.iter(|| fig1::fig1b(&ds)));
    g.bench_function("fig3", |b| b.iter(|| fig3::fig3(&ds)));
    g.bench_function("fig6", |b| b.iter(|| fig6::fig6(&ds)));
    g.bench_function("fig7", |b| b.iter(|| fig7::fig7(&ds)));
    g.bench_function("fig10", |b| b.iter(|| fig7::fig10(&ds)));
    g.bench_function("fig11", |b| b.iter(|| fig11::fig11(&ds)));
    g.bench_function("fig12", |b| b.iter(|| fig11::fig12(&ds)));
    g.finish();

    // Print the regenerated artifacts once so `cargo bench` leaves the
    // paper's numbers in its log.
    println!("{}", table1::table1(&ds).render());
    println!("{}", table3::table3(&ds).render());
    println!("{}", table5::table5(&ds).render());
}

fn scenario_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("fig2_illustrative_flow", |b| {
        b.iter(|| fig2::fig2_flow().1.stalls.len())
    });
    g.finish();
}

fn mechanism_benches(c: &mut Criterion) {
    let scale = ComparisonScale {
        web_flows: 20,
        cloud_short_flows: 20,
        cloud_flows: 10,
        seed: 360,
    };
    let mut g = c.benchmark_group("mechanism");
    g.sample_size(10);
    g.bench_function("table8_table9_comparison", |b| {
        b.iter(|| {
            let cmp = mechanism::run_comparison(scale);
            std::hint::black_box((mechanism::table8(&cmp), mechanism::table9(&cmp)))
        })
    });
    g.finish();

    let cmp = mechanism::run_comparison(ComparisonScale::quick());
    println!("{}", mechanism::table8(&cmp).render());
    println!("{}", mechanism::table9(&cmp).render());
    println!("{}", mechanism::large_flow_throughput(&cmp).render());
}

fn ablation_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("burstiness", |b| {
        b.iter(|| ablation::burstiness_ablation(10, 99))
    });
    g.bench_function("srto_t2", |b| b.iter(|| ablation::srto_t2_ablation(15, 99)));
    g.finish();
}

criterion_group!(
    benches,
    dataset_benches,
    scenario_benches,
    mechanism_benches,
    ablation_benches
);
criterion_main!(benches);

//! Throwaway profiling helper: counts heap allocations and times the
//! pipeline phases of the engine bench workload. Not part of the suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

fn snap() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    use tapo::{AnalyzerConfig, StreamAnalyzer};
    use tcp_sim::recovery::RecoveryMechanism;
    use workloads::{
        sample_flow, simulate_flow, simulate_flow_into, simulate_flow_into_scratch, FlowScratch,
        Service, ServiceModel,
    };

    let n: usize = std::env::var("PROFILE_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    for svc in workloads::Service::ALL {
        let model = ServiceModel::calibrated(svc);
        // Phase 1: sampling.
        let (a0, b0) = snap();
        let t = Instant::now();
        let pop: Vec<_> = (0..n).map(|i| sample_flow(&model, 2015, i)).collect();
        let t_sample = t.elapsed();
        let (a1, b1) = snap();
        // Phase 2: simulate (materializing).
        let t = Instant::now();
        let mut outs = Vec::new();
        for (i, (spec, path)) in pop.iter().enumerate() {
            outs.push(simulate_flow(
                spec,
                path,
                RecoveryMechanism::Native,
                2015 + i as u64,
            ));
        }
        let t_sim = t.elapsed();
        let (a2, b2) = snap();
        // Phase 3: streaming sim+analyze (the bench's hot path).
        let t = Instant::now();
        let mut stalls = 0usize;
        for (i, (spec, path)) in pop.iter().enumerate() {
            let (_out, an) = simulate_flow_into(
                spec,
                path,
                RecoveryMechanism::Native,
                2015 + i as u64,
                StreamAnalyzer::new(AnalyzerConfig::default()),
            );
            stalls += an.finish().stalls.len();
        }
        let t_stream = t.elapsed();
        let (a3, b3) = snap();
        // Phase 4: streaming sim+analyze on recycled worker scratch.
        // Repeated; min-of-reps reported to suppress scheduler noise.
        let reps: usize = std::env::var("PROFILE_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let mut scratch = FlowScratch::new();
        let mut analyzer = StreamAnalyzer::new(AnalyzerConfig::default());
        let mut stalls2 = 0usize;
        let mut t_scratch = std::time::Duration::MAX;
        for rep in 0..reps.max(1) {
            let t = Instant::now();
            let mut s2 = 0usize;
            for (i, (spec, path)) in pop.iter().enumerate() {
                let (_out, mut used) = simulate_flow_into_scratch(
                    spec,
                    path,
                    RecoveryMechanism::Native,
                    2015 + i as u64,
                    analyzer,
                    &mut scratch,
                );
                s2 += used.finish_reset().stalls.len();
                analyzer = used;
            }
            t_scratch = t_scratch.min(t.elapsed());
            if rep == 0 {
                stalls2 = s2;
            } else {
                assert_eq!(stalls2, s2);
            }
        }
        let (a4, b4) = snap();
        assert_eq!(stalls, stalls2);
        let per = |d: std::time::Duration| d.as_secs_f64() * 1e6 / n as f64;
        println!(
            "{svc:?}: sample {:.0}us/flow ({} allocs, {} KB)  sim {:.0}us/flow ({} allocs/flow, {} KB/flow)  sim+analyze {:.0}us/flow ({} allocs/flow, {} KB/flow)  scratch {:.0}us/flow ({} allocs/flow, {} KB/flow)  [{stalls} stalls]",
            per(t_sample),
            (a1 - a0) / n as u64,
            (b1 - b0) / 1024 / n as u64,
            per(t_sim),
            (a2 - a1) / n as u64,
            (b2 - b1) / 1024 / n as u64,
            per(t_stream),
            (a3 - a2) / n as u64,
            (b3 - b2) / 1024 / n as u64,
            per(t_scratch),
            (a4 - a3) / n as u64,
            (b4 - b3) / 1024 / n as u64,
        );
    }
    let _ = Service::ALL;
}

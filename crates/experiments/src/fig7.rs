//! Figures 7 and 10: the context (stream position, in-flight size) in which
//! double-retransmission and tail-retransmission stalls happen.

use tapo::{Cdf, RetransCause, StallCause};

use crate::dataset::Dataset;
use crate::output::{Figure, Series};

fn context_figures(
    ds: &Dataset,
    want: impl Fn(&StallCause) -> bool,
    id_pos: &str,
    id_if: &str,
    what: &str,
) -> (Figure, Figure) {
    let pos_probes: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
    let if_probes: Vec<f64> = (0..=25).map(|i| i as f64).collect();
    let mut pos_series = Vec::new();
    let mut if_series = Vec::new();
    for sd in &ds.services {
        let stalls: Vec<_> = sd
            .analyses
            .iter()
            .flat_map(|a| a.stalls.iter())
            .filter(|s| want(&s.cause))
            .collect();
        pos_series.push(Series {
            name: sd.service.label().to_string(),
            points: Cdf::from_samples(stalls.iter().map(|s| s.rel_position).collect())
                .series(&pos_probes),
        });
        if_series.push(Series {
            name: sd.service.label().to_string(),
            points: Cdf::from_samples(stalls.iter().map(|s| s.snapshot.in_flight as f64).collect())
                .series(&if_probes),
        });
    }
    (
        Figure {
            id: id_pos.into(),
            title: format!("Relative position of {what} stalls"),
            x_label: "Position".into(),
            y_label: "CDF".into(),
            series: pos_series,
        },
        Figure {
            id: id_if.into(),
            title: format!("In-flight size at {what} stalls"),
            x_label: "#(in-flight packets)".into(),
            y_label: "CDF".into(),
            series: if_series,
        },
    )
}

/// Figures 7a/7b: context for double-retransmission stalls.
pub fn fig7(ds: &Dataset) -> (Figure, Figure) {
    context_figures(
        ds,
        |c| {
            matches!(
                c,
                StallCause::Retransmission(RetransCause::DoubleRetrans { .. })
            )
        },
        "fig7a",
        "fig7b",
        "double-retransmission",
    )
}

/// Figures 10a/10b: context for tail-retransmission stalls.
pub fn fig10(ds: &Dataset) -> (Figure, Figure) {
    context_figures(
        ds,
        |c| {
            matches!(
                c,
                StallCause::Retransmission(RetransCause::TailRetrans { .. })
            )
        },
        "fig10a",
        "fig10b",
        "tail-retransmission",
    )
}

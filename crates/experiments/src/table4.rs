//! Table 4: probability of suffering a zero receive window as a function of
//! the initial receive window.

use crate::dataset::Dataset;
use crate::output::{pct_cell, Table};

/// The initial-rwnd bucket centers the paper reports (MSS units).
pub const INIT_RWND_COLS_MSS: [f64; 6] = [2.0, 11.0, 45.0, 182.0, 648.0, 1297.0];

/// Regenerate Table 4: per service and init-rwnd bucket, the percentage of
/// flows that experienced a zero-window advertisement. Cells with fewer
/// than 3 flows print "–", like the paper's dashes.
pub fn table4(ds: &Dataset) -> Table {
    let mss = 1448.0;
    let mut header = vec!["init rwnd (MSS)".to_string()];
    for c in INIT_RWND_COLS_MSS {
        header.push(format!("{c:.0}"));
    }
    let mut rows = Vec::new();
    for sd in &ds.services {
        let mut row = vec![sd.service.label().to_string()];
        for c in INIT_RWND_COLS_MSS {
            // Nearest-bucket assignment on a log scale.
            let in_bucket: Vec<bool> = sd
                .analyses
                .iter()
                .filter_map(|a| a.init_rwnd.map(|w| (w as f64 / mss, a.zero_rwnd_seen)))
                .filter(|(w_mss, _)| {
                    let lw = w_mss.max(0.1).ln();
                    INIT_RWND_COLS_MSS
                        .iter()
                        .min_by(|a, b| {
                            (a.ln() - lw)
                                .abs()
                                .partial_cmp(&(b.ln() - lw).abs())
                                .unwrap()
                        })
                        .is_some_and(|&nearest| nearest == c)
                })
                .map(|(_, z)| z)
                .collect();
            if in_bucket.len() < 3 {
                row.push("–".to_string());
            } else {
                let pct = 100.0 * in_bucket.iter().filter(|&&z| z).count() as f64
                    / in_bucket.len() as f64;
                row.push(pct_cell(pct));
            }
        }
        rows.push(row);
    }
    Table::new(
        "table4",
        "Percentage of flows suffering zero rwnd vs initial rwnd (MSS)",
        header,
        rows,
    )
}

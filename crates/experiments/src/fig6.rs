//! Figure 6: distribution of initial receive windows.

use tapo::Cdf;

use crate::dataset::Dataset;
use crate::output::{Figure, Series};

/// The x-axis bucket edges the paper uses (MSS units).
pub const RWND_BUCKETS_MSS: [f64; 9] = [2.0, 5.0, 11.0, 22.0, 45.0, 182.0, 364.0, 1297.0, 1456.0];

/// Regenerate Figure 6: per-service CDF of the initial receive window
/// advertised in the SYN, in MSS units.
pub fn fig6(ds: &Dataset) -> Figure {
    let mss = 1448.0;
    let series = ds
        .services
        .iter()
        .map(|sd| {
            let samples: Vec<f64> = sd
                .analyses
                .iter()
                .filter_map(|a| a.init_rwnd.map(|w| w as f64 / mss))
                .collect();
            Series {
                name: sd.service.label().to_string(),
                points: Cdf::from_samples(samples).series(&RWND_BUCKETS_MSS),
            }
        })
        .collect();
    Figure {
        id: "fig6".into(),
        title: "Distribution of initial receive windows".into(),
        x_label: "Initial rwnd (MSS)".into(),
        y_label: "CDF".into(),
        series,
    }
}

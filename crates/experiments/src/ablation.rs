//! Ablations of the design choices DESIGN.md calls out:
//!
//! * S-RTO parameters — probe timer multiple, `T1` activation threshold and
//!   the `T2` cwnd-halving guard;
//! * loss burstiness — the same mean loss rate as Gilbert–Elliott vs
//!   Bernoulli, and its effect on the double/continuous-loss stall mix.

use simnet::time::SimDuration;
use tapo::{analyze_flow, AnalyzerConfig, RetransClass, StallBreakdown, StallClass};
use tcp_sim::recovery::{RecoveryMechanism, SrtoConfig};
use workloads::{Corpus, Service};

use crate::engine::Engine;
use crate::output::{pct_cell, Table};
use tapo::Cdf;

/// Sweep S-RTO's probe-timer multiple and `T1` on a web-search population;
/// report p90 latency change vs native and the retransmission ratio. Reads
/// only latency CDFs and aggregate counters, so every run is trace-free
/// ([`Engine::run_population_lean`]).
pub fn srto_sweep(flows: usize, seed: u64, engine: &Engine) -> Table {
    let pop = engine.sample_population(Service::WebSearch, flows, seed);
    let native =
        engine.run_population_lean(Service::WebSearch, &pop, RecoveryMechanism::Native, seed);
    let base_p90 = latency_cdf(&native).quantile(0.9);

    let mut rows = Vec::new();
    for t1 in [3u32, 5, 10] {
        for mult in [1.5f64, 2.0, 3.0] {
            let cfg = SrtoConfig {
                t1_packets: t1,
                t2_cwnd: 5,
                probe_rtt_mult: mult,
            };
            let run = engine.run_population_lean(
                Service::WebSearch,
                &pop,
                RecoveryMechanism::Srto(cfg),
                seed,
            );
            let p90 = latency_cdf(&run).quantile(0.9);
            let change = match (p90, base_p90) {
                (Some(n), Some(b)) if b > 0.0 => format!("{}%", pct_cell(100.0 * (n - b) / b)),
                _ => "–".into(),
            };
            rows.push(vec![
                format!("{t1}"),
                format!("{mult:.1}"),
                change,
                format!("{}%", pct_cell(100.0 * run.retrans_ratio())),
            ]);
        }
    }
    Table::new(
        "ablation_srto",
        "S-RTO parameter sweep (web search): p90 latency change vs native, retrans ratio",
        vec![
            "T1".into(),
            "probe×RTT".into(),
            "p90 latency".into(),
            "retrans".into(),
        ],
        rows,
    )
}

/// Ablate the `T2` conditional-halving guard: never halve / conditional
/// (paper) / always halve. Trace-free like [`srto_sweep`].
pub fn srto_t2_ablation(flows: usize, seed: u64, engine: &Engine) -> Table {
    let pop = engine.sample_population(Service::WebSearch, flows, seed);
    let native =
        engine.run_population_lean(Service::WebSearch, &pop, RecoveryMechanism::Native, seed);
    let base = latency_cdf(&native);
    let mut rows = Vec::new();
    for (name, t2) in [
        ("never halve", u32::MAX),
        ("paper (T2=5)", 5),
        ("always halve", 0),
    ] {
        let cfg = SrtoConfig {
            t1_packets: 5,
            t2_cwnd: t2,
            probe_rtt_mult: 2.0,
        };
        let run = engine.run_population_lean(
            Service::WebSearch,
            &pop,
            RecoveryMechanism::Srto(cfg),
            seed,
        );
        let cdf = latency_cdf(&run);
        let cell = |q: f64| match (cdf.quantile(q), base.quantile(q)) {
            (Some(n), Some(b)) if b > 0.0 => format!("{}%", pct_cell(100.0 * (n - b) / b)),
            _ => "–".into(),
        };
        rows.push(vec![
            name.to_string(),
            cell(0.5),
            cell(0.9),
            format!("{}%", pct_cell(100.0 * run.retrans_ratio())),
        ]);
    }
    Table::new(
        "ablation_srto_t2",
        "S-RTO cwnd-halving guard ablation (web search)",
        vec![
            "variant".into(),
            "p50 latency".into(),
            "p90 latency".into(),
            "retrans".into(),
        ],
        rows,
    )
}

/// Bursty vs memoryless loss at equal mean rate: the retransmission-stall
/// mix shifts away from double/continuous losses under Bernoulli. Analyses
/// stream out of the simulation pass — no trace is ever materialized
/// ([`Engine::run_population_streaming`]).
pub fn burstiness_ablation(flows: usize, seed: u64, engine: &Engine) -> Table {
    let cfg = AnalyzerConfig::default();
    let mut pop = engine.sample_population(Service::SoftwareDownload, flows, seed);
    let (_, bursty_analyses) = engine.run_population_streaming(
        Service::SoftwareDownload,
        &pop,
        RecoveryMechanism::Native,
        seed,
        cfg,
    );
    // Replace each path's loss process with a Bernoulli of the same mean.
    for (_, path) in pop.iter_mut() {
        let mean = path.loss.mean_loss();
        path.loss = simnet::loss::LossSpec::bernoulli(mean);
        path.ack_loss = Some(simnet::loss::LossSpec::bernoulli(mean / 3.0));
    }
    let (_, memless_analyses) = engine.run_population_streaming(
        Service::SoftwareDownload,
        &pop,
        RecoveryMechanism::Native,
        seed,
        cfg,
    );

    let bb = Engine::breakdown(&bursty_analyses);
    let mb = Engine::breakdown(&memless_analyses);
    let row = |name: &str, b: &StallBreakdown| {
        vec![
            name.to_string(),
            pct_cell(b.retrans_share(RetransClass::DoubleRetrans).time_pct),
            pct_cell(b.retrans_share(RetransClass::ContinuousLoss).time_pct),
            pct_cell(b.retrans_share(RetransClass::TailRetrans).time_pct),
            format!("{}", b.total_stalls),
        ]
    };
    Table::new(
        "ablation_burstiness",
        "Loss-model ablation (software download): retrans-stall time shares",
        vec![
            "loss model".into(),
            "double %T".into(),
            "cont.loss %T".into(),
            "tail %T".into(),
            "#stalls".into(),
        ],
        vec![row("Gilbert–Elliott", &bb), row("Bernoulli", &mb)],
    )
}

/// Pacing ablation (the paper's §4.3 suggestion for continuous-loss
/// stalls, citing Wei et al.): the same software-download population with
/// and without sender pacing.
pub fn pacing_ablation(flows: usize, seed: u64, engine: &Engine) -> Table {
    let cfg = AnalyzerConfig::default();
    let pop = engine.sample_population(Service::SoftwareDownload, flows, seed);
    let mut paced_pop = pop.clone();
    for (spec, _) in paced_pop.iter_mut() {
        spec.pacing = true;
    }
    let (plain, plain_analyses) = engine.run_population_streaming(
        Service::SoftwareDownload,
        &pop,
        RecoveryMechanism::Native,
        seed,
        cfg,
    );
    let (paced, paced_analyses) = engine.run_population_streaming(
        Service::SoftwareDownload,
        &paced_pop,
        RecoveryMechanism::Native,
        seed,
        cfg,
    );
    let (b0, b1) = (
        Engine::breakdown(&plain_analyses),
        Engine::breakdown(&paced_analyses),
    );
    let row = |name: &str, b: &StallBreakdown, c: &Corpus| {
        vec![
            name.to_string(),
            pct_cell(b.retrans_share(RetransClass::ContinuousLoss).time_pct),
            pct_cell(b.retrans_share(RetransClass::DoubleRetrans).time_pct),
            format!("{}", b.total_stalls),
            format!("{}%", pct_cell(100.0 * c.retrans_ratio())),
        ]
    };
    Table::new(
        "ablation_pacing",
        "Sender pacing ablation (software download)",
        vec![
            "sender".into(),
            "cont.loss %T".into(),
            "double %T".into(),
            "#stalls".into(),
            "retrans".into(),
        ],
        vec![
            row("back-to-back (native)", &b0, &plain),
            row("paced", &b1, &paced),
        ],
    )
}

/// Early-retransmit ablation (RFC 5827, §4.3's suggestion for small-cwnd
/// stalls): cloud-storage population with and without ER.
pub fn early_retransmit_ablation(flows: usize, seed: u64, engine: &Engine) -> Table {
    let cfg = AnalyzerConfig::default();
    let pop = engine.sample_population(Service::CloudStorage, flows, seed);
    let mut er_pop = pop.clone();
    for (spec, _) in er_pop.iter_mut() {
        spec.early_retransmit = true;
    }
    let plain = engine.run_population_streaming(
        Service::CloudStorage,
        &pop,
        RecoveryMechanism::Native,
        seed,
        cfg,
    );
    let er = engine.run_population_streaming(
        Service::CloudStorage,
        &er_pop,
        RecoveryMechanism::Native,
        seed,
        cfg,
    );
    let breakdown = |(corpus, analyses): &(Corpus, Vec<tapo::FlowAnalysis>)| {
        let b = Engine::breakdown(analyses);
        let rtos = corpus.flows.iter().map(|f| f.server_stats.rto_count).sum();
        (b, rtos)
    };
    let ((b0, r0), (b1, r1)) = (breakdown(&plain), breakdown(&er));
    let row = |name: &str, b: &StallBreakdown, rtos: u64| {
        vec![
            name.to_string(),
            pct_cell(b.retrans_share(RetransClass::SmallCwnd).time_pct),
            pct_cell(b.retrans_share(RetransClass::TailRetrans).time_pct),
            format!("{rtos}"),
            format!("{}", b.total_stalls),
        ]
    };
    Table::new(
        "ablation_early_retransmit",
        "Early-retransmit ablation (cloud storage)",
        vec![
            "sender".into(),
            "small-cwnd %T".into(),
            "tail %T".into(),
            "#RTOs".into(),
            "#stalls".into(),
        ],
        vec![
            row("native (no ER)", &b0, r0),
            row("early retransmit", &b1, r1),
        ],
    )
}

/// TAPO accuracy check (extra): compare TAPO's trace-only estimates with
/// the simulator's ground truth for timeout and total retransmissions.
pub fn tapo_accuracy(flows: usize, seed: u64, engine: &Engine) -> Table {
    let pop = engine.sample_population(Service::SoftwareDownload, flows, seed);
    let (corpus, analyses) = engine.run_population_streaming(
        Service::SoftwareDownload,
        &pop,
        RecoveryMechanism::Native,
        seed,
        AnalyzerConfig::default(),
    );
    let (mut est_retr, mut true_retr, mut est_rto, mut true_rto) = (0u64, 0u64, 0u64, 0u64);
    for (f, a) in corpus.flows.iter().zip(&analyses) {
        est_retr += a.metrics.retrans_pkts;
        true_retr += f.server_stats.retrans_segs;
        est_rto += a.rto_samples.len() as u64;
        true_rto += f.server_stats.rto_count;
    }
    let acc = |est: u64, truth: u64| {
        if truth == 0 {
            "–".to_string()
        } else {
            format!("{}%", pct_cell(100.0 * est as f64 / truth as f64))
        }
    };
    Table::new(
        "tapo_accuracy",
        "TAPO estimates vs simulator ground truth (software download)",
        vec![
            "metric".into(),
            "TAPO".into(),
            "ground truth".into(),
            "TAPO/truth".into(),
        ],
        vec![
            vec![
                "retransmitted segs".into(),
                est_retr.to_string(),
                true_retr.to_string(),
                acc(est_retr, true_retr),
            ],
            vec![
                "timeout events".into(),
                est_rto.to_string(),
                true_rto.to_string(),
                acc(est_rto, true_rto),
            ],
        ],
    )
}

fn latency_cdf(corpus: &Corpus) -> Cdf {
    Cdf::from_samples(
        corpus
            .flows
            .iter()
            .filter(|f| f.completed)
            .map(|f| {
                f.request_latencies
                    .iter()
                    .filter(|&&l| l != SimDuration::MAX)
                    .map(|l| l.as_secs_f64())
                    .sum::<f64>()
            })
            .collect(),
    )
}

/// Mechanistic cross-traffic experiment: N synchronized downloads through
/// one shared bottleneck (the paper's software-release load). Continuous
/// loss and double retransmissions emerge from drop-tail overflow alone —
/// no statistical loss model at all — and grow with the degree of
/// synchronization.
pub fn crosstraffic_experiment(seed: u64, engine: &Engine) -> Table {
    use simnet::time::SimTime;
    use tcp_sim::multi::{MultiFlowEntry, MultiFlowSim, MultiFlowSimConfig};
    let mss = 1448u64;
    let mut rows = Vec::new();
    for &n in &[1usize, 4, 12, 24] {
        let cfg = MultiFlowSimConfig {
            flows: (0..n)
                .map(|i| {
                    let mut e = MultiFlowEntry::new(SimTime::ZERO, 300 * mss);
                    e.extra_delay = simnet::time::SimDuration::from_millis(5 * (i as u64 % 7));
                    e
                })
                .collect(),
            ..MultiFlowSimConfig::default()
        };
        let outcomes = MultiFlowSim::new(cfg, seed).run();
        let analyses = engine.map(outcomes.len(), |i| {
            analyze_flow(&outcomes[i].trace, AnalyzerConfig::default())
        });
        let b = Engine::breakdown(&analyses);
        let mut retrans = 0u64;
        let mut sent = 0u64;
        let mut worst = 0.0f64;
        for o in &outcomes {
            retrans += o.server_stats.retrans_segs;
            sent += o.server_stats.data_segs_sent + o.server_stats.retrans_segs;
            if let Some(l) = o.latency {
                worst = worst.max(l.as_secs_f64());
            }
        }
        rows.push(vec![
            format!("{n}"),
            format!("{}%", pct_cell(100.0 * retrans as f64 / sent.max(1) as f64)),
            format!("{}", b.total_stalls),
            pct_cell(b.retrans_share(RetransClass::ContinuousLoss).volume_pct),
            pct_cell(b.retrans_share(RetransClass::DoubleRetrans).volume_pct),
            format!("{worst:.2}s"),
        ]);
    }
    Table::new(
        "crosstraffic",
        "Synchronized downloads through one 20Mbit/s drop-tail bottleneck (no statistical loss)",
        vec![
            "#flows".into(),
            "retrans".into(),
            "#stalls".into(),
            "cont.loss %#".into(),
            "double %#".into(),
            "slowest flow".into(),
        ],
        rows,
    )
}

/// Classification of each stall cause as actionable-by-TCP or not — the
/// paper's closing observation that only network-side stalls are TCP's to
/// fix. Included as a sanity table for the docs.
pub fn actionability() -> Table {
    let verdict = |class: StallClass| match class {
        StallClass::DataUnavailable => Some("no (cache/backend)"),
        StallClass::ResourceConstraint => Some("no (provisioning)"),
        StallClass::ClientIdle => Some("no (user behaviour)"),
        StallClass::ZeroWindow => Some("no (client software)"),
        StallClass::PacketDelay => Some("partially"),
        StallClass::Retransmission => Some("yes (S-RTO/TLP)"),
        StallClass::Undetermined => None,
    };
    let rows = StallClass::ALL
        .iter()
        .filter_map(|&class| {
            verdict(class).map(|v| {
                vec![
                    class.label().to_string(),
                    match class.category() {
                        tapo::StallCategory::Server => "server".to_string(),
                        tapo::StallCategory::Client => "client".to_string(),
                        tapo::StallCategory::Network => "network".to_string(),
                        tapo::StallCategory::Undetermined => String::new(),
                    },
                    v.to_string(),
                ]
            })
        })
        .collect();
    Table::new(
        "actionability",
        "Which stall causes TCP can address",
        vec!["cause".into(), "side".into(), "addressable by TCP".into()],
        rows,
    )
}

//! Figure 3: ratio of stalled time to flow transmission time.

use tapo::Cdf;

use crate::dataset::Dataset;
use crate::output::{Figure, Series};

/// Regenerate Figure 3: per-service CDF of `stalled_time / transmission
/// time` over all flows (flows without stalls contribute 0).
pub fn fig3(ds: &Dataset) -> Figure {
    let probes: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
    let series = ds
        .services
        .iter()
        .map(|sd| Series {
            name: sd.service.label().to_string(),
            points: Cdf::from_samples(sd.analyses.iter().map(|a| a.stall_ratio()).collect())
                .series(&probes),
        })
        .collect();
    Figure {
        id: "fig3".into(),
        title: "Ratio of stalled time to transmission time".into(),
        x_label: "Stalled time / transmission time".into(),
        y_label: "CDF".into(),
        series,
    }
}

/// Headline statistics quoted in §2.2: the fraction of flows with at least
/// one stall, and the fraction stalled for more than half their lifetime.
pub fn stall_headline(ds: &Dataset) -> Vec<(String, f64, f64)> {
    ds.services
        .iter()
        .map(|sd| {
            let n = sd.analyses.len().max(1) as f64;
            let any = sd.analyses.iter().filter(|a| !a.stalls.is_empty()).count() as f64 / n;
            let half = sd.analyses.iter().filter(|a| a.stall_ratio() > 0.5).count() as f64 / n;
            (sd.service.label().to_string(), any, half)
        })
        .collect()
}

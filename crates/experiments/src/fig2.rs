//! Figure 2: an illustrative flow whose lifetime is dominated by stalls of
//! different kinds (zero window, delay variation, timeouts).
//!
//! The paper picks one real cloud-storage flow; we synthesize a comparable
//! one — a ~400KB transfer to a slow, small-buffer client over a bursty
//! path — and search a few seeds for a flow exhibiting at least a
//! zero-window stall and a long (> 1s) timeout stall.

use simnet::loss::LossSpec;
use simnet::time::SimDuration;
use tapo::{analyze_flow, AnalyzerConfig, FlowAnalysis, StallCause};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::sim::FlowOutcome;
use tcp_trace::record::Direction;
use workloads::{simulate_flow, FlowSpec, PathSpec};

use crate::output::{Figure, Series};

/// The scenario behind Figure 2.
pub fn fig2_scenario() -> (FlowSpec, PathSpec) {
    let spec = FlowSpec {
        client_buf: 16 * 1024,
        client_drain: Some(120_000),
        ..FlowSpec::response_bytes(400_000)
    };
    let path = PathSpec {
        rtt: SimDuration::from_millis(140),
        jitter: SimDuration::from_millis(40),
        loss: LossSpec::bursty(0.05, SimDuration::from_millis(180)),
        ..PathSpec::default()
    };
    (spec, path)
}

/// Simulate the scenario, choosing a seed whose flow shows the paper's mix
/// of stalls. Returns the outcome, its analysis and the chosen seed.
pub fn fig2_flow() -> (FlowOutcome, FlowAnalysis, u64) {
    let (spec, path) = fig2_scenario();
    let mut best: Option<(FlowOutcome, FlowAnalysis, u64, usize)> = None;
    for seed in 0..64u64 {
        let out = simulate_flow(&spec, &path, RecoveryMechanism::Native, seed);
        if !out.completed {
            continue;
        }
        let analysis = analyze_flow(&out.trace, AnalyzerConfig::default());
        let has_zero = analysis
            .stalls
            .iter()
            .any(|s| s.cause == StallCause::ZeroWindow);
        let has_long_rto = analysis.stalls.iter().any(|s| {
            matches!(s.cause, StallCause::Retransmission(_))
                && s.duration > SimDuration::from_secs(1)
        });
        let score = analysis.stalls.len();
        if has_zero && has_long_rto {
            return (out, analysis, seed);
        }
        if best.as_ref().is_none_or(|(_, _, _, s)| score > *s) {
            best = Some((out, analysis, seed, score));
        }
    }
    let (out, analysis, seed, _) = best.expect("at least one completed flow");
    (out, analysis, seed)
}

/// Regenerate Figure 2: the sequence-number progression of the flow with
/// one series per data stream plus a series marking stall intervals.
pub fn fig2() -> Figure {
    let (out, analysis, seed) = fig2_flow();
    let seq_points: Vec<(f64, f64)> = out
        .trace
        .records
        .iter()
        .filter(|r| r.dir == Direction::Out && r.has_data())
        .map(|r| (r.t.as_secs_f64(), r.seq_end() as f64))
        .collect();
    let rtt_points: Vec<(f64, f64)> = {
        // Reconstructed per-sample RTT over time (right axis of the paper's
        // figure); x positions spread over the samples.
        analysis
            .rtt_samples
            .iter()
            .enumerate()
            .map(|(i, d)| (i as f64, d.as_secs_f64() * 1e3))
            .collect()
    };
    let stall_points: Vec<(f64, f64)> = analysis
        .stalls
        .iter()
        .flat_map(|s| {
            let y = s.snapshot.packets_out as f64;
            [(s.start.as_secs_f64(), y), (s.end.as_secs_f64(), y)]
        })
        .collect();
    Figure {
        id: "fig2".into(),
        title: format!(
            "Illustrative stalled flow (seed {seed}): {} stalls, {:.1}s stalled of {:.1}s",
            analysis.stalls.len(),
            analysis.metrics.stalled_time.as_secs_f64(),
            analysis.metrics.duration.as_secs_f64()
        ),
        x_label: "Time (s)".into(),
        y_label: "Sequence number (bytes) / RTT (ms)".into(),
        series: vec![
            Series {
                name: "seq".into(),
                points: seq_points,
            },
            Series {
                name: "rtt_ms(sample#)".into(),
                points: rtt_points,
            },
            Series {
                name: "stall_intervals".into(),
                points: stall_points,
            },
        ],
    }
}

//! The TAPO validation gate: score the classifier against the simulator's
//! ground-truth oracle and fail on regression.
//!
//! Every flow is simulated with the oracle side-channel enabled
//! ([`workloads::simulate_flow_oracle_into_scratch`]) while its records
//! stream into TAPO; `tapo::validate` then aligns the ground-truth cause
//! events with the detected stalls into confusion matrices at stall-class
//! and Table-5 retransmission-subclass granularity. The `validation` table
//! (written to `results/validation.csv` by `repro validate`) has a *fixed
//! shape* — every cell of both 7×7 matrices is always emitted — so the CI
//! byte-identity diff covers it, and [`floor_violations`] gates committed
//! minimum scores so a classifier change that degrades agreement with
//! ground truth fails CI even when every unit test still passes.

use tapo::{AnalyzerConfig, RetransClass, StallClass, StreamAnalyzer, ValidationReport};
use tcp_sim::recovery::RecoveryMechanism;
use workloads::{
    sample_flow, simulate_flow_into_scratch, simulate_flow_oracle_into_scratch, FlowScratch,
    Service, ServiceModel,
};

use crate::engine::Engine;
use crate::output::Table;

/// Run the full validation pass: `flows` oracle-labelled flows per service
/// (all three services, native recovery — the stack the paper measured),
/// scored flow-by-flow and folded in index order. Deterministic and
/// bit-identical at any engine thread count.
pub fn run_validation(flows: usize, seed: u64, engine: &Engine) -> ValidationReport {
    let cfg = AnalyzerConfig::default();
    let mut total = ValidationReport::default();
    for service in Service::ALL {
        let model = ServiceModel::calibrated(service);
        let per_flow = engine.map_with(
            flows,
            || (FlowScratch::new(), StreamAnalyzer::new(cfg)),
            |i, (sim, slot)| {
                let (spec, path) = sample_flow(&model, seed, i);
                let fseed = seed + i as u64;
                let analyzer = std::mem::replace(slot, StreamAnalyzer::new(cfg));
                let (out, mut analyzer) = simulate_flow_oracle_into_scratch(
                    &spec,
                    &path,
                    RecoveryMechanism::Native,
                    fseed,
                    analyzer,
                    sim,
                );
                let analysis = analyzer.finish_reset();
                *slot = analyzer;
                let mut r = ValidationReport::default();
                r.score_flow(&analysis.stalls, &out.oracle);
                r
            },
        );
        for r in &per_flow {
            total.merge(r);
        }
    }
    total
}

/// T-RACKs validation: the classifier scored against the oracle on
/// T-RACKs-recovery traffic, plus the paired mechanism benefit — the same
/// flows (identical per-flow seeds) replayed under native recovery so the
/// forced-fast-retransmit stall-time saving is measured on matched pairs,
/// not across populations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TracksValidation {
    /// Confusion matrices for TAPO on T-RACKs traffic.
    pub report: ValidationReport,
    /// Total detected stall time under native recovery (µs).
    pub native_stall_us: u64,
    /// Total detected stall time under T-RACKs on the same flows (µs).
    pub tracks_stall_us: u64,
    /// T-RACKs virtual-timer firings across the population (proves the
    /// mechanism was actually exercised, not merely configured).
    pub forced_entries: u64,
}

impl TracksValidation {
    /// Fractional stall-time reduction vs native (0.05 = 5% less stall
    /// time). `None` when the native runs produced no stall time at all.
    pub fn stall_reduction(&self) -> Option<f64> {
        if self.native_stall_us == 0 {
            return None;
        }
        Some(1.0 - self.tracks_stall_us as f64 / self.native_stall_us as f64)
    }
}

/// Run the T-RACKs validation pass. Two sub-passes, both deterministic at
/// any engine thread count (per-flow results fold in index order):
///
/// 1. **Accuracy** — `flows` oracle-labelled flows per service from the
///    calibrated mixes, simulated under `RecoveryMechanism::tracks()` and
///    scored against the ground-truth oracle. This proves the classifier
///    is not blind on T-RACKs-recovery traffic (forced fast-retransmit
///    entries change the retransmission patterns TAPO keys on).
///
/// 2. **Paired benefit** — a *controlled* grid of `3·flows`
///    request/response flows in the dupack-starved-tail regime T-RACKs
///    exists for, each run under T-RACKs and replayed under native
///    recovery on the same seed. The calibrated mixes are the wrong
///    instrument for a paired benefit floor: one extra (or saved)
///    transmission re-seeds every later loss draw on the path, so a
///    single long cloud flow's diverged trajectory can swing the paired
///    total by ±7% in either direction at quick scale — butterfly noise,
///    not mechanism effect. The same reasoning gave Table 8 its
///    fixed-size "control flow" population (see `mechanism.rs`).
pub fn run_tracks_validation(flows: usize, seed: u64, engine: &Engine) -> TracksValidation {
    let cfg = AnalyzerConfig::default();
    let mut total = TracksValidation::default();
    // Pass 1: classifier accuracy on T-RACKs traffic, calibrated mixes.
    for service in Service::ALL {
        let model = ServiceModel::calibrated(service);
        let per_flow = engine.map_with(
            flows,
            || (FlowScratch::new(), StreamAnalyzer::new(cfg)),
            |i, (sim, slot)| {
                let (spec, path) = sample_flow(&model, seed, i);
                let fseed = seed + i as u64;
                let analyzer = std::mem::replace(slot, StreamAnalyzer::new(cfg));
                let (out, mut analyzer) = simulate_flow_oracle_into_scratch(
                    &spec,
                    &path,
                    RecoveryMechanism::tracks(),
                    fseed,
                    analyzer,
                    sim,
                );
                let analysis = analyzer.finish_reset();
                *slot = analyzer;
                let mut r = ValidationReport::default();
                r.score_flow(&analysis.stalls, &out.oracle);
                (r, out.server_stats.tracks_forced)
            },
        );
        for (r, forced) in &per_flow {
            total.report.merge(r);
            total.forced_entries += forced;
        }
    }
    // Pass 2: paired stall-time benefit on the controlled grid.
    let per_flow = engine.map_with(
        flows * 3,
        || (FlowScratch::new(), StreamAnalyzer::new(cfg)),
        |i, (sim, slot)| {
            let rtt_ms = 40 + (i as u64 % 5) * 30;
            let rtt = simnet::time::SimDuration::from_millis(rtt_ms);
            // Eight small responses per flow: each 9–15KB response is
            // 7–11 MSS, so every response tail sits at small
            // `packets_out` where a mid-burst loss draws one or two
            // dupacks and then starves — the exact entry condition of
            // the T-RACKs virtual timer.
            let mut spec = workloads::FlowSpec::response_bytes(0);
            spec.script = tcp_sim::sim::FlowScript {
                requests: (0..8u64)
                    .map(|r| {
                        let mut rq =
                            tcp_sim::sim::RequestSpec::simple(9_000 + ((i as u64 + r) % 3) * 3_000);
                        rq.think_time = simnet::time::SimDuration::from_millis(10);
                        rq
                    })
                    .collect(),
            };
            // I.i.d. (Bernoulli) loss, deliberately not bursty: a loss
            // burst longer than a response's ~12ms wire time drops the
            // whole tail and leaves *zero* dupacks (RTO territory,
            // where T-RACKs never arms). Independent drops produce the
            // partial tails — one hole, one or two survivors behind
            // it — that the virtual timer repairs.
            let path = workloads::PathSpec {
                rtt,
                jitter: simnet::time::SimDuration::from_millis(rtt_ms / 10),
                loss: simnet::loss::LossSpec::bernoulli(0.05),
                bandwidth_bps: 8_000_000,
                queue_pkts: 60,
                ..workloads::PathSpec::default()
            };
            let fseed = seed + i as u64;
            let analyzer = std::mem::replace(slot, StreamAnalyzer::new(cfg));
            let (tout, mut analyzer) = simulate_flow_into_scratch(
                &spec,
                &path,
                RecoveryMechanism::tracks(),
                fseed,
                analyzer,
                sim,
            );
            let tracks_analysis = analyzer.finish_reset();
            let (nout, mut analyzer) = simulate_flow_into_scratch(
                &spec,
                &path,
                RecoveryMechanism::Native,
                fseed,
                analyzer,
                sim,
            );
            let native_analysis = analyzer.finish_reset();
            *slot = analyzer;
            let stall_us = |a: &tapo::FlowAnalysis| {
                a.stalls.iter().map(|s| s.duration.as_micros()).sum::<u64>()
            };
            debug_assert_eq!(nout.server_stats.tracks_forced, 0);
            (
                stall_us(&native_analysis),
                stall_us(&tracks_analysis),
                tout.server_stats.tracks_forced,
            )
        },
    );
    for (native_us, tracks_us, forced) in &per_flow {
        total.native_stall_us += native_us;
        total.tracks_stall_us += tracks_us;
        total.forced_entries += forced;
    }
    total
}

/// Render the T-RACKs validation as its own fixed-shape table
/// (`results/validation_tracks.csv`): always the same 8 rows, so the CI
/// byte-identity diff covers it.
pub fn tracks_validation_table(v: &TracksValidation) -> Table {
    let score = |x: Option<f64>| match x {
        Some(x) => format!("{x:.3}"),
        None => "–".into(),
    };
    let rows = vec![
        vec!["flows scored".into(), v.report.flows.to_string()],
        vec!["stalls scored".into(), v.report.stalls.to_string()],
        vec![
            "stall-class accuracy".into(),
            score(v.report.stall_matrix.accuracy()),
        ],
        vec![
            "retrans-subclass accuracy".into(),
            score(v.report.retrans_matrix.accuracy()),
        ],
        vec![
            "forced fast-retransmits".into(),
            v.forced_entries.to_string(),
        ],
        vec![
            "native stall time (s)".into(),
            format!("{:.3}", v.native_stall_us as f64 / 1e6),
        ],
        vec![
            "T-RACKs stall time (s)".into(),
            format!("{:.3}", v.tracks_stall_us as f64 / 1e6),
        ],
        vec!["stall-time reduction".into(), score(v.stall_reduction())],
    ];
    Table::new(
        "validation_tracks",
        "T-RACKs vs ground-truth oracle: classifier accuracy and paired stall-time benefit",
        vec!["metric".into(), "value".into()],
        rows,
    )
}

/// Render the report as the fixed-shape `validation` table: one row per
/// cell of each confusion matrix (rows are ground truth, columns TAPO's
/// prediction), with per-class precision and recall carried on the
/// diagonal rows.
pub fn validation_table(r: &ValidationReport) -> Table {
    let score = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "–".into(),
    };
    let mut rows = Vec::with_capacity(2 + 2 * 49);
    rows.push(vec![
        "summary".into(),
        "flows".into(),
        "scored".into(),
        r.flows.to_string(),
        String::new(),
        String::new(),
    ]);
    rows.push(vec![
        "summary".into(),
        "stalls".into(),
        "scored".into(),
        r.stalls.to_string(),
        score(r.stall_matrix.accuracy()),
        score(r.retrans_matrix.accuracy()),
    ]);
    for truth in StallClass::ALL {
        for pred in StallClass::ALL {
            let diag = truth == pred;
            rows.push(vec![
                "stall".into(),
                truth.label().into(),
                pred.label().into(),
                r.stall_matrix.cells[truth.index()][pred.index()].to_string(),
                if diag {
                    score(r.stall_matrix.precision(pred.index()))
                } else {
                    String::new()
                },
                if diag {
                    score(r.stall_matrix.recall(truth.index()))
                } else {
                    String::new()
                },
            ]);
        }
    }
    for truth in RetransClass::ALL {
        for pred in RetransClass::ALL {
            let diag = truth == pred;
            rows.push(vec![
                "retrans".into(),
                truth.label().into(),
                pred.label().into(),
                r.retrans_matrix.cells[truth.index()][pred.index()].to_string(),
                if diag {
                    score(r.retrans_matrix.precision(pred.index()))
                } else {
                    String::new()
                },
                if diag {
                    score(r.retrans_matrix.recall(truth.index()))
                } else {
                    String::new()
                },
            ]);
        }
    }
    Table::new(
        "validation",
        "TAPO vs ground-truth oracle: confusion matrices (rows = truth, cols = predicted)",
        vec![
            "level".into(),
            "truth".into(),
            "predicted".into(),
            "count".into(),
            "precision".into(),
            "recall".into(),
        ],
        rows,
    )
}

/// Committed minimum scores, measured at quick scale (60 flows/service,
/// seed 2015) with margin below the observed values so seed-level noise at
/// other scales does not trip the gate, while a genuine classifier
/// regression does.
pub mod floors {
    /// Minimum overall stall-class accuracy (observed 0.934 quick).
    pub const STALL_ACCURACY: f64 = 0.80;
    /// Minimum retransmission-subclass accuracy among stalls both sides
    /// call retransmission (observed 0.695 quick).
    pub const RETRANS_ACCURACY: f64 = 0.55;
    /// Minimum recall of retransmission stalls (observed 0.943 quick).
    pub const RETRANS_RECALL: f64 = 0.80;
    /// Minimum recall of zero-window stalls (observed 0.988 quick).
    pub const ZERO_WINDOW_RECALL: f64 = 0.85;
    /// Minimum recall of client-idle stalls (observed 1.000 quick).
    pub const CLIENT_IDLE_RECALL: f64 = 0.85;
    /// Minimum recall of data-unavailable stalls (observed 0.889 quick).
    pub const DATA_UNAVAILABLE_RECALL: f64 = 0.75;
    /// Minimum number of scored stalls for the gate to be meaningful at
    /// all (observed 243 quick).
    pub const MIN_STALLS: u64 = 100;

    /// Minimum stall-class accuracy on T-RACKs-recovery traffic — the
    /// classifier must not be blind to the stalls a T-RACKs sender still
    /// produces (observed 0.928 quick).
    pub const TRACKS_STALL_ACCURACY: f64 = 0.80;
    /// Minimum paired stall-time reduction of T-RACKs vs native on
    /// identical seeds over the controlled dupack-starved grid
    /// (observed 0.077 quick).
    pub const TRACKS_STALL_REDUCTION: f64 = 0.03;
    /// Minimum virtual-timer firings across the quick population — the
    /// benefit number is meaningless if the mechanism never engaged
    /// (observed 23 quick: 10 on the calibrated mixes, 13 on the grid).
    pub const TRACKS_MIN_FORCED: u64 = 10;
    /// Minimum scored stalls on the T-RACKs runs (observed 223 quick).
    pub const TRACKS_MIN_STALLS: u64 = 80;
}

/// Check the T-RACKs validation against its committed [`floors`]; each
/// violated floor yields one human-readable line.
pub fn tracks_floor_violations(v: &TracksValidation) -> Vec<String> {
    let mut out = Vec::new();
    match v.report.stall_matrix.accuracy() {
        Some(x) if x >= floors::TRACKS_STALL_ACCURACY => {}
        Some(x) => out.push(format!(
            "T-RACKs stall-class accuracy: {x:.3} < floor {:.2}",
            floors::TRACKS_STALL_ACCURACY
        )),
        None => out.push("T-RACKs stall-class accuracy: unscored (no samples)".into()),
    }
    match v.stall_reduction() {
        Some(x) if x >= floors::TRACKS_STALL_REDUCTION => {}
        Some(x) => out.push(format!(
            "T-RACKs stall-time reduction: {x:.3} < floor {:.2}",
            floors::TRACKS_STALL_REDUCTION
        )),
        None => out.push("T-RACKs stall-time reduction: no native stall time to compare".into()),
    }
    if v.forced_entries < floors::TRACKS_MIN_FORCED {
        out.push(format!(
            "T-RACKs forced fast-retransmits {} < minimum {}",
            v.forced_entries,
            floors::TRACKS_MIN_FORCED
        ));
    }
    if v.report.stalls < floors::TRACKS_MIN_STALLS {
        out.push(format!(
            "T-RACKs scored stalls {} < minimum {}",
            v.report.stalls,
            floors::TRACKS_MIN_STALLS
        ));
    }
    out
}

/// Check the report against the committed [`floors`]; each violated floor
/// yields one human-readable line. Empty means the gate passes.
pub fn floor_violations(r: &ValidationReport) -> Vec<String> {
    let mut v = Vec::new();
    let mut need = |name: &str, got: Option<f64>, floor: f64| match got {
        Some(x) if x >= floor => {}
        Some(x) => v.push(format!("{name}: {x:.3} < floor {floor:.2}")),
        None => v.push(format!("{name}: unscored (no samples) < floor {floor:.2}")),
    };
    need(
        "stall-class accuracy",
        r.stall_matrix.accuracy(),
        floors::STALL_ACCURACY,
    );
    need(
        "retrans-subclass accuracy",
        r.retrans_matrix.accuracy(),
        floors::RETRANS_ACCURACY,
    );
    need(
        "retransmission recall",
        r.stall_matrix.recall(StallClass::Retransmission.index()),
        floors::RETRANS_RECALL,
    );
    need(
        "zero-window recall",
        r.stall_matrix.recall(StallClass::ZeroWindow.index()),
        floors::ZERO_WINDOW_RECALL,
    );
    need(
        "client-idle recall",
        r.stall_matrix.recall(StallClass::ClientIdle.index()),
        floors::CLIENT_IDLE_RECALL,
    );
    need(
        "data-unavailable recall",
        r.stall_matrix.recall(StallClass::DataUnavailable.index()),
        floors::DATA_UNAVAILABLE_RECALL,
    );
    if r.stalls < floors::MIN_STALLS {
        v.push(format!(
            "scored stalls {} < minimum {}",
            r.stalls,
            floors::MIN_STALLS
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_is_deterministic_across_thread_counts() {
        let a = run_validation(8, 2015, &Engine::serial());
        let b = run_validation(8, 2015, &Engine::new(4));
        assert_eq!(a, b);
        assert_eq!(validation_table(&a), validation_table(&b));
    }

    #[test]
    fn table_shape_is_fixed() {
        let t = validation_table(&ValidationReport::default());
        assert_eq!(t.id, "validation");
        // 2 summary rows + two full 7×7 matrices.
        assert_eq!(t.rows.len(), 2 + 49 + 49);
        assert!(t.rows.iter().all(|row| row.len() == 6));
    }

    #[test]
    fn tracks_validation_is_deterministic_across_thread_counts() {
        let a = run_tracks_validation(6, 2015, &Engine::serial());
        let b = run_tracks_validation(6, 2015, &Engine::new(4));
        assert_eq!(a, b);
        assert_eq!(tracks_validation_table(&a), tracks_validation_table(&b));
    }

    #[test]
    fn tracks_table_shape_is_fixed() {
        let t = tracks_validation_table(&TracksValidation::default());
        assert_eq!(t.id, "validation_tracks");
        assert_eq!(t.rows.len(), 8);
        assert!(t.rows.iter().all(|row| row.len() == 2));
    }

    #[test]
    fn small_run_scores_sanely() {
        let r = run_validation(10, 2015, &Engine::serial());
        assert!(r.flows == 30, "3 services × 10 flows");
        assert!(r.stalls > 0, "stalls must be detected and scored");
        assert_eq!(r.stall_matrix.total(), r.stalls);
        // The classifier must agree with ground truth more often than not
        // even on a tiny sample.
        assert!(r.stall_matrix.accuracy().unwrap() > 0.5);
    }
}

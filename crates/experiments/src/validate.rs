//! The TAPO validation gate: score the classifier against the simulator's
//! ground-truth oracle and fail on regression.
//!
//! Every flow is simulated with the oracle side-channel enabled
//! ([`workloads::simulate_flow_oracle_into_scratch`]) while its records
//! stream into TAPO; `tapo::validate` then aligns the ground-truth cause
//! events with the detected stalls into confusion matrices at stall-class
//! and Table-5 retransmission-subclass granularity. The `validation` table
//! (written to `results/validation.csv` by `repro validate`) has a *fixed
//! shape* — every cell of both 7×7 matrices is always emitted — so the CI
//! byte-identity diff covers it, and [`floor_violations`] gates committed
//! minimum scores so a classifier change that degrades agreement with
//! ground truth fails CI even when every unit test still passes.

use tapo::{AnalyzerConfig, RetransClass, StallClass, StreamAnalyzer, ValidationReport};
use tcp_sim::recovery::RecoveryMechanism;
use workloads::{
    sample_flow, simulate_flow_oracle_into_scratch, FlowScratch, Service, ServiceModel,
};

use crate::engine::Engine;
use crate::output::Table;

/// Run the full validation pass: `flows` oracle-labelled flows per service
/// (all three services, native recovery — the stack the paper measured),
/// scored flow-by-flow and folded in index order. Deterministic and
/// bit-identical at any engine thread count.
pub fn run_validation(flows: usize, seed: u64, engine: &Engine) -> ValidationReport {
    let cfg = AnalyzerConfig::default();
    let mut total = ValidationReport::default();
    for service in Service::ALL {
        let model = ServiceModel::calibrated(service);
        let per_flow = engine.map_with(
            flows,
            || (FlowScratch::new(), StreamAnalyzer::new(cfg)),
            |i, (sim, slot)| {
                let (spec, path) = sample_flow(&model, seed, i);
                let fseed = seed + i as u64;
                let analyzer = std::mem::replace(slot, StreamAnalyzer::new(cfg));
                let (out, mut analyzer) = simulate_flow_oracle_into_scratch(
                    &spec,
                    &path,
                    RecoveryMechanism::Native,
                    fseed,
                    analyzer,
                    sim,
                );
                let analysis = analyzer.finish_reset();
                *slot = analyzer;
                let mut r = ValidationReport::default();
                r.score_flow(&analysis.stalls, &out.oracle);
                r
            },
        );
        for r in &per_flow {
            total.merge(r);
        }
    }
    total
}

/// Render the report as the fixed-shape `validation` table: one row per
/// cell of each confusion matrix (rows are ground truth, columns TAPO's
/// prediction), with per-class precision and recall carried on the
/// diagonal rows.
pub fn validation_table(r: &ValidationReport) -> Table {
    let score = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "–".into(),
    };
    let mut rows = Vec::with_capacity(2 + 2 * 49);
    rows.push(vec![
        "summary".into(),
        "flows".into(),
        "scored".into(),
        r.flows.to_string(),
        String::new(),
        String::new(),
    ]);
    rows.push(vec![
        "summary".into(),
        "stalls".into(),
        "scored".into(),
        r.stalls.to_string(),
        score(r.stall_matrix.accuracy()),
        score(r.retrans_matrix.accuracy()),
    ]);
    for truth in StallClass::ALL {
        for pred in StallClass::ALL {
            let diag = truth == pred;
            rows.push(vec![
                "stall".into(),
                truth.label().into(),
                pred.label().into(),
                r.stall_matrix.cells[truth.index()][pred.index()].to_string(),
                if diag {
                    score(r.stall_matrix.precision(pred.index()))
                } else {
                    String::new()
                },
                if diag {
                    score(r.stall_matrix.recall(truth.index()))
                } else {
                    String::new()
                },
            ]);
        }
    }
    for truth in RetransClass::ALL {
        for pred in RetransClass::ALL {
            let diag = truth == pred;
            rows.push(vec![
                "retrans".into(),
                truth.label().into(),
                pred.label().into(),
                r.retrans_matrix.cells[truth.index()][pred.index()].to_string(),
                if diag {
                    score(r.retrans_matrix.precision(pred.index()))
                } else {
                    String::new()
                },
                if diag {
                    score(r.retrans_matrix.recall(truth.index()))
                } else {
                    String::new()
                },
            ]);
        }
    }
    Table::new(
        "validation",
        "TAPO vs ground-truth oracle: confusion matrices (rows = truth, cols = predicted)",
        vec![
            "level".into(),
            "truth".into(),
            "predicted".into(),
            "count".into(),
            "precision".into(),
            "recall".into(),
        ],
        rows,
    )
}

/// Committed minimum scores, measured at quick scale (60 flows/service,
/// seed 2015) with margin below the observed values so seed-level noise at
/// other scales does not trip the gate, while a genuine classifier
/// regression does.
pub mod floors {
    /// Minimum overall stall-class accuracy (observed 0.934 quick).
    pub const STALL_ACCURACY: f64 = 0.80;
    /// Minimum retransmission-subclass accuracy among stalls both sides
    /// call retransmission (observed 0.695 quick).
    pub const RETRANS_ACCURACY: f64 = 0.55;
    /// Minimum recall of retransmission stalls (observed 0.943 quick).
    pub const RETRANS_RECALL: f64 = 0.80;
    /// Minimum recall of zero-window stalls (observed 0.988 quick).
    pub const ZERO_WINDOW_RECALL: f64 = 0.85;
    /// Minimum recall of client-idle stalls (observed 1.000 quick).
    pub const CLIENT_IDLE_RECALL: f64 = 0.85;
    /// Minimum recall of data-unavailable stalls (observed 0.889 quick).
    pub const DATA_UNAVAILABLE_RECALL: f64 = 0.75;
    /// Minimum number of scored stalls for the gate to be meaningful at
    /// all (observed 243 quick).
    pub const MIN_STALLS: u64 = 100;
}

/// Check the report against the committed [`floors`]; each violated floor
/// yields one human-readable line. Empty means the gate passes.
pub fn floor_violations(r: &ValidationReport) -> Vec<String> {
    let mut v = Vec::new();
    let mut need = |name: &str, got: Option<f64>, floor: f64| match got {
        Some(x) if x >= floor => {}
        Some(x) => v.push(format!("{name}: {x:.3} < floor {floor:.2}")),
        None => v.push(format!("{name}: unscored (no samples) < floor {floor:.2}")),
    };
    need(
        "stall-class accuracy",
        r.stall_matrix.accuracy(),
        floors::STALL_ACCURACY,
    );
    need(
        "retrans-subclass accuracy",
        r.retrans_matrix.accuracy(),
        floors::RETRANS_ACCURACY,
    );
    need(
        "retransmission recall",
        r.stall_matrix.recall(StallClass::Retransmission.index()),
        floors::RETRANS_RECALL,
    );
    need(
        "zero-window recall",
        r.stall_matrix.recall(StallClass::ZeroWindow.index()),
        floors::ZERO_WINDOW_RECALL,
    );
    need(
        "client-idle recall",
        r.stall_matrix.recall(StallClass::ClientIdle.index()),
        floors::CLIENT_IDLE_RECALL,
    );
    need(
        "data-unavailable recall",
        r.stall_matrix.recall(StallClass::DataUnavailable.index()),
        floors::DATA_UNAVAILABLE_RECALL,
    );
    if r.stalls < floors::MIN_STALLS {
        v.push(format!(
            "scored stalls {} < minimum {}",
            r.stalls,
            floors::MIN_STALLS
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_is_deterministic_across_thread_counts() {
        let a = run_validation(8, 2015, &Engine::serial());
        let b = run_validation(8, 2015, &Engine::new(4));
        assert_eq!(a, b);
        assert_eq!(validation_table(&a), validation_table(&b));
    }

    #[test]
    fn table_shape_is_fixed() {
        let t = validation_table(&ValidationReport::default());
        assert_eq!(t.id, "validation");
        // 2 summary rows + two full 7×7 matrices.
        assert_eq!(t.rows.len(), 2 + 49 + 49);
        assert!(t.rows.iter().all(|row| row.len() == 6));
    }

    #[test]
    fn small_run_scores_sanely() {
        let r = run_validation(10, 2015, &Engine::serial());
        assert!(r.flows == 30, "3 services × 10 flows");
        assert!(r.stalls > 0, "stalls must be detected and scored");
        assert_eq!(r.stall_matrix.total(), r.stalls);
        // The classifier must agree with ground truth more often than not
        // even on a tiny sample.
        assert!(r.stall_matrix.accuracy().unwrap() > 0.5);
    }
}

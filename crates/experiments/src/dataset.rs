//! The shared measurement dataset: three per-service corpora simulated
//! under the native (Linux 2.6.32) stack and analyzed by TAPO — the
//! simulated counterpart of the paper's 7-day production capture that
//! Sections 2–4 are computed from.

use tapo::{AnalyzerConfig, FlowAnalysis, StallBreakdown};
use tcp_sim::recovery::RecoveryMechanism;
use workloads::{Corpus, Service};

use crate::engine::Engine;

/// How large a dataset to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Flows per service.
    pub flows_per_service: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// The default for the `repro` binary: large enough for stable shares.
    pub fn standard() -> Self {
        Scale {
            flows_per_service: 400,
            seed: 2015,
        }
    }

    /// A fast scale for tests and benches.
    pub fn quick() -> Self {
        Scale {
            flows_per_service: 60,
            seed: 2015,
        }
    }
}

/// One service's corpus plus its TAPO analyses and aggregate breakdown.
#[derive(Debug)]
pub struct ServiceData {
    /// The service.
    pub service: Service,
    /// Simulated flows (traces + ground truth).
    pub corpus: Corpus,
    /// TAPO's per-flow analysis.
    pub analyses: Vec<FlowAnalysis>,
    /// Aggregated stall breakdown.
    pub breakdown: StallBreakdown,
}

impl ServiceData {
    /// Build one service's data at the given scale, serially.
    pub fn build(service: Service, scale: Scale) -> Self {
        Self::build_with(service, scale, &Engine::serial())
    }

    /// Build one service's data on the given engine. Output is identical at
    /// any thread count (see [`crate::engine`]). Simulation and analysis
    /// are fused: each flow's records are teed into the materialized trace
    /// and a streaming analyzer in one pass.
    pub fn build_with(service: Service, scale: Scale, engine: &Engine) -> Self {
        let (corpus, analyses) = engine.synthesize_and_analyze(
            service,
            scale.flows_per_service,
            RecoveryMechanism::Native,
            scale.seed,
            AnalyzerConfig::default(),
        );
        let breakdown = Engine::breakdown(&analyses);
        ServiceData {
            service,
            corpus,
            analyses,
            breakdown,
        }
    }

    /// Build one service's data without materializing any per-flow trace:
    /// records stream straight into the analyzer. Analyses and breakdown
    /// are identical to [`ServiceData::build_with`]; the corpus keeps its
    /// aggregate per-flow counters but every `trace` is empty. Use this
    /// when nothing downstream reads raw traces (benchmarks, large sweeps).
    pub fn build_streaming(service: Service, scale: Scale, engine: &Engine) -> Self {
        let (corpus, analyses) = engine.analyze_streaming(
            service,
            scale.flows_per_service,
            RecoveryMechanism::Native,
            scale.seed,
            AnalyzerConfig::default(),
        );
        let breakdown = Engine::breakdown(&analyses);
        ServiceData {
            service,
            corpus,
            analyses,
            breakdown,
        }
    }
}

/// The full three-service dataset.
#[derive(Debug)]
pub struct Dataset {
    /// Per-service data, in the paper's table order.
    pub services: Vec<ServiceData>,
    /// The scale it was built at.
    pub scale: Scale,
}

impl Dataset {
    /// Synthesize and analyze all three services, serially.
    pub fn build(scale: Scale) -> Self {
        Self::build_with(scale, &Engine::serial())
    }

    /// Synthesize and analyze all three services on the given engine.
    /// Output is identical at any thread count (see [`crate::engine`]).
    pub fn build_with(scale: Scale, engine: &Engine) -> Self {
        let services = Service::ALL
            .iter()
            .map(|&s| ServiceData::build_with(s, scale, engine))
            .collect();
        Dataset { services, scale }
    }

    /// Synthesize and analyze all three services without materializing
    /// per-flow traces (see [`ServiceData::build_streaming`]).
    pub fn build_streaming(scale: Scale, engine: &Engine) -> Self {
        let services = Service::ALL
            .iter()
            .map(|&s| ServiceData::build_streaming(s, scale, engine))
            .collect();
        Dataset { services, scale }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dataset_builds_and_detects_stalls() {
        let data = ServiceData::build(
            Service::WebSearch,
            Scale {
                flows_per_service: 20,
                seed: 1,
            },
        );
        assert_eq!(data.analyses.len(), 20);
        // With 2% bursty loss and back-end delays, some stalls must exist.
        assert!(data.breakdown.total_stalls > 0);
    }
}

//! Figures 11 and 12: in-flight size distributions.

use tapo::{Cdf, RetransCause, StallCause};

use crate::dataset::Dataset;
use crate::output::{Figure, Series};

/// Figure 11: CDF of the in-flight size computed on each ACK, per service
/// (log-ish x range 1–100).
pub fn fig11(ds: &Dataset) -> Figure {
    let probes: Vec<f64> = (1..=100).map(|i| i as f64).collect();
    let series = ds
        .services
        .iter()
        .map(|sd| {
            let samples: Vec<f64> = sd
                .analyses
                .iter()
                .flat_map(|a| a.in_flight_on_ack.iter().map(|&x| x as f64))
                .collect();
            Series {
                name: sd.service.label().to_string(),
                points: Cdf::from_samples(samples).series(&probes),
            }
        })
        .collect();
    Figure {
        id: "fig11".into(),
        title: "In-flight size computed on each ACK".into(),
        x_label: "Number of in-flight packets".into(),
        y_label: "CDF".into(),
        series,
    }
}

/// Figure 12: CDF of the window size (outstanding packets) when
/// continuous-loss stalls happen — cloud storage and software download
/// (web search barely has any, as in the paper).
pub fn fig12(ds: &Dataset) -> Figure {
    let probes: Vec<f64> = (0..=30).map(|i| i as f64).collect();
    let series = ds
        .services
        .iter()
        .filter(|sd| !matches!(sd.service, workloads::Service::WebSearch))
        .map(|sd| {
            let samples: Vec<f64> = sd
                .analyses
                .iter()
                .flat_map(|a| a.stalls.iter())
                .filter(|s| {
                    matches!(
                        s.cause,
                        StallCause::Retransmission(RetransCause::ContinuousLoss)
                    )
                })
                .map(|s| s.snapshot.packets_out as f64)
                .collect();
            Series {
                name: sd.service.label().to_string(),
                points: Cdf::from_samples(samples).series(&probes),
            }
        })
        .collect();
    Figure {
        id: "fig12".into(),
        title: "In-flight size when continuous-loss stalls happen".into(),
        x_label: "Number of in-flight packets in continuous loss".into(),
        y_label: "CDF".into(),
        series,
    }
}

//! Table 5: breakdown of timeout-retransmission stalls.

use tapo::RetransClass;

use crate::dataset::Dataset;
use crate::output::{pct_cell, Table};

/// The subcause rows, in the paper's priority order —
/// [`RetransClass::ALL`]; row labels come from the class itself.
pub const RETRANS_ROWS: [RetransClass; 7] = RetransClass::ALL;

/// Regenerate Table 5: percentage of retransmission stalls (volume and
/// time) per subcause and service.
pub fn table5(ds: &Dataset) -> Table {
    let mut header = vec!["stall type".to_string()];
    for sd in &ds.services {
        header.push(format!("{} #", sd.service.label()));
        header.push(format!("{} T", sd.service.label()));
    }
    let mut rows = Vec::new();
    for class in RETRANS_ROWS {
        let mut row = vec![class.label().to_string()];
        for sd in &ds.services {
            let share = sd.breakdown.retrans_share(class);
            row.push(pct_cell(share.volume_pct));
            row.push(pct_cell(share.time_pct));
        }
        rows.push(row);
    }
    Table::new(
        "table5",
        "Percentage of retransmission stalls (%) in volume (#) and time (T)",
        header,
        rows,
    )
}

//! The deterministic parallel flow engine.
//!
//! Every experiment in this crate boils down to the same per-flow pipeline:
//! *sample* a flow from a service model, *simulate* it under a recovery
//! mechanism, and *analyze* the resulting trace with TAPO. The paper ran
//! this over 6.4M production flows; serially, `repro` at standard scale is
//! bound to one core. [`Engine`] shards the pipeline across
//! `std::thread::scope` workers (via [`simnet::par::par_map_with`]) while
//! keeping output **bit-identical to the serial path at any thread count**:
//!
//! - Flow `i`'s sampling stream is seeded by
//!   [`workloads::flow_seed`]`(master_seed, service, i)` — a pure function
//!   of the flow's identity, never of which thread runs it or in what order.
//! - Flow `i`'s simulation seed is `base_seed + i`, exactly as the serial
//!   [`workloads::run_population`] has always assigned it, so mechanism
//!   comparisons stay *paired* (same flow, same seeds, different mechanism).
//! - Per-flow results are returned in index order, and cross-flow
//!   aggregation ([`StallBreakdown`]) is a serial fold over that order.
//!
//! Each worker carries a private [`WorkerScratch`] — the event-queue slab,
//! segment buffers and replay arenas — recycled from flow to flow, so steady
//! state allocates per *worker*, not per *flow*. Every scratch entry point
//! fully rewinds its state before reuse, so a recycled worker's results are
//! bit-identical to fresh-state serial execution (the [`par_map_with`]
//! contract; see DESIGN.md).
//!
//! [`par_map_with`]: simnet::par::par_map_with
//!
//! The engine owns no state beyond the thread count, so one instance can be
//! threaded through a whole `repro` invocation.

use tapo::{
    analyze_flow_with, AnalyzeScratch, AnalyzerConfig, FlowAnalysis, StallBreakdown, StreamAnalyzer,
};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_trace::flow::FlowTrace;
use workloads::{
    flow_key_for_seed, sample_flow, simulate_flow_into_scratch, simulate_flow_scratch, Corpus,
    FlowScratch, FlowSpec, PathSpec, Service, ServiceModel,
};

/// Per-worker recycled arenas for the fused sample→simulate→analyze
/// pipeline: one simulator scratch (event slab, segment and boundary
/// buffers) plus one streaming analyzer (replay state, candidate buffers).
/// A worker threads one of these through every flow it claims.
#[derive(Debug)]
struct WorkerScratch {
    sim: FlowScratch,
    analyzer: StreamAnalyzer,
}

impl WorkerScratch {
    fn new(cfg: AnalyzerConfig) -> Self {
        WorkerScratch {
            sim: FlowScratch::new(),
            analyzer: StreamAnalyzer::new(cfg),
        }
    }

    /// Lend out the recycled analyzer (sinks are taken by value); the
    /// placeholder left behind is allocation-free. Pair with
    /// [`WorkerScratch::restore_analyzer`] after the run.
    fn take_analyzer(&mut self, cfg: AnalyzerConfig) -> StreamAnalyzer {
        std::mem::replace(&mut self.analyzer, StreamAnalyzer::new(cfg))
    }

    fn restore_analyzer(&mut self, analyzer: StreamAnalyzer) {
        self.analyzer = analyzer;
    }
}

/// A deterministic parallel executor for flow-level work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine using `threads` workers. `0` means "use all available
    /// parallelism" (like the `--threads` flag's default).
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: if threads == 0 {
                simnet::par::available_threads()
            } else {
                threads
            },
        }
    }

    /// An engine using all available parallelism.
    pub fn auto() -> Self {
        Engine::new(0)
    }

    /// A single-threaded engine (the reference serial path).
    pub fn serial() -> Self {
        Engine { threads: 1 }
    }

    /// The worker count this engine was configured with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Deterministic parallel map over `0..n`: results are always in index
    /// order regardless of thread count.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        simnet::par::par_map(n, self.threads, f)
    }

    /// Deterministic parallel map with per-worker scratch: each worker calls
    /// `init()` once and threads the result through every item it claims.
    /// `f` must give the same answer for fresh and recycled scratch; under
    /// that contract results are in index order and bit-identical at any
    /// thread count (see [`simnet::par::par_map_with`]).
    pub fn map_with<T, S, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        simnet::par::par_map_with(n, self.threads, init, f)
    }

    /// Sample a service population (the parallel equivalent of
    /// [`workloads::sample_population`]).
    pub fn sample_population(
        &self,
        service: Service,
        n: usize,
        seed: u64,
    ) -> Vec<(FlowSpec, PathSpec)> {
        let model = ServiceModel::calibrated(service);
        self.map(n, |i| sample_flow(&model, seed, i))
    }

    /// Run a sampled population under one recovery mechanism (the parallel
    /// equivalent of [`workloads::run_population`]; identical seeds, so runs
    /// under different mechanisms stay paired).
    pub fn run_population(
        &self,
        service: Service,
        population: &[(FlowSpec, PathSpec)],
        mechanism: RecoveryMechanism,
        base_seed: u64,
    ) -> Corpus {
        let flows = self.map_with(population.len(), FlowScratch::new, |i, scratch| {
            let (spec, path) = &population[i];
            simulate_flow_scratch(spec, path, mechanism, base_seed + i as u64, scratch)
        });
        Corpus { service, flows }
    }

    /// [`Engine::run_population`] + [`Engine::analyze_corpus`] fused into a
    /// single trace-free pass: each flow's records stream straight into the
    /// worker's recycled [`StreamAnalyzer`] and the per-flow trace is never
    /// materialized. Outcomes keep their aggregate counters (latencies,
    /// sender stats, link stats) but carry empty traces; analyses are
    /// identical to the two-pass path.
    pub fn run_population_streaming(
        &self,
        service: Service,
        population: &[(FlowSpec, PathSpec)],
        mechanism: RecoveryMechanism,
        base_seed: u64,
        cfg: AnalyzerConfig,
    ) -> (Corpus, Vec<FlowAnalysis>) {
        let pairs = self.map_with(
            population.len(),
            || WorkerScratch::new(cfg),
            |i, ws| {
                let (spec, path) = &population[i];
                let analyzer = ws.take_analyzer(cfg);
                let (out, mut analyzer) = simulate_flow_into_scratch(
                    spec,
                    path,
                    mechanism,
                    base_seed + i as u64,
                    analyzer,
                    &mut ws.sim,
                );
                let analysis = analyzer.finish_reset();
                ws.restore_analyzer(analyzer);
                (out, analysis)
            },
        );
        let (flows, analyses) = split_pairs(pairs);
        (Corpus { service, flows }, analyses)
    }

    /// [`Engine::run_population`] without traces *or* analyses: records are
    /// discarded at the source (the null [`tcp_trace::record::RecordSink`]),
    /// so only the aggregate outcome counters survive — all that sweeps
    /// reading [`Corpus::retrans_ratio`] and latency CDFs ever touch. The
    /// cheapest way to run a mechanism comparison.
    pub fn run_population_lean(
        &self,
        service: Service,
        population: &[(FlowSpec, PathSpec)],
        mechanism: RecoveryMechanism,
        base_seed: u64,
    ) -> Corpus {
        let flows = self.map_with(population.len(), FlowScratch::new, |i, scratch| {
            let (spec, path) = &population[i];
            let (out, ()) = simulate_flow_into_scratch(
                spec,
                path,
                mechanism,
                base_seed + i as u64,
                (),
                scratch,
            );
            out
        });
        Corpus { service, flows }
    }

    /// Sample and run `n` flows under `mechanism` (the parallel equivalent
    /// of [`workloads::synthesize_corpus`]). Sampling and simulation of one
    /// flow are fused into a single unit of work, so a heavy flow does not
    /// hold up a shard twice.
    pub fn synthesize_corpus(
        &self,
        service: Service,
        n: usize,
        mechanism: RecoveryMechanism,
        seed: u64,
    ) -> Corpus {
        let model = ServiceModel::calibrated(service);
        let flows = self.map_with(n, FlowScratch::new, |i, scratch| {
            let (spec, path) = sample_flow(&model, seed, i);
            simulate_flow_scratch(&spec, &path, mechanism, seed + i as u64, scratch)
        });
        Corpus { service, flows }
    }

    /// Fused sample→simulate→analyze for one service: each flow's records
    /// are teed into both a materialized trace and a [`StreamAnalyzer`], so
    /// the corpus *and* its analyses come out of a single pass per flow —
    /// no second walk over the trace. Results are identical to
    /// [`Engine::synthesize_corpus`] followed by [`Engine::analyze_corpus`].
    pub fn synthesize_and_analyze(
        &self,
        service: Service,
        n: usize,
        mechanism: RecoveryMechanism,
        seed: u64,
        cfg: AnalyzerConfig,
    ) -> (Corpus, Vec<FlowAnalysis>) {
        let model = ServiceModel::calibrated(service);
        let pairs = self.map_with(
            n,
            || WorkerScratch::new(cfg),
            |i, ws| {
                let (spec, path) = sample_flow(&model, seed, i);
                let fseed = seed + i as u64;
                // The trace escapes into the returned corpus, so its storage
                // cannot be recycled — only the analyzer and sim arenas are.
                let sink = (
                    FlowTrace::new(flow_key_for_seed(fseed)),
                    ws.take_analyzer(cfg),
                );
                let (mut out, (trace, mut analyzer)) =
                    simulate_flow_into_scratch(&spec, &path, mechanism, fseed, sink, &mut ws.sim);
                out.trace = trace;
                let analysis = analyzer.finish_reset();
                ws.restore_analyzer(analyzer);
                (out, analysis)
            },
        );
        let (flows, analyses) = split_pairs(pairs);
        (Corpus { service, flows }, analyses)
    }

    /// Trace-free fused pipeline: records stream straight into a
    /// [`StreamAnalyzer`] and the per-flow trace is **never materialized**.
    /// The returned outcomes keep their aggregate counters (latencies,
    /// sender stats, link stats) but carry empty traces; the analyses are
    /// identical to the materializing paths.
    pub fn analyze_streaming(
        &self,
        service: Service,
        n: usize,
        mechanism: RecoveryMechanism,
        seed: u64,
        cfg: AnalyzerConfig,
    ) -> (Corpus, Vec<FlowAnalysis>) {
        let model = ServiceModel::calibrated(service);
        let pairs = self.map_with(
            n,
            || WorkerScratch::new(cfg),
            |i, ws| {
                let (spec, path) = sample_flow(&model, seed, i);
                let fseed = seed + i as u64;
                let analyzer = ws.take_analyzer(cfg);
                let (out, mut analyzer) = simulate_flow_into_scratch(
                    &spec,
                    &path,
                    mechanism,
                    fseed,
                    analyzer,
                    &mut ws.sim,
                );
                let analysis = analyzer.finish_reset();
                ws.restore_analyzer(analyzer);
                (out, analysis)
            },
        );
        let (flows, analyses) = split_pairs(pairs);
        (Corpus { service, flows }, analyses)
    }

    /// TAPO-analyze every flow of a corpus, in flow order. Workers recycle
    /// their replay arenas across flows ([`tapo::analyze_flow_with`]).
    pub fn analyze_corpus(&self, corpus: &Corpus, cfg: AnalyzerConfig) -> Vec<FlowAnalysis> {
        self.map_with(corpus.flows.len(), AnalyzeScratch::new, |i, scratch| {
            analyze_flow_with(&corpus.flows[i].trace, cfg, scratch)
        })
    }

    /// Aggregate per-flow analyses into a breakdown. A serial fold in index
    /// order — aggregation is where nondeterminism would creep in, so it is
    /// deliberately not sharded (it is O(#stalls), negligible next to
    /// simulation).
    pub fn breakdown(analyses: &[FlowAnalysis]) -> StallBreakdown {
        let mut breakdown = StallBreakdown::default();
        for a in analyses {
            breakdown.add_flow(a);
        }
        breakdown
    }
}

/// Unzip per-flow `(outcome, analysis)` pairs preserving index order.
fn split_pairs(
    pairs: Vec<(tcp_sim::sim::FlowOutcome, FlowAnalysis)>,
) -> (Vec<tcp_sim::sim::FlowOutcome>, Vec<FlowAnalysis>) {
    let mut flows = Vec::with_capacity(pairs.len());
    let mut analyses = Vec::with_capacity(pairs.len());
    for (o, a) in pairs {
        flows.push(o);
        analyses.push(a);
    }
    (flows, analyses)
}

impl Default for Engine {
    fn default() -> Self {
        Engine::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_matches_serial_workloads_api() {
        let serial =
            workloads::synthesize_corpus(Service::WebSearch, 12, RecoveryMechanism::Native, 5);
        let engine =
            Engine::new(4).synthesize_corpus(Service::WebSearch, 12, RecoveryMechanism::Native, 5);
        assert_eq!(serial.flows.len(), engine.flows.len());
        for (a, b) in serial.flows.iter().zip(&engine.flows) {
            assert_eq!(a.trace.records, b.trace.records);
        }
    }

    #[test]
    fn fused_pipeline_matches_two_pass_pipeline() {
        let engine = Engine::serial();
        let (svc, n, mech, seed) = (Service::CloudStorage, 12, RecoveryMechanism::Native, 7);
        let cfg = AnalyzerConfig::default();
        // Reference: materialize, then analyze in a second pass.
        let corpus = engine.synthesize_corpus(svc, n, mech, seed);
        let offline = engine.analyze_corpus(&corpus, cfg);
        // Fused tee: same corpus, same analyses, one pass.
        let (fused_corpus, fused) = engine.synthesize_and_analyze(svc, n, mech, seed, cfg);
        for (a, b) in corpus.flows.iter().zip(&fused_corpus.flows) {
            assert_eq!(a.trace.key, b.trace.key);
            assert_eq!(a.trace.records, b.trace.records);
            assert_eq!(a.server_stats, b.server_stats);
        }
        assert_eq!(offline, fused);
        // Trace-free streaming: identical analyses, empty traces.
        let (lean_corpus, streamed) = engine.analyze_streaming(svc, n, mech, seed, cfg);
        assert_eq!(offline, streamed);
        for (a, b) in corpus.flows.iter().zip(&lean_corpus.flows) {
            assert!(b.trace.records.is_empty(), "streaming must not keep traces");
            assert_eq!(a.server_stats, b.server_stats);
            assert_eq!(a.request_latencies, b.request_latencies);
        }
        assert_eq!(
            Engine::breakdown(&offline).total_stalls,
            Engine::breakdown(&streamed).total_stalls
        );
    }

    #[test]
    fn population_runs_agree_across_materialization_levels() {
        let engine = Engine::new(3);
        let (svc, mech, seed) = (Service::SoftwareDownload, RecoveryMechanism::srto(), 11);
        let cfg = AnalyzerConfig::default();
        let pop = engine.sample_population(svc, 10, seed);
        // Reference: materialize traces, analyze in a second pass.
        let corpus = engine.run_population(svc, &pop, mech, 100);
        let offline = engine.analyze_corpus(&corpus, cfg);
        // Fused trace-free streaming over the same population.
        let (streamed_corpus, streamed) =
            engine.run_population_streaming(svc, &pop, mech, 100, cfg);
        assert_eq!(offline, streamed);
        // Lean: aggregate outcome counters only.
        let lean = engine.run_population_lean(svc, &pop, mech, 100);
        assert_eq!(corpus.flows.len(), lean.flows.len());
        for ((a, b), c) in corpus
            .flows
            .iter()
            .zip(&streamed_corpus.flows)
            .zip(&lean.flows)
        {
            assert!(b.trace.records.is_empty(), "streaming must not keep traces");
            assert!(c.trace.records.is_empty(), "lean must not keep traces");
            assert_eq!(a.server_stats, b.server_stats);
            assert_eq!(a.server_stats, c.server_stats);
            assert_eq!(a.request_latencies, c.request_latencies);
            assert_eq!(a.completed, c.completed);
        }
        assert_eq!(corpus.retrans_ratio(), lean.retrans_ratio());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert_eq!(Engine::new(0).threads(), simnet::par::available_threads());
        assert_eq!(Engine::serial().threads(), 1);
    }
}

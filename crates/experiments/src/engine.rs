//! The deterministic parallel flow engine.
//!
//! Every experiment in this crate boils down to the same per-flow pipeline:
//! *sample* a flow from a service model, *simulate* it under a recovery
//! mechanism, and *analyze* the resulting trace with TAPO. The paper ran
//! this over 6.4M production flows; serially, `repro` at standard scale is
//! bound to one core. [`Engine`] shards the pipeline across
//! `std::thread::scope` workers (via [`simnet::par::par_map`]) while
//! keeping output **bit-identical to the serial path at any thread count**:
//!
//! - Flow `i`'s sampling stream is seeded by
//!   [`workloads::flow_seed`]`(master_seed, service, i)` — a pure function
//!   of the flow's identity, never of which thread runs it or in what order.
//! - Flow `i`'s simulation seed is `base_seed + i`, exactly as the serial
//!   [`workloads::run_population`] has always assigned it, so mechanism
//!   comparisons stay *paired* (same flow, same seeds, different mechanism).
//! - Per-flow results are returned in index order, and cross-flow
//!   aggregation ([`StallBreakdown`]) is a serial fold over that order.
//!
//! The engine owns no state beyond the thread count, so one instance can be
//! threaded through a whole `repro` invocation.

use tapo::{analyze_flow, AnalyzerConfig, FlowAnalysis, StallBreakdown, StreamAnalyzer};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_trace::flow::FlowTrace;
use workloads::{
    flow_key_for_seed, sample_flow, simulate_flow, simulate_flow_into, Corpus, FlowSpec, PathSpec,
    Service, ServiceModel,
};

/// A deterministic parallel executor for flow-level work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine using `threads` workers. `0` means "use all available
    /// parallelism" (like the `--threads` flag's default).
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: if threads == 0 {
                simnet::par::available_threads()
            } else {
                threads
            },
        }
    }

    /// An engine using all available parallelism.
    pub fn auto() -> Self {
        Engine::new(0)
    }

    /// A single-threaded engine (the reference serial path).
    pub fn serial() -> Self {
        Engine { threads: 1 }
    }

    /// The worker count this engine was configured with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Deterministic parallel map over `0..n`: results are always in index
    /// order regardless of thread count.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        simnet::par::par_map(n, self.threads, f)
    }

    /// Sample a service population (the parallel equivalent of
    /// [`workloads::sample_population`]).
    pub fn sample_population(
        &self,
        service: Service,
        n: usize,
        seed: u64,
    ) -> Vec<(FlowSpec, PathSpec)> {
        let model = ServiceModel::calibrated(service);
        self.map(n, |i| sample_flow(&model, seed, i))
    }

    /// Run a sampled population under one recovery mechanism (the parallel
    /// equivalent of [`workloads::run_population`]; identical seeds, so runs
    /// under different mechanisms stay paired).
    pub fn run_population(
        &self,
        service: Service,
        population: &[(FlowSpec, PathSpec)],
        mechanism: RecoveryMechanism,
        base_seed: u64,
    ) -> Corpus {
        let flows = self.map(population.len(), |i| {
            let (spec, path) = &population[i];
            simulate_flow(spec, path, mechanism, base_seed + i as u64)
        });
        Corpus { service, flows }
    }

    /// Sample and run `n` flows under `mechanism` (the parallel equivalent
    /// of [`workloads::synthesize_corpus`]). Sampling and simulation of one
    /// flow are fused into a single unit of work, so a heavy flow does not
    /// hold up a shard twice.
    pub fn synthesize_corpus(
        &self,
        service: Service,
        n: usize,
        mechanism: RecoveryMechanism,
        seed: u64,
    ) -> Corpus {
        let model = ServiceModel::calibrated(service);
        let flows = self.map(n, |i| {
            let (spec, path) = sample_flow(&model, seed, i);
            simulate_flow(&spec, &path, mechanism, seed + i as u64)
        });
        Corpus { service, flows }
    }

    /// Fused sample→simulate→analyze for one service: each flow's records
    /// are teed into both a materialized trace and a [`StreamAnalyzer`], so
    /// the corpus *and* its analyses come out of a single pass per flow —
    /// no second walk over the trace. Results are identical to
    /// [`Engine::synthesize_corpus`] followed by [`Engine::analyze_corpus`].
    pub fn synthesize_and_analyze(
        &self,
        service: Service,
        n: usize,
        mechanism: RecoveryMechanism,
        seed: u64,
        cfg: AnalyzerConfig,
    ) -> (Corpus, Vec<FlowAnalysis>) {
        let model = ServiceModel::calibrated(service);
        let pairs = self.map(n, |i| {
            let (spec, path) = sample_flow(&model, seed, i);
            let fseed = seed + i as u64;
            let sink = (
                FlowTrace::new(flow_key_for_seed(fseed)),
                StreamAnalyzer::new(cfg),
            );
            let (mut out, (trace, analyzer)) =
                simulate_flow_into(&spec, &path, mechanism, fseed, sink);
            out.trace = trace;
            (out, analyzer.finish())
        });
        let mut flows = Vec::with_capacity(pairs.len());
        let mut analyses = Vec::with_capacity(pairs.len());
        for (o, a) in pairs {
            flows.push(o);
            analyses.push(a);
        }
        (Corpus { service, flows }, analyses)
    }

    /// Trace-free fused pipeline: records stream straight into a
    /// [`StreamAnalyzer`] and the per-flow trace is **never materialized**.
    /// The returned outcomes keep their aggregate counters (latencies,
    /// sender stats, link stats) but carry empty traces; the analyses are
    /// identical to the materializing paths.
    pub fn analyze_streaming(
        &self,
        service: Service,
        n: usize,
        mechanism: RecoveryMechanism,
        seed: u64,
        cfg: AnalyzerConfig,
    ) -> (Corpus, Vec<FlowAnalysis>) {
        let model = ServiceModel::calibrated(service);
        let pairs = self.map(n, |i| {
            let (spec, path) = sample_flow(&model, seed, i);
            let fseed = seed + i as u64;
            let (out, analyzer) =
                simulate_flow_into(&spec, &path, mechanism, fseed, StreamAnalyzer::new(cfg));
            (out, analyzer.finish())
        });
        let mut flows = Vec::with_capacity(pairs.len());
        let mut analyses = Vec::with_capacity(pairs.len());
        for (o, a) in pairs {
            flows.push(o);
            analyses.push(a);
        }
        (Corpus { service, flows }, analyses)
    }

    /// TAPO-analyze every flow of a corpus, in flow order.
    pub fn analyze_corpus(&self, corpus: &Corpus, cfg: AnalyzerConfig) -> Vec<FlowAnalysis> {
        self.map(corpus.flows.len(), |i| {
            analyze_flow(&corpus.flows[i].trace, cfg)
        })
    }

    /// Aggregate per-flow analyses into a breakdown. A serial fold in index
    /// order — aggregation is where nondeterminism would creep in, so it is
    /// deliberately not sharded (it is O(#stalls), negligible next to
    /// simulation).
    pub fn breakdown(analyses: &[FlowAnalysis]) -> StallBreakdown {
        let mut breakdown = StallBreakdown::default();
        for a in analyses {
            breakdown.add_flow(a);
        }
        breakdown
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_matches_serial_workloads_api() {
        let serial =
            workloads::synthesize_corpus(Service::WebSearch, 12, RecoveryMechanism::Native, 5);
        let engine =
            Engine::new(4).synthesize_corpus(Service::WebSearch, 12, RecoveryMechanism::Native, 5);
        assert_eq!(serial.flows.len(), engine.flows.len());
        for (a, b) in serial.flows.iter().zip(&engine.flows) {
            assert_eq!(a.trace.records, b.trace.records);
        }
    }

    #[test]
    fn fused_pipeline_matches_two_pass_pipeline() {
        let engine = Engine::serial();
        let (svc, n, mech, seed) = (Service::CloudStorage, 12, RecoveryMechanism::Native, 7);
        let cfg = AnalyzerConfig::default();
        // Reference: materialize, then analyze in a second pass.
        let corpus = engine.synthesize_corpus(svc, n, mech, seed);
        let offline = engine.analyze_corpus(&corpus, cfg);
        // Fused tee: same corpus, same analyses, one pass.
        let (fused_corpus, fused) = engine.synthesize_and_analyze(svc, n, mech, seed, cfg);
        for (a, b) in corpus.flows.iter().zip(&fused_corpus.flows) {
            assert_eq!(a.trace.key, b.trace.key);
            assert_eq!(a.trace.records, b.trace.records);
            assert_eq!(a.server_stats, b.server_stats);
        }
        assert_eq!(offline, fused);
        // Trace-free streaming: identical analyses, empty traces.
        let (lean_corpus, streamed) = engine.analyze_streaming(svc, n, mech, seed, cfg);
        assert_eq!(offline, streamed);
        for (a, b) in corpus.flows.iter().zip(&lean_corpus.flows) {
            assert!(b.trace.records.is_empty(), "streaming must not keep traces");
            assert_eq!(a.server_stats, b.server_stats);
            assert_eq!(a.request_latencies, b.request_latencies);
        }
        assert_eq!(
            Engine::breakdown(&offline).total_stalls,
            Engine::breakdown(&streamed).total_stalls
        );
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert_eq!(Engine::new(0).threads(), simnet::par::available_threads());
        assert_eq!(Engine::serial().threads(), 1);
    }
}

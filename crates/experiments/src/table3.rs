//! Table 3: stall shares by cause, in volume and time, per service.

use tapo::StallClass;

use crate::dataset::Dataset;
use crate::output::{pct_cell, Table};

/// The top-level cause rows, in the paper's order (plus "undeter.") —
/// [`StallClass::ALL`]; row labels come from the class itself.
pub const CAUSE_ROWS: [StallClass; 7] = StallClass::ALL;

/// Regenerate Table 3: percentage of stalls (volume and time) per cause
/// and service.
pub fn table3(ds: &Dataset) -> Table {
    let mut header = vec!["category".to_string(), "stall type".to_string()];
    for sd in &ds.services {
        header.push(format!("{} #", sd.service.label()));
        header.push(format!("{} T", sd.service.label()));
    }
    let mut rows = Vec::new();
    for class in CAUSE_ROWS {
        let mut row = vec![
            class.category().label().to_string(),
            class.label().to_string(),
        ];
        for sd in &ds.services {
            let share = sd.breakdown.share(class);
            row.push(pct_cell(share.volume_pct));
            row.push(pct_cell(share.time_pct));
        }
        rows.push(row);
    }
    Table::new(
        "table3",
        "Percentage of stalls (%) in volume (#) and time (T) per cause",
        header,
        rows,
    )
}

//! Table and figure output types: render to aligned text (the `repro`
//! binary's stdout format) and to CSV for plotting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use tapo::json::Json;
use tapo::sink::{csv_escape, CsvSink, Record, ReportSink};

/// One table row as a fixed-shape [`Record`], so tables flow through the
/// same [`ReportSink`] API as the live daemon's interval reports.
struct TableRow<'a> {
    header: &'a [String],
    cells: &'a [String],
}

impl Record for TableRow<'_> {
    fn header(&self) -> String {
        self.header
            .iter()
            .map(|c| csv_escape(c))
            .collect::<Vec<_>>()
            .join(",")
    }
    fn csv(&self) -> String {
        self.cells
            .iter()
            .map(|c| csv_escape(c))
            .collect::<Vec<_>>()
            .join(",")
    }
    fn json(&self) -> Json {
        Json::Obj(
            self.header
                .iter()
                .zip(self.cells)
                .map(|(h, c)| (h.clone(), Json::from(c.clone())))
                .collect(),
        )
    }
}

/// A reproduced table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Identifier matching the paper ("table1", "table5"…).
    pub id: String,
    /// Caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build a table; all rows must match the header width.
    pub fn new(id: &str, title: &str, header: Vec<String>, rows: Vec<Vec<String>>) -> Self {
        assert!(
            rows.iter().all(|r| r.len() == header.len()),
            "ragged table {id}"
        );
        Table {
            id: id.into(),
            title: title.into(),
            header,
            rows,
        }
    }

    /// Render as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Write as CSV to `dir/<id>.csv`, through the shared
    /// [`tapo::sink::ReportSink`] API (the same path the live daemon's
    /// reports take, so escaping and shape rules cannot drift).
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let file = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        let mut sink = CsvSink::new(io::BufWriter::new(file));
        let schema = TableRow {
            header: &self.header,
            cells: &self.header,
        };
        // Eager header: an empty table still documents its schema.
        sink.write_header(&Record::header(&schema))?;
        for row in &self.rows {
            sink.emit(&TableRow {
                header: &self.header,
                cells: row,
            })?;
        }
        sink.finish()
    }

    /// The table as a JSON value (for `repro --json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id.clone())),
            ("title", Json::from(self.title.clone())),
            (
                "header",
                Json::Arr(self.header.iter().map(|h| Json::from(h.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(|c| Json::from(c.clone())).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// A reproduced figure (as plottable series).
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier matching the paper ("fig1a", "fig3"…).
    pub id: String,
    /// Caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render a compact textual view: each series' value at a set of probe
    /// x positions (enough to eyeball the shape).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   x: {} | y: {}", self.x_label, self.y_label);
        for s in &self.series {
            let n = s.points.len();
            let probes: Vec<&(f64, f64)> = if n <= 8 {
                s.points.iter().collect()
            } else {
                (0..8).map(|i| &s.points[i * (n - 1) / 7]).collect()
            };
            let pts = probes
                .iter()
                .map(|(x, y)| format!("({x:.4}, {y:.3})"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "   {:<24} {}", s.name, pts);
        }
        out
    }

    /// Write all series as long-format CSV to `dir/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut s = String::new();
        let _ = writeln!(s, "series,x,y");
        for ser in &self.series {
            for (x, y) in &ser.points {
                let _ = writeln!(s, "{},{x},{y}", ser.name);
            }
        }
        std::fs::write(dir.join(format!("{}.csv", self.id)), s)
    }

    /// The figure as a JSON value (for `repro --json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id.clone())),
            ("title", Json::from(self.title.clone())),
            ("x_label", Json::from(self.x_label.clone())),
            ("y_label", Json::from(self.y_label.clone())),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("name", Json::from(s.name.clone())),
                                (
                                    "points",
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|&(x, y)| {
                                                Json::Arr(vec![Json::from(x), Json::from(y)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Format a fraction as a percent cell ("45.0").
pub fn pct_cell(x: f64) -> String {
    format!("{x:.1}")
}

/// Format bytes in a compact human unit (matching Table 1's style).
pub fn bytes_cell(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.0}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

/// Format a duration in ms or s (matching Table 1's style).
pub fn dur_cell(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{:.0}ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = Table::new(
            "t",
            "demo",
            vec!["a".into(), "long".into()],
            vec![vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        let _ = Table::new(
            "t",
            "demo",
            vec!["a".into()],
            vec![vec!["1".into(), "2".into()]],
        );
    }

    #[test]
    fn csv_roundtrip_files() {
        let dir = std::env::temp_dir().join("tapo_output_test");
        let t = Table::new(
            "test_table",
            "demo",
            vec!["a,b".into(), "c".into()],
            vec![vec!["x".into(), "y".into()]],
        );
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("test_table.csv")).unwrap();
        assert!(content.starts_with("\"a,b\",c"));
        let f = Figure {
            id: "test_fig".into(),
            title: "demo".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                name: "s".into(),
                points: vec![(1.0, 2.0)],
            }],
        };
        f.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("test_fig.csv")).unwrap();
        assert!(content.contains("s,1,2"));
    }

    #[test]
    fn cells_format_human_units() {
        assert_eq!(bytes_cell(1_700_000.0), "1.7MB");
        assert_eq!(bytes_cell(129_000.0), "129KB");
        assert_eq!(dur_cell(0.143), "143ms");
        assert_eq!(dur_cell(1.2), "1.2s");
    }

    #[test]
    fn figure_render_probes_long_series() {
        let f = Figure {
            id: "f".into(),
            title: "demo".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                name: "s".into(),
                points: (0..100).map(|i| (i as f64, i as f64)).collect(),
            }],
        };
        let r = f.render();
        assert!(r.contains("(0.0000, 0.000)"));
        assert!(r.contains("(99.0000, 99.000)"));
    }
}

//! Tables 8 & 9: the production A/B of native Linux vs TLP vs S-RTO vs
//! T-RACKs, reproduced as a *paired* replay — the same sampled flow
//! populations run under each mechanism with identical seeds.

use simnet::time::SimDuration;
use tcp_sim::recovery::RecoveryMechanism;
use workloads::{Corpus, Service};

use crate::engine::Engine;
use crate::output::{pct_cell, Table};
use tapo::Cdf;

/// How many flows the comparison replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparisonScale {
    /// Web-search flows.
    pub web_flows: usize,
    /// Dedicated short (< 200KB, single-request) cloud-storage flows — the
    /// paper's "control flow" population, which is where Table 8 has its
    /// statistical power.
    pub cloud_short_flows: usize,
    /// Regular cloud-storage flows (throughput + retransmission ratio).
    pub cloud_flows: usize,
    /// Master seed.
    pub seed: u64,
}

impl ComparisonScale {
    /// Default for the `repro` binary.
    pub fn standard() -> Self {
        ComparisonScale {
            web_flows: 500,
            cloud_short_flows: 600,
            cloud_flows: 150,
            seed: 360,
        }
    }

    /// Fast scale for tests and benches.
    pub fn quick() -> Self {
        ComparisonScale {
            web_flows: 80,
            cloud_short_flows: 60,
            cloud_flows: 30,
            seed: 360,
        }
    }
}

/// One mechanism's corpora for both evaluated services.
#[derive(Debug)]
pub struct MechanismRun {
    /// "Linux" / "TLP" / "S-RTO" / "T-RACKs".
    pub label: &'static str,
    /// Web-search corpus.
    pub web: Corpus,
    /// Short-flow cloud corpus (latency comparison).
    pub cloud_short: Corpus,
    /// Regular cloud corpus (throughput and retransmission ratio).
    pub cloud: Corpus,
}

/// The full paired comparison.
#[derive(Debug)]
pub struct Comparison {
    /// Runs in order: Linux, TLP, S-RTO, T-RACKs.
    pub runs: Vec<MechanismRun>,
}

/// Run the paired comparison serially. See [`run_comparison_with`].
pub fn run_comparison(scale: ComparisonScale) -> Comparison {
    run_comparison_with(scale, &Engine::serial())
}

/// Run the paired comparison on the given engine: identical populations and
/// per-flow seeds across the four mechanisms (S-RTO uses the paper's
/// per-service `T1`). Output is identical at any thread count.
pub fn run_comparison_with(scale: ComparisonScale, engine: &Engine) -> Comparison {
    // The paper's A/B ran on specific front-end servers, i.e. a relatively
    // homogeneous client population per server. Our synthesized populations
    // span 1–50 Mbit/s access links and wide RTTs, whose latency variance
    // would bury the mechanism effect at fixed quantiles, so the latency
    // populations are homogenized in bottleneck bandwidth (loss, bursts,
    // jitter and client behaviour keep their full variation).
    let mut web_pop = engine.sample_population(Service::WebSearch, scale.web_flows, scale.seed);
    for (_, path) in web_pop.iter_mut() {
        path.bandwidth_bps = 8_000_000;
    }
    let cloud_pop =
        engine.sample_population(Service::CloudStorage, scale.cloud_flows, scale.seed + 1);
    // The short-flow population (the paper's "control flows"): a
    // *controlled* experiment — fixed 100KB transfers over a grid of
    // service-typical paths with 4% bursty loss. The production-mix
    // populations' size/RTT/client variance would swamp the few-percent
    // mechanism effect at fixed quantiles with a few hundred samples, so
    // this subset isolates it (see EXPERIMENTS.md).
    let short_pop: Vec<(workloads::FlowSpec, workloads::PathSpec)> = (0..scale.cloud_short_flows)
        .map(|i| {
            let rtt_ms = 100 + (i as u64 % 5) * 20;
            let rtt = simnet::time::SimDuration::from_millis(rtt_ms);
            let spec = workloads::FlowSpec::response_bytes(100_000);
            let path = workloads::PathSpec {
                rtt,
                // High delay variance (jitter + frequent delay bursts):
                // the regime in which the paper's RTOs sit an order of
                // magnitude above the RTT (Fig. 1b).
                jitter: simnet::time::SimDuration::from_millis(rtt_ms / 2),
                loss: simnet::loss::LossSpec::bursty(
                    0.04,
                    simnet::time::SimDuration::from_millis(rtt_ms * 7 / 10),
                ),
                bandwidth_bps: 8_000_000,
                queue_pkts: 60,
                delay_burst_hz: 0.3,
                delay_burst_len: simnet::time::SimDuration::from_millis(rtt_ms * 2),
                delay_burst_extra: simnet::time::SimDuration::from_millis(rtt_ms * 5 / 2),
                ..workloads::PathSpec::default()
            };
            (spec, path)
        })
        .collect();
    let mechs: [(&'static str, RecoveryMechanism, RecoveryMechanism); 4] = [
        (
            "Linux",
            RecoveryMechanism::Native,
            RecoveryMechanism::Native,
        ),
        ("TLP", RecoveryMechanism::tlp(), RecoveryMechanism::tlp()),
        (
            "S-RTO",
            RecoveryMechanism::Srto(Service::WebSearch.srto_config()),
            RecoveryMechanism::Srto(Service::CloudStorage.srto_config()),
        ),
        (
            "T-RACKs",
            RecoveryMechanism::tracks(),
            RecoveryMechanism::tracks(),
        ),
    ];
    let runs = mechs
        .into_iter()
        .map(|(label, web_mech, cloud_mech)| MechanismRun {
            label,
            web: engine.run_population(Service::WebSearch, &web_pop, web_mech, scale.seed),
            cloud_short: engine.run_population(
                Service::CloudStorage,
                &short_pop,
                cloud_mech,
                scale.seed + 2,
            ),
            cloud: engine.run_population(
                Service::CloudStorage,
                &cloud_pop,
                cloud_mech,
                scale.seed + 1,
            ),
        })
        .collect();
    Comparison { runs }
}

/// Per-flow latency samples (seconds): the sum of per-request latencies,
/// for completed flows passing the byte filter.
fn latencies(corpus: &Corpus, max_bytes: Option<u64>) -> Vec<f64> {
    corpus
        .flows
        .iter()
        .filter(|f| f.completed)
        .filter(|f| max_bytes.is_none_or(|m| f.response_bytes < m))
        .map(|f| {
            f.request_latencies
                .iter()
                .filter(|&&l| l != SimDuration::MAX)
                .map(|l| l.as_secs_f64())
                .sum::<f64>()
        })
        .collect()
}

/// Per-flow throughput samples (bytes/s) for flows at or above `min_bytes`.
fn throughputs(corpus: &Corpus, min_bytes: u64) -> Vec<f64> {
    corpus
        .flows
        .iter()
        .filter(|f| f.completed && f.response_bytes >= min_bytes)
        .filter_map(|f| {
            let secs = f
                .request_latencies
                .iter()
                .filter(|&&l| l != SimDuration::MAX)
                .map(|l| l.as_secs_f64())
                .sum::<f64>();
            if secs > 0.0 {
                Some(f.response_bytes as f64 / secs)
            } else {
                None
            }
        })
        .collect()
}

const SHORT_FLOW_BYTES: u64 = 200_000;

fn reduction(new: Option<f64>, base: Option<f64>) -> String {
    match (new, base) {
        (Some(n), Some(b)) if b > 0.0 => format!("{}%", pct_cell(100.0 * (n - b) / b)),
        _ => "–".to_string(),
    }
}

/// Regenerate Table 8: latency change (vs native Linux) at the 50th, 90th
/// and 95th percentiles and the mean, for web search and short (< 200KB)
/// cloud-storage flows, under TLP and S-RTO.
pub fn table8(cmp: &Comparison) -> Table {
    let base = &cmp.runs[0];
    let web_base = Cdf::from_samples(latencies(&base.web, None));
    let cloud_base = Cdf::from_samples(latencies(&base.cloud_short, Some(SHORT_FLOW_BYTES)));
    let mut header = vec!["Quantile".to_string()];
    for run in &cmp.runs[1..] {
        header.push(format!("web {}", run.label));
        header.push(format!("cloud-short {}", run.label));
    }
    let mut rows = Vec::new();
    for (name, q) in [("50", 0.5), ("90", 0.9), ("95", 0.95)] {
        let mut row = vec![name.to_string()];
        for run in &cmp.runs[1..] {
            let web = Cdf::from_samples(latencies(&run.web, None));
            let cloud = Cdf::from_samples(latencies(&run.cloud_short, Some(SHORT_FLOW_BYTES)));
            row.push(reduction(web.quantile(q), web_base.quantile(q)));
            row.push(reduction(cloud.quantile(q), cloud_base.quantile(q)));
        }
        rows.push(row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for run in &cmp.runs[1..] {
        let web = Cdf::from_samples(latencies(&run.web, None));
        let cloud = Cdf::from_samples(latencies(&run.cloud_short, Some(SHORT_FLOW_BYTES)));
        mean_row.push(reduction(web.mean(), web_base.mean()));
        mean_row.push(reduction(cloud.mean(), cloud_base.mean()));
    }
    rows.push(mean_row);
    let mut count_row = vec!["#(flows)".to_string()];
    for run in &cmp.runs[1..] {
        count_row.push(format!("{}", latencies(&run.web, None).len()));
        count_row.push(format!(
            "{}",
            latencies(&run.cloud_short, Some(SHORT_FLOW_BYTES)).len()
        ));
    }
    rows.push(count_row);
    Table::new(
        "table8",
        "Latency change vs native Linux (negative = faster)",
        header,
        rows,
    )
}

/// Regenerate Table 9: retransmitted-packet ratio per mechanism.
pub fn table9(cmp: &Comparison) -> Table {
    let mut header = vec!["service".to_string()];
    for run in &cmp.runs {
        header.push(run.label.to_string());
    }
    let mut web_row = vec!["web search".to_string()];
    let mut cloud_row = vec!["cloud storage".to_string()];
    for run in &cmp.runs {
        web_row.push(format!("{}%", pct_cell(100.0 * run.web.retrans_ratio())));
        // Combine both cloud populations, as production servers carry both.
        let (r, s) = (run.cloud.flows.iter().chain(&run.cloud_short.flows).fold(
            (0u64, 0u64),
            |(r, s), f| {
                (
                    r + f.server_stats.retrans_segs,
                    s + f.server_stats.data_segs_sent + f.server_stats.retrans_segs,
                )
            },
        ),)
            .0;
        cloud_row.push(format!("{}%", pct_cell(100.0 * r as f64 / s.max(1) as f64)));
    }
    Table::new(
        "table9",
        "Retransmission packet ratio",
        header,
        vec![web_row, cloud_row],
    )
}

/// The §5.2 large-flow observation: mean throughput change for cloud flows
/// ≥ 200KB under TLP and S-RTO (the paper reports +2.6% / +3.7%).
pub fn large_flow_throughput(cmp: &Comparison) -> Table {
    let base = Cdf::from_samples(throughputs(&cmp.runs[0].cloud, SHORT_FLOW_BYTES));
    let mut header = vec!["metric".to_string()];
    for run in &cmp.runs[1..] {
        header.push(run.label.to_string());
    }
    let mut row = vec!["mean throughput change".to_string()];
    for run in &cmp.runs[1..] {
        let t = Cdf::from_samples(throughputs(&run.cloud, SHORT_FLOW_BYTES));
        row.push(reduction(t.mean(), base.mean()));
    }
    Table::new(
        "table8x_throughput",
        "Cloud-storage large-flow (≥200KB) throughput change vs native",
        header,
        vec![row],
    )
}

//! Tables 6 and 7: splits of double- and tail-retransmission stall time.

use crate::dataset::Dataset;
use crate::output::{pct_cell, Table};

/// Table 6: share of double-retransmission stalled time that is f-double
/// (first retransmission was a fast retransmit) vs t-double.
pub fn table6(ds: &Dataset) -> Table {
    let mut header = vec!["type".to_string()];
    for sd in &ds.services {
        header.push(sd.service.label().to_string());
    }
    let mut f_row = vec!["f-double stall".to_string()];
    let mut t_row = vec!["t-double stall".to_string()];
    for sd in &ds.services {
        let (f, t) = sd.breakdown.double_split;
        let total = (f + t).as_secs_f64();
        let (fp, tp) = if total <= 0.0 {
            (0.0, 0.0)
        } else {
            (
                100.0 * f.as_secs_f64() / total,
                100.0 * t.as_secs_f64() / total,
            )
        };
        f_row.push(format!("{}%", pct_cell(fp)));
        t_row.push(format!("{}%", pct_cell(tp)));
    }
    Table::new(
        "table6",
        "Share of double-retransmission stalled time by type",
        header,
        vec![f_row, t_row],
    )
}

/// Table 7: share of tail-retransmission stalled time by the congestion
/// state the sender was in (Open vs Recovery).
pub fn table7(ds: &Dataset) -> Table {
    let mut header = vec!["state".to_string()];
    for sd in &ds.services {
        header.push(sd.service.label().to_string());
    }
    let mut open_row = vec!["Open state".to_string()];
    let mut rec_row = vec!["Recovery state".to_string()];
    for sd in &ds.services {
        let (o, r) = sd.breakdown.tail_split;
        let total = (o + r).as_secs_f64();
        let (op, rp) = if total <= 0.0 {
            (0.0, 0.0)
        } else {
            (
                100.0 * o.as_secs_f64() / total,
                100.0 * r.as_secs_f64() / total,
            )
        };
        open_row.push(format!("{}%", pct_cell(op)));
        rec_row.push(format!("{}%", pct_cell(rp)));
    }
    Table::new(
        "table7",
        "Share of tail-retransmission stalled time by congestion state",
        header,
        vec![open_row, rec_row],
    )
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--json] [--out DIR] [--threads N] [EXPERIMENT...]
//!
//! EXPERIMENT: table1 table3 table4 table5 table6 table7 table8 table9
//!             fig1 fig2 fig3 fig6 fig7 fig10 fig11 fig12
//!             ablations accuracy validate all      (default: all)
//! ```
//!
//! CSVs are written to `--out` (default `results/`). `--threads N` shards
//! flow synthesis and analysis over N workers (default: all cores); the
//! output is bit-identical at any thread count.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::path::PathBuf;

use experiments::{
    ablation, dataset::Scale, fig1, fig11, fig2, fig3, fig6, fig7, mechanism, output::Figure,
    output::Table, table1, table3, table4, table5, table6, validate, ComparisonScale, Dataset,
    Engine,
};
use tapo::json::Json;

fn main() {
    let mut quick = false;
    let mut json = false;
    let mut threads = 0usize;
    let mut out_dir = PathBuf::from("results");
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }))
            }
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads requires N");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--json] [--out DIR] [--threads N] [EXPERIMENT...]\n\
                     --json also writes results/summary.json\n\
                     --threads N uses N workers (default all cores; output identical)\n\
                     experiments: table1 table3 table4 table5 table6 table7 table8 table9\n\
                     \x20            fig1 fig2 fig3 fig6 fig7 fig10 fig11 fig12 ablations accuracy\n\
                     \x20            validate all"
                );
                return;
            }
            other => {
                wanted.insert(other.to_string());
            }
        }
    }
    if wanted.is_empty() {
        wanted.insert("all".into());
    }
    let all = wanted.contains("all");
    let want = |name: &str| all || wanted.contains(name);

    let engine = Engine::new(threads);

    let ds_scale = if quick {
        Scale::quick()
    } else {
        Scale::standard()
    };
    let cmp_scale = if quick {
        ComparisonScale::quick()
    } else {
        ComparisonScale::standard()
    };

    let needs_dataset = [
        "table1", "table3", "table4", "table5", "table6", "table7", "fig1", "fig3", "fig6", "fig7",
        "fig10", "fig11", "fig12",
    ]
    .iter()
    .any(|e| want(e));

    let artifacts: RefCell<Vec<Json>> = RefCell::new(Vec::new());
    let print_t = |t: Table| {
        let _ = t.write_csv(&out_dir);
        println!("{}", t.render());
        if json {
            artifacts.borrow_mut().push(Json::obj([
                ("kind", Json::from("table")),
                ("table", t.to_json()),
            ]));
        }
    };
    let print_f = |f: Figure| {
        let _ = f.write_csv(&out_dir);
        println!("{}", f.render());
        if json {
            artifacts.borrow_mut().push(Json::obj([
                ("kind", Json::from("figure")),
                ("figure", f.to_json()),
            ]));
        }
    };

    if needs_dataset {
        eprintln!(
            "building dataset: {} flows/service (seed {}, {} threads)...",
            ds_scale.flows_per_service,
            ds_scale.seed,
            engine.threads()
        );
        let ds = Dataset::build_with(ds_scale, &engine);
        if want("table1") {
            print_t(table1::table1(&ds));
        }
        if want("fig1") {
            print_f(fig1::fig1a(&ds));
            print_f(fig1::fig1b(&ds));
        }
        if want("fig3") {
            print_f(fig3::fig3(&ds));
            for (svc, any, half) in fig3::stall_headline(&ds) {
                println!(
                    "   {svc}: {:.0}% of flows stalled at least once; {:.0}% stalled >50% of lifetime",
                    any * 100.0,
                    half * 100.0
                );
            }
            println!();
        }
        if want("table3") {
            print_t(table3::table3(&ds));
        }
        if want("fig6") {
            print_f(fig6::fig6(&ds));
        }
        if want("table4") {
            print_t(table4::table4(&ds));
        }
        if want("table5") {
            print_t(table5::table5(&ds));
        }
        if want("fig7") {
            let (a, b) = fig7::fig7(&ds);
            print_f(a);
            print_f(b);
        }
        if want("table6") {
            print_t(table6::table6(&ds));
        }
        if want("fig10") {
            let (a, b) = fig7::fig10(&ds);
            print_f(a);
            print_f(b);
        }
        if want("table7") {
            print_t(table6::table7(&ds));
        }
        if want("fig11") {
            print_f(fig11::fig11(&ds));
        }
        if want("fig12") {
            print_f(fig11::fig12(&ds));
        }
    }

    if want("fig2") {
        eprintln!("building fig2 scenario...");
        print_f(fig2::fig2());
    }

    if want("table8") || want("table9") {
        eprintln!(
            "running mechanism comparison: {} web + {} cloud flows × 4 mechanisms...",
            cmp_scale.web_flows, cmp_scale.cloud_flows
        );
        let cmp = mechanism::run_comparison_with(cmp_scale, &engine);
        if want("table8") {
            print_t(mechanism::table8(&cmp));
            print_t(mechanism::large_flow_throughput(&cmp));
        }
        if want("table9") {
            print_t(mechanism::table9(&cmp));
        }
    }

    if want("ablations") {
        eprintln!("running ablations...");
        let n = if quick { 60 } else { 200 };
        print_t(ablation::srto_sweep(n, 99, &engine));
        print_t(ablation::srto_t2_ablation(n, 99, &engine));
        print_t(ablation::burstiness_ablation(
            if quick { 40 } else { 150 },
            99,
            &engine,
        ));
        print_t(ablation::pacing_ablation(
            if quick { 40 } else { 150 },
            99,
            &engine,
        ));
        print_t(ablation::early_retransmit_ablation(
            if quick { 30 } else { 100 },
            99,
            &engine,
        ));
        print_t(ablation::crosstraffic_experiment(99, &engine));
        print_t(ablation::actionability());
    }

    if want("accuracy") {
        eprintln!("running TAPO accuracy check...");
        print_t(ablation::tapo_accuracy(
            if quick { 40 } else { 150 },
            77,
            &engine,
        ));
    }

    if want("validate") {
        eprintln!("running ground-truth validation gate...");
        let report = validate::run_validation(ds_scale.flows_per_service, ds_scale.seed, &engine);
        print_t(validate::validation_table(&report));
        let mut violations = validate::floor_violations(&report);
        eprintln!("running T-RACKs validation (accuracy + paired benefit)...");
        let tracks =
            validate::run_tracks_validation(ds_scale.flows_per_service, ds_scale.seed, &engine);
        print_t(validate::tracks_validation_table(&tracks));
        violations.extend(validate::tracks_floor_violations(&tracks));
        if violations.is_empty() {
            eprintln!("validation gate: PASS (all accuracy and benefit floors met)");
        } else {
            for v in &violations {
                eprintln!("validation gate FAIL: {v}");
            }
            std::process::exit(1);
        }
    }

    if json {
        let doc = Json::obj([
            (
                "paper",
                Json::from(
                    "Demystifying and Mitigating TCP Stalls at the Server Side (CoNEXT 2015)",
                ),
            ),
            ("quick", Json::from(quick)),
            ("threads", Json::from(engine.threads())),
            ("artifacts", Json::Arr(artifacts.into_inner())),
        ]);
        let path = out_dir.join("summary.json");
        match std::fs::write(&path, doc.pretty()) {
            Ok(()) => eprintln!("JSON summary written to {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    eprintln!("CSV output written to {}", out_dir.display());
}

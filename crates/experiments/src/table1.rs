//! Table 1: flow-level statistics of the dataset.

use tapo::StallCause;

use crate::dataset::Dataset;
use crate::output::{bytes_cell, dur_cell, pct_cell, Table};

/// Regenerate Table 1: per-service #flows, average speed, average flow
/// size, packet loss, average RTT and average RTO. Speed is measured over
/// transfer time (flow lifetime minus client-idle periods), matching how a
/// provider reports delivery rate.
pub fn table1(ds: &Dataset) -> Table {
    let mut rows = Vec::new();
    for sd in &ds.services {
        let n = sd.analyses.len().max(1);
        let mean_size = sd
            .analyses
            .iter()
            .map(|a| a.metrics.goodput_bytes as f64)
            .sum::<f64>()
            / n as f64;
        // Aggregate delivery rate: total bytes over total active (non
        // client-idle) time — the provider's view of per-connection speed.
        let (total_bytes, total_active) = sd.analyses.iter().fold((0.0, 0.0), |(b, t), a| {
            let idle: f64 = a
                .stalls
                .iter()
                .filter(|s| s.cause == StallCause::ClientIdle)
                .map(|s| s.duration.as_secs_f64())
                .sum();
            (
                b + a.metrics.goodput_bytes as f64,
                t + (a.metrics.duration.as_secs_f64() - idle).max(0.0),
            )
        });
        let mean_speed = if total_active > 0.0 {
            total_bytes / total_active
        } else {
            0.0
        };
        // Flow-averaged retransmission rate (an unweighted mean keeps a few
        // huge lossy flows from dominating the statistic).
        let flow_rates: Vec<f64> = sd
            .analyses
            .iter()
            .filter(|a| a.metrics.data_pkts_out > 0)
            .map(|a| a.metrics.retrans_pkts as f64 / a.metrics.data_pkts_out as f64)
            .collect();
        let loss_pct = 100.0 * mean(&flow_rates);
        let rtts: Vec<f64> = sd
            .analyses
            .iter()
            .filter_map(|a| a.metrics.mean_rtt.map(|d| d.as_secs_f64()))
            .collect();
        let rtos: Vec<f64> = sd
            .analyses
            .iter()
            .filter_map(|a| a.metrics.mean_rto.map(|d| d.as_secs_f64()))
            .collect();
        rows.push(vec![
            sd.service.label().to_string(),
            format!("{}", sd.analyses.len()),
            bytes_cell(mean_speed),
            bytes_cell(mean_size),
            format!("{}%", pct_cell(loss_pct)),
            dur_cell(mean(&rtts)),
            dur_cell(mean(&rtos)),
        ]);
    }
    Table::new(
        "table1",
        "Flow-level statistics of the dataset",
        vec![
            "service".into(),
            "#flows".into(),
            "avg.speed(B/s)".into(),
            "avg.flow size".into(),
            "pkt loss".into(),
            "avg.RTT".into(),
            "avg.RTO".into(),
        ],
        rows,
    )
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

//! # experiments — the reproduction harness
//!
//! One module per table/figure of the paper's evaluation, a shared
//! synthesized [`dataset`], and the paired mechanism comparison behind
//! Tables 8 & 9. The `repro` binary prints any or all of them and writes
//! CSVs under `results/`.
//!
//! | paper artifact | function |
//! |---|---|
//! | Table 1 | [`table1::table1`] |
//! | Fig. 1a/1b | [`fig1::fig1a`], [`fig1::fig1b`] |
//! | Fig. 2 | [`fig2::fig2`] |
//! | Fig. 3 | [`fig3::fig3`] |
//! | Table 3 | [`table3::table3`] |
//! | Fig. 6 | [`fig6::fig6`] |
//! | Table 4 | [`table4::table4`] |
//! | Table 5 | [`table5::table5`] |
//! | Fig. 7a/7b | [`fig7::fig7`] |
//! | Table 6 / 7 | [`table6::table6`], [`table6::table7`] |
//! | Fig. 10a/10b | [`fig7::fig10`] |
//! | Fig. 11 / 12 | [`fig11::fig11`], [`fig11::fig12`] |
//! | Table 8 / 9 | [`mechanism::table8`], [`mechanism::table9`] |
//! | ablations | [`ablation`] |
//! | validation | [`validate::run_validation`] (ground-truth gate) |
//!
//! (Figures 4, 5, 8 and 9 are explanatory diagrams; their *behaviour* is
//! implemented and tested in `tcp-sim` and `tapo` — see EXPERIMENTS.md.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod dataset;
pub mod engine;
pub mod fig1;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod mechanism;
pub mod output;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod validate;

pub use dataset::{Dataset, Scale, ServiceData};
pub use engine::Engine;
pub use mechanism::{run_comparison, run_comparison_with, Comparison, ComparisonScale};
pub use output::{Figure, Series, Table};

use std::path::Path;

/// Everything the dataset-driven experiments produce, rendered.
pub fn run_dataset_experiments(ds: &Dataset, out_dir: Option<&Path>) -> Vec<String> {
    let mut rendered = Vec::new();
    let mut emit_t = |t: Table| {
        if let Some(dir) = out_dir {
            let _ = t.write_csv(dir);
        }
        rendered.push(t.render());
    };
    emit_t(table1::table1(ds));
    emit_t(table3::table3(ds));
    emit_t(table4::table4(ds));
    emit_t(table5::table5(ds));
    emit_t(table6::table6(ds));
    emit_t(table6::table7(ds));
    let mut emit_f = |f: Figure| {
        if let Some(dir) = out_dir {
            let _ = f.write_csv(dir);
        }
        rendered.push(f.render());
    };
    emit_f(fig1::fig1a(ds));
    emit_f(fig1::fig1b(ds));
    emit_f(fig3::fig3(ds));
    emit_f(fig6::fig6(ds));
    let (a, b) = fig7::fig7(ds);
    emit_f(a);
    emit_f(b);
    let (a, b) = fig7::fig10(ds);
    emit_f(a);
    emit_f(b);
    emit_f(fig11::fig11(ds));
    emit_f(fig11::fig12(ds));
    rendered
}

/// The mechanism-comparison experiments (Tables 8 & 9), rendered.
pub fn run_mechanism_experiments(scale: ComparisonScale, out_dir: Option<&Path>) -> Vec<String> {
    let cmp = run_comparison(scale);
    [
        mechanism::table8(&cmp),
        mechanism::table9(&cmp),
        mechanism::large_flow_throughput(&cmp),
    ]
    .into_iter()
    .map(|t| {
        if let Some(dir) = out_dir {
            let _ = t.write_csv(dir);
        }
        t.render()
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dataset_experiments_render() {
        let ds = Dataset::build(Scale {
            flows_per_service: 15,
            seed: 7,
        });
        let rendered = run_dataset_experiments(&ds, None);
        assert_eq!(rendered.len(), 16);
        assert!(rendered[0].contains("table1"));
        assert!(rendered.iter().all(|r| !r.is_empty()));
    }
}

//! Figure 1: distributions of per-flow RTT and RTO, and of their ratio.

use tapo::Cdf;

use crate::dataset::Dataset;
use crate::output::{Figure, Series};

/// Log-spaced probe points from `lo` to `hi` (inclusive-ish).
pub fn log_probes(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let (l, h) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (l + (h - l) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Figure 1a: CDFs of per-flow mean RTT and mean RTO (ms, log x-axis).
pub fn fig1a(ds: &Dataset) -> Figure {
    let probes = log_probes(1.0, 100_000.0, 61);
    let mut series = Vec::new();
    for sd in &ds.services {
        let rtt = Cdf::from_samples(
            sd.analyses
                .iter()
                .filter_map(|a| a.metrics.mean_rtt.map(|d| d.as_secs_f64() * 1e3))
                .collect(),
        );
        series.push(Series {
            name: format!("{} RTT", sd.service.label()),
            points: rtt.series(&probes),
        });
    }
    for sd in &ds.services {
        let rto = Cdf::from_samples(
            sd.analyses
                .iter()
                .filter_map(|a| a.metrics.mean_rto.map(|d| d.as_secs_f64() * 1e3))
                .collect(),
        );
        series.push(Series {
            name: format!("{} RTO", sd.service.label()),
            points: rto.series(&probes),
        });
    }
    Figure {
        id: "fig1a".into(),
        title: "Per-flow RTT and RTO".into(),
        x_label: "Time (ms)".into(),
        y_label: "CDF".into(),
        series,
    }
}

/// Figure 1b: CDF of RTO normalized by RTT (log x-axis).
pub fn fig1b(ds: &Dataset) -> Figure {
    let probes = log_probes(1.0, 100.0, 41);
    let mut series = Vec::new();
    for sd in &ds.services {
        let ratios: Vec<f64> = sd
            .analyses
            .iter()
            .filter_map(|a| match (a.metrics.mean_rto, a.metrics.mean_rtt) {
                (Some(rto), Some(rtt)) if rtt.as_micros() > 0 => {
                    Some(rto.as_secs_f64() / rtt.as_secs_f64())
                }
                _ => None,
            })
            .collect();
        series.push(Series {
            name: sd.service.label().to_string(),
            points: Cdf::from_samples(ratios).series(&probes),
        });
    }
    Figure {
        id: "fig1b".into(),
        title: "RTO normalized by RTT".into(),
        x_label: "RTO/RTT".into(),
        y_label: "CDF".into(),
        series,
    }
}

//! Cross-layer validation-gate tests: the streaming analyzer's equivalence
//! to the offline pass over a full quick-scale corpus, the stall-detection
//! threshold invariant, and the oracle's no-perturbation contract at the
//! workloads level.

use experiments::{validate, Engine, Scale};
use tapo::{analyze_flow, AnalyzerConfig, Replay, StreamAnalyzer};
use tcp_sim::recovery::RecoveryMechanism;
use workloads::Service;

/// Streaming and offline TAPO must agree field-for-field on every flow of
/// the full quick-scale corpus, for all three services — not just on
/// hand-built traces.
#[test]
fn streaming_equals_offline_on_quick_corpus() {
    let scale = Scale::quick();
    let engine = Engine::auto();
    let cfg = AnalyzerConfig::default();
    for service in Service::ALL {
        let corpus = engine.synthesize_corpus(
            service,
            scale.flows_per_service,
            RecoveryMechanism::Native,
            scale.seed,
        );
        for flow in &corpus.flows {
            let offline = analyze_flow(&flow.trace, cfg);
            let mut an = StreamAnalyzer::new(cfg);
            for rec in &flow.trace.records {
                an.push(rec);
            }
            let streamed = an.finish();
            assert_eq!(offline, streamed, "divergence in a {service:?} flow");
        }
    }
}

/// Detection invariant: every reported stall's duration must exceed the
/// stall threshold (`min(2·SRTT, RTO)`) that held at detection time —
/// re-derived independently by replaying the records before the
/// stall-ending packet into a fresh [`Replay`].
#[test]
fn every_stall_exceeds_its_threshold() {
    let engine = Engine::auto();
    let cfg = AnalyzerConfig::default();
    for service in Service::ALL {
        let corpus = engine.synthesize_corpus(service, 25, RecoveryMechanism::Native, 2015);
        let mut stalls_checked = 0usize;
        for flow in &corpus.flows {
            let analysis = analyze_flow(&flow.trace, cfg);
            for stall in &analysis.stalls {
                let mut replay = Replay::new(cfg.replay);
                for (idx, rec) in flow.trace.records[..stall.end_record].iter().enumerate() {
                    replay.process(idx, rec);
                }
                assert!(replay.established, "stalls only exist post-handshake");
                assert!(
                    stall.duration > replay.stall_threshold(),
                    "{service:?} stall {stall:?} does not exceed threshold {:?}",
                    replay.stall_threshold()
                );
                stalls_checked += 1;
            }
        }
        assert!(
            stalls_checked > 0,
            "{service:?} produced no stalls to check"
        );
    }
}

/// The ground-truth oracle must be invisible in packet-visible output at
/// the workloads level too: the sampled populations run through the oracle
/// path produce records byte-identical to the plain streaming path.
#[test]
fn oracle_runs_are_byte_identical_to_plain_runs() {
    use tcp_trace::flow::FlowTrace;
    use workloads::{
        sample_flow, simulate_flow_into_scratch, simulate_flow_oracle_into_scratch, FlowScratch,
        ServiceModel,
    };
    let model = ServiceModel::calibrated(Service::WebSearch);
    let mut scratch = FlowScratch::new();
    for i in 0..12usize {
        let (spec, path) = sample_flow(&model, 2015, i);
        let seed = 2015 + i as u64;
        let (plain_out, plain_trace) = simulate_flow_into_scratch(
            &spec,
            &path,
            RecoveryMechanism::Native,
            seed,
            FlowTrace::default(),
            &mut scratch,
        );
        let (oracle_out, oracle_trace) = simulate_flow_oracle_into_scratch(
            &spec,
            &path,
            RecoveryMechanism::Native,
            seed,
            FlowTrace::default(),
            &mut scratch,
        );
        assert_eq!(plain_trace.records, oracle_trace.records);
        assert_eq!(plain_out.request_latencies, oracle_out.request_latencies);
        assert_eq!(plain_out.server_stats, oracle_out.server_stats);
        assert!(plain_out.oracle.is_empty());
    }
}

/// The committed accuracy floors must hold at quick scale — the exact
/// configuration the CI gate runs.
#[test]
fn quick_scale_validation_meets_floors() {
    let scale = Scale::quick();
    let report = validate::run_validation(scale.flows_per_service, scale.seed, &Engine::auto());
    let violations = validate::floor_violations(&report);
    assert!(violations.is_empty(), "floor violations: {violations:?}");
}

/// The committed T-RACKs floors (classifier accuracy on T-RACKs traffic
/// and the paired stall-time benefit) must hold at quick scale — the exact
/// configuration the CI gate runs.
#[test]
fn quick_scale_tracks_validation_meets_floors() {
    let scale = Scale::quick();
    let v = validate::run_tracks_validation(scale.flows_per_service, scale.seed, &Engine::auto());
    let violations = validate::tracks_floor_violations(&v);
    assert!(
        violations.is_empty(),
        "T-RACKs floor violations: {violations:?}"
    );
}

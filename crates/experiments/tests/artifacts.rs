//! Structural tests of the reproduced artifacts: every table/figure must
//! have the paper's shape properties at any scale, not just look plausible
//! at the standard seed.

use experiments::{
    fig1, fig11, fig3, fig6, fig7, mechanism, table1, table3, table4, table5, table6,
    ComparisonScale, Dataset, Scale,
};

fn tiny_dataset() -> Dataset {
    Dataset::build(Scale {
        flows_per_service: 25,
        seed: 99,
    })
}

#[test]
fn table1_has_three_service_rows() {
    let ds = tiny_dataset();
    let t = table1::table1(&ds);
    assert_eq!(t.rows.len(), 3);
    assert_eq!(t.header.len(), 7);
    // #flows column reflects the scale.
    for row in &t.rows {
        assert_eq!(row[1], "25");
    }
}

#[test]
fn table3_shares_sum_to_about_hundred() {
    let ds = tiny_dataset();
    let t = table3::table3(&ds);
    // Columns 2.. are per-service volume/time percentages; each column
    // must sum to ~100 (or 0 if the service had no stalls).
    for col in 2..t.header.len() {
        let sum: f64 = t
            .rows
            .iter()
            .map(|r| r[col].parse::<f64>().unwrap_or(0.0))
            .sum();
        assert!(
            (sum - 100.0).abs() < 1.5 || sum == 0.0,
            "column {} ({}) sums to {sum}",
            col,
            t.header[col]
        );
    }
}

#[test]
fn table5_shares_sum_to_about_hundred() {
    let ds = tiny_dataset();
    let t = table5::table5(&ds);
    for col in 1..t.header.len() {
        let sum: f64 = t
            .rows
            .iter()
            .map(|r| r[col].parse::<f64>().unwrap_or(0.0))
            .sum();
        assert!(
            (sum - 100.0).abs() < 1.5 || sum == 0.0,
            "column {} ({}) sums to {sum}",
            col,
            t.header[col]
        );
    }
}

#[test]
fn table4_zero_window_probability_declines_with_rwnd_for_software() {
    // The paper's key correlation: larger initial windows mean fewer
    // zero-window flows. Use a bigger sample for a stable monotone trend.
    let ds = Dataset::build(Scale {
        flows_per_service: 150,
        seed: 7,
    });
    let t = table4::table4(&ds);
    let soft = t
        .rows
        .iter()
        .find(|r| r[0].contains("soft"))
        .expect("software row");
    let values: Vec<f64> = soft[1..].iter().filter_map(|c| c.parse().ok()).collect();
    assert!(
        values.len() >= 3,
        "need at least 3 populated buckets: {soft:?}"
    );
    assert!(
        values.first().unwrap() > values.last().unwrap(),
        "zero-window probability must decline with init rwnd: {values:?}"
    );
}

#[test]
fn figures_are_valid_cdfs() {
    let ds = tiny_dataset();
    let figs = vec![
        fig1::fig1a(&ds),
        fig1::fig1b(&ds),
        fig3::fig3(&ds),
        fig6::fig6(&ds),
        fig7::fig7(&ds).0,
        fig7::fig7(&ds).1,
        fig7::fig10(&ds).0,
        fig7::fig10(&ds).1,
        fig11::fig11(&ds),
        fig11::fig12(&ds),
    ];
    for f in figs {
        for s in &f.series {
            // Monotone nondecreasing, bounded in [0,1].
            let mut prev = 0.0;
            for &(x, y) in &s.points {
                assert!(x.is_finite());
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&y),
                    "{} {}: y={y}",
                    f.id,
                    s.name
                );
                assert!(
                    y + 1e-9 >= prev,
                    "{} {} not monotone at x={x}",
                    f.id,
                    s.name
                );
                prev = y;
            }
        }
    }
}

#[test]
fn fig6_reproduces_the_small_window_population() {
    let ds = Dataset::build(Scale {
        flows_per_service: 150,
        seed: 7,
    });
    let f = fig6::fig6(&ds);
    let soft = f
        .series
        .iter()
        .find(|s| s.name.contains("soft"))
        .expect("software series");
    // CDF at 11 MSS ≈ the paper's 18% small-window share.
    let at11 = soft
        .points
        .iter()
        .find(|(x, _)| *x == 11.0)
        .map(|(_, y)| *y)
        .unwrap();
    assert!((0.08..=0.30).contains(&at11), "CDF(11 MSS) = {at11}");
    // And everyone is below the top bucket.
    assert_eq!(soft.points.last().unwrap().1, 1.0);
}

#[test]
fn comparison_is_paired_and_complete() {
    let cmp = mechanism::run_comparison(ComparisonScale {
        web_flows: 10,
        cloud_short_flows: 10,
        cloud_flows: 5,
        seed: 3,
    });
    assert_eq!(cmp.runs.len(), 4);
    assert_eq!(cmp.runs[0].label, "Linux");
    assert_eq!(cmp.runs[3].label, "T-RACKs");
    // Identical populations: same number of flows and same offered bytes.
    let bytes = |c: &workloads::Corpus| c.flows.iter().map(|f| f.response_bytes).sum::<u64>();
    for run in &cmp.runs[1..] {
        assert_eq!(run.web.flows.len(), cmp.runs[0].web.flows.len());
        assert_eq!(bytes(&run.web), bytes(&cmp.runs[0].web));
        assert_eq!(bytes(&run.cloud_short), bytes(&cmp.runs[0].cloud_short));
    }
    let t8 = mechanism::table8(&cmp);
    assert_eq!(t8.rows.len(), 5); // 50/90/95/mean/#(flows)
    let t9 = mechanism::table9(&cmp);
    assert_eq!(t9.rows.len(), 2);
    assert_eq!(t9.header.len(), 5); // service + all four mechanisms
}

#[test]
fn dataset_is_deterministic_across_builds() {
    let a = Dataset::build(Scale {
        flows_per_service: 10,
        seed: 5,
    });
    let b = Dataset::build(Scale {
        flows_per_service: 10,
        seed: 5,
    });
    let t_a = table3::table3(&a);
    let t_b = table3::table3(&b);
    assert_eq!(t_a, t_b);
}

#[test]
fn table6_and_7_percentages_are_complementary() {
    let ds = tiny_dataset();
    for t in [table6::table6(&ds), table6::table7(&ds)] {
        assert_eq!(t.rows.len(), 2);
        for col in 1..t.header.len() {
            let a: f64 = t.rows[0][col].trim_end_matches('%').parse().unwrap();
            let b: f64 = t.rows[1][col].trim_end_matches('%').parse().unwrap();
            let sum = a + b;
            assert!(
                (sum - 100.0).abs() < 0.2 || sum == 0.0,
                "{} column {col}: {a} + {b} = {sum}",
                t.id
            );
        }
    }
}

//! Scratch-hygiene differentials: a worker that recycles its arenas across
//! many flows must be indistinguishable from fresh-state serial execution.
//!
//! The engine's whole performance story rests on one contract — every
//! scratch entry point (`FlowScratch`, `StreamAnalyzer::reset_for`,
//! `AnalyzeScratch`) fully rewinds its state between flows, so a recycled
//! worker's traces and analyses are bit-identical to what a brand-new
//! worker would produce. These tests attack that contract directly with
//! heterogeneous flows sharing one scratch, seed-randomized orderings, and
//! a leak probe that reruns a sentinel flow after every other flow.

use tapo::{AnalyzerConfig, StreamAnalyzer};
use tcp_sim::recovery::RecoveryMechanism;
use workloads::{
    sample_flow, simulate_flow, simulate_flow_into, simulate_flow_into_scratch,
    simulate_flow_scratch, FlowScratch, Service, ServiceModel,
};

/// A small cross-service pool of (spec, path, seed) cases — heterogeneous
/// enough that consecutive flows differ in script shape, loss process,
/// window sizes and mechanism-relevant options.
fn case_pool() -> Vec<(workloads::FlowSpec, workloads::PathSpec, u64)> {
    let mut cases = Vec::new();
    for (svc, master) in [
        (Service::CloudStorage, 41u64),
        (Service::WebSearch, 42),
        (Service::SoftwareDownload, 43),
    ] {
        let model = ServiceModel::calibrated(svc);
        for i in 0..6 {
            let (spec, path) = sample_flow(&model, master, i);
            cases.push((spec, path, master * 1000 + i as u64));
        }
    }
    cases
}

/// xorshift64* — deterministic shuffle driver, no external deps.
fn rng_next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        let j = (rng_next(&mut s) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// One worker recycling a single `FlowScratch` + `StreamAnalyzer` across
/// every pooled flow, in several seed-randomized orders, must reproduce the
/// fresh serial path bit for bit — traces, outcomes and analyses.
#[test]
fn recycled_worker_matches_fresh_serial_in_any_order() {
    let cases = case_pool();
    let cfg = AnalyzerConfig::default();
    // Reference: fresh state for every flow.
    let reference: Vec<_> = cases
        .iter()
        .map(|(spec, path, seed)| {
            let out = simulate_flow(spec, path, RecoveryMechanism::Native, *seed);
            let (_, analyzer) = simulate_flow_into(
                spec,
                path,
                RecoveryMechanism::Native,
                *seed,
                StreamAnalyzer::new(cfg),
            );
            (out, analyzer.finish())
        })
        .collect();

    for order_seed in [1u64, 7, 99] {
        let mut scratch = FlowScratch::new();
        let mut analyzer = StreamAnalyzer::new(cfg);
        for &i in &shuffled(cases.len(), order_seed) {
            let (spec, path, seed) = &cases[i];
            let out =
                simulate_flow_scratch(spec, path, RecoveryMechanism::Native, *seed, &mut scratch);
            let (lean_out, mut used) = simulate_flow_into_scratch(
                spec,
                path,
                RecoveryMechanism::Native,
                *seed,
                analyzer,
                &mut scratch,
            );
            let analysis = used.finish_reset();
            analyzer = used;
            let (ref_out, ref_analysis) = &reference[i];
            assert_eq!(out.trace.records, ref_out.trace.records, "case {i}");
            assert_eq!(out.request_latencies, ref_out.request_latencies, "case {i}");
            assert_eq!(out.server_stats, ref_out.server_stats, "case {i}");
            assert_eq!(out.established_at, ref_out.established_at, "case {i}");
            assert_eq!(out.finished_at, ref_out.finished_at, "case {i}");
            assert_eq!(lean_out.server_stats, ref_out.server_stats, "case {i}");
            assert_eq!(&analysis, ref_analysis, "case {i}");
        }
    }
}

/// Leak probe: run a fixed sentinel flow with fresh state once, then rerun
/// it through the shared scratch after *every* pooled flow. Any state that
/// survives a reset — a stale event, a dirty buffer, a carried-over replay
/// field — shows up as a sentinel divergence right after the flow that
/// leaked it.
#[test]
fn no_state_leaks_between_consecutive_flows_sharing_scratch() {
    let cases = case_pool();
    let cfg = AnalyzerConfig::default();
    let (s_spec, s_path, s_seed) = &cases[0];
    let sentinel = simulate_flow(s_spec, s_path, RecoveryMechanism::Native, *s_seed);
    let (_, fresh_analyzer) = simulate_flow_into(
        s_spec,
        s_path,
        RecoveryMechanism::Native,
        *s_seed,
        StreamAnalyzer::new(cfg),
    );
    let sentinel_analysis = fresh_analyzer.finish();

    let mut scratch = FlowScratch::new();
    let mut analyzer = StreamAnalyzer::new(cfg);
    for (i, (spec, path, seed)) in cases.iter().enumerate() {
        // Pollute the scratch with an arbitrary flow...
        let (_, mut used) = simulate_flow_into_scratch(
            spec,
            path,
            RecoveryMechanism::Native,
            *seed,
            analyzer,
            &mut scratch,
        );
        used.finish_reset();
        analyzer = used;
        // ...then demand the sentinel still reproduces exactly.
        let replayed = simulate_flow_scratch(
            s_spec,
            s_path,
            RecoveryMechanism::Native,
            *s_seed,
            &mut scratch,
        );
        assert_eq!(
            replayed.trace.records, sentinel.trace.records,
            "scratch leaked state after case {i}"
        );
        assert_eq!(replayed.server_stats, sentinel.server_stats);
        let (_, mut used) = simulate_flow_into_scratch(
            s_spec,
            s_path,
            RecoveryMechanism::Native,
            *s_seed,
            analyzer,
            &mut scratch,
        );
        let replayed_analysis = used.finish_reset();
        analyzer = used;
        assert_eq!(
            replayed_analysis, sentinel_analysis,
            "analyzer leaked state after case {i}"
        );
    }
}

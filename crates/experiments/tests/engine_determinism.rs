//! The engine's determinism contract: every experiment must produce
//! bit-identical output at any thread count. Per-flow seeds depend only on
//! `(master_seed, service, flow_index)` and results are collected in index
//! order, so sharding is invisible in the output.

use experiments::{mechanism, table3, table5, ComparisonScale, Dataset, Engine, Scale};

const SCALE: Scale = Scale {
    flows_per_service: 24,
    seed: 2015,
};

#[test]
fn dataset_is_identical_at_any_thread_count() {
    let serial = Dataset::build_with(SCALE, &Engine::new(1));
    for threads in [2, 8] {
        let parallel = Dataset::build_with(SCALE, &Engine::new(threads));
        for (s, p) in serial.services.iter().zip(&parallel.services) {
            assert_eq!(s.service, p.service);
            // The aggregate breakdown is bit-identical...
            assert_eq!(
                s.breakdown, p.breakdown,
                "breakdown differs at {threads} threads"
            );
            // ...because every simulated trace and analysis is.
            assert_eq!(s.corpus.flows.len(), p.corpus.flows.len());
            for (sf, pf) in s.corpus.flows.iter().zip(&p.corpus.flows) {
                assert_eq!(
                    sf.trace.records, pf.trace.records,
                    "trace differs at {threads} threads"
                );
                assert_eq!(sf.response_bytes, pf.response_bytes);
                assert_eq!(sf.completed, pf.completed);
            }
            for (sa, pa) in s.analyses.iter().zip(&p.analyses) {
                assert_eq!(sa.stalls.len(), pa.stalls.len());
                assert_eq!(sa.metrics.stalled_time, pa.metrics.stalled_time);
                assert_eq!(sa.metrics.goodput_bytes, pa.metrics.goodput_bytes);
            }
        }
        // The rendered artifacts are therefore byte-identical too.
        assert_eq!(
            table3::table3(&serial).render(),
            table3::table3(&parallel).render()
        );
        assert_eq!(
            table5::table5(&serial).render(),
            table5::table5(&parallel).render()
        );
    }
}

#[test]
fn comparison_is_identical_at_any_thread_count() {
    let scale = ComparisonScale {
        web_flows: 16,
        cloud_short_flows: 12,
        cloud_flows: 8,
        seed: 360,
    };
    let serial = mechanism::run_comparison_with(scale, &Engine::new(1));
    let parallel = mechanism::run_comparison_with(scale, &Engine::new(8));
    for (s, p) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(s.label, p.label);
        for (sc, pc) in [
            (&s.web, &p.web),
            (&s.cloud_short, &p.cloud_short),
            (&s.cloud, &p.cloud),
        ] {
            assert_eq!(sc.flows.len(), pc.flows.len());
            for (sf, pf) in sc.flows.iter().zip(&pc.flows) {
                assert_eq!(sf.trace.records, pf.trace.records);
                assert_eq!(sf.request_latencies, pf.request_latencies);
            }
        }
    }
    assert_eq!(
        mechanism::table8(&serial).render(),
        mechanism::table8(&parallel).render()
    );
    assert_eq!(
        mechanism::table9(&serial).render(),
        mechanism::table9(&parallel).render()
    );
}

#[test]
fn engine_serial_equals_plain_build() {
    // `Dataset::build` (the serial convenience) and an explicit parallel
    // engine agree — the parallel path is a pure optimization.
    let a = Dataset::build(SCALE);
    let b = Dataset::build_with(SCALE, &Engine::auto());
    for (s, p) in a.services.iter().zip(&b.services) {
        assert_eq!(s.breakdown, p.breakdown);
    }
}

//! # tcp-trace — packet traces as TAPO sees them
//!
//! The paper's TAPO tool consumes packet-level traces captured at the
//! server's NIC (tcpdump). This crate defines the in-memory representation
//! of such traces ([`TraceRecord`], [`FlowTrace`]), reassembles mixed
//! multi-flow captures into per-flow traces ([`flow::FlowTable`]), and reads
//! and writes the classic libpcap 2.4 file format with from-scratch
//! Ethernet/IPv4/TCP encoding — including the TCP SACK and DSACK options
//! that the stall classifier depends on ([`pcap`]).
//!
//! Records use **relative, unwrapped** 64-bit sequence numbers (stream
//! offsets): `seq == 0` is the first payload byte of the direction's stream.
//! The pcap layer maps these to and from 32-bit wire sequence numbers with
//! per-direction ISNs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod oracle;
pub mod pcap;
pub mod record;
pub mod text;

pub use flow::{FlowKey, FlowTable, FlowTrace};
pub use oracle::{CauseEvent, CauseKind, RtoContext};
pub use record::{Direction, RecordSink, SackBlock, SegFlags, TraceRecord};

//! Classic libpcap 2.4 file I/O with from-scratch Ethernet/IPv4/TCP
//! encode/decode.
//!
//! The writer emits header-only captures (snaplen-truncated, like the
//! production `tcpdump -s96` captures analyzed in the paper): the IPv4
//! `total_length` field carries the true payload size while the capture
//! record stores only link/IP/TCP headers. TCP options encode what the
//! classifier needs: MSS + SACK-permitted + window-scale on SYNs, and
//! SACK/DSACK blocks on ACKs. TCP checksums are written as zero (checksum
//! offload — ubiquitous in real server captures); IPv4 header checksums are
//! valid.
//!
//! Sequence numbers are 32-bit on the wire; the reader unwraps them back to
//! 64-bit stream offsets relative to each direction's ISN.

use std::io::{self, Read, Write};

use crate::flow::{FlowKey, FlowTable, FlowTrace};
use crate::record::{Direction, SackBlock, SegFlags, TraceRecord};
use simnet::time::SimTime;

const MAGIC_LE: u32 = 0xa1b2_c3d4;
const MAGIC_BE: u32 = 0xd4c3_b2a1;
/// Fixed window-scale shift used by the writer (both directions).
pub const WSCALE_SHIFT: u8 = 7;
/// Outbound (server) initial sequence number used by the writer.
pub const ISN_OUT: u32 = 0x1000_0000;
/// Inbound (client) initial sequence number used by the writer.
pub const ISN_IN: u32 = 0x2000_0000;

/// Errors produced by the pcap reader.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a classic pcap file (bad magic).
    BadMagic(u32),
    /// Structurally invalid packet or header.
    Malformed(&'static str),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a classic pcap file (magic {m:#010x})"),
            PcapError::Malformed(what) => write!(f, "malformed pcap: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

// ---------------------------------------------------------------- writing

/// Streams one or more [`FlowTrace`]s into a classic pcap file.
pub struct PcapWriter<W: Write> {
    out: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut out: W) -> io::Result<Self> {
        let mut hdr = Vec::with_capacity(24);
        hdr.extend_from_slice(&MAGIC_LE.to_le_bytes());
        hdr.extend_from_slice(&2u16.to_le_bytes()); // version major
        hdr.extend_from_slice(&4u16.to_le_bytes()); // version minor
        hdr.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        hdr.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        hdr.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        hdr.extend_from_slice(&1u32.to_le_bytes()); // LINKTYPE_ETHERNET
        out.write_all(&hdr)?;
        Ok(PcapWriter { out })
    }

    /// Write every record of `trace` (records must already be time-ordered).
    /// The trace must carry a [`FlowKey`]; synthesize one if needed.
    pub fn write_flow(&mut self, trace: &FlowTrace) -> io::Result<()> {
        let key = trace.key.unwrap_or_else(|| FlowKey::synthetic(0));
        for rec in &trace.records {
            self.write_record(&key, rec)?;
        }
        Ok(())
    }

    /// Write a single record.
    pub fn write_record(&mut self, key: &FlowKey, rec: &TraceRecord) -> io::Result<()> {
        let frame = encode_frame(key, rec);
        let us = rec.t.as_micros();
        let mut pkt = Vec::with_capacity(16 + frame.captured.len());
        pkt.extend_from_slice(&((us / 1_000_000) as u32).to_le_bytes());
        pkt.extend_from_slice(&((us % 1_000_000) as u32).to_le_bytes());
        pkt.extend_from_slice(&(frame.captured.len() as u32).to_le_bytes());
        pkt.extend_from_slice(&frame.orig_len.to_le_bytes());
        pkt.extend_from_slice(&frame.captured);
        self.out.write_all(&pkt)
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

struct Frame {
    captured: Vec<u8>,
    orig_len: u32,
}

fn wire_seq(dir: Direction, offset: u64, syn: bool) -> u32 {
    let isn = match dir {
        Direction::Out => ISN_OUT,
        Direction::In => ISN_IN,
    };
    if syn {
        isn
    } else {
        isn.wrapping_add(1).wrapping_add(offset as u32)
    }
}

fn encode_frame(key: &FlowKey, rec: &TraceRecord) -> Frame {
    // TCP options.
    let mut opts: Vec<u8> = Vec::new();
    if rec.flags.syn {
        // MSS
        opts.extend_from_slice(&[2, 4]);
        opts.extend_from_slice(&1448u16.to_be_bytes());
        // SACK permitted
        opts.extend_from_slice(&[4, 2]);
        // Window scale (3 bytes) + NOP for alignment
        opts.extend_from_slice(&[3, 3, WSCALE_SHIFT, 1]);
    }
    if !rec.sack.is_empty() {
        let n = rec.sack.len().min(4);
        opts.extend_from_slice(&[1, 1]); // 2 NOPs
        opts.push(5); // SACK
        opts.push(2 + 8 * n as u8);
        for b in rec.sack.iter().take(n) {
            // SACK blocks describe the *peer's received* ranges, i.e. ranges
            // in the opposite direction's stream.
            let data_dir = rec.dir.flip();
            opts.extend_from_slice(&wire_seq(data_dir, b.start, false).to_be_bytes());
            opts.extend_from_slice(&wire_seq(data_dir, b.end, false).to_be_bytes());
        }
    }
    while !opts.len().is_multiple_of(4) {
        opts.push(1); // NOP pad
    }
    let tcp_hdr_len = 20 + opts.len();

    // Scaled window. SYN windows are never scaled on the wire.
    let wnd16: u16 = if rec.flags.syn {
        rec.rwnd.min(65_535) as u16
    } else {
        (rec.rwnd >> WSCALE_SHIFT).min(65_535) as u16
    };

    let (src_ip, dst_ip, src_port, dst_port) = match rec.dir {
        Direction::Out => (
            key.server_ip,
            key.client_ip,
            key.server_port,
            key.client_port,
        ),
        Direction::In => (
            key.client_ip,
            key.server_ip,
            key.client_port,
            key.server_port,
        ),
    };

    let seq32 = wire_seq(rec.dir, rec.seq, rec.flags.syn);
    let ack32 = if rec.flags.ack {
        wire_seq(rec.dir.flip(), rec.ack, false)
    } else {
        0
    };

    let mut tcp = Vec::with_capacity(tcp_hdr_len);
    tcp.extend_from_slice(&src_port.to_be_bytes());
    tcp.extend_from_slice(&dst_port.to_be_bytes());
    tcp.extend_from_slice(&seq32.to_be_bytes());
    tcp.extend_from_slice(&ack32.to_be_bytes());
    let offset_flags: u16 = ((tcp_hdr_len as u16 / 4) << 12)
        | (u16::from(rec.flags.ack) << 4)
        | (u16::from(rec.flags.rst) << 2)
        | (u16::from(rec.flags.syn) << 1)
        | u16::from(rec.flags.fin);
    tcp.extend_from_slice(&offset_flags.to_be_bytes());
    tcp.extend_from_slice(&wnd16.to_be_bytes());
    tcp.extend_from_slice(&0u16.to_be_bytes()); // checksum: offloaded
    tcp.extend_from_slice(&0u16.to_be_bytes()); // urgent
    tcp.extend_from_slice(&opts);

    let ip_total_len = 20 + tcp.len() + rec.len as usize;
    let mut ip = Vec::with_capacity(20);
    ip.push(0x45);
    ip.push(0);
    ip.extend_from_slice(&(ip_total_len as u16).to_be_bytes());
    ip.extend_from_slice(&0u16.to_be_bytes()); // id
    ip.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
    ip.push(64); // ttl
    ip.push(6); // TCP
    ip.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    ip.extend_from_slice(&src_ip);
    ip.extend_from_slice(&dst_ip);
    let csum = ipv4_checksum(&ip);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());

    let mut eth = Vec::with_capacity(14 + ip.len() + tcp.len());
    eth.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // dst MAC
    eth.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // src MAC
    eth.extend_from_slice(&0x0800u16.to_be_bytes());
    eth.extend_from_slice(&ip);
    eth.extend_from_slice(&tcp);

    Frame {
        orig_len: (eth.len() + rec.len as usize) as u32,
        captured: eth,
    }
}

fn ipv4_checksum(hdr: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for chunk in hdr.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

// ---------------------------------------------------------------- reading

/// Reads a classic pcap capture back into per-flow [`FlowTrace`]s.
///
/// The server endpoint is identified as the *destination of the first bare
/// SYN* seen for each 4-tuple (falling back to the lower port number if the
/// handshake was not captured).
pub struct PcapReader;

#[derive(Default)]
struct DirState {
    isn: Option<u32>,
    last_off: u64,
}

#[derive(Default)]
struct FlowState {
    out: DirState, // server → client
    inb: DirState, // client → server
}

impl PcapReader {
    /// Parse an entire capture; non-IPv4/TCP packets are skipped.
    pub fn read_all<R: Read>(mut input: R) -> Result<Vec<FlowTrace>, PcapError> {
        let mut buf = Vec::new();
        input.read_to_end(&mut buf)?;
        if buf.len() < 24 {
            return Err(PcapError::Malformed("file shorter than global header"));
        }
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let swapped = match magic {
            MAGIC_LE => false,
            MAGIC_BE => true,
            other => return Err(PcapError::BadMagic(other)),
        };
        let rd32 = |b: &[u8]| -> u32 {
            let a = [b[0], b[1], b[2], b[3]];
            if swapped {
                u32::from_be_bytes(a)
            } else {
                u32::from_le_bytes(a)
            }
        };

        let mut table = FlowTable::new();
        let mut states: std::collections::HashMap<FlowKey, FlowState> = Default::default();
        let mut pos = 24;
        while pos + 16 <= buf.len() {
            let ts_sec = rd32(&buf[pos..]) as u64;
            let ts_usec = rd32(&buf[pos + 4..]) as u64;
            let incl = rd32(&buf[pos + 8..]) as usize;
            pos += 16;
            if pos + incl > buf.len() {
                return Err(PcapError::Malformed("truncated packet record"));
            }
            let frame = &buf[pos..pos + incl];
            pos += incl;
            let t = SimTime::from_micros(ts_sec * 1_000_000 + ts_usec);
            if let Some((key, rec_raw)) = parse_frame(frame) {
                let st = states.entry(key).or_default();
                if let Some(rec) = finish_record(st, t, rec_raw) {
                    table.push(key, rec);
                }
            }
        }
        Ok(table.into_traces())
    }
}

/// A parsed frame before ISN-relative sequence translation.
struct RawRecord {
    dir: Direction,
    seq32: u32,
    ack32: u32,
    flags: SegFlags,
    wnd16: u16,
    payload_len: u32,
    sack32: Vec<(u32, u32)>,
}

fn parse_frame(frame: &[u8]) -> Option<(FlowKey, RawRecord)> {
    if frame.len() < 14 + 20 + 20 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None;
    }
    let ip = &frame[14..];
    if ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = ((ip[0] & 0xf) as usize) * 4;
    if ip[9] != 6 || ip.len() < ihl + 20 {
        return None;
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    let src_ip = [ip[12], ip[13], ip[14], ip[15]];
    let dst_ip = [ip[16], ip[17], ip[18], ip[19]];
    let tcp = &ip[ihl..];
    let src_port = u16::from_be_bytes([tcp[0], tcp[1]]);
    let dst_port = u16::from_be_bytes([tcp[2], tcp[3]]);
    let seq32 = u32::from_be_bytes([tcp[4], tcp[5], tcp[6], tcp[7]]);
    let ack32 = u32::from_be_bytes([tcp[8], tcp[9], tcp[10], tcp[11]]);
    let data_off = ((tcp[12] >> 4) as usize) * 4;
    if data_off < 20 || tcp.len() < data_off {
        return None;
    }
    let fl = tcp[13];
    let flags = SegFlags {
        fin: fl & 0x01 != 0,
        syn: fl & 0x02 != 0,
        rst: fl & 0x04 != 0,
        ack: fl & 0x10 != 0,
    };
    let wnd16 = u16::from_be_bytes([tcp[14], tcp[15]]);
    let payload_len = total_len.saturating_sub(ihl + data_off) as u32;

    // Parse options for SACK blocks.
    let mut sack32 = Vec::new();
    let opts = &tcp[20..data_off.min(tcp.len())];
    let mut i = 0;
    while i < opts.len() {
        match opts[i] {
            0 => break,
            1 => i += 1,
            5 => {
                if i + 1 >= opts.len() {
                    break;
                }
                let l = opts[i + 1] as usize;
                if l < 2 || i + l > opts.len() {
                    break;
                }
                let mut j = i + 2;
                while j + 8 <= i + l {
                    let s = u32::from_be_bytes([opts[j], opts[j + 1], opts[j + 2], opts[j + 3]]);
                    let e =
                        u32::from_be_bytes([opts[j + 4], opts[j + 5], opts[j + 6], opts[j + 7]]);
                    sack32.push((s, e));
                    j += 8;
                }
                i += l;
            }
            _ => {
                if i + 1 >= opts.len() {
                    break;
                }
                let l = opts[i + 1] as usize;
                if l < 2 {
                    break;
                }
                i += l;
            }
        }
    }

    // Orient: the destination of a bare SYN is the server; otherwise the
    // endpoint with the lower port is assumed to be the server.
    let (server_ip, server_port, client_ip, client_port, dir) = if flags.syn && !flags.ack {
        (dst_ip, dst_port, src_ip, src_port, Direction::In)
    } else if (flags.syn && flags.ack) || src_port <= dst_port {
        // A SYN-ACK's source is the server; lacking a handshake, assume
        // the lower port is the server's.
        (src_ip, src_port, dst_ip, dst_port, Direction::Out)
    } else {
        (dst_ip, dst_port, src_ip, src_port, Direction::In)
    };

    Some((
        FlowKey {
            server_ip,
            server_port,
            client_ip,
            client_port,
        },
        RawRecord {
            dir,
            seq32,
            ack32,
            flags,
            wnd16,
            payload_len,
            sack32,
        },
    ))
}

/// Unwrap a 32-bit offset to the 64-bit value closest to `near`.
fn unwrap32(off32: u32, near: u64) -> u64 {
    let base = near & !0xffff_ffffu64;
    let candidates = [
        base.wrapping_add(off32 as u64),
        base.wrapping_add(off32 as u64).wrapping_add(1 << 32),
        base.wrapping_add(off32 as u64).wrapping_sub(1 << 32),
    ];
    candidates
        .into_iter()
        .min_by_key(|c| c.abs_diff(near))
        .expect("non-empty candidates")
}

fn finish_record(st: &mut FlowState, t: SimTime, raw: RawRecord) -> Option<TraceRecord> {
    // Learn ISNs from the handshake; synthesize if the handshake is missing.
    {
        let dstate = match raw.dir {
            Direction::Out => &mut st.out,
            Direction::In => &mut st.inb,
        };
        if raw.flags.syn {
            dstate.isn = Some(raw.seq32);
        } else if dstate.isn.is_none() {
            // No handshake captured: treat the first seen seq as offset 0.
            dstate.isn = Some(raw.seq32.wrapping_sub(1));
        }
    }

    let (own_isn, own_last) = match raw.dir {
        Direction::Out => (st.out.isn?, st.out.last_off),
        Direction::In => (st.inb.isn?, st.inb.last_off),
    };
    let seq = if raw.flags.syn {
        0
    } else {
        unwrap32(raw.seq32.wrapping_sub(own_isn.wrapping_add(1)), own_last)
    };

    // Peer-direction translation for ack and SACK blocks.
    let peer = match raw.dir {
        Direction::Out => &st.inb,
        Direction::In => &st.out,
    };
    let (ack, sack, dsack) = if let Some(peer_isn) = peer.isn {
        let ack = if raw.flags.ack {
            unwrap32(
                raw.ack32.wrapping_sub(peer_isn.wrapping_add(1)),
                peer.last_off,
            )
        } else {
            0
        };
        let mut sack: Vec<SackBlock> = Vec::with_capacity(raw.sack32.len());
        for (s32, e32) in &raw.sack32 {
            let s = unwrap32(s32.wrapping_sub(peer_isn.wrapping_add(1)), peer.last_off);
            let e = unwrap32(e32.wrapping_sub(peer_isn.wrapping_add(1)), peer.last_off);
            if e >= s {
                sack.push(SackBlock::new(s, e));
            }
        }
        // RFC 2883: a first block at or below the cumulative ACK, or fully
        // contained in the second block, is a DSACK.
        let dsack = match sack.first() {
            Some(b0) => {
                b0.end <= ack
                    || sack
                        .get(1)
                        .is_some_and(|b1| b0.start >= b1.start && b0.end <= b1.end)
            }
            None => false,
        };
        (ack, sack, dsack)
    } else {
        (0, Vec::new(), false)
    };

    // Update unwrap anchors.
    {
        let dstate = match raw.dir {
            Direction::Out => &mut st.out,
            Direction::In => &mut st.inb,
        };
        dstate.last_off = dstate.last_off.max(seq + raw.payload_len as u64);
    }
    {
        let pstate = match raw.dir {
            Direction::Out => &mut st.inb,
            Direction::In => &mut st.out,
        };
        pstate.last_off = pstate.last_off.max(ack);
    }

    let rwnd = if raw.flags.syn {
        raw.wnd16 as u64
    } else {
        (raw.wnd16 as u64) << WSCALE_SHIFT
    };

    Some(TraceRecord {
        t,
        dir: raw.dir,
        seq,
        len: raw.payload_len,
        flags: raw.flags,
        ack,
        rwnd,
        sack: sack.into(),
        dsack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SackList;
    use simnet::time::SimTime;

    fn syn_exchange(key: FlowKey) -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                t: SimTime::from_micros(100),
                dir: Direction::In,
                seq: 0,
                len: 0,
                flags: SegFlags::SYN,
                ack: 0,
                rwnd: 8192,
                sack: SackList::new(),
                dsack: false,
            },
            TraceRecord {
                t: SimTime::from_micros(200),
                dir: Direction::Out,
                seq: 0,
                len: 0,
                flags: SegFlags::SYN_ACK,
                ack: 0,
                rwnd: 14480,
                sack: SackList::new(),
                dsack: false,
            },
            TraceRecord {
                t: SimTime::from_micros(50_300),
                dir: Direction::In,
                seq: 0,
                len: 0,
                flags: SegFlags::ACK,
                ack: 0,
                rwnd: 8192,
                sack: SackList::new(),
                dsack: false,
            },
            TraceRecord::data(SimTime::from_micros(50_400), Direction::In, 0, 300, 0, 8192),
            TraceRecord::data(
                SimTime::from_micros(60_000),
                Direction::Out,
                0,
                1448,
                300,
                65536,
            ),
            TraceRecord::data(
                SimTime::from_micros(60_100),
                Direction::Out,
                1448,
                1448,
                300,
                65536,
            ),
            TraceRecord {
                t: SimTime::from_micros(110_000),
                dir: Direction::In,
                seq: 300,
                len: 0,
                flags: SegFlags::ACK,
                ack: 1448,
                rwnd: 8192,
                sack: [SackBlock::new(2896, 4344)].into(),
                dsack: false,
            },
            {
                let _ = key;
                TraceRecord {
                    t: SimTime::from_micros(120_000),
                    dir: Direction::In,
                    seq: 300,
                    len: 0,
                    flags: SegFlags::ACK,
                    ack: 4344,
                    rwnd: 8192,
                    sack: [SackBlock::new(0, 1448), SackBlock::new(0, 4344)].into(),
                    dsack: true,
                }
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let key = FlowKey::synthetic(7);
        let mut trace = FlowTrace::new(key);
        for r in syn_exchange(key) {
            trace.push(r);
        }
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file).unwrap();
        w.write_flow(&trace).unwrap();
        w.finish().unwrap();

        let flows = PcapReader::read_all(&file[..]).unwrap();
        assert_eq!(flows.len(), 1);
        let back = &flows[0];
        assert_eq!(back.records.len(), trace.records.len());
        for (orig, got) in trace.records.iter().zip(&back.records) {
            assert_eq!(orig.t, got.t, "timestamp");
            assert_eq!(orig.dir, got.dir, "direction");
            assert_eq!(orig.seq, got.seq, "seq");
            assert_eq!(orig.len, got.len, "len");
            assert_eq!(orig.flags, got.flags, "flags");
            if orig.flags.ack {
                assert_eq!(orig.ack, got.ack, "ack");
            }
            assert_eq!(orig.sack, got.sack, "sack");
            assert_eq!(orig.dsack, got.dsack, "dsack");
        }
        // Window scaling quantizes to 128-byte granularity post-SYN.
        assert_eq!(back.records[0].rwnd, 8192);
        assert_eq!(back.records[4].rwnd, 65536);
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(matches!(
            PcapReader::read_all(&b"not a pcap file at all.."[..]),
            Err(PcapError::BadMagic(_))
        ));
        assert!(matches!(
            PcapReader::read_all(&b"xx"[..]),
            Err(PcapError::Malformed(_))
        ));
    }

    #[test]
    fn unwrap32_handles_wraparound() {
        assert_eq!(unwrap32(5, 0), 5);
        // near the 2^32 boundary: a small off32 after a large last_off means
        // we wrapped.
        let near = 0xffff_ff00u64;
        assert_eq!(unwrap32(0x0000_0100, near), 0x1_0000_0100);
        // and a large off32 near a just-wrapped anchor resolves backwards.
        let near2 = 0x1_0000_0010u64;
        assert_eq!(unwrap32(0xffff_fff0, near2), 0xffff_fff0);
    }

    #[test]
    fn ipv4_checksum_known_vector() {
        // Example from RFC 1071 discussions: verify checksum verifies.
        let mut hdr = vec![
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c = ipv4_checksum(&hdr);
        assert_eq!(c, 0xb861);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(ipv4_checksum(&hdr), 0);
    }

    #[test]
    fn multiple_flows_demultiplex() {
        let k1 = FlowKey::synthetic(1);
        let k2 = FlowKey::synthetic(2);
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file).unwrap();
        let rec = |t_us: u64| {
            TraceRecord::data(SimTime::from_micros(t_us), Direction::Out, 0, 100, 0, 65536)
        };
        w.write_record(&k1, &rec(10)).unwrap();
        w.write_record(&k2, &rec(20)).unwrap();
        w.write_record(&k1, &rec(30)).unwrap();
        w.finish().unwrap();
        let flows = PcapReader::read_all(&file[..]).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].records.len(), 2);
        assert_eq!(flows[1].records.len(), 1);
    }
}

//! Classic libpcap 2.4 file I/O with from-scratch Ethernet/IPv4/TCP
//! encode/decode.
//!
//! The writer emits header-only captures (snaplen-truncated, like the
//! production `tcpdump -s96` captures analyzed in the paper): the IPv4
//! `total_length` field carries the true payload size while the capture
//! record stores only link/IP/TCP headers. TCP options encode what the
//! classifier needs: MSS + SACK-permitted + window-scale on SYNs, and
//! SACK/DSACK blocks on ACKs. TCP checksums are written as zero (checksum
//! offload — ubiquitous in real server captures); IPv4 header checksums are
//! valid.
//!
//! Sequence numbers are 32-bit on the wire; the reader unwraps them back to
//! 64-bit stream offsets relative to each direction's ISN.

use std::io::{self, Read, Write};

use crate::flow::{FlowKey, FlowTable, FlowTrace};
use crate::record::{Direction, SackBlock, SackList, SegFlags, TraceRecord, SACK_CAP};
use simnet::time::SimTime;

const MAGIC_LE: u32 = 0xa1b2_c3d4;
const MAGIC_BE: u32 = 0xd4c3_b2a1;
/// Fixed window-scale shift used by the writer (both directions).
pub const WSCALE_SHIFT: u8 = 7;
/// Outbound (server) initial sequence number used by the writer.
pub const ISN_OUT: u32 = 0x1000_0000;
/// Inbound (client) initial sequence number used by the writer.
pub const ISN_IN: u32 = 0x2000_0000;

/// Errors produced by the pcap reader.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a classic pcap file (bad magic).
    BadMagic(u32),
    /// Structurally invalid packet or header.
    Malformed(&'static str),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a classic pcap file (magic {m:#010x})"),
            PcapError::Malformed(what) => write!(f, "malformed pcap: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

// ---------------------------------------------------------------- writing

/// Streams one or more [`FlowTrace`]s into a classic pcap file.
pub struct PcapWriter<W: Write> {
    out: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut out: W) -> io::Result<Self> {
        let mut hdr = Vec::with_capacity(24);
        hdr.extend_from_slice(&MAGIC_LE.to_le_bytes());
        hdr.extend_from_slice(&2u16.to_le_bytes()); // version major
        hdr.extend_from_slice(&4u16.to_le_bytes()); // version minor
        hdr.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        hdr.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        hdr.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        hdr.extend_from_slice(&1u32.to_le_bytes()); // LINKTYPE_ETHERNET
        out.write_all(&hdr)?;
        Ok(PcapWriter { out })
    }

    /// Write every record of `trace` (records must already be time-ordered).
    /// The trace must carry a [`FlowKey`]; synthesize one if needed.
    pub fn write_flow(&mut self, trace: &FlowTrace) -> io::Result<()> {
        let key = trace.key.unwrap_or_else(|| FlowKey::synthetic(0));
        for rec in &trace.records {
            self.write_record(&key, rec)?;
        }
        Ok(())
    }

    /// Write a single record.
    pub fn write_record(&mut self, key: &FlowKey, rec: &TraceRecord) -> io::Result<()> {
        let frame = encode_frame(key, rec);
        let us = rec.t.as_micros();
        let mut pkt = Vec::with_capacity(16 + frame.captured.len());
        pkt.extend_from_slice(&((us / 1_000_000) as u32).to_le_bytes());
        pkt.extend_from_slice(&((us % 1_000_000) as u32).to_le_bytes());
        pkt.extend_from_slice(&(frame.captured.len() as u32).to_le_bytes());
        pkt.extend_from_slice(&frame.orig_len.to_le_bytes());
        pkt.extend_from_slice(&frame.captured);
        self.out.write_all(&pkt)
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

struct Frame {
    captured: Vec<u8>,
    orig_len: u32,
}

fn wire_seq(dir: Direction, offset: u64, syn: bool) -> u32 {
    let isn = match dir {
        Direction::Out => ISN_OUT,
        Direction::In => ISN_IN,
    };
    if syn {
        isn
    } else {
        isn.wrapping_add(1).wrapping_add(offset as u32)
    }
}

fn encode_frame(key: &FlowKey, rec: &TraceRecord) -> Frame {
    // TCP options.
    let mut opts: Vec<u8> = Vec::new();
    if rec.flags.syn {
        // MSS
        opts.extend_from_slice(&[2, 4]);
        opts.extend_from_slice(&1448u16.to_be_bytes());
        // SACK permitted
        opts.extend_from_slice(&[4, 2]);
        // Window scale (3 bytes) + NOP for alignment
        opts.extend_from_slice(&[3, 3, WSCALE_SHIFT, 1]);
    }
    if !rec.sack.is_empty() {
        let n = rec.sack.len().min(4);
        opts.extend_from_slice(&[1, 1]); // 2 NOPs
        opts.push(5); // SACK
        opts.push(2 + 8 * n as u8);
        for b in rec.sack.iter().take(n) {
            // SACK blocks describe the *peer's received* ranges, i.e. ranges
            // in the opposite direction's stream.
            let data_dir = rec.dir.flip();
            opts.extend_from_slice(&wire_seq(data_dir, b.start, false).to_be_bytes());
            opts.extend_from_slice(&wire_seq(data_dir, b.end, false).to_be_bytes());
        }
    }
    while !opts.len().is_multiple_of(4) {
        opts.push(1); // NOP pad
    }
    let tcp_hdr_len = 20 + opts.len();

    // Scaled window. SYN windows are never scaled on the wire.
    let wnd16: u16 = if rec.flags.syn {
        rec.rwnd.min(65_535) as u16
    } else {
        (rec.rwnd >> WSCALE_SHIFT).min(65_535) as u16
    };

    let (src_ip, dst_ip, src_port, dst_port) = match rec.dir {
        Direction::Out => (
            key.server_ip,
            key.client_ip,
            key.server_port,
            key.client_port,
        ),
        Direction::In => (
            key.client_ip,
            key.server_ip,
            key.client_port,
            key.server_port,
        ),
    };

    let seq32 = wire_seq(rec.dir, rec.seq, rec.flags.syn);
    let ack32 = if rec.flags.ack {
        wire_seq(rec.dir.flip(), rec.ack, false)
    } else {
        0
    };

    let mut tcp = Vec::with_capacity(tcp_hdr_len);
    tcp.extend_from_slice(&src_port.to_be_bytes());
    tcp.extend_from_slice(&dst_port.to_be_bytes());
    tcp.extend_from_slice(&seq32.to_be_bytes());
    tcp.extend_from_slice(&ack32.to_be_bytes());
    let offset_flags: u16 = ((tcp_hdr_len as u16 / 4) << 12)
        | (u16::from(rec.flags.ack) << 4)
        | (u16::from(rec.flags.rst) << 2)
        | (u16::from(rec.flags.syn) << 1)
        | u16::from(rec.flags.fin);
    tcp.extend_from_slice(&offset_flags.to_be_bytes());
    tcp.extend_from_slice(&wnd16.to_be_bytes());
    tcp.extend_from_slice(&0u16.to_be_bytes()); // checksum: offloaded
    tcp.extend_from_slice(&0u16.to_be_bytes()); // urgent
    tcp.extend_from_slice(&opts);

    let ip_total_len = 20 + tcp.len() + rec.len as usize;
    let mut ip = Vec::with_capacity(20);
    ip.push(0x45);
    ip.push(0);
    ip.extend_from_slice(&(ip_total_len as u16).to_be_bytes());
    ip.extend_from_slice(&0u16.to_be_bytes()); // id
    ip.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
    ip.push(64); // ttl
    ip.push(6); // TCP
    ip.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    ip.extend_from_slice(&src_ip);
    ip.extend_from_slice(&dst_ip);
    let csum = ipv4_checksum(&ip);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());

    let mut eth = Vec::with_capacity(14 + ip.len() + tcp.len());
    eth.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // dst MAC
    eth.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // src MAC
    eth.extend_from_slice(&0x0800u16.to_be_bytes());
    eth.extend_from_slice(&ip);
    eth.extend_from_slice(&tcp);

    Frame {
        orig_len: (eth.len() + rec.len as usize) as u32,
        captured: eth,
    }
}

fn ipv4_checksum(hdr: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for chunk in hdr.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

// ---------------------------------------------------------------- reading

/// Counters accumulated while reading a capture.
///
/// A live capture is messy: non-IPv4/TCP frames share the wire, and a
/// capture cut mid-write (SIGKILLed tcpdump, rotated file) ends in a
/// partial record. Neither aborts the read — both are counted here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcapStats {
    /// IPv4/TCP packets successfully decoded and yielded.
    pub packets: u64,
    /// Frames skipped because they were not decodable IPv4/TCP (ARP, UDP,
    /// IPv6, runt frames, bad header offsets).
    pub packets_skipped: u64,
    /// Trailing records cut short by the end of the capture (at most one
    /// for a file; a FIFO producer crashing mid-record also lands here).
    pub records_truncated: u64,
}

/// One decoded packet from the capture, before ISN-relative sequence
/// translation (feed it to a per-flow [`SeqTracker`] for that).
#[derive(Debug, Clone, Copy)]
pub struct PcapPacket {
    /// Capture timestamp.
    pub t: SimTime,
    /// The flow 4-tuple, oriented (server = destination of a bare SYN,
    /// else the lower port).
    pub key: FlowKey,
    /// Wire-level TCP fields.
    pub raw: RawRecord,
}

/// Frames larger than this are not real: the record header bytes were
/// garbage (e.g. a capture resumed mid-stream), so the stream stops rather
/// than allocate gigabytes chasing a bogus length.
const MAX_CAPLEN: usize = 1 << 20;

/// Default segment size for the buffered zero-copy reader: large enough to
/// amortize `read` syscalls over thousands of snaplen-truncated records,
/// small enough to stay cache- and latency-friendly.
const SEGMENT_LEN: usize = 256 * 1024;

/// A borrowed view of one decodable TCP packet: header fields parsed in
/// place from the reader's segment buffer, frame bytes borrowed rather than
/// copied into a per-packet allocation. Valid until the next reader call.
#[derive(Debug, Clone, Copy)]
pub struct PcapView<'a> {
    /// Capture timestamp.
    pub t: SimTime,
    /// The flow 4-tuple, oriented as in [`PcapPacket::key`].
    pub key: FlowKey,
    /// Wire-level TCP fields.
    pub raw: RawRecord,
    /// The captured frame bytes (link + IP + TCP headers), borrowed from
    /// the segment buffer — or from the reader's owned spill buffer when
    /// the record straddled a segment boundary.
    pub frame: &'a [u8],
}

impl PcapView<'_> {
    /// Copy the decoded fields out into an owning [`PcapPacket`].
    pub fn to_packet(&self) -> PcapPacket {
        PcapPacket {
            t: self.t,
            key: self.key,
            raw: self.raw,
        }
    }
}

/// A reusable batch of decoded packets filled by
/// [`PcapStream::fill_batch`]. Alongside each packet it records the
/// reader's cumulative skipped-frame count at the moment that packet was
/// decoded, so a consumer that processes the batch later can still
/// attribute skips to reporting intervals exactly as a one-packet-at-a-time
/// reader would.
#[derive(Debug, Default)]
pub struct PacketBatch {
    pkts: Vec<PcapPacket>,
    skipped: Vec<u64>,
}

impl PacketBatch {
    /// An empty batch (buffers grow to the fill size once, then recycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.pkts.clear();
        self.skipped.clear();
    }

    /// Decoded packets in capture order.
    pub fn pkts(&self) -> &[PcapPacket] {
        &self.pkts
    }

    /// Number of packets currently held.
    pub fn len(&self) -> usize {
        self.pkts.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// The reader's cumulative [`PcapStats::packets_skipped`] as of the
    /// moment packet `i` was decoded (i.e. including any undecodable
    /// frames that immediately preceded it).
    pub fn skipped_before(&self, i: usize) -> u64 {
        self.skipped[i]
    }
}

/// An incremental classic-pcap reader: yields packets from any [`Read`]
/// (file, FIFO, stdin) without buffering the whole capture.
///
/// Reading is *segmented*: the reader fills a large reusable segment buffer
/// with one `read` call and parses record headers and frames in place,
/// yielding borrowed [`PcapView`]s ([`PcapStream::next_view`]) or copied
/// [`PcapPacket`]s ([`PcapStream::next_packet`],
/// [`PcapStream::fill_batch`]). A record that straddles a segment boundary
/// falls back to the owning path: its bytes are spilled into a reusable
/// owned buffer and completed with a blocking read. Because the refill is a
/// single `read` (not read-to-full), a FIFO producer's partial writes are
/// consumed as they arrive — batching never trades away liveness.
///
/// Malformed trailing data degrades gracefully: a record cut short by EOF
/// ends the stream and increments [`PcapStats::records_truncated`];
/// non-IPv4/TCP frames are skipped and counted in
/// [`PcapStats::packets_skipped`]. Only a missing/garbage *global header*
/// is a hard error.
pub struct PcapStream<R: Read> {
    input: R,
    swapped: bool,
    /// Reusable segment buffer (the zero-copy fast path).
    seg: Vec<u8>,
    seg_pos: usize,
    seg_len: usize,
    /// Owned spill buffer for records straddling a segment boundary.
    frame: Vec<u8>,
    stats: PcapStats,
    done: bool,
}

impl<R: Read> PcapStream<R> {
    /// Read and validate the 24-byte global header.
    pub fn new(input: R) -> Result<Self, PcapError> {
        Self::with_segment_len(input, SEGMENT_LEN)
    }

    /// [`PcapStream::new`] with an explicit segment size (≥ 1). Small
    /// segments force boundary straddles — useful for tests and for
    /// latency-sensitive FIFO readers.
    pub fn with_segment_len(mut input: R, segment_len: usize) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        if read_fully(&mut input, &mut hdr)? < 24 {
            return Err(PcapError::Malformed("file shorter than global header"));
        }
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_LE => false,
            MAGIC_BE => true,
            other => return Err(PcapError::BadMagic(other)),
        };
        Ok(PcapStream {
            input,
            swapped,
            seg: vec![0; segment_len.max(1)],
            seg_pos: 0,
            seg_len: 0,
            frame: Vec::new(),
            stats: PcapStats::default(),
            done: false,
        })
    }

    fn rd32(&self, b: &[u8]) -> u32 {
        let a = [b[0], b[1], b[2], b[3]];
        if self.swapped {
            u32::from_be_bytes(a)
        } else {
            u32::from_le_bytes(a)
        }
    }

    fn avail(&self) -> usize {
        self.seg_len - self.seg_pos
    }

    /// One `read` into the (empty) segment buffer; returns bytes obtained
    /// (0 = end of input). Deliberately not read-to-full: a FIFO's partial
    /// write must be parseable immediately.
    fn refill(&mut self) -> Result<usize, PcapError> {
        self.seg_pos = 0;
        self.seg_len = 0;
        loop {
            match self.input.read(&mut self.seg) {
                Ok(n) => {
                    self.seg_len = n;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The next decodable TCP packet as a borrowed in-place view, or
    /// `None` at end of stream.
    pub fn next_view(&mut self) -> Result<Option<PcapView<'_>>, PcapError> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.avail() == 0 && self.refill()? == 0 {
                self.done = true; // clean EOF at a record boundary
                return Ok(None);
            }
            // Record header: in place when fully resident, else completed
            // from the input (a header split across segments).
            let mut rh = [0u8; 16];
            if self.avail() >= 16 {
                rh.copy_from_slice(&self.seg[self.seg_pos..self.seg_pos + 16]);
                self.seg_pos += 16;
            } else {
                let have = self.avail();
                rh[..have].copy_from_slice(&self.seg[self.seg_pos..self.seg_len]);
                self.seg_pos = self.seg_len;
                let got = read_fully(&mut self.input, &mut rh[have..])?;
                if have + got < 16 {
                    if have + got > 0 {
                        self.stats.records_truncated += 1;
                    }
                    self.done = true;
                    return Ok(None);
                }
            }
            let ts_sec = self.rd32(&rh[0..]) as u64;
            let ts_usec = self.rd32(&rh[4..]) as u64;
            let incl = self.rd32(&rh[8..]) as usize;
            if incl > MAX_CAPLEN {
                self.stats.records_truncated += 1;
                self.done = true;
                return Ok(None);
            }
            // Frame bytes: borrowed straight from the segment, or — when
            // the record straddles the boundary — spilled into the owned
            // buffer and completed with a blocking read.
            let owned;
            let (start, end);
            if self.avail() >= incl {
                start = self.seg_pos;
                end = start + incl;
                self.seg_pos = end;
                owned = false;
            } else {
                let have = self.avail();
                self.frame.resize(incl, 0);
                self.frame[..have].copy_from_slice(&self.seg[self.seg_pos..self.seg_len]);
                self.seg_pos = self.seg_len;
                let got = read_fully(&mut self.input, &mut self.frame[have..])?;
                if have + got < incl {
                    self.stats.records_truncated += 1;
                    self.done = true;
                    return Ok(None);
                }
                owned = true;
                start = 0;
                end = incl;
            }
            let t = SimTime::from_micros(ts_sec * 1_000_000 + ts_usec);
            let parsed = parse_frame(if owned {
                &self.frame[start..end]
            } else {
                &self.seg[start..end]
            });
            match parsed {
                Some((key, raw)) => {
                    self.stats.packets += 1;
                    let frame: &[u8] = if owned {
                        &self.frame[start..end]
                    } else {
                        &self.seg[start..end]
                    };
                    return Ok(Some(PcapView { t, key, raw, frame }));
                }
                None => self.stats.packets_skipped += 1,
            }
        }
    }

    /// The next decodable TCP packet, or `None` at end of stream.
    pub fn next_packet(&mut self) -> Result<Option<PcapPacket>, PcapError> {
        Ok(self.next_view()?.map(|v| v.to_packet()))
    }

    /// Refill `out` with up to `max` decoded packets (clearing it first),
    /// recording the cumulative skip count alongside each. Returns the
    /// number of packets obtained; 0 means end of stream.
    pub fn fill_batch(&mut self, out: &mut PacketBatch, max: usize) -> Result<usize, PcapError> {
        out.clear();
        while out.pkts.len() < max {
            match self.next_view()? {
                Some(v) => {
                    let pkt = v.to_packet();
                    out.pkts.push(pkt);
                    out.skipped.push(self.stats.packets_skipped);
                }
                None => break,
            }
        }
        Ok(out.pkts.len())
    }

    /// Counters so far (final once `next_packet` returned `None`).
    pub fn stats(&self) -> PcapStats {
        self.stats
    }
}

/// Read until `buf` is full or EOF; returns bytes read (retries on
/// interruption, propagates other I/O errors).
fn read_fully<R: Read>(input: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads a classic pcap capture back into per-flow [`FlowTrace`]s.
///
/// The server endpoint is identified as the *destination of the first bare
/// SYN* seen for each 4-tuple (falling back to the lower port number if the
/// handshake was not captured).
pub struct PcapReader;

#[derive(Debug, Default)]
struct DirState {
    isn: Option<u32>,
    last_off: u64,
}

#[derive(Debug, Default)]
struct FlowState {
    out: DirState, // server → client
    inb: DirState, // client → server
}

/// Per-flow 32→64-bit sequence translation state: learns each direction's
/// ISN (from the handshake, or synthesized from the first segment) and
/// unwraps wire sequence numbers into monotonic 64-bit stream offsets.
///
/// On 4-tuple reuse (a fresh connection on a key whose previous flow
/// closed) call [`SeqTracker::reset`] before translating the new SYN —
/// stale unwrap anchors from the dead flow would otherwise corrupt the new
/// flow's offsets.
#[derive(Debug, Default)]
pub struct SeqTracker {
    st: FlowState,
}

impl SeqTracker {
    /// Fresh state (no ISNs learned).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget everything — the next packet starts a new flow.
    pub fn reset(&mut self) {
        self.st = FlowState::default();
    }

    /// Translate one wire-level packet into a [`TraceRecord`] with
    /// ISN-relative 64-bit offsets.
    pub fn translate(&mut self, t: SimTime, raw: &RawRecord) -> Option<TraceRecord> {
        finish_record(&mut self.st, t, raw)
    }
}

impl PcapReader {
    /// Parse an entire capture; non-IPv4/TCP packets are skipped.
    pub fn read_all<R: Read>(input: R) -> Result<Vec<FlowTrace>, PcapError> {
        Self::read_all_stats(input).map(|(flows, _)| flows)
    }

    /// [`PcapReader::read_all`], also returning the reader's counters
    /// (skipped frames, truncated trailing records).
    pub fn read_all_stats<R: Read>(input: R) -> Result<(Vec<FlowTrace>, PcapStats), PcapError> {
        let mut stream = PcapStream::new(input)?;
        let mut table = FlowTable::new();
        let mut trackers: std::collections::HashMap<FlowKey, SeqTracker> = Default::default();
        while let Some(pkt) = stream.next_packet()? {
            let tracker = trackers.entry(pkt.key).or_default();
            if pkt.raw.flags.syn && !pkt.raw.flags.ack && table.is_closed(&pkt.key) {
                // Key reuse: the table rotates to a fresh flow, so the
                // sequence state must forget the dead flow's anchors too.
                tracker.reset();
            }
            if let Some(rec) = tracker.translate(pkt.t, &pkt.raw) {
                table.push(pkt.key, rec);
            }
        }
        Ok((table.into_traces(), stream.stats()))
    }
}

/// A parsed frame before ISN-relative sequence translation: raw 32-bit wire
/// sequence space, SACK blocks still in the peer's wire numbering.
#[derive(Debug, Clone, Copy)]
pub struct RawRecord {
    /// Direction relative to the server.
    pub dir: Direction,
    /// Wire sequence number.
    pub seq32: u32,
    /// Wire acknowledgment number (0 when ACK is not set).
    pub ack32: u32,
    /// Header flags.
    pub flags: SegFlags,
    /// Unscaled 16-bit window field.
    pub wnd16: u16,
    /// Payload bytes (from the IP total length, so snaplen-truncated
    /// captures still report the true size).
    pub payload_len: u32,
    sack_len: u8,
    sack32: [(u32, u32); SACK_CAP],
}

impl RawRecord {
    /// A record with no SACK blocks.
    pub fn new(
        dir: Direction,
        seq32: u32,
        ack32: u32,
        flags: SegFlags,
        wnd16: u16,
        payload_len: u32,
    ) -> Self {
        RawRecord {
            dir,
            seq32,
            ack32,
            flags,
            wnd16,
            payload_len,
            sack_len: 0,
            sack32: [(0, 0); SACK_CAP],
        }
    }

    /// Append a wire-numbered SACK block (ignored beyond [`SACK_CAP`], the
    /// wire maximum).
    pub fn push_sack32(&mut self, start32: u32, end32: u32) {
        if (self.sack_len as usize) < SACK_CAP {
            self.sack32[self.sack_len as usize] = (start32, end32);
            self.sack_len += 1;
        }
    }

    /// The wire-numbered SACK blocks.
    pub fn sack32(&self) -> &[(u32, u32)] {
        &self.sack32[..self.sack_len as usize]
    }
}

fn parse_frame(frame: &[u8]) -> Option<(FlowKey, RawRecord)> {
    if frame.len() < 14 + 20 + 20 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None;
    }
    let ip = &frame[14..];
    if ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = ((ip[0] & 0xf) as usize) * 4;
    if ip[9] != 6 || ip.len() < ihl + 20 {
        return None;
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    let src_ip = [ip[12], ip[13], ip[14], ip[15]];
    let dst_ip = [ip[16], ip[17], ip[18], ip[19]];
    let tcp = &ip[ihl..];
    let src_port = u16::from_be_bytes([tcp[0], tcp[1]]);
    let dst_port = u16::from_be_bytes([tcp[2], tcp[3]]);
    let seq32 = u32::from_be_bytes([tcp[4], tcp[5], tcp[6], tcp[7]]);
    let ack32 = u32::from_be_bytes([tcp[8], tcp[9], tcp[10], tcp[11]]);
    let data_off = ((tcp[12] >> 4) as usize) * 4;
    if data_off < 20 || tcp.len() < data_off {
        return None;
    }
    let fl = tcp[13];
    let flags = SegFlags {
        fin: fl & 0x01 != 0,
        syn: fl & 0x02 != 0,
        rst: fl & 0x04 != 0,
        ack: fl & 0x10 != 0,
    };
    let wnd16 = u16::from_be_bytes([tcp[14], tcp[15]]);
    let payload_len = total_len.saturating_sub(ihl + data_off) as u32;

    // Orient: the destination of a bare SYN is the server; otherwise the
    // endpoint with the lower port is assumed to be the server.
    let (server_ip, server_port, client_ip, client_port, dir) = if flags.syn && !flags.ack {
        (dst_ip, dst_port, src_ip, src_port, Direction::In)
    } else if (flags.syn && flags.ack) || src_port <= dst_port {
        // A SYN-ACK's source is the server; lacking a handshake, assume
        // the lower port is the server's.
        (src_ip, src_port, dst_ip, dst_port, Direction::Out)
    } else {
        (dst_ip, dst_port, src_ip, src_port, Direction::In)
    };

    let mut raw = RawRecord::new(dir, seq32, ack32, flags, wnd16, payload_len);

    // Parse options for SACK blocks.
    let opts = &tcp[20..data_off.min(tcp.len())];
    let mut i = 0;
    while i < opts.len() {
        match opts[i] {
            0 => break,
            1 => i += 1,
            5 => {
                if i + 1 >= opts.len() {
                    break;
                }
                let l = opts[i + 1] as usize;
                if l < 2 || i + l > opts.len() {
                    break;
                }
                let mut j = i + 2;
                while j + 8 <= i + l {
                    let s = u32::from_be_bytes([opts[j], opts[j + 1], opts[j + 2], opts[j + 3]]);
                    let e =
                        u32::from_be_bytes([opts[j + 4], opts[j + 5], opts[j + 6], opts[j + 7]]);
                    raw.push_sack32(s, e);
                    j += 8;
                }
                i += l;
            }
            _ => {
                if i + 1 >= opts.len() {
                    break;
                }
                let l = opts[i + 1] as usize;
                if l < 2 {
                    break;
                }
                i += l;
            }
        }
    }

    Some((
        FlowKey {
            server_ip,
            server_port,
            client_ip,
            client_port,
        },
        raw,
    ))
}

/// Unwrap a 32-bit offset to the 64-bit value closest to `near`.
fn unwrap32(off32: u32, near: u64) -> u64 {
    let base = near & !0xffff_ffffu64;
    let candidates = [
        base.wrapping_add(off32 as u64),
        base.wrapping_add(off32 as u64).wrapping_add(1 << 32),
        base.wrapping_add(off32 as u64).wrapping_sub(1 << 32),
    ];
    candidates
        .into_iter()
        .min_by_key(|c| c.abs_diff(near))
        .expect("non-empty candidates")
}

fn finish_record(st: &mut FlowState, t: SimTime, raw: &RawRecord) -> Option<TraceRecord> {
    // Learn ISNs from the handshake; synthesize if the handshake is missing.
    {
        let dstate = match raw.dir {
            Direction::Out => &mut st.out,
            Direction::In => &mut st.inb,
        };
        if raw.flags.syn {
            dstate.isn = Some(raw.seq32);
        } else if dstate.isn.is_none() {
            // No handshake captured: treat the first seen seq as offset 0.
            dstate.isn = Some(raw.seq32.wrapping_sub(1));
        }
    }

    let (own_isn, own_last) = match raw.dir {
        Direction::Out => (st.out.isn?, st.out.last_off),
        Direction::In => (st.inb.isn?, st.inb.last_off),
    };
    let seq = if raw.flags.syn {
        0
    } else {
        unwrap32(raw.seq32.wrapping_sub(own_isn.wrapping_add(1)), own_last)
    };

    // Peer-direction translation for ack and SACK blocks.
    let peer = match raw.dir {
        Direction::Out => &st.inb,
        Direction::In => &st.out,
    };
    let (ack, sack, dsack) = if let Some(peer_isn) = peer.isn {
        let ack = if raw.flags.ack {
            unwrap32(
                raw.ack32.wrapping_sub(peer_isn.wrapping_add(1)),
                peer.last_off,
            )
        } else {
            0
        };
        let mut sack = SackList::new();
        for &(s32, e32) in raw.sack32() {
            let s = unwrap32(s32.wrapping_sub(peer_isn.wrapping_add(1)), peer.last_off);
            let e = unwrap32(e32.wrapping_sub(peer_isn.wrapping_add(1)), peer.last_off);
            if e >= s {
                sack.push(SackBlock::new(s, e));
            }
        }
        // RFC 2883: a first block at or below the cumulative ACK, or fully
        // contained in the second block, is a DSACK.
        let dsack = match sack.first() {
            Some(b0) => {
                b0.end <= ack
                    || sack
                        .get(1)
                        .is_some_and(|b1| b0.start >= b1.start && b0.end <= b1.end)
            }
            None => false,
        };
        (ack, sack, dsack)
    } else {
        (0, SackList::new(), false)
    };

    // Update unwrap anchors.
    {
        let dstate = match raw.dir {
            Direction::Out => &mut st.out,
            Direction::In => &mut st.inb,
        };
        dstate.last_off = dstate.last_off.max(seq + raw.payload_len as u64);
    }
    {
        let pstate = match raw.dir {
            Direction::Out => &mut st.inb,
            Direction::In => &mut st.out,
        };
        pstate.last_off = pstate.last_off.max(ack);
    }

    let rwnd = if raw.flags.syn {
        raw.wnd16 as u64
    } else {
        (raw.wnd16 as u64) << WSCALE_SHIFT
    };

    Some(TraceRecord {
        t,
        dir: raw.dir,
        seq,
        len: raw.payload_len,
        flags: raw.flags,
        ack,
        rwnd,
        sack,
        dsack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SackList;
    use simnet::time::SimTime;

    fn syn_exchange(key: FlowKey) -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                t: SimTime::from_micros(100),
                dir: Direction::In,
                seq: 0,
                len: 0,
                flags: SegFlags::SYN,
                ack: 0,
                rwnd: 8192,
                sack: SackList::new(),
                dsack: false,
            },
            TraceRecord {
                t: SimTime::from_micros(200),
                dir: Direction::Out,
                seq: 0,
                len: 0,
                flags: SegFlags::SYN_ACK,
                ack: 0,
                rwnd: 14480,
                sack: SackList::new(),
                dsack: false,
            },
            TraceRecord {
                t: SimTime::from_micros(50_300),
                dir: Direction::In,
                seq: 0,
                len: 0,
                flags: SegFlags::ACK,
                ack: 0,
                rwnd: 8192,
                sack: SackList::new(),
                dsack: false,
            },
            TraceRecord::data(SimTime::from_micros(50_400), Direction::In, 0, 300, 0, 8192),
            TraceRecord::data(
                SimTime::from_micros(60_000),
                Direction::Out,
                0,
                1448,
                300,
                65536,
            ),
            TraceRecord::data(
                SimTime::from_micros(60_100),
                Direction::Out,
                1448,
                1448,
                300,
                65536,
            ),
            TraceRecord {
                t: SimTime::from_micros(110_000),
                dir: Direction::In,
                seq: 300,
                len: 0,
                flags: SegFlags::ACK,
                ack: 1448,
                rwnd: 8192,
                sack: [SackBlock::new(2896, 4344)].into(),
                dsack: false,
            },
            {
                let _ = key;
                TraceRecord {
                    t: SimTime::from_micros(120_000),
                    dir: Direction::In,
                    seq: 300,
                    len: 0,
                    flags: SegFlags::ACK,
                    ack: 4344,
                    rwnd: 8192,
                    sack: [SackBlock::new(0, 1448), SackBlock::new(0, 4344)].into(),
                    dsack: true,
                }
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let key = FlowKey::synthetic(7);
        let mut trace = FlowTrace::new(key);
        for r in syn_exchange(key) {
            trace.push(r);
        }
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file).unwrap();
        w.write_flow(&trace).unwrap();
        w.finish().unwrap();

        let flows = PcapReader::read_all(&file[..]).unwrap();
        assert_eq!(flows.len(), 1);
        let back = &flows[0];
        assert_eq!(back.records.len(), trace.records.len());
        for (orig, got) in trace.records.iter().zip(&back.records) {
            assert_eq!(orig.t, got.t, "timestamp");
            assert_eq!(orig.dir, got.dir, "direction");
            assert_eq!(orig.seq, got.seq, "seq");
            assert_eq!(orig.len, got.len, "len");
            assert_eq!(orig.flags, got.flags, "flags");
            if orig.flags.ack {
                assert_eq!(orig.ack, got.ack, "ack");
            }
            assert_eq!(orig.sack, got.sack, "sack");
            assert_eq!(orig.dsack, got.dsack, "dsack");
        }
        // Window scaling quantizes to 128-byte granularity post-SYN.
        assert_eq!(back.records[0].rwnd, 8192);
        assert_eq!(back.records[4].rwnd, 65536);
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(matches!(
            PcapReader::read_all(&b"not a pcap file at all.."[..]),
            Err(PcapError::BadMagic(_))
        ));
        assert!(matches!(
            PcapReader::read_all(&b"xx"[..]),
            Err(PcapError::Malformed(_))
        ));
    }

    #[test]
    fn unwrap32_handles_wraparound() {
        assert_eq!(unwrap32(5, 0), 5);
        // near the 2^32 boundary: a small off32 after a large last_off means
        // we wrapped.
        let near = 0xffff_ff00u64;
        assert_eq!(unwrap32(0x0000_0100, near), 0x1_0000_0100);
        // and a large off32 near a just-wrapped anchor resolves backwards.
        let near2 = 0x1_0000_0010u64;
        assert_eq!(unwrap32(0xffff_fff0, near2), 0xffff_fff0);
    }

    #[test]
    fn ipv4_checksum_known_vector() {
        // Example from RFC 1071 discussions: verify checksum verifies.
        let mut hdr = vec![
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c = ipv4_checksum(&hdr);
        assert_eq!(c, 0xb861);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(ipv4_checksum(&hdr), 0);
    }

    /// Hand-build a minimal Ethernet/IPv4/TCP frame with arbitrary wire
    /// fields (the writer pins its ISNs, so wraparound and foreign-protocol
    /// tests need raw bytes).
    fn raw_tcp_frame(
        src: ([u8; 4], u16),
        dst: ([u8; 4], u16),
        seq32: u32,
        ack32: u32,
        flags: u8,
        payload_len: u16,
    ) -> Vec<u8> {
        let mut tcp = Vec::new();
        tcp.extend_from_slice(&src.1.to_be_bytes());
        tcp.extend_from_slice(&dst.1.to_be_bytes());
        tcp.extend_from_slice(&seq32.to_be_bytes());
        tcp.extend_from_slice(&ack32.to_be_bytes());
        tcp.extend_from_slice(&(5u16 << 12).to_be_bytes()); // data offset 20, merged below
        tcp[12] = 5 << 4;
        tcp[13] = flags;
        tcp.extend_from_slice(&512u16.to_be_bytes()); // window
        tcp.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        let ip_total = 20 + 20 + payload_len as usize;
        let mut ip = vec![0x45, 0];
        ip.extend_from_slice(&(ip_total as u16).to_be_bytes());
        ip.extend_from_slice(&[0, 0, 0x40, 0, 64, 6, 0, 0]);
        ip.extend_from_slice(&src.0);
        ip.extend_from_slice(&dst.0);
        let c = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&c.to_be_bytes());
        let mut eth = vec![2, 0, 0, 0, 0, 1, 2, 0, 0, 0, 0, 2];
        eth.extend_from_slice(&0x0800u16.to_be_bytes());
        eth.extend_from_slice(&ip);
        eth.extend_from_slice(&tcp);
        eth
    }

    fn append_record(file: &mut Vec<u8>, t_us: u64, frame: &[u8]) {
        file.extend_from_slice(&((t_us / 1_000_000) as u32).to_le_bytes());
        file.extend_from_slice(&((t_us % 1_000_000) as u32).to_le_bytes());
        file.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        file.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        file.extend_from_slice(frame);
    }

    #[test]
    fn truncated_trailing_record_degrades_gracefully() {
        let key = FlowKey::synthetic(5);
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file).unwrap();
        w.write_record(
            &key,
            &TraceRecord::data(SimTime::from_micros(10), Direction::Out, 0, 100, 0, 65536),
        )
        .unwrap();
        w.write_record(
            &key,
            &TraceRecord::data(SimTime::from_micros(20), Direction::Out, 100, 100, 0, 65536),
        )
        .unwrap();
        w.finish().unwrap();

        // Cut mid-frame: keep the full first record plus a partial second.
        let cut = file.len() - 7;
        let (flows, stats) = PcapReader::read_all_stats(&file[..cut]).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].records.len(), 1);
        assert_eq!(stats.packets, 1);
        assert_eq!(stats.records_truncated, 1);

        // Cut mid-record-header.
        let (flows2, stats2) = PcapReader::read_all_stats(&file[..24 + 8]).unwrap();
        assert!(flows2.is_empty());
        assert_eq!(stats2.records_truncated, 1);

        // An implausible record length (garbage header) also stops cleanly.
        let mut bogus = file[..24].to_vec();
        bogus.extend_from_slice(&0u64.to_le_bytes()); // ts
        bogus.extend_from_slice(&(u32::MAX).to_le_bytes()); // incl_len: 4 GiB
        bogus.extend_from_slice(&64u32.to_le_bytes());
        bogus.extend_from_slice(&[0u8; 64]);
        let (flows3, stats3) = PcapReader::read_all_stats(&bogus[..]).unwrap();
        assert!(flows3.is_empty());
        assert_eq!(stats3.records_truncated, 1);
    }

    #[test]
    fn non_tcp_frames_are_skipped_and_counted() {
        let key = FlowKey::synthetic(6);
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file).unwrap();
        w.write_record(
            &key,
            &TraceRecord::data(SimTime::from_micros(10), Direction::Out, 0, 100, 0, 65536),
        )
        .unwrap();
        w.finish().unwrap();

        // A UDP datagram (IPv4 proto 17).
        let mut udp = raw_tcp_frame(([1, 1, 1, 1], 53), ([2, 2, 2, 2], 53), 0, 0, 0, 0);
        udp[14 + 9] = 17; // protocol = UDP
        let c = ipv4_checksum(&udp[14..14 + 20]);
        udp[14 + 20 - 10..14 + 20 - 8].copy_from_slice(&c.to_be_bytes());
        append_record(&mut file, 20, &udp);
        // An ARP frame (wrong ethertype).
        let mut arp = vec![0xff; 14 + 28];
        arp[12] = 0x08;
        arp[13] = 0x06;
        append_record(&mut file, 30, &arp);
        // A runt frame.
        append_record(&mut file, 40, &[0u8; 10]);

        let (flows, stats) = PcapReader::read_all_stats(&file[..]).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(stats.packets, 1);
        assert_eq!(stats.packets_skipped, 3);
        assert_eq!(stats.records_truncated, 0);
    }

    #[test]
    fn key_reuse_after_close_resets_sequence_state() {
        // Generation 1: SYN, data to offset 200k, FIN. Generation 2 reuses
        // the 4-tuple with a different ISN; its offsets must restart at 0,
        // not inherit generation 1's unwrap anchors.
        let srv = ([10, 0, 0, 1], 80u16);
        let cli = ([9, 9, 9, 9], 4242u16);
        let mut file = Vec::new();
        PcapWriter::new(&mut file).unwrap().finish().unwrap();
        let isn1 = 1_000u32;
        append_record(
            &mut file,
            10,
            &raw_tcp_frame(cli, srv, isn1, 0, 0x02, 0), // SYN
        );
        append_record(
            &mut file,
            20,
            &raw_tcp_frame(cli, srv, isn1 + 1, 0, 0x10, 300),
        );
        append_record(
            &mut file,
            30,
            &raw_tcp_frame(cli, srv, isn1 + 1 + 300, 0, 0x11, 0), // FIN|ACK
        );
        // Generation 2, new ISN far away.
        let isn2 = 0x9000_0000u32;
        append_record(
            &mut file,
            1_000_040,
            &raw_tcp_frame(cli, srv, isn2, 0, 0x02, 0), // SYN
        );
        append_record(
            &mut file,
            1_000_050,
            &raw_tcp_frame(cli, srv, isn2 + 1, 0, 0x10, 500),
        );

        let (flows, _) = PcapReader::read_all_stats(&file[..]).unwrap();
        assert_eq!(flows.len(), 2, "bare SYN on closed key starts a new flow");
        assert_eq!(flows[0].records.len(), 3);
        assert_eq!(flows[1].records.len(), 2);
        // Both generations' data starts at stream offset 0.
        assert_eq!(flows[0].records[1].seq, 0);
        assert_eq!(flows[0].records[1].len, 300);
        assert_eq!(flows[1].records[1].seq, 0);
        assert_eq!(flows[1].records[1].len, 500);
    }

    #[test]
    fn wire_seq_wraparound_keeps_offsets_monotonic() {
        // A flow whose client ISN sits just below 2^32: data crosses the
        // 0xffff_ffff boundary and the reader's unwrapping must keep the
        // 64-bit offsets monotonic through the wrap.
        let srv = ([10, 0, 0, 1], 80u16);
        let cli = ([9, 9, 9, 9], 5000u16);
        let isn: u32 = 0xffff_fc00;
        let mut file = Vec::new();
        PcapWriter::new(&mut file).unwrap().finish().unwrap();
        append_record(&mut file, 0, &raw_tcp_frame(cli, srv, isn, 0, 0x02, 0));
        let seg = 300u32;
        for i in 0..10u32 {
            let seq32 = isn.wrapping_add(1).wrapping_add(i * seg);
            append_record(
                &mut file,
                100 + i as u64 * 100,
                &raw_tcp_frame(cli, srv, seq32, 0, 0x10, seg as u16),
            );
        }
        let (flows, _) = PcapReader::read_all_stats(&file[..]).unwrap();
        assert_eq!(flows.len(), 1);
        let recs = &flows[0].records;
        assert_eq!(recs.len(), 11);
        for (i, r) in recs[1..].iter().enumerate() {
            assert_eq!(r.seq, i as u64 * seg as u64, "offset after wrap");
        }
        // The wire seq really did wrap within this window.
        assert!(
            (isn as u64 + 1 + 10 * seg as u64) > (1u64 << 32),
            "test must actually cross the 32-bit boundary"
        );
    }

    /// Seeded property test for the segmented reader: a capture with
    /// randomized record sizes (SACK-bearing ACKs, undecodable frames, and
    /// an optional truncated tail) must decode to the identical packet
    /// sequence and stats at every segment size — including degenerate
    /// ones where every record straddles a boundary and takes the owning
    /// fallback path.
    #[test]
    fn segment_boundaries_never_change_the_decoded_stream() {
        let mut rng: u64 = 0x2015_cafe;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for trial in 0..8u32 {
            // Build a messy capture.
            let mut file = Vec::new();
            PcapWriter::new(&mut file).unwrap().finish().unwrap();
            let n_records = 120 + (next() % 200) as usize;
            for i in 0..n_records {
                let t = i as u64 * 37;
                match next() % 5 {
                    0 => {
                        // Undecodable: ARP-typed frame of random runt size.
                        let len = 10 + (next() % 60) as usize;
                        let mut junk = vec![0xaa; len];
                        if len > 13 {
                            junk[12] = 0x08;
                            junk[13] = 0x06;
                        }
                        append_record(&mut file, t, &junk);
                    }
                    1 => {
                        // SACK-bearing ACK (larger TCP header).
                        let key = FlowKey::synthetic((next() % 7) as u32);
                        let rec = TraceRecord {
                            t: SimTime::from_micros(t),
                            dir: Direction::In,
                            seq: 300,
                            len: 0,
                            flags: SegFlags::ACK,
                            ack: 1448 * (next() % 10),
                            rwnd: 65536,
                            sack: [SackBlock::new(2896, 4344)].into(),
                            dsack: false,
                        };
                        let frame = encode_frame(&key, &rec);
                        append_record(&mut file, t, &frame.captured);
                    }
                    _ => {
                        let key = FlowKey::synthetic((next() % 7) as u32);
                        let rec = TraceRecord::data(
                            SimTime::from_micros(t),
                            if next() % 2 == 0 {
                                Direction::Out
                            } else {
                                Direction::In
                            },
                            1448 * (next() % 50),
                            (next() % 1449) as u32,
                            0,
                            65536,
                        );
                        let frame = encode_frame(&key, &rec);
                        append_record(&mut file, t, &frame.captured);
                    }
                }
            }
            if trial % 2 == 1 {
                // Cut the tail mid-record.
                let cut = 1 + (next() % 30) as usize;
                file.truncate(file.len().saturating_sub(cut));
            }

            // Baseline: segment big enough that nothing straddles.
            let decode = |seg: usize| {
                let mut s = PcapStream::with_segment_len(&file[..], seg).unwrap();
                let mut got: Vec<(u64, FlowKey, u32, u64, u32)> = Vec::new();
                while let Some(v) = s.next_view().unwrap() {
                    got.push((
                        v.t.as_micros(),
                        v.key,
                        v.raw.seq32,
                        v.frame.len() as u64,
                        v.raw.payload_len,
                    ));
                }
                (got, s.stats())
            };
            let (base, base_stats) = decode(1 << 20);
            assert!(base_stats.packets > 0, "trial {trial} decoded nothing");
            for seg in [1, 7, 16, 17, 31, 97, 256, 1024, 4096] {
                let (got, stats) = decode(seg);
                assert_eq!(got, base, "trial {trial} segment {seg}");
                assert_eq!(stats, base_stats, "trial {trial} segment {seg} stats");
            }

            // And batched fills agree with one-at-a-time reads, carrying
            // monotone cumulative skip counts.
            let mut s = PcapStream::with_segment_len(&file[..], 113).unwrap();
            let mut batch = PacketBatch::new();
            let mut pkts = 0u64;
            let mut last_skip = 0u64;
            while s.fill_batch(&mut batch, 32).unwrap() > 0 {
                for i in 0..batch.len() {
                    let sk = batch.skipped_before(i);
                    assert!(sk >= last_skip, "skip counts must be monotone");
                    last_skip = sk;
                    pkts += 1;
                }
            }
            assert_eq!(pkts, base_stats.packets, "trial {trial} batched count");
            assert_eq!(s.stats(), base_stats, "trial {trial} batched stats");
        }
    }

    #[test]
    fn multiple_flows_demultiplex() {
        let k1 = FlowKey::synthetic(1);
        let k2 = FlowKey::synthetic(2);
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file).unwrap();
        let rec = |t_us: u64| {
            TraceRecord::data(SimTime::from_micros(t_us), Direction::Out, 0, 100, 0, 65536)
        };
        w.write_record(&k1, &rec(10)).unwrap();
        w.write_record(&k2, &rec(20)).unwrap();
        w.write_record(&k1, &rec(30)).unwrap();
        w.finish().unwrap();
        let flows = PcapReader::read_all(&file[..]).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].records.len(), 2);
        assert_eq!(flows[1].records.len(), 1);
    }
}

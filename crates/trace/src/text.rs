//! Human-readable, tcpdump-style rendering of trace records — the format
//! an operator eyeballs when a diagnosis looks surprising.

use std::fmt::Write as _;

use crate::flow::FlowTrace;
use crate::record::{Direction, TraceRecord};

/// Render one record on one line, tcpdump-flavoured:
///
/// ```text
/// 0.150044  <  seq 0:1448(1448) ack 300 win 1048576
/// 0.210382  >  . ack 1448 win 1877708 sack {2896:4344}
/// ```
///
/// `<` is server→client (outbound), `>` client→server.
pub fn render_record(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let dir = match rec.dir {
        Direction::Out => '<',
        Direction::In => '>',
    };
    let _ = write!(s, "{:>11.6}  {dir}  ", rec.t.as_secs_f64());
    let mut flags = String::new();
    if rec.flags.syn {
        flags.push('S');
    }
    if rec.flags.fin {
        flags.push('F');
    }
    if rec.flags.rst {
        flags.push('R');
    }
    if flags.is_empty() {
        flags.push('.');
    }
    let _ = write!(s, "{flags} ");
    if rec.has_data() {
        let _ = write!(s, "seq {}:{}({}) ", rec.seq, rec.seq_end(), rec.len);
    }
    if rec.flags.ack {
        let _ = write!(s, "ack {} ", rec.ack);
    }
    let _ = write!(s, "win {}", rec.rwnd);
    if !rec.sack.is_empty() {
        let _ = write!(s, " sack");
        if rec.dsack {
            let _ = write!(s, "(D)");
        }
        let _ = write!(s, " {{");
        for (i, b) in rec.sack.iter().enumerate() {
            if i > 0 {
                let _ = write!(s, " ");
            }
            let _ = write!(s, "{}:{}", b.start, b.end);
        }
        let _ = write!(s, "}}");
    }
    s
}

/// Render a whole flow, one record per line.
pub fn render_flow(trace: &FlowTrace) -> String {
    let mut out = String::new();
    for rec in &trace.records {
        out.push_str(&render_record(rec));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SackBlock, SegFlags};
    use simnet::time::SimTime;

    #[test]
    fn renders_data_and_ack_fields() {
        let rec = TraceRecord::data(
            SimTime::from_micros(150_044),
            Direction::Out,
            0,
            1448,
            300,
            1_048_576,
        );
        let line = render_record(&rec);
        assert!(line.contains("seq 0:1448(1448)"));
        assert!(line.contains("ack 300"));
        assert!(line.contains("win 1048576"));
        assert!(line.contains('<'));
    }

    #[test]
    fn renders_sack_and_dsack_markers() {
        let mut rec = TraceRecord::pure_ack(SimTime::ZERO, Direction::In, 1448, 65535);
        rec.sack = [SackBlock::new(2896, 4344), SackBlock::new(5792, 7240)].into();
        let line = render_record(&rec);
        assert!(line.contains("sack {2896:4344 5792:7240}"), "{line}");
        rec.dsack = true;
        assert!(render_record(&rec).contains("sack(D)"));
    }

    #[test]
    fn renders_syn_flag() {
        let mut rec = TraceRecord::pure_ack(SimTime::ZERO, Direction::In, 0, 8192);
        rec.flags = SegFlags::SYN;
        let line = render_record(&rec);
        assert!(line.contains("S "), "{line}");
        assert!(
            !line.contains("ack 0 "),
            "bare SYN has no ack field: {line}"
        );
    }

    #[test]
    fn renders_whole_flow_line_per_record() {
        let mut trace = FlowTrace::default();
        trace.push(TraceRecord::pure_ack(SimTime::ZERO, Direction::In, 0, 100));
        trace.push(TraceRecord::data(
            SimTime::from_millis(1),
            Direction::Out,
            0,
            10,
            0,
            100,
        ));
        assert_eq!(render_flow(&trace).lines().count(), 2);
    }
}

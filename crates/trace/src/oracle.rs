//! Ground-truth cause events: the simulator's authoritative side-channel.
//!
//! TAPO works from the packet trace alone; the simulator, by contrast,
//! *knows* why every inter-packet gap happened — it executed the drop, the
//! delay burst, the zero-window backpressure, the client think time, the
//! backend fetch, the timer firing. This module defines the label stream a
//! simulator can emit **alongside** (never inside) the [`crate::TraceRecord`]
//! stream, so that a validation pass can align the labels with the stalls
//! TAPO detects and score the classifier against ground truth.
//!
//! The side-channel contract: producing these events must not change any
//! packet-visible output. Events are derived purely by observing decisions
//! the simulator already made (no extra RNG draws, no timing changes), so a
//! run with the oracle enabled yields a byte-identical trace to a run
//! without it.

use simnet::time::SimTime;

/// Context captured when a retransmission timer fires, from the sender's
/// *actual* state — everything the Table-5 subclassification needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtoContext {
    /// Stream offset of the scoreboard head (the segment being repaired).
    pub head_seq: u64,
    /// Payload length of the head segment.
    pub head_len: u64,
    /// The head had already been retransmitted before this firing.
    pub head_retransmitted: bool,
    /// The head's first retransmission (if any) was a fast retransmit.
    pub first_retrans_fast: bool,
    /// The head is in the tail of a response (no later data had been sent).
    pub head_is_tail: bool,
    /// Packets outstanding when the timer fired.
    pub packets_out: u64,
    /// The flight was limited by the peer's receive window (else by cwnd)
    /// at firing time. Only meaningful when `packets_out` is small.
    pub rwnd_limited: bool,
    /// The head segment was actually dropped by the link (as opposed to a
    /// spurious timeout where the data or its ACK was merely late).
    pub head_dropped: bool,
}

/// What actually happened, per the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CauseKind {
    /// The data-direction link dropped a data segment (loss or queue drop).
    LinkDropData {
        /// Stream offset of the dropped segment.
        seq: u64,
        /// Payload length of the dropped segment.
        len: u64,
    },
    /// The ACK-direction link dropped a client segment.
    LinkDropAck,
    /// A path-wide delay burst was active (interval event).
    DelayBurst,
    /// The client advertised a zero receive window.
    ZeroWindow,
    /// The client application was idle between requests (interval event).
    ClientIdle,
    /// The server application had no data yet: backend fetch in progress
    /// before a response's first byte (interval event).
    DataUnavailable,
    /// The server application was supplying data in rate-limited chunks:
    /// an inter-chunk gap (interval event).
    ResourceConstraint,
    /// The retransmission timer fired at the server.
    RtoFired(RtoContext),
    /// A probe timer (TLP or S-RTO) fired at the server.
    ProbeFired,
    /// The persist timer fired at the server (zero-window probe).
    WindowProbe,
}

/// One ground-truth event, stamped with the flow-time interval it covers.
/// Point events (drops, timer firings) have `start == end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauseEvent {
    /// When the condition began.
    pub start: SimTime,
    /// When the condition ended (== `start` for point events).
    pub end: SimTime,
    /// What happened.
    pub kind: CauseKind,
}

impl CauseEvent {
    /// A point event at `t`.
    pub fn at(t: SimTime, kind: CauseKind) -> Self {
        CauseEvent {
            start: t,
            end: t,
            kind,
        }
    }

    /// An interval event covering `[start, end]`.
    pub fn span(start: SimTime, end: SimTime, kind: CauseKind) -> Self {
        CauseEvent { start, end, kind }
    }

    /// Whether this event's interval intersects `[from, to]` (inclusive).
    pub fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        self.start <= to && self.end >= from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_span_overlap_semantics() {
        let t = |ms| SimTime::from_millis(ms);
        let p = CauseEvent::at(t(100), CauseKind::LinkDropAck);
        assert!(p.overlaps(t(100), t(200)));
        assert!(p.overlaps(t(50), t(100)));
        assert!(!p.overlaps(t(101), t(200)));
        let s = CauseEvent::span(t(100), t(300), CauseKind::ClientIdle);
        assert!(s.overlaps(t(250), t(400)));
        assert!(s.overlaps(t(0), t(100)));
        assert!(!s.overlaps(t(301), t(400)));
    }
}
